"""Legacy setuptools shim (offline environments without the wheel package)."""
from setuptools import setup

setup()
