"""A10 (extension) — proactive autoscaling from energy interfaces.

§2: "With deeper visibility into future energy behavior, resource
managers could make better decisions."  The replica autoscaler is the
cleanest demonstration: a reactive scaler (the Kubernetes-HPA pattern)
follows observed utilisation and pays for its lag twice — dropped
traffic on every ramp, stale capacity after every peak — while a scaler
evaluating the workload's arrival interface and the replica's energy
interface provisions *ahead* of the ramp and shrinks *at* the peak's
end.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.managers.autoscaler import (
    AutoscaleSim,
    InterfaceAutoscaler,
    ReactiveAutoscaler,
    ReplicaSpec,
    diurnal_profile,
)

from conftest import print_header

SPEC = ReplicaSpec(capacity_rps=100.0, power_idle_w=35.0,
                   joules_per_request=0.8, startup_energy_j=900.0,
                   startup_intervals=1)
N_DAYS = 4
INTERVALS_PER_DAY = 24
INTERVAL_SECONDS = 3600.0


def test_a10_autoscaling(run_once):
    def experiment():
        profile = diurnal_profile(base_rps=120.0, peak_rps=1200.0,
                                  intervals_per_day=INTERVALS_PER_DAY)
        sim = AutoscaleSim(SPEC, profile,
                           interval_seconds=INTERVAL_SECONDS)
        n_intervals = N_DAYS * INTERVALS_PER_DAY
        return {
            "reactive": sim.run(ReactiveAutoscaler(SPEC), n_intervals,
                                initial_replicas=2),
            "interface": sim.run(
                InterfaceAutoscaler(SPEC, profile, INTERVAL_SECONDS),
                n_intervals, initial_replicas=2),
        }

    results = run_once(experiment)
    print_header(f"A10 — autoscaling a diurnal service over {N_DAYS} days")
    rows = [[name, f"{r.energy_joules / 1e6:.2f} MJ",
             f"{r.drop_ratio:.2%}", f"{r.joules_per_request:.2f} J/req",
             str(r.scale_ups)]
            for name, r in results.items()]
    print(format_table(["scaler", "energy", "dropped traffic",
                        "energy/request", "scale-ups"], rows))

    reactive, interface = results["reactive"], results["interface"]
    savings = 1.0 - interface.energy_joules / reactive.energy_joules
    print(f"\ninterface scaling: {savings:.1%} less energy and "
          f"{reactive.drop_ratio - interface.drop_ratio:.2%} less "
          f"dropped traffic")

    assert interface.drop_ratio < 0.005
    assert reactive.drop_ratio > 0.01
    assert interface.energy_joules < reactive.energy_joules
    assert interface.joules_per_request < reactive.joules_per_request
