"""A9 (extension) — DVFS governor ablation under interface scheduling.

DESIGN.md calls out the governor as a design choice worth ablating: the
scheduler decides *where* work runs, the governor decides *how fast*.
We fix the best scheduler (interface-aware) and sweep the governor:

* ``performance`` — race-to-idle at the top OPP;
* ``schedutil`` — lowest OPP covering the load with headroom (Linux's
  default pairing with EAS);
* ``powersave`` — bottom OPP regardless of load.

Expected shape: schedutil wins energy at (near) zero misses;
performance matches QoS but pays the high-OPP premium; powersave saves
nothing once its missed deadlines are accounted — slow cores must run
longer *and* drop work.
"""

from __future__ import annotations

from repro.apps.transcode import bimodal_transcoder, steady_task
from repro.core.report import format_table
from repro.hardware.dvfs import (
    PerformanceGovernor,
    PowersaveGovernor,
    SchedutilGovernor,
)
from repro.hardware.profiles import build_big_little
from repro.managers.base import SchedulerSim
from repro.managers.interface_scheduler import InterfaceScheduler

from conftest import print_header

CORE_NAMES = ("little0", "little1", "little2", "little3",
              "big0", "big1", "big2", "big3")
N_QUANTA = 240


def run_with_governor(governor):
    machine = build_big_little()
    cores = [machine.component(name) for name in CORE_NAMES]
    sim = SchedulerSim(machine, cores, quantum_seconds=0.05,
                       governor=governor)
    tasks = ([bimodal_transcoder(f"tc{i}", burst_util=780, trough_util=40,
                                 burst_quanta=1, trough_quanta=5,
                                 phase_offset=i) for i in range(4)]
             + [steady_task("bg", 100)])
    return sim.run(InterfaceScheduler(), tasks, N_QUANTA)


def test_a9_governor_ablation(run_once):
    def experiment():
        return {
            "performance": run_with_governor(PerformanceGovernor()),
            "schedutil": run_with_governor(SchedutilGovernor()),
            "powersave": run_with_governor(PowersaveGovernor()),
        }

    results = run_once(experiment)
    print_header("A9 — DVFS governors under the interface scheduler")
    rows = [[name, f"{r.energy_joules:.2f} J", f"{r.miss_ratio:.1%}",
             f"{1000 * r.energy_per_work:.2f} mJ/cap-s"]
            for name, r in results.items()]
    print(format_table(["governor", "energy", "late work", "energy/work"],
                       rows))

    performance = results["performance"]
    schedutil = results["schedutil"]
    powersave = results["powersave"]

    # schedutil: cheapest among the QoS-preserving governors.
    assert schedutil.miss_ratio < 0.02
    assert performance.miss_ratio < 0.02
    assert schedutil.energy_joules < performance.energy_joules
    # powersave destroys QoS — its energy number buys late work.
    assert powersave.miss_ratio > 0.10
    # Per *delivered* capacity-second, schedutil still leads performance.
    assert schedutil.energy_per_work < performance.energy_per_work
