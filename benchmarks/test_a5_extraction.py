"""A5 — §4.2's toolchain: extracting interfaces from implementations.

The paper reports its interfaces were manual and hopes for automation
"using techniques similar to CFAR".  Our toolchain does the restricted
version: symbolic execution over the implementation enumerates paths,
resource-call results become ECVs, symbolic loops are summarised, and the
result is an executable energy interface plus Fig.-1-style source.

The bench extracts the ML-web-service implementation and checks the
extracted interface against the handwritten one — prediction parity on
every path — then demonstrates the §4.1 refinement check catching an
implementation that violates its declared energy envelope.
"""

from __future__ import annotations

from repro.analysis.extract import extract_interface
from repro.analysis.symbex import ResourceModel
from repro.core.contracts import check_refinement
from repro.core.ecv import BernoulliECV
from repro.core.interface import EnergyInterface
from repro.core.report import format_table
from repro.core.units import Energy

from conftest import print_header


# The implementation under analysis: Fig. 1's request handler, written
# against abstract resources.
def handle_request(res, image_pixels, n_zeros):
    hit = res.cache.lookup(image_pixels)
    if hit:
        return 0
    res.gpu.conv2d(image_pixels - n_zeros)
    for _ in range(8):
        res.gpu.relu(256)
    for _ in range(16):
        res.gpu.mlp(256)
    res.cache.store(1024)


class CacheIface(EnergyInterface):
    def E_lookup(self, size):
        return Energy.millijoules(0.4)

    def E_store(self, size):
        return Energy.millijoules(0.6)


class GpuIface(EnergyInterface):
    def E_conv2d(self, n):
        return Energy.microjoules(0.8 * n)

    def E_relu(self, n):
        return Energy.nanojoules(40 * n)

    def E_mlp(self, n):
        return Energy.microjoules(1.2 * n)


class HandwrittenInterface(EnergyInterface):
    """What a careful engineer would write for the same module."""

    def __init__(self):
        super().__init__("handwritten")
        self.declare_ecv(BernoulliECV("cache_lookup_0", 0.5))
        self.cache = CacheIface()
        self.gpu = GpuIface()

    def E_handle(self, image_pixels, n_zeros):
        if self.ecv("cache_lookup_0"):
            return self.cache.E_lookup(image_pixels)
        return (self.cache.E_lookup(image_pixels)
                + self.gpu.E_conv2d(image_pixels - n_zeros)
                + 8 * self.gpu.E_relu(256)
                + 16 * self.gpu.E_mlp(256)
                + self.cache.E_store(1024))


RESOURCES = [ResourceModel("cache", returning={"lookup": "bool"}),
             ResourceModel("gpu")]
SUBS = {"cache": CacheIface(), "gpu": GpuIface()}


def test_a5_extraction_parity(run_once):
    def experiment():
        extracted = extract_interface(handle_request, RESOURCES, SUBS)
        handwritten = HandwrittenInterface()
        probes = [(50176, 5000), (50176, 45000), (1024, 0), (250000, 125000)]
        comparisons = []
        for probe in probes:
            for p_hit in (0.0, 0.5, 0.95):
                env = {"cache_lookup_0":
                       BernoulliECV("cache_lookup_0", p_hit)}
                got = extracted.expected("E_call", *probe,
                                         env=env).as_joules
                want = handwritten.expected("E_handle", *probe,
                                            env=env).as_joules
                comparisons.append((probe, p_hit, got, want))
        return {"extracted": extracted, "comparisons": comparisons}

    result = run_once(experiment)
    extracted = result["extracted"]
    print_header("A5 — extracted interface (emitted source)")
    print(extracted.emit_python())
    print()
    rows = [[f"{probe}", f"{p_hit:.2f}", f"{got * 1e3:.4f} mJ",
             f"{want * 1e3:.4f} mJ"]
            for probe, p_hit, got, want in result["comparisons"]]
    print(format_table(["input", "p(hit)", "extracted", "handwritten"],
                       rows))

    for probe, p_hit, got, want in result["comparisons"]:
        assert got == __import__("pytest").approx(want, rel=1e-12), \
            (probe, p_hit)
    # The extraction discovered the cache-hit ECV by itself.
    assert "cache_lookup_0" in extracted.ecv_declarations


def test_a5_refinement_check_catches_violations(run_once):
    """§4.1: before implementing, check the composition fits the budget
    envelope the higher-level interface promised."""

    def experiment():
        extracted = extract_interface(handle_request, RESOURCES, SUBS)

        class GenerousEnvelope(EnergyInterface):
            def E_handle(self, image_pixels, n_zeros):
                return Energy.microjoules(1.0 * image_pixels + 30000)

        class TightEnvelope(EnergyInterface):
            def E_handle(self, image_pixels, n_zeros):
                return Energy.microjoules(0.2 * image_pixels)

        probes = [(50176, 5000), (1024, 0), (250000, 0)]
        fits = check_refinement(GenerousEnvelope().E_handle,
                                extracted.E_call, probes)
        breaks = check_refinement(TightEnvelope().E_handle,
                                  extracted.E_call, probes)
        return {"fits": fits, "breaks": breaks}

    result = run_once(experiment)
    print_header("A5 — refinement (compatibility) checks")
    print(f"generous envelope: {result['fits']}")
    print(f"tight envelope:    {result['breaks']}")
    assert result["fits"].ok
    assert not result["breaks"].ok
