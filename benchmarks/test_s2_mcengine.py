"""S2: the vectorized Monte Carlo engine on a composed stack.

The paper's interfaces are only useful online if querying them is cheap
(§3); once continuous ECVs force Monte Carlo, the sampler's throughput
is the whole story.  This bench evaluates the three-layer
service → CPU → DRAM stack from :mod:`repro.workloads.mcbench` at
``n_samples=20000`` under each engine and asserts the two S2 claims:

* the vectorized engine is at least **5x** faster than the serial
  per-sample evaluator on the same stack, and
* serial, vectorized and every sharded run produce **bitwise-identical**
  draws at a fixed seed (the replay contract that makes the speedup
  free of semantic risk).

Headline numbers are checked against the recorded baseline in
``benchmarks/baselines/s2_mcengine.json`` so CI catches silent changes
to the sampling scheme (a different mean at the pinned seed means the
column derivation changed, which breaks recorded experiments).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.mcengine import ParallelEngine
from repro.workloads.mcbench import BENCH_SAMPLES, BENCH_SEED, \
    run_engine_bench

pytestmark = pytest.mark.fast

_BASELINE = Path(__file__).parent / "baselines" / "s2_mcengine.json"


def test_s2_vector_speedup_and_replay(run_once):
    def experiment():
        serial = run_engine_bench("serial")
        vector = run_engine_bench("vector")
        shards = {k: run_engine_bench(ParallelEngine(shards=k))
                  for k in (2, 4, 8)}
        return serial, vector, shards

    serial, vector, shards = run_once(experiment)
    speedup = serial["seconds"] / vector["seconds"]
    print(f"serial {serial['seconds'] * 1e3:.1f} ms, "
          f"vector {vector['seconds'] * 1e3:.1f} ms -> {speedup:.1f}x")

    assert speedup >= 5.0, (
        f"vector engine only {speedup:.1f}x faster than serial at "
        f"n_samples={BENCH_SAMPLES}")
    assert np.array_equal(serial["draws"], vector["draws"])
    for k, sharded in shards.items():
        assert np.array_equal(serial["draws"], sharded["draws"]), (
            f"{k}-shard run diverged from serial at seed {BENCH_SEED}")

    baseline = json.loads(_BASELINE.read_text())
    assert serial["n_samples"] == baseline["n_samples"]
    # Tight numeric comparison (not bitwise) so the baseline survives
    # BLAS/platform differences while still pinning the sampling scheme.
    np.testing.assert_allclose(serial["mean_joules"],
                               baseline["mean_joules"], rtol=1e-9)
    np.testing.assert_allclose(serial["p99_joules"],
                               baseline["p99_joules"], rtol=1e-9)


def test_s2_engine_mean_matches_expected_mode():
    """Expected mode and the distribution's mean agree per engine."""
    from repro.core.interface import evaluate
    from repro.core.session import EvalSession
    from repro.workloads.mcbench import BENCH_OPS, build_bench_interface

    interface = build_bench_interface()
    for engine in ("serial", "vector"):
        session = EvalSession(seed=BENCH_SEED, engine=engine)
        energy = evaluate(interface("E_handle", BENCH_OPS), session=session,
                          mode="expected", n_samples=2000)
        dist = evaluate(interface("E_handle", BENCH_OPS), session=session,
                        mode="distribution", n_samples=2000)
        assert energy.as_joules == pytest.approx(dist.mean(), rel=1e-12)
