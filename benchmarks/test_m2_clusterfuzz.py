"""M2 — §1's ClusterFuzz questions, answered from interfaces alone.

Question 1: "What is the optimal number of machines to deploy to minimize
energy consumption while achieving 95% testing coverage?"

Question 2: "How much additional energy is required to increase coverage
from 90% to 95% using the same number of machines?"

The paper's complaint is that answering these today takes deploy-measure
-revise loops that "could consume more energy than [they save]".  With
the campaign's energy interface, both answers are interface evaluations.
The shapes to show: an *interior* fleet-size optimum (shared
infrastructure power punishes small fleets, coordination overhead
punishes large ones) and a marginal-energy blow-up in the coverage tail.
"""

from __future__ import annotations

from repro.apps.fuzzing import (
    CapacityPlanner,
    FuzzingCampaignModel,
    FuzzingEnergyInterface,
)
from repro.core.report import format_table

from conftest import print_header

DEADLINE = 3 * 86_400.0  # three days


def build_planner():
    interface = FuzzingEnergyInterface(FuzzingCampaignModel())
    return CapacityPlanner(interface, max_machines=150,
                           deadline_seconds=DEADLINE)


def test_m2_question1_optimal_fleet(run_once):
    def experiment():
        planner = build_planner()
        answer = planner.optimal_fleet(0.95)
        unconstrained = CapacityPlanner(
            FuzzingEnergyInterface(FuzzingCampaignModel()),
            max_machines=150).optimal_fleet(0.95)
        curve = {n: answer.energy_by_fleet_size[n]
                 for n in sorted(answer.energy_by_fleet_size)
                 if n % 10 == 0 or n == answer.optimal_machines}
        return {"answer": answer, "curve": curve,
                "unconstrained": unconstrained}

    result = run_once(experiment)
    answer = result["answer"]
    print_header("M2 Q1 — optimal fleet size for 95% coverage")
    rows = [[str(n), f"{joules / 3.6e6:.0f} kWh",
             "<-- optimum" if n == answer.optimal_machines else ""]
            for n, joules in result["curve"].items()]
    print(format_table(["machines", "campaign energy", ""], rows))
    print(f"\nanswer: {answer.optimal_machines} machines, "
          f"{answer.energy}, {answer.campaign_seconds / 86400:.2f} days")

    # Without a deadline the energy optimum is interior: both a 1-machine
    # fleet (infra burns for weeks) and a 150-machine fleet (coordination
    # overhead) cost more than the optimum.
    unconstrained = result["unconstrained"]
    full_curve = unconstrained.energy_by_fleet_size
    optimum = unconstrained.optimal_machines
    assert 1 < optimum < 150, "the unconstrained optimum must be interior"
    assert full_curve[1] > unconstrained.energy.as_joules
    assert full_curve[150] > unconstrained.energy.as_joules
    # With the 3-day deadline the chosen fleet is feasible and at least
    # as large as the unconstrained optimum.
    assert answer.campaign_seconds <= DEADLINE
    assert answer.optimal_machines >= optimum


def test_m2_question2_marginal_coverage_energy(run_once):
    def experiment():
        planner = build_planner()
        n = planner.optimal_fleet(0.95).optimal_machines
        steps = [(0.80, 0.85), (0.85, 0.90), (0.90, 0.95)]
        marginals = {f"{a:.0%}->{b:.0%}":
                     planner.marginal_coverage_energy(a, b, n).as_joules
                    for a, b in steps}
        return {"n": n, "marginals": marginals}

    result = run_once(experiment)
    print_header("M2 Q2 — marginal energy per 5 coverage points "
                 f"({result['n']} machines)")
    rows = [[step, f"{joules / 3.6e6:.0f} kWh"]
            for step, joules in result["marginals"].items()]
    print(format_table(["coverage step", "marginal energy"], rows))

    values = list(result["marginals"].values())
    # Saturation: each step costs strictly more, and the last blows up.
    assert values[0] < values[1] < values[2]
    assert values[2] > 2.5 * values[1]
