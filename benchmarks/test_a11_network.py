"""A11 (extension) — §6's energy-vs-latency asymmetry, quantified.

"The energy consumption of a web request from Switzerland to a server in
Taiwan consists of the energy consumption at all layers ... and all
machines that processed the request along the way.  In contrast, the
latency of the request can be measured directly from the client side."

We build the Zurich→Taipei route (client edge, national backbone,
submarine cable segments, Taiwanese edge, the DC fabric), compute the
request's energy from the hop interfaces, and then quantify the
asymmetry: removing visibility into any one hop leaves latency
measurement untouched (the stopwatch still works) but silently loses
that hop's full energy share — up to tens of percent for the big
routers.  Energy accounting *requires* cooperation from every layer;
latency does not.  That is exactly why energy needs interfaces.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.network.path import Hop, LinkSpec, NetworkPath, \
    PathEnergyInterface, RouterSpec

from conftest import print_header

REQUEST_BYTES = 800
RESPONSE_BYTES = 250_000  # a typical page asset

ZURICH_TAIPEI = NetworkPath("zurich-taipei", [
    Hop(RouterSpec("zurich-edge", joules_per_packet=35e-6,
                   static_power_w=800.0, utilization=0.15,
                   capacity_pps=2e7),
        LinkSpec("ch-backbone", length_km=600.0, joules_per_bit=4e-9)),
    Hop(RouterSpec("frankfurt-core", joules_per_packet=15e-6,
                   static_power_w=6000.0, utilization=0.35,
                   capacity_pps=3e8),
        LinkSpec("eu-med", length_km=2900.0, joules_per_bit=2.5e-9)),
    Hop(RouterSpec("marseille-cls", joules_per_packet=18e-6,
                   static_power_w=5000.0, utilization=0.4,
                   capacity_pps=2e8),
        LinkSpec("sea-me-we", length_km=8000.0, joules_per_bit=3.5e-9)),
    Hop(RouterSpec("singapore-core", joules_per_packet=15e-6,
                   static_power_w=6000.0, utilization=0.45,
                   capacity_pps=3e8),
        LinkSpec("apcn", length_km=3300.0, joules_per_bit=3.0e-9)),
    Hop(RouterSpec("taipei-edge", joules_per_packet=30e-6,
                   static_power_w=1200.0, utilization=0.2,
                   capacity_pps=4e7),
        LinkSpec("tw-metro", length_km=40.0, joules_per_bit=5e-9)),
])


def test_a11_energy_latency_asymmetry(run_once):
    def experiment():
        interface = PathEnergyInterface(ZURICH_TAIPEI)
        total_energy = interface.E_round_trip(REQUEST_BYTES,
                                              RESPONSE_BYTES).as_joules
        latency = interface.T_one_way()
        shares = {}
        for index, hop in enumerate(ZURICH_TAIPEI.hops):
            hop_energy = (interface.E_hop(index, REQUEST_BYTES).as_joules
                          + interface.E_hop(index,
                                            RESPONSE_BYTES).as_joules)
            shares[hop.router.name] = hop_energy / total_energy
        return {"total_energy": total_energy, "latency": latency,
                "shares": shares}

    result = run_once(experiment)
    print_header("A11 — a web request, Zurich -> Taipei")
    print(f"route: {ZURICH_TAIPEI.length_km:.0f} km, one-way latency "
          f"{result['latency'] * 1000:.1f} ms (one stopwatch, no "
          f"cooperation needed)")
    print(f"round-trip energy: {result['total_energy'] * 1000:.2f} mJ "
          f"(requires EVERY hop's interface)\n")
    rows = [[name, f"{share:.1%}",
             "lost if this hop is opaque"]
            for name, share in sorted(result["shares"].items(),
                                      key=lambda kv: -kv[1])]
    print(format_table(["hop", "energy share", "accounting consequence"],
                       rows))

    # Sanity on the physics: ~15 km of route, light-in-fibre latency.
    assert 0.05 < result["latency"] < 0.12
    # Every hop carries a material share; none is negligible, so no
    # client-side trick recovers the total.
    shares = list(result["shares"].values())
    assert sum(shares) == __import__("pytest").approx(1.0)
    assert max(shares) < 0.75
    assert min(shares) > 0.02
    # Hiding the largest hop loses a big chunk of the energy account.
    assert max(shares) > 0.25
