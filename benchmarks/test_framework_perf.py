"""Framework micro-benchmarks: evaluation and simulation throughput.

Unlike the experiment benches (which run once), these measure the steady-
state performance of the framework's hot paths with real repetition —
useful for catching performance regressions in the evaluator, the ledger
and the GPU simulator.
"""

from __future__ import annotations

import time

import pytest

from repro.core.ecv import BernoulliECV
from repro.core.interface import EnergyInterface, evaluate
from repro.core.session import EvalSession, MemoHook
from repro.core.units import Energy
from repro.hardware.gpu import KernelProfile
from repro.hardware.profiles import SIM4090, build_gpu_workstation
from repro.llm.config import GPT2_SMALL
from repro.llm.runtime import GPT2Runtime

pytestmark = pytest.mark.fast


class NestedInterface(EnergyInterface):
    def __init__(self):
        super().__init__("nested")
        self.declare_ecv(BernoulliECV("a", 0.5))
        self.declare_ecv(BernoulliECV("b", 0.3))
        self.declare_ecv(BernoulliECV("c", 0.9))

    def E_op(self, n):
        total = 1.0 if self.ecv("a") else 2.0
        if self.ecv("b"):
            total += 0.5 * n
        if self.ecv("c"):
            total += 0.1
        return Energy(total)


def test_perf_ecv_enumeration(benchmark):
    """Expected-value evaluation with 8 enumerated traces."""
    interface = NestedInterface()
    result = benchmark(lambda: interface.expected("E_op", 10))
    assert result.as_joules > 0


def test_perf_worst_case_evaluation(benchmark):
    interface = NestedInterface()
    result = benchmark(lambda: interface.worst_case("E_op", 10))
    assert result.as_joules > 0


def test_perf_gpu_kernel_launch(benchmark):
    machine = build_gpu_workstation(SIM4090)
    gpu = machine.component("gpu0")
    kernel = KernelProfile("k", instructions=1e6, l1_wavefronts=1e5,
                           l2_sectors=1e5, vram_sectors=1e4)
    benchmark(lambda: gpu.launch(kernel))
    assert gpu.counters.kernel_launches > 0


def test_perf_gpt2_decode_step(benchmark):
    machine = build_gpu_workstation(SIM4090)
    runtime = GPT2Runtime(machine.component("gpu0"), GPT2_SMALL)
    runtime.prefill(8)

    def step():
        if runtime.kv_len >= GPT2_SMALL.n_ctx - 1:
            runtime.reset_cache()
            runtime.prefill(8)
        runtime.decode_token()

    benchmark(step)


class WideInterface(EnergyInterface):
    """Six Bernoulli reads: 64 traces per expected-mode evaluation."""

    def __init__(self):
        super().__init__("wide")
        for index in range(6):
            self.declare_ecv(BernoulliECV(f"bit{index}", 0.5))

    def E_op(self, n):
        total = 0.0
        for index in range(6):
            if self.ecv(f"bit{index}"):
                total += float(n) / (index + 1)
        return Energy(total + 0.1)


def test_perf_session_memoization_speedup(benchmark):
    """Session-scoped memoization: repeats collapse to cache lookups.

    The same abstract input evaluated through a memoized session must be
    at least 3x faster than re-enumerating the 64 traces every time —
    the speedup the serving gateway's hot path relies on.
    """
    interface = WideInterface()
    repeats = 50

    plain = EvalSession()
    baseline = evaluate(interface("E_op", 10), session=plain).as_joules
    t0 = time.perf_counter()
    for _ in range(repeats):
        evaluate(interface("E_op", 10), session=plain)
    uncached = time.perf_counter() - t0

    memoized = EvalSession(hooks=[MemoHook()])
    assert evaluate(interface("E_op", 10), session=memoized).as_joules == baseline
    t0 = time.perf_counter()
    for _ in range(repeats):
        value = evaluate(interface("E_op", 10), session=memoized)
    cached = time.perf_counter() - t0

    assert value.as_joules == baseline
    speedup = uncached / cached if cached else float("inf")
    benchmark.extra_info["memo_speedup"] = round(speedup, 1)
    benchmark.pedantic(
        lambda: evaluate(interface("E_op", 10), session=memoized),
        rounds=1, iterations=repeats)
    assert speedup >= 3.0, f"memoization speedup only {speedup:.1f}x"


def test_perf_ledger_window_query(benchmark):
    machine = build_gpu_workstation(SIM4090)
    gpu = machine.component("gpu0")
    kernel = KernelProfile("k", vram_sectors=1e5)
    for _ in range(2000):
        gpu.launch(kernel)
    horizon = machine.now

    result = benchmark(lambda: machine.ledger.energy_between(
        horizon * 0.4, horizon * 0.6, component="gpu0"))
    assert result > 0
