"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Experiments are deterministic
and moderately expensive, so each runs exactly once via
``benchmark.pedantic(..., rounds=1)``; the paper-style table is printed to
stdout (run with ``-s`` to see it) and the headline numbers are stored in
``benchmark.extra_info`` so they land in the JSON output.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark.

    Returns the experiment's result and records its headline numbers.
    """

    def runner(experiment, **extra_info):
        result = benchmark.pedantic(experiment, rounds=1, iterations=1)
        for key, value in extra_info.items():
            benchmark.extra_info[key] = value
        if isinstance(result, dict):
            for key, value in result.items():
                if isinstance(value, (int, float, str)):
                    benchmark.extra_info[key] = value
        return result

    return runner


def print_header(title: str) -> None:
    """A visual separator for the printed experiment reports."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
