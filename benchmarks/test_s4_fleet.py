"""S4 — a million requests through a replicated fleet, replayed bitwise.

S1–S3 established the single-node serving story: prediction-gated
admission, engine-independent evaluation, graceful degradation.  S4
scales it out: ≥ 1M simulated requests stream through ≥ 4 gateway
replicas behind an energy-aware balancer, with per-tenant budgets
enforced *fleet-wide* by sharded leases.  Three claims:

* **the invariant holds at scale**: across a million Zipf-skewed,
  diurnally-modulated requests, no tenant ever draws beyond its global
  ``capacity + refill x t`` allowance — zero fleet-wide budget
  violations, by construction (coordinator grants are bounded, shard
  admissions are lease-bounded, draws never exceed the reserved worst
  case);
* **efficiency is observable**: the run reports goodput per Joule — the
  paper's clarity argument made operational as a fleet metric;
* **replay is bitwise**: the full run — every balancer decision, lease
  round and latency bin — is a pure function of the seed.  Two
  back-to-back runs produce sha256-identical reports.

The default is the full million (a couple of minutes); CI's ``s4-fleet``
job scales down via ``S4_REQUESTS`` and uploads the report JSON as an
artifact.  Headline numbers are pinned by
``benchmarks/baselines/s4_fleet.json`` (checked only when the request
count matches the baseline's), so silent changes to the dispatch or
lease arithmetic fail the build.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.policy import Policy
from repro.fleet import EnergyGatewayFleet
from repro.sim.rng import RngFactory
from repro.workloads import (
    diurnal_arrivals,
    fleet_request_trace,
    zipf_tenant_trace,
)

from conftest import print_header

SEED = 42
N_REQUESTS = int(os.environ.get("S4_REQUESTS", "1000000"))
N_REPLICAS = 4
N_TENANTS = 8
HORIZON_S = 3600.0        # one simulated hour with one diurnal period
BALANCER = "power-of-two"
#: Generous per-tenant budgets: S4 measures the invariant and replay at
#: scale, not starvation behaviour (tests/fleet covers starvation).
TENANT_BUDGET = "50J+5W"

_BASELINE = Path(__file__).parent / "baselines" / "s4_fleet.json"


def _trace():
    """~N_REQUESTS diurnal arrivals with Zipf tenant skew, streamed."""
    factory = RngFactory(SEED)
    mean_rate = N_REQUESTS / HORIZON_S
    times = diurnal_arrivals(mean_rate, HORIZON_S,
                             factory.stream("arrivals"),
                             period_seconds=HORIZON_S)
    tenants = zipf_tenant_trace(len(times), N_TENANTS, factory)
    return fleet_request_trace(times, tenants, factory)


def _run():
    budgets = {f"tenant{i}": TENANT_BUDGET for i in range(N_TENANTS)}
    fleet = EnergyGatewayFleet(
        budgets,
        policy=Policy(replicas=N_REPLICAS, balancer=BALANCER,
                      lease_ttl_s=30.0),
        entropy=SEED)
    return fleet.serve(_trace(), horizon_s=HORIZON_S)


def _experiment():
    first = _run()
    second = _run()
    return {
        "requests": first.offered,
        "admitted": first.admitted,
        "goodput": first.goodput,
        "goodput_per_j": first.goodput_per_j,
        "measured_joules": first.measured_joules,
        "violations": len(first.violations),
        "p99_latency_s": first.p99_latency_s,
        "digest": first.digest(),
        "replay_digest": second.digest(),
        "_report": first,
    }


def test_s4_fleet_scale_replay(run_once):
    result = run_once(
        _experiment,
        seed=SEED, replicas=N_REPLICAS, tenants=N_TENANTS,
        balancer=BALANCER, horizon_s=HORIZON_S)
    report = result["_report"]

    print_header(f"S4: {result['requests']:,} requests through "
                 f"{N_REPLICAS} replicas ({BALANCER})")
    print(f"admitted {report.admitted:,} ({report.goodput:.2%} goodput), "
          f"{report.measured_joules:,.1f} J measured")
    print(f"goodput/J: {report.goodput_per_j:,.1f} requests per Joule")
    print(f"p50 {report.p50_latency_s * 1e3:.3g} ms, "
          f"p99 {report.p99_latency_s * 1e3:.3g} ms; "
          f"lease grants {int(report.lease_stats['grants'])}, "
          f"denials {int(report.lease_stats['denials'])}")
    print(f"dispatches/replica: {list(report.dispatch_counts)}")
    print(f"digest {result['digest'][:16]}…")

    # The workload actually exercised the fleet.
    assert report.offered >= 0.9 * N_REQUESTS, (
        f"only {report.offered} requests generated for "
        f"S4_REQUESTS={N_REQUESTS}")
    assert all(count > 0 for count in report.dispatch_counts), (
        "a replica never received traffic — the balancer is broken")

    # Claim 1: zero fleet-wide budget-invariant violations.
    assert result["violations"] == 0, (
        f"budget invariant broke fleet-wide: {report.violations}")
    assert report.measured_joules <= report.allowance_joules, (
        "total measured energy exceeds the summed tenant allowances")

    # Claim 2: efficiency is reported and sane.
    assert result["goodput_per_j"] > 0

    # Claim 3: bitwise replay at the fixed seed.
    assert result["digest"] == result["replay_digest"], (
        "two runs at the same seed produced different fleet reports — "
        "the replay contract is broken")

    # Write the report next to pytest-benchmark's JSON so CI can upload
    # it as an artifact (and operators can diff runs).
    out = os.environ.get("S4_REPORT_JSON")
    if out:
        Path(out).write_text(report.to_json(indent=2) + "\n",
                             encoding="utf-8")

    # Pin the headline numbers when the run matches the recorded shape.
    if _BASELINE.is_file():
        baseline = json.loads(_BASELINE.read_text())
        if baseline["requests"] == result["requests"]:
            np.testing.assert_allclose(result["measured_joules"],
                                       baseline["measured_joules"],
                                       rtol=1e-9)
            assert result["admitted"] == baseline["admitted"]
            assert result["digest"] == baseline["digest"], (
                "fleet digest diverged from the recorded baseline at the "
                "pinned seed — dispatch or lease arithmetic changed")


@pytest.mark.fast
def test_s4_shape_smoke(run_once):
    """A tiny fast-mode S4 so the regular benchmark job covers the path."""
    budgets = {f"tenant{i}": TENANT_BUDGET for i in range(2)}
    fleet = EnergyGatewayFleet(budgets,
                               policy=Policy(replicas=4, balancer=BALANCER),
                               entropy=SEED)
    factory = RngFactory(SEED)
    times = diurnal_arrivals(200.0, 30.0, factory.stream("arrivals"),
                             period_seconds=30.0)
    tenants = zipf_tenant_trace(len(times), 2, factory)
    report = run_once(lambda: fleet.serve(
        fleet_request_trace(times, tenants, factory), horizon_s=30.0))
    assert report.offered > 1000
    assert report.violations == {}
