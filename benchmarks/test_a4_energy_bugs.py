"""A4 — §4.2's testing workflow: divergence flags energy bugs.

"One way to do testing is by running the layer with well chosen inputs,
measuring the consumed energy (e.g., with Intel RAPL), and comparing it
to the interface's prediction; divergences would then be flagged as
energy bugs."

We implement a small storage module (bulk scans of tens to hundreds of
megabytes, plus a radio sync) with an energy interface, then inject three
classic energy bugs and show the divergence test catching each through
the RAPL channel while passing the clean implementation:

1. *cache disabled* — every read goes to DRAM;
2. *radio left on* — the NIC never returns to sleep after a sync;
3. *duplicated work* — a retry loop re-reads everything once more.
"""

from __future__ import annotations

from repro.analysis.verify import divergence_test
from repro.core.interface import EnergyInterface
from repro.core.report import format_table
from repro.core.units import Energy
from repro.hardware.machine import Machine
from repro.hardware.memory import DRAM, DRAMSpec
from repro.hardware.nic import NIC, NICSpec
from repro.measurement.meter import rapl_meter
from repro.measurement.rapl import RAPLSim

from conftest import print_header

DRAM_SPEC = DRAMSpec(e_read_line=20e-9, e_write_line=30e-9,
                     p_refresh_w=0.0, bandwidth_bytes=2e9)
NIC_SPEC = NICSpec(e_per_byte_tx=3e-9, e_per_byte_rx=2e-9, e_wake=0.02,
                   wake_latency=0.002, p_idle_w=0.3, p_off_w=0.001,
                   bandwidth_bytes=10e6)
CACHE_HIT_FRACTION = 0.75  # app-level cache absorbs 3 of 4 reads


class StorageInterface(EnergyInterface):
    """Interface: read n_kb, with the app cache absorbing most of it,
    then sync a summary over the radio and drop back to sleep."""

    def __init__(self):
        super().__init__("storage")

    def E_read_and_sync(self, n_kb: int) -> Energy:
        lines = n_kb * 1024 // 64
        dram = lines * (1 - CACHE_HIT_FRACTION) * DRAM_SPEC.e_read_line
        radio = (NIC_SPEC.e_wake + 256 * NIC_SPEC.e_per_byte_tx
                 + NIC_SPEC.p_idle_w * (0.002 + 256 / 10e6))
        idle_tail = 0.0  # radio sleeps again; off power negligible
        return Energy(dram + radio + idle_tail)


def build_node():
    machine = Machine("edge-node")
    dram = machine.add(DRAM("dram", DRAM_SPEC))
    nic = machine.add(NIC("nic", NIC_SPEC))
    return machine, dram, nic


def implementations(dram, nic, machine):
    def clean(n_kb):
        dram.access(bytes_read=int(n_kb * 1024 * (1 - CACHE_HIT_FRACTION)))
        nic.send(256)
        nic.sleep()
        machine.advance(0.5)  # the idle period after the operation

    def cache_disabled(n_kb):
        dram.access(bytes_read=n_kb * 1024)  # BUG: all reads hit DRAM
        nic.send(256)
        nic.sleep()
        machine.advance(0.5)

    def radio_left_on(n_kb):
        dram.access(bytes_read=int(n_kb * 1024 * (1 - CACHE_HIT_FRACTION)))
        nic.send(256)
        # BUG: forgot nic.sleep() — idle power burns through the tail
        machine.advance(0.5)
        nic.sleep()  # cleaned up only at the end

    def duplicated_work(n_kb):
        for _ in range(2):  # BUG: retry loop always runs twice
            dram.access(bytes_read=int(n_kb * 1024
                                       * (1 - CACHE_HIT_FRACTION)))
        nic.send(256)
        nic.sleep()
        machine.advance(0.5)

    return {"clean": clean, "cache_disabled": cache_disabled,
            "radio_left_on": radio_left_on,
            "duplicated_work": duplicated_work}


def test_a4_divergence_flags_injected_bugs(run_once):
    def experiment():
        results = {}
        for name in ("clean", "cache_disabled", "radio_left_on",
                     "duplicated_work"):
            machine, dram, nic = build_node()
            rapl = RAPLSim(machine, update_period=0.0001)
            meter = rapl_meter(machine, rapl, "psys")
            interface = StorageInterface()
            implementation = implementations(dram, nic, machine)[name]
            report = divergence_test(interface.E_read_and_sync,
                                     implementation, meter,
                                     inputs=[65536, 262144, 1048576],
                                     threshold=0.15)
            results[name] = report
        return results

    results = run_once(experiment)
    print_header("A4 — energy-bug detection via RAPL divergence testing")
    rows = [[name, f"{report.worst_error:.1%}",
             "OK" if report.ok else f"{len(report.bugs)} bug(s) flagged"]
            for name, report in results.items()]
    print(format_table(["implementation", "worst divergence", "verdict"],
                       rows))
    for name, report in results.items():
        if name == "clean":
            assert report.ok, f"clean implementation flagged: {report}"
        else:
            assert not report.ok, f"bug {name!r} escaped detection"

    # The bug reports point in the right direction.
    assert any("MORE energy" in str(bug)
               for bug in results["cache_disabled"].bugs)
