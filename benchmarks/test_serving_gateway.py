"""S1 — the serving gateway holds an energy cap a naive FIFO blows through.

The paper's closing argument is that energy interfaces enable *online*
control: because a request's cost is computable before dispatch, a
serving system can promise an energy envelope and keep it.  This
experiment stages that promise on the flash KV store (whose worst case —
a garbage-collection storm per put — is exactly what a guarantee must
price in):

* a Poisson request stream is replayed twice from identical seeds;
* the **naive FIFO** admits everything and overruns the configured
  allowance by well over 25%;
* the **energy-aware gateway** (hard-budget admission over worst-case
  interface evaluations, settled against ledger ground truth) serves the
  same stream inside the allowance, within the 5% tolerance;
* the evaluation cache keeps per-request pricing nearly free (>50% hit
  rate on the repeated-request trace), which is what makes asking before
  running viable at serving rates.
"""

from __future__ import annotations

from repro.serving import (
    AdmitAllPolicy,
    EnergyAwareGateway,
    EnergyBudget,
    HardBudgetPolicy,
    KVStoreAdapter,
    MLServiceAdapter,
    zip_arrivals,
)
from repro.sim.rng import RngFactory
from repro.workloads import (
    kv_request_trace,
    poisson_arrivals,
    repeated_image_trace,
)

from conftest import print_header

SEED = 42
RATE = 300.0              # requests / second
HORIZON = 10.0            # seconds of traffic
VALUE_BYTES = 256 * 1024
BUDGET_J, REFILL_W = 0.5, 0.25   # allowance: 0.5 J + 0.25 W * elapsed


def _kv_workload():
    factory = RngFactory(SEED)
    times = poisson_arrivals(RATE, HORIZON, factory)
    requests = kv_request_trace(len(times), factory.stream("trace"),
                                put_fraction=0.8)
    return zip_arrivals(times, requests)


def _run_kv(policy, capacity, refill):
    adapter = KVStoreAdapter(value_bytes=VALUE_BYTES)
    budget = EnergyBudget("node", capacity_joules=capacity,
                          refill_watts=refill)
    gateway = EnergyAwareGateway(adapter, budget, policy)
    return gateway.serve(_kv_workload(), horizon=HORIZON)


def _experiment():
    naive = _run_kv(AdmitAllPolicy(), capacity=1e9, refill=0.0)
    gated = _run_kv(HardBudgetPolicy(), capacity=BUDGET_J, refill=REFILL_W)
    allowance = gated.allowance_joules
    return {
        "allowance_joules": allowance,
        "naive_joules": naive.ledger_joules,
        "naive_overrun": naive.ledger_joules / allowance,
        "gated_joules": gated.ledger_joules,
        "gated_utilisation": gated.budget_utilisation,
        "gated_admitted": gated.admitted,
        "offered": gated.offered,
        "cache_hit_rate": gated.cache_stats["hit_rate"],
    }


def test_gateway_holds_energy_cap(run_once):
    result = run_once(_experiment)

    print_header("S1: energy-aware serving vs naive FIFO (flash KV store)")
    print(f"configured allowance            {result['allowance_joules']:.3f} J")
    print(f"naive FIFO ledger               {result['naive_joules']:.3f} J "
          f"({result['naive_overrun']:.0%} of allowance)")
    print(f"gateway ledger                  {result['gated_joules']:.3f} J "
          f"({result['gated_utilisation']:.0%} of allowance)")
    print(f"gateway admitted                {result['gated_admitted']}"
          f"/{result['offered']}")
    print(f"eval-cache hit rate             {result['cache_hit_rate']:.1%}")

    # the naive baseline exceeds the allowance by >= 25% ...
    assert result["naive_overrun"] >= 1.25
    # ... the gateway keeps the same stream within the allowance (+5%)
    assert result["gated_joules"] <= 1.05 * result["allowance_joules"]
    # and still does useful work
    assert result["gated_admitted"] > 0.3 * result["offered"]
    # pricing 2 evaluations per request stayed nearly free
    assert result["cache_hit_rate"] > 0.5


def test_evalcache_pays_off_on_repeated_images(run_once):
    """The Fig. 1 service under the gateway: a Zipf stream of images with
    per-object fixed abstractions collapses onto few cache keys."""

    def experiment():
        adapter = MLServiceAdapter(seed=SEED, warmup_requests=200)
        budget = EnergyBudget("node", capacity_joules=1e9)
        gateway = EnergyAwareGateway(adapter, budget, AdmitAllPolicy())
        factory = RngFactory(SEED)
        times = poisson_arrivals(40.0, 5.0, factory)
        requests = repeated_image_trace(len(times),
                                        factory.stream("trace"),
                                        n_objects=60)
        report = gateway.serve(zip_arrivals(times, requests))
        return {
            "offered": report.offered,
            "hit_rate": report.cache_stats["hit_rate"],
            "lookups": report.cache_stats["lookups"],
            "mean_prediction_error": report.mean_prediction_error,
        }

    result = run_once(experiment)

    print_header("S1b: evaluation-cache hit rate on repeated images")
    print(f"requests                        {result['offered']}")
    print(f"interface evaluations           {int(result['lookups'])}")
    print(f"cache hit rate                  {result['hit_rate']:.1%}")
    print(f"mean prediction error           "
          f"{result['mean_prediction_error']:.1%}")

    assert result["hit_rate"] > 0.5
