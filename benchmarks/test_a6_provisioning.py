"""A6 (extension) — peak-power provisioning from power interfaces.

§3 notes interfaces could return "power, or peak power, which can be
useful for resource managers to optimize power provisioning and increase
utilization".  We provision a rack of heterogeneous nodes under a breaker
budget three ways and validate against a measured power trace on the
simulated machines:

* **nameplate** — sum of vendor maximum board powers: safe, wastes rack
  positions;
* **interface peak** — worst-case evaluation of each node's power
  interface *for its actual workload mix*: safe and tighter;
* **interface expected + diversity** — expectation with a diversity
  factor: the densest packing that still never tripped the breaker in
  the measured trace.
"""

from __future__ import annotations

import numpy as np

from repro.core.ecv import CategoricalECV
from repro.core.interface import EnergyInterface, evaluate
from repro.core.power import provision
from repro.core.report import format_table
from repro.hardware.gpu import KernelProfile
from repro.hardware.profiles import SIM4090, build_gpu_workstation

from conftest import print_header

BREAKER_W = 2000.0
NAMEPLATE_W = 600.0     # board maximum (stress-test workloads, not ours)
N_TRACE_STEPS = 300

#: The inference node's duty cycle: mostly memory-bound decode, some
#: compute-bound prefill, plenty of idle gaps.
PHASES = {"idle": 0.45, "decode": 0.40, "prefill": 0.15}

DECODE = KernelProfile("decode", vram_sectors=3.15e10 * 0.001,
                       instructions=2e9, row_miss_fraction=0.04)
PREFILL = KernelProfile("prefill", instructions=2e13 * 0.001,
                        vram_sectors=1e7, row_miss_fraction=0.04)


class NodePowerInterface(EnergyInterface):
    """A node's power interface over its workload-phase ECV."""

    def __init__(self, spec=SIM4090):
        super().__init__("inference_node")
        self.spec = spec
        self.declare_ecv(CategoricalECV("phase", PHASES))

    def _phase_power(self, phase: str) -> float:
        spec = self.spec
        if phase == "idle":
            return spec.p_static_w
        kernel = DECODE if phase == "decode" else PREFILL
        machine = build_gpu_workstation(spec)
        gpu = machine.component("gpu0")
        duration = gpu.kernel_duration(kernel)
        return (gpu.kernel_dynamic_energy(kernel) / duration
                + spec.p_static_w)

    def P_draw(self) -> float:
        """Watts in the current phase (Watts as the numeraire)."""
        return self._phase_power(self.ecv("phase"))


def measured_rack_peak(n_nodes: int, seed: int = 0) -> float:
    """Run the phase mix on n simulated nodes; peak of the summed trace."""
    rng = np.random.default_rng(seed)
    machines = []
    for index in range(n_nodes):
        machine = build_gpu_workstation(SIM4090, name=f"node{index}")
        machines.append(machine)
    phase_names = list(PHASES)
    phase_probs = list(PHASES.values())
    peak = 0.0
    for _ in range(N_TRACE_STEPS):
        step_power = 0.0
        for machine in machines:
            gpu = machine.component("gpu0")
            phase = rng.choice(phase_names, p=phase_probs)
            t0 = machine.now
            if phase == "idle":
                gpu.idle(0.002)
            else:
                gpu.launch(DECODE if phase == "decode" else PREFILL)
            step_power += machine.ledger.energy_between(
                t0, machine.now, component="gpu0") / (machine.now - t0)
        peak = max(peak, step_power)
    return peak


def test_a6_provisioning(run_once):
    def experiment():
        interface = NodePowerInterface()
        peak_w = evaluate(interface("P_draw"), mode="worst").as_joules
        expected_w = interface.expected("P_draw").as_joules

        def max_nodes(per_node_w, diversity=1.0):
            n = 1
            while True:
                report = provision([per_node_w] * (n + 1), BREAKER_W,
                                   diversity_factor=diversity)
                if not report.fits_diversified:
                    return n
                n += 1

        plans = {
            "nameplate": max_nodes(NAMEPLATE_W),
            "interface peak": max_nodes(peak_w),
            "interface expected +20% headroom": max_nodes(expected_w * 1.2),
        }
        # Validate each plan against a measured trace.
        validation = {name: measured_rack_peak(n)
                      for name, n in plans.items()}
        return {"peak_w": peak_w, "expected_w": expected_w,
                "plans": plans, "validation": validation}

    result = run_once(experiment)
    print_header(f"A6 — provisioning a {BREAKER_W:.0f} W rack")
    rows = []
    for name, n_nodes in result["plans"].items():
        measured = result["validation"][name]
        rows.append([name, str(n_nodes), f"{measured:.0f} W",
                     "SAFE" if measured <= BREAKER_W else "TRIPS"])
    print(format_table(
        ["policy", "nodes racked", "measured rack peak", "verdict"], rows))
    print(f"\nper-node: nameplate {NAMEPLATE_W:.0f} W, interface peak "
          f"{result['peak_w']:.0f} W, expected {result['expected_w']:.0f} W")

    plans, validation = result["plans"], result["validation"]
    # The interface packs more nodes than the nameplate, safely: the
    # workload's true peak is far below the board's stress-test maximum.
    assert plans["interface peak"] > plans["nameplate"]
    assert validation["interface peak"] <= BREAKER_W
    assert validation["nameplate"] <= BREAKER_W
    # Expected+diversity packs densest of all — and the measured trace
    # shows why it is a gamble: enough nodes can peak together to trip
    # the breaker.  Worst-case (peak) interfaces are the safe frontier.
    assert plans["interface expected +20% headroom"] > \
        plans["interface peak"]
    assert validation["interface expected +20% headroom"] > BREAKER_W
