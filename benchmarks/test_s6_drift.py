"""S6 — calibration drift: frozen rot vs. streaming recalibration.

The Table-1 pipeline assumes the one-shot microbenchmark calibration
stays valid.  S6 breaks that assumption on purpose: after calibrating,
a seeded drift plan ages the simulated GPU (unit energies and static
power walk away under an OU wander plus a deterministic ramp) while
windows of GPT-2 generations keep serving.  Both legs see the *same*
workload, drift and sensor noise:

* **frozen** — the batch calibration used as-is must breach the T1
  accuracy envelope and trip the typed ``CalibrationStale`` alarm; rot
  is detected, never silent;
* **recalibrated** — a :class:`~repro.calibration.StreamingRecalibrator`
  folding each served observation into its running fit must stay
  *within* the T1 envelope (avg < 2 %, max < 3 % on the 4090-class
  board), minting versioned epochs as the fit crosses fingerprint
  quanta (the compile-cache invalidation seam).

Replay is bitwise: drift draws, NVML noise and workload shapes all live
under the SeedSequence spawn discipline, so two runs at the same seed
produce sha256-identical reports.  Headline numbers are pinned by
``benchmarks/baselines/s6_drift.json`` (checked when the run shape
matches); CI's ``s6-drift`` job uploads the report JSON as an artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.calibration import (
    DriftProcess,
    DriftingCostModel,
    format_drift_report,
    run_drift_scenario,
)
from repro.core.policy import Policy
from repro.fleet import EnergyGatewayFleet, WorkCostModel
from repro.sim.rng import RngFactory
from repro.workloads import (
    fleet_request_trace,
    poisson_arrivals,
    zipf_tenant_trace,
)

from conftest import print_header

SEED = 7
WINDOWS = 8
TOLERANCE = 0.05
#: The T1 envelope for the 4090-class board (see test_table1_gpt2).
T1_AVG, T1_MAX = 0.02, 0.03

_BASELINE = Path(__file__).parent / "baselines" / "s6_drift.json"


def _experiment():
    first = run_drift_scenario(windows=WINDOWS, seed=SEED,
                               tolerance=TOLERANCE)
    second = run_drift_scenario(windows=WINDOWS, seed=SEED,
                                tolerance=TOLERANCE)
    return {
        "frozen_avg_error": first.frozen_avg_error,
        "frozen_max_error": first.frozen_max_error,
        "recal_avg_error": first.recal_avg_error,
        "recal_max_error": first.recal_max_error,
        "epochs_minted": first.epochs_minted,
        "digest": first.digest(),
        "replay_digest": second.digest(),
        "_report": first,
    }


def test_s6_drift_recalibration(run_once):
    result = run_once(_experiment, seed=SEED, windows=WINDOWS,
                      tolerance=TOLERANCE)
    report = result["_report"]

    print_header(f"S6: {report.generations} generations over "
                 f"{report.windows} drift windows "
                 f"({report.horizon_s:.0f} s simulated, "
                 f"preset={report.preset})")
    print(format_drift_report(report))

    # Claim 1: the frozen calibration rots out of the T1 envelope, and
    # the rot is *detected* — the staleness alarm trips.
    assert report.frozen_avg_error > T1_AVG, (
        "the drift preset no longer breaks a frozen calibration — "
        "S6 proves nothing at this shape")
    assert report.frozen_max_error > T1_MAX
    assert report.frozen_stale, (
        "frozen calibration breached the envelope without tripping "
        "CalibrationStale — rot went silent")

    # Claim 2: streaming recalibration holds the T1 envelope under the
    # exact same drift, workload and sensor noise.
    assert report.recal_avg_error < T1_AVG, (
        f"recalibrated avg error {report.recal_avg_error:.2%} breached "
        f"the T1 envelope")
    assert report.recal_max_error < T1_MAX
    assert not report.recal_stale
    assert report.recal_avg_error < report.frozen_avg_error / 2

    # Claim 3: recalibration is *versioned* — drift crossing fingerprint
    # quanta mints fresh epochs (the compile-cache invalidation signal).
    assert report.epochs_minted > 0

    # Claim 4: bitwise replay at the fixed seed.
    assert result["digest"] == result["replay_digest"], (
        "two drift runs at the same seed produced different reports — "
        "a draw escaped the SeedSequence spawn discipline")

    out = os.environ.get("S6_REPORT_JSON")
    if out:
        Path(out).write_text(report.to_json() + "\n", encoding="utf-8")

    if _BASELINE.is_file():
        baseline = json.loads(_BASELINE.read_text())
        if (baseline["windows"] == report.windows
                and baseline["seed"] == report.seed):
            np.testing.assert_allclose(result["recal_avg_error"],
                                       baseline["recal_avg_error"],
                                       rtol=1e-9)
            assert result["epochs_minted"] == baseline["epochs_minted"]
            assert result["digest"] == baseline["digest"], (
                "drift digest diverged from the recorded baseline at the "
                "pinned seed — drift, sensor or fit arithmetic changed")


def test_s6_fleet_stale_accounting(run_once):
    """The fleet-scale half of the claim: when measured energy drifts
    past the guard's tolerance, admission accounts every stale decision
    on the report — degraded, never silent."""

    def experiment():
        model = DriftingCostModel(
            WorkCostModel(),
            DriftProcess("fleet:energy", entropy=SEED, rate_per_s=5e-3))
        fleet = EnergyGatewayFleet(
            {"t0": "5J+2W", "t1": "3J+1W"},
            policy=Policy(replicas=2, calibration_tolerance=0.17),
            cost_model=model, entropy=SEED)
        factory = RngFactory(SEED)
        times = poisson_arrivals(200.0, 30.0, factory.stream("arrivals"))
        tenants = zipf_tenant_trace(len(times), 2, factory)
        return fleet.serve(fleet_request_trace(times, tenants, factory))

    report = run_once(experiment, seed=SEED)
    print_header("S6 fleet leg: drifting cost model vs. the "
                 "calibration guard")
    print(f"offered {report.offered:,}, admitted {report.admitted:,}; "
          f"stale-calibration decisions {report.calibration_stale:,} "
          f"(rejected {report.calibration_rejected:,})")
    assert report.calibration_stale > 0, (
        "the drifting fleet never tripped the calibration guard")
    assert report.calibration_rejected == 0      # default action: widen
    assert report.violations == {}
