"""A8 (extension) — attribution explains the past; interfaces predict.

§2 distinguishes energy clarity from the existing measurement/accounting
ecosystem (per-process attribution à la power containers / Kepler):
attribution can say *where the Joules went*, but "do not necessarily
show why energy is consumed in a particular way, nor how that
consumption is influenced by specific design or operational decisions."

The bench makes that concrete on the ML web service:

1. attribution (our :mod:`repro.core.attribution`) decomposes the
   measured window correctly — it conserves energy and ranks consumers;
2. asked a *what-if* ("energy if the cache were twice as large?"), the
   best attribution-based answer — extrapolate the observed per-tag
   averages — misses badly, while the interface with the re-bound
   hit-rate ECV predicts the re-configured system accurately.
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import evaluate
from repro.apps.mlservice import MLWebService, build_service_machine, \
    build_service_stack
from repro.core.attribution import attribute
from repro.core.ecv import BernoulliECV
from repro.core.report import format_table
from repro.calibration import calibrate
from repro.workloads.traces import image_request_trace

from conftest import print_header

N_OBSERVED = 400
N_WHATIF = 400
SMALL_CACHE = 30
BIG_CACHE = 300
N_OBJECTS = 600  # catalogue small enough that cache size matters


def trace(n, rng):
    return image_request_trace(n, rng, n_objects=N_OBJECTS)


def deploy(cache_entries: int, seed: int = 11):
    machine = build_service_machine()
    service = MLWebService(machine, local_cache_entries=cache_entries,
                           cluster_cache_entries=cache_entries * 3)
    model = calibrate(machine, source="gpu0", seed=5).model
    rng = np.random.default_rng(seed)
    for request in trace(900, rng):
        service.handle(request)
    return machine, service, model, rng


def test_a8_attribution_vs_interface(run_once):
    def experiment():
        # --- observe the small-cache deployment --------------------------
        machine, service, model, rng = deploy(SMALL_CACHE)
        observed_trace = trace(N_OBSERVED, rng)
        t0 = machine.now
        for request in observed_trace:
            service.handle(request)
        t1 = machine.now
        observed = machine.ledger.energy_between(t0, t1)
        breakdown = attribute(machine.ledger, t0, t1,
                              policy="proportional")

        # Attribution's best what-if: per-request average carries over.
        attribution_whatif = observed / N_OBSERVED * N_WHATIF

        # The interface's what-if: re-bind the hit-rate ECVs for the
        # bigger cache (estimated from the workload's popularity — here
        # taken from a short shadow simulation of just the cache).
        from repro.managers.cachemgr import LRUCacheManager
        shadow_local = LRUCacheManager("shadow", BIG_CACHE)
        shadow_cluster = LRUCacheManager("shadow-cluster", BIG_CACHE * 3)
        shadow_rng = np.random.default_rng(11)
        local_hits_given_hit = 0
        cluster_hits = 0
        for request in trace(1600, shadow_rng):
            in_cluster = shadow_cluster.lookup(request.object_id)
            in_local = shadow_local.lookup(request.object_id)
            if in_cluster:
                cluster_hits += 1
                if in_local:
                    local_hits_given_hit += 1
        stack = build_service_stack(service, model)
        interface = stack.exported_interface("runtime/ml_webservice")
        new_bindings = {
            "request_hit": BernoulliECV(
                "request_hit", shadow_cluster.hit_rate),
            "local_cache_hit": BernoulliECV(
                "local_cache_hit",
                local_hits_given_hit / max(cluster_hits, 1)),
        }
        whatif_trace = trace(N_WHATIF, rng)
        interface_whatif = sum(
            evaluate(interface("E_handle", r.image_pixels, r.zero_pixels), env=new_bindings).as_joules
            for r in whatif_trace)

        # --- ground truth: actually deploy the big cache ------------------
        machine2, service2, _, rng2 = deploy(BIG_CACHE)
        t0 = machine2.now
        for request in whatif_trace:
            service2.handle(request)
        truth = machine2.ledger.energy_between(t0, machine2.now)

        return {
            "observed": observed,
            "breakdown": breakdown,
            "attribution_whatif": attribution_whatif,
            "interface_whatif": interface_whatif,
            "truth": truth,
        }

    result = run_once(experiment)
    print_header("A8 — attribution vs interfaces on a what-if")
    breakdown = result["breakdown"]
    print("attribution of the observed window (correct, but backwards-"
          "looking):")
    for tag, joules in sorted(breakdown.shares.items(),
                              key=lambda kv: -kv[1])[:5]:
        print(f"  {tag:20s} {joules:8.3f} J "
              f"({breakdown.fractions()[tag]:.0%})")
    truth = result["truth"]
    rows = [
        ["attribution extrapolation",
         f"{result['attribution_whatif']:.2f} J",
         f"{abs(result['attribution_whatif'] - truth) / truth:.1%}"],
        ["interface with re-bound ECVs",
         f"{result['interface_whatif']:.2f} J",
         f"{abs(result['interface_whatif'] - truth) / truth:.1%}"],
        ["ground truth (deployed)", f"{truth:.2f} J", "-"],
    ]
    print()
    print(format_table(
        [f"'cache {SMALL_CACHE}->{BIG_CACHE} entries' what-if",
         "prediction", "error"], rows))

    # Attribution conserves energy over the observed window...
    assert sum(breakdown.shares.values()) == \
        __import__("pytest").approx(result["observed"], rel=1e-9)
    # ...but its what-if misses what the interface captures.
    interface_error = abs(result["interface_whatif"] - truth) / truth
    attribution_error = abs(result["attribution_whatif"] - truth) / truth
    assert interface_error < 0.10
    assert attribution_error > 2 * interface_error
