"""A7 (extension) — §4.1's constant-energy contract, end to end.

"There might be situations in which additional constraints would need to
be expressed, such as constant-energy execution for crypto code, to
explicitly disallow energy side-channels — a mere upper bound is not
sufficient for this."

We verify both halves of that sentence quantitatively:

1. the early-exit MAC verifier passes an *upper-bound* contract (its
   energy is always ≤ the constant-time version's) yet leaks the secret:
   measured energy grows monotonically with the guess's matching prefix,
   enough to binary-search the secret byte by byte;
2. the *constant-energy* contract rejects it at design time, and the
   constant-time implementation that passes the contract shows no
   measurable correlation with the prefix.
"""

from __future__ import annotations


from repro.apps.crypto import (
    WORK_PER_BYTE,
    ConstantTimeInterface,
    ConstantTimeVerifier,
    EarlyExitInterface,
    EarlyExitVerifier,
)
from repro.core.contracts import BudgetContract, ConstantEnergyContract
from repro.core.report import format_table
from repro.core.units import Energy
from repro.hardware.cpu import Core, Package
from repro.hardware.machine import Machine
from repro.hardware.profiles import BIG_CORE

from conftest import print_header

MAC_BYTES = 16
SECRET = bytes((i * 37 + 11) % 256 for i in range(MAC_BYTES))


def build_core():
    machine = Machine("hsm")
    package = machine.add(Package("pkg", static_active_w=1.0,
                                  static_idle_w=0.1))
    core = machine.add(Core("cpu0", BIG_CORE, package))
    return machine, core


def activity_energy(machine, fn):
    """Dynamic compare energy only (what a fine-grained probe sees)."""
    before = sum(r.joules for r in machine.ledger.records("cpu0")
                 if r.tag.endswith("compare"))
    fn()
    after = sum(r.joules for r in machine.ledger.records("cpu0")
                if r.tag.endswith("compare"))
    return after - before


def prefix_guess(prefix: int) -> bytes:
    wrong = bytes((b + 1) % 256 for b in SECRET)
    return SECRET[:prefix] + wrong[prefix:]


def test_a7_side_channel_and_contract(run_once):
    def experiment():
        machine, core = build_core()
        early_exit = EarlyExitVerifier(core, MAC_BYTES)
        constant_time = ConstantTimeVerifier(core, MAC_BYTES)
        prefixes = list(range(0, MAC_BYTES, 2))
        leak = [activity_energy(
            machine, lambda p=p: early_exit.verify(prefix_guess(p), SECRET))
            for p in prefixes]
        flat = [activity_energy(
            machine, lambda p=p: constant_time.verify(prefix_guess(p),
                                                      SECRET))
            for p in prefixes]

        joules_per_byte = core.energy_of(WORK_PER_BYTE)
        ee_iface = EarlyExitInterface(joules_per_byte, MAC_BYTES)
        ct_iface = ConstantTimeInterface(joules_per_byte, MAC_BYTES)
        budget = BudgetContract(Energy(joules_per_byte * MAC_BYTES),
                                name="upper bound")
        constant = ConstantEnergyContract(rel_tol=1e-6)
        return {
            "prefixes": prefixes, "leak": leak, "flat": flat,
            "ee_budget_ok": budget.check(ee_iface.E_verify, [()]).ok,
            "ee_constant_ok": constant.check(ee_iface.E_verify, [()]).ok,
            "ct_constant_ok": constant.check(ct_iface.E_verify, [()]).ok,
        }

    result = run_once(experiment)
    print_header("A7 — energy side channel in MAC verification")
    rows = [[str(p), f"{l * 1e3:.3f} mJ", f"{f * 1e3:.3f} mJ"]
            for p, l, f in zip(result["prefixes"], result["leak"],
                               result["flat"])]
    print(format_table(["matching prefix", "early-exit energy",
                        "constant-time energy"], rows))
    print(f"\nupper-bound contract on leaky code: "
          f"{'PASS' if result['ee_budget_ok'] else 'FAIL'} "
          f"(insufficient, as the paper says)")
    print(f"constant-energy contract on leaky code: "
          f"{'PASS' if result['ee_constant_ok'] else 'FAIL'}")
    print(f"constant-energy contract on constant-time code: "
          f"{'PASS' if result['ct_constant_ok'] else 'FAIL'}")

    # The leak is monotone — an attacker can climb it byte by byte.
    leak = result["leak"]
    assert all(b > a for a, b in zip(leak, leak[1:]))
    # Constant-time energy is flat to measurement precision.
    assert max(result["flat"]) - min(result["flat"]) < 1e-9
    # The paper's sentence, as three booleans.
    assert result["ee_budget_ok"], "upper bound accepts the leaky code"
    assert not result["ee_constant_ok"], \
        "the constant-energy contract must reject it"
    assert result["ct_constant_ok"]
