"""F1 — Fig. 1: the ML web-service energy interface, validated.

Fig. 1 shows a service-level energy interface for a CNN web service with
a two-level request cache.  It is an illustration in the paper; here we
*run* it: the implementation serves a Zipf-popular image trace on
simulated hardware while the manager-composed interface (ECVs bound from
observed hit rates) predicts the energy.  The figure's qualitative claim
— "increasing local cache hits may be a more productive way of reducing
energy footprint than optimizing the ML model itself" — is checked
quantitatively.
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import evaluate
from repro.apps.mlservice import MLWebService, build_service_machine, \
    build_service_stack
from repro.core.report import format_table
from repro.calibration import calibrate
from repro.measurement.nvml import NVMLSim
from repro.workloads.traces import image_request_trace

from conftest import print_header

WARMUP_REQUESTS = 500
MEASURED_REQUESTS = 400


def run_service(zipf_alpha: float = 0.9, seed: int = 11) -> dict:
    machine = build_service_machine()
    service = MLWebService(machine)
    nvml = NVMLSim(machine.component("gpu0"), seed=5)
    model = calibrate(machine, source="gpu0", nvml=nvml, seed=5).model

    rng = np.random.default_rng(seed)
    for request in image_request_trace(WARMUP_REQUESTS, rng,
                                       zipf_alpha=zipf_alpha):
        service.handle(request)

    stack = build_service_stack(service, model)
    interface = stack.exported_interface("runtime/ml_webservice")

    trace = image_request_trace(MEASURED_REQUESTS, rng,
                                zipf_alpha=zipf_alpha)
    t_start = machine.now
    paths = {"local": 0, "remote": 0, "infer": 0}
    for request in trace:
        paths[service.handle(request)] += 1
    measured = machine.ledger.energy_between(t_start, machine.now)
    predicted = sum(
        evaluate(interface("E_handle", r.image_pixels, r.zero_pixels)).as_joules
        for r in trace)
    hit_rate = (paths["local"] + paths["remote"]) / MEASURED_REQUESTS
    return {
        "zipf_alpha": zipf_alpha,
        "measured_joules": measured,
        "predicted_joules": predicted,
        "error": abs(predicted - measured) / measured,
        "hit_rate": hit_rate,
        "joules_per_request": measured / MEASURED_REQUESTS,
        "paths": paths,
    }


def test_fig1_interface_accuracy(run_once):
    """The service interface predicts measured energy across workloads."""

    def experiment():
        return [run_service(alpha) for alpha in (0.6, 0.9, 1.2)]

    results = run_once(experiment)
    print_header("F1 / Fig. 1 — ML web-service interface accuracy")
    rows = [[f"{r['zipf_alpha']:.1f}", f"{r['hit_rate']:.0%}",
             f"{r['predicted_joules']:.2f} J", f"{r['measured_joules']:.2f} J",
             f"{100 * r['error']:.1f}%"] for r in results]
    print(format_table(
        ["Zipf alpha", "hit rate", "predicted", "measured", "error"], rows))
    for result in results:
        assert result["error"] < 0.10, result

    # Hotter popularity -> higher hit rate -> less energy per request.
    assert results[0]["hit_rate"] < results[-1]["hit_rate"]
    assert results[0]["joules_per_request"] > \
        results[-1]["joules_per_request"]


def test_fig1_cache_beats_model_shrinking(run_once):
    """Fig. 1's punchline: cache hits save more than shrinking the CNN.

    Compare (a) raising the local hit rate by 20 points against
    (b) making the CNN 25 % cheaper, both evaluated from the interface
    alone — no deployment, which is the whole point of energy clarity.
    """

    def experiment():
        machine = build_service_machine()
        service = MLWebService(machine)
        model = calibrate(machine, source="gpu0", seed=5).model
        rng = np.random.default_rng(11)
        for request in image_request_trace(WARMUP_REQUESTS, rng):
            service.handle(request)
        stack = build_service_stack(service, model)
        interface = stack.exported_interface("runtime/ml_webservice")
        probe = (49000, 12000)
        bindings = service.observed_bindings()
        p_hit = bindings["request_hit"].p

        baseline = evaluate(interface("E_handle", *probe)).as_joules
        # Evaluate both what-ifs by explicit ECV overrides:
        from repro.core.ecv import BernoulliECV
        improved_hit = evaluate(interface("E_handle", *probe), env={"request_hit": BernoulliECV("request_hit",
                                             min(p_hit + 0.2, 1.0))}).as_joules
        # A 25% cheaper model: scale the inference-path prediction.
        infer_energy = evaluate(interface("E_handle", *probe), env={"request_hit": False}).as_joules
        hit_energy = evaluate(interface("E_handle", *probe), env={"request_hit": True}).as_joules
        cheaper_model = ((1 - p_hit) * (hit_energy + 0.75
                                        * (infer_energy - hit_energy))
                         + p_hit * hit_energy)
        return {
            "baseline": baseline,
            "improved_cache": improved_hit,
            "cheaper_model": cheaper_model,
            "p_hit": p_hit,
        }

    result = run_once(experiment)
    print_header("F1 — cache-hits vs model-optimisation what-if")
    print(format_table(
        ["variant", "expected J/request"],
        [["baseline", f"{result['baseline']:.4f}"],
         ["+20pt cache hit rate", f"{result['improved_cache']:.4f}"],
         ["25% cheaper CNN", f"{result['cheaper_model']:.4f}"]]))
    saved_by_cache = result["baseline"] - result["improved_cache"]
    saved_by_model = result["baseline"] - result["cheaper_model"]
    assert saved_by_cache > saved_by_model > 0
