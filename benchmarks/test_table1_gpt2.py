"""T1 — Table 1: GPT-2 energy-prediction error on two GPUs.

Regenerates the paper's only quantitative result: a manually-derived
energy interface for GPT-2 autoregressive inference (energy in terms of
static power + VRAM/L2/L1/instruction counts, unit energies calibrated by
microbenchmark) predicts NVML-measured energy for generations of up to
200 tokens.

Paper (real RTX 4090 / RTX 3070 + NVML):

    GPU              Average error   Max error
    Nvidia RTX4090   0.70%           0.93%
    Nvidia RTX3070   6.06%           8.11%

We run the same pipeline against the simulated boards (see DESIGN.md for
the substitution argument).  The shape to reproduce: low single-digit
errors overall, with the 3070-class board several times worse than the
4090-class one (hidden DRAM row-activation costs + a worse power sensor).

An ablation with *oracle* unit energies (the simulator's ground truth
instead of the calibrated fit) separates calibration error from sensor
and unmodelled-physics error.
"""

from __future__ import annotations

import numpy as np

from repro.calibration import calibrate
from repro.core.report import format_table
from repro.hardware.profiles import SIM3070, SIM4090, build_gpu_workstation
from repro.llm.config import GPT2_SMALL
from repro.llm.interface import GPT2EnergyInterface
from repro.llm.runtime import GPT2Runtime
from repro.measurement.nvml import NVMLSim

from conftest import print_header

N_TRIALS = 10
MAX_TOKENS = 200
SEED = 7


def run_gpu(spec, use_oracle_units: bool = False) -> dict:
    """The full §5 pipeline on one simulated GPU."""
    machine = build_gpu_workstation(spec)
    gpu = machine.component("gpu0")
    nvml = NVMLSim(gpu, seed=SEED)
    model = calibrate(machine, source="gpu0", nvml=nvml, seed=SEED,
                      calibrator="oracle" if use_oracle_units
                      else "microbench").model
    runtime = GPT2Runtime(gpu, GPT2_SMALL)
    interface = GPT2EnergyInterface(GPT2_SMALL, model, spec)

    rng = np.random.default_rng(3)
    errors = []
    for _ in range(N_TRIALS):
        n_tokens = int(rng.integers(MAX_TOKENS // 4, MAX_TOKENS + 1))
        prompt_len = int(rng.integers(8, 65))
        gpu.idle(0.05)
        stats = runtime.generate(prompt_len, n_tokens)
        measured = nvml.measure_interval(stats.t_start, stats.t_end)
        predicted = interface.E_generate(prompt_len, n_tokens).as_joules
        errors.append(abs(predicted - measured) / measured)
    return {
        "gpu": spec.name,
        "avg_error": float(np.mean(errors)),
        "max_error": float(np.max(errors)),
        "calibration_residual": model.residual_rms,
    }


def test_table1(run_once):
    """Regenerate Table 1 (calibrated unit energies, the paper's setup)."""

    def experiment():
        return {spec.name: run_gpu(spec) for spec in (SIM4090, SIM3070)}

    results = run_once(experiment)
    print_header("T1 / Table 1 — GPT-2 energy-prediction error "
                 "(calibrated units)")
    rows = []
    paper = {"sim4090": ("RTX4090", 0.70, 0.93),
             "sim3070": ("RTX3070", 6.06, 8.11)}
    for name, result in results.items():
        label, paper_avg, paper_max = paper[name]
        rows.append([
            name, f"{100 * result['avg_error']:.2f}%",
            f"{100 * result['max_error']:.2f}%",
            f"(paper {label}: {paper_avg:.2f}% / {paper_max:.2f}%)",
        ])
    print(format_table(["GPU", "Average error", "Max error", "Paper"], rows))

    r4090, r3070 = results["sim4090"], results["sim3070"]
    # Shape assertions: who wins and by roughly what factor.
    assert r4090["avg_error"] < 0.02, "4090-class error should be ~1%"
    assert r3070["avg_error"] < 0.12, "3070-class error stays single/low-double digits"
    assert r3070["avg_error"] > 2.0 * r4090["avg_error"], \
        "the 3070-class board must be several times worse"
    assert r4090["max_error"] < 0.03
    assert r3070["max_error"] > r3070["avg_error"]


def test_table1_oracle_units_ablation(run_once):
    """Ablation: ground-truth unit energies isolate non-calibration error."""

    def experiment():
        return {spec.name: run_gpu(spec, use_oracle_units=True)
                for spec in (SIM4090, SIM3070)}

    results = run_once(experiment)
    print_header("T1 ablation — oracle unit energies "
                 "(no calibration error)")
    rows = [[name, f"{100 * r['avg_error']:.2f}%",
             f"{100 * r['max_error']:.2f}%"]
            for name, r in results.items()]
    print(format_table(["GPU", "Average error", "Max error"], rows))
    # Even with perfect units, hidden row costs and the sensor keep the
    # 3070-class board worse.
    assert results["sim3070"]["avg_error"] > results["sim4090"]["avg_error"]
    assert results["sim4090"]["avg_error"] < 0.05
