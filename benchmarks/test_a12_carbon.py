"""A12 (extension) — carbon-aware scheduling of the fuzzing campaign.

The related work the paper cites (Ecovisor, carbon-aware networking)
controls *when* flexible work runs; energy interfaces supply the missing
demand side.  We compose the M2 fuzzing campaign's energy interface
(fleet power, duration — both interface outputs) with a diurnal grid
carbon signal and ask: within the deadline, when should the campaign
start?  The answer cuts emissions double-digit percent at identical
energy and identical coverage — a decision no amount of energy-only
accounting could have made.
"""

from __future__ import annotations

from repro.apps.fuzzing import (
    CapacityPlanner,
    FuzzingCampaignModel,
    FuzzingEnergyInterface,
)
from repro.core.carbon import (
    SECONDS_PER_DAY,
    CarbonAwareScheduler,
    carbon_of,
    diurnal_grid,
)
from repro.core.report import format_table

from conftest import print_header

DEADLINE = 5 * SECONDS_PER_DAY
COVERAGE = 0.90


def test_a12_carbon_aware_campaign(run_once):
    def experiment():
        interface = FuzzingEnergyInterface(FuzzingCampaignModel())
        planner = CapacityPlanner(interface, max_machines=150)
        answer = planner.optimal_fleet(COVERAGE)
        n = answer.optimal_machines
        duration = interface.campaign.time_to_coverage(COVERAGE, n)
        fleet_power = (n * interface.machine_fuzzing_power_w
                       + interface.infra_power_w)

        grid = diurnal_grid()
        scheduler = CarbonAwareScheduler(grid, resolution_s=1800.0)
        naive_grams = scheduler.emissions(lambda t: fleet_power,
                                          duration,
                                          start_s=0.8 * SECONDS_PER_DAY)
        best = scheduler.best_start(lambda t: fleet_power, duration,
                                    deadline_s=DEADLINE)
        average_grams = carbon_of(
            answer.energy, grid.average(0.0, SECONDS_PER_DAY))
        return {
            "machines": n,
            "duration_days": duration / SECONDS_PER_DAY,
            "energy_kwh": answer.energy.as_kilowatt_hours,
            "naive_grams": naive_grams,
            "best": best,
            "average_grams": average_grams,
        }

    result = run_once(experiment)
    print_header(f"A12 — carbon-aware start for the {COVERAGE:.0%} "
                 f"fuzzing campaign")
    best = result["best"]
    rows = [
        ["start at the evening peak", f"{result['naive_grams'] / 1000:.1f} kg"],
        ["grid-average estimate", f"{result['average_grams'] / 1000:.1f} kg"],
        [f"interface-chosen start (+{best.start_seconds / 3600:.1f} h)",
         f"{best.grams / 1000:.1f} kg"],
    ]
    print(format_table(
        [f"{result['machines']} machines, "
         f"{result['duration_days']:.2f} days, "
         f"{result['energy_kwh']:.0f} kWh", "emissions"], rows))
    savings = 1.0 - best.grams / result["naive_grams"]
    print(f"\ncarbon saved vs naive start: {savings:.1%} "
          f"(same Joules, same coverage)")

    assert best.grams < result["naive_grams"]
    assert savings > 0.05
    # The campaign spans days, so the gain is bounded by diurnal
    # averaging — sanity-check it is not fabricated.
    assert savings < 0.5
