"""S5: compiled prediction against the live Monte Carlo pipeline.

The compile layer's pitch (ROADMAP §5) is that admission control and
fleet planning re-ask the *same* interface query thousands of times, so
partial evaluation should amortise: compile once, then answer each
repeat from the cached analytic form or straight-line kernel instead of
re-running trace enumeration plus the vector sampler.  This bench times
repeated distribution-mode predictions of the S2 stack's ``E_handle``
under the plain sampled backend and under a warm ``CompiledBackend``,
and asserts the three S5 claims:

* a warm compiled prediction is at least **10x** faster than a sampled
  one on the same call (in practice ~100x; 10x is the floor CI pins);
* the compiled kernel's draws are **bitwise identical** to the vector
  engine's at the pinned seed, so the speedup never changes an answer —
  which also means the compiled mean/p99 must match the *S2* baseline;
* the analytic tier's closed-form mean and quantiles for the affine
  ``E_wait`` sit inside the interval the compiler proves for the body.

Headline numbers are checked against
``benchmarks/baselines/s5_compile.json`` so CI catches silent changes
to either the kernel codegen or the closed-form algebra.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.compile import CompiledBackend, compile_call
from repro.core.ecv import ECVEnvironment
from repro.core.interface import evaluate
from repro.core.session import EvalSession
from repro.workloads.mcbench import BENCH_OPS, BENCH_SAMPLES, BENCH_SEED, \
    build_bench_interface

pytestmark = pytest.mark.fast

_BASELINE = Path(__file__).parent / "baselines" / "s5_compile.json"

#: Repeated predictions of one call — the gateway/fleet access pattern.
REPEATS = 20


def _timed_predictions(session, interface):
    """Per-call seconds and final draws for ``REPEATS`` predictions."""
    dist = None
    t0 = time.perf_counter()
    for _ in range(REPEATS):
        dist = evaluate(interface("E_handle", BENCH_OPS), session=session,
                        mode="distribution", n_samples=BENCH_SAMPLES)
    elapsed = (time.perf_counter() - t0) / REPEATS
    return elapsed, np.asarray(dist._samples)


def test_s5_compiled_speedup_and_equality(run_once):
    def experiment():
        interface = build_bench_interface()
        sampled_s, sampled_draws = _timed_predictions(
            EvalSession(seed=BENCH_SEED, engine="vector"), interface)

        backend = CompiledBackend()
        compiled_session = EvalSession(seed=BENCH_SEED, engine="vector",
                                       backend=backend)
        # One cold call pays for compilation; the repeats are warm.
        evaluate(interface("E_handle", BENCH_OPS), session=compiled_session,
                 mode="distribution", n_samples=BENCH_SAMPLES)
        compiled_s, compiled_draws = _timed_predictions(
            compiled_session, interface)
        return {
            "sampled_seconds": sampled_s,
            "compiled_seconds": compiled_s,
            "sampled_draws": sampled_draws,
            "compiled_draws": compiled_draws,
            "backend": backend,
        }

    result = run_once(experiment)
    speedup = result["sampled_seconds"] / result["compiled_seconds"]
    print(f"sampled {result['sampled_seconds'] * 1e3:.2f} ms/call, "
          f"compiled {result['compiled_seconds'] * 1e3:.4f} ms/call "
          f"-> {speedup:.0f}x")

    assert speedup >= 10.0, (
        f"warm compiled prediction only {speedup:.1f}x faster than the "
        f"sampled backend at n_samples={BENCH_SAMPLES}")
    assert np.array_equal(result["sampled_draws"],
                          result["compiled_draws"]), (
        f"compiled kernel draws diverge from the vector engine at "
        f"seed {BENCH_SEED}")

    # Every repeat after the cold call must be a cache hit on one entry.
    backend = result["backend"]
    assert backend.cache.stats["misses"] == 1
    assert backend.cache.stats["hits"] == REPEATS
    assert backend.stats["sampled"] == 0

    baseline = json.loads(_BASELINE.read_text())
    assert baseline["n_samples"] == BENCH_SAMPLES
    draws = result["compiled_draws"]
    # Tight numeric comparison (not bitwise) so the baseline survives
    # BLAS/platform differences while still pinning the codegen: these
    # are the same values the S2 baseline records, because the kernel is
    # bitwise-equal to the vector engine.
    np.testing.assert_allclose(float(np.mean(draws)),
                               baseline["mean_joules"], rtol=1e-9)
    np.testing.assert_allclose(float(np.quantile(draws, 0.99)),
                               baseline["p99_joules"], rtol=1e-9)


def test_s5_analytic_tier_within_proven_interval():
    """The affine ``E_wait`` compiles closed-form, inside proven bounds."""
    interface = build_bench_interface()
    entry = compile_call(interface("E_wait", 1.0), ECVEnvironment.EMPTY)
    assert entry.tier == "analytic"

    interval = entry.proven_interval()
    assert interval is not None and interval.bounded
    assert interval.lo <= entry.dist.mean() <= interval.hi
    quantiles = {q: float(entry.dist.quantile(q))
                 for q in (0.05, 0.5, 0.95)}
    for q, value in quantiles.items():
        assert interval.lo <= value <= interval.hi, q

    baseline = json.loads(_BASELINE.read_text())["e_wait"]
    np.testing.assert_allclose(entry.dist.mean(),
                               baseline["mean_joules"], rtol=1e-9)
    for q, value in quantiles.items():
        np.testing.assert_allclose(value, baseline["quantiles"][str(q)],
                                   rtol=1e-9)
    np.testing.assert_allclose([interval.lo, interval.hi],
                               [baseline["proven_lo_j"],
                                baseline["proven_hi_j"]], rtol=1e-9)
