"""M3 — §1's Kubernetes claim: interface-aware pod placement.

"A memory-intensive application might consume less energy on a big-memory
node than on a compute node, but Kubernetes wouldn't know ahead of time
what the application will do."  We bin-pack the same pod set twice — once
by declared requests (the Kubernetes view), once by evaluating each pod's
energy interface against candidate nodes — and run both placements to
completion on the cluster model.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.managers.cluster import (
    InterfacePackingScheduler,
    Node,
    NodeType,
    PodSpec,
    RequestScheduler,
    run_cluster,
)

from conftest import print_header

COMPUTE = NodeType("compute", cores=16, memory_gb=64, core_throughput=1.2,
                   idle_power_w=60.0, core_active_power_w=15.0)
BIGMEM = NodeType("bigmem", cores=8, memory_gb=512, core_throughput=1.0,
                  idle_power_w=80.0, core_active_power_w=18.0)


def fresh_nodes():
    return [Node("compute-1", COMPUTE), Node("compute-2", COMPUTE),
            Node("bigmem-1", BIGMEM)]


def workload():
    web = [PodSpec(f"web{i}", cpu_request=2, memory_request_gb=4,
                   cpu_work=200, working_set_gb=3) for i in range(10)]
    db = [PodSpec(f"db{i}", cpu_request=2, memory_request_gb=16,
                  cpu_work=300, working_set_gb=100, miss_penalty=3.0)
          for i in range(4)]
    return web + db


def test_m3_interface_placement_saves_energy(run_once):
    def experiment():
        request = run_cluster(RequestScheduler(), workload(), fresh_nodes())
        interface = run_cluster(InterfacePackingScheduler(), workload(),
                                fresh_nodes())
        return {"request": request, "interface": interface}

    results = run_once(experiment)
    request, interface = results["request"], results["interface"]
    print_header("M3 — request-based vs interface-based pod placement")
    rows = []
    for outcome in (request, interface):
        rows.append([outcome.scheduler,
                     f"{outcome.total_energy_joules / 1000:.1f} kJ",
                     f"{outcome.makespan_seconds:.0f} s",
                     "; ".join(f"{n}={e / 1000:.0f}kJ"
                               for n, e in outcome.per_node.items())])
    print(format_table(["scheduler", "energy", "makespan", "per node"],
                       rows))
    savings = 1.0 - (interface.total_energy_joules
                     / request.total_energy_joules)
    print(f"\ninterface placement saves {savings:.1%}")

    assert interface.total_energy_joules < request.total_energy_joules
    assert savings > 0.15, "thrash avoidance should save a clear margin"
    # Interface placement also finishes sooner (no thrashing work).
    assert interface.makespan_seconds <= request.makespan_seconds


def test_m3_requests_alone_cannot_see_it(run_once):
    """Declared requests identical, behaviour different: the request view
    places both pods the same way, the interface view separates them."""

    def experiment():
        identical_requests = [
            PodSpec("small-wss", cpu_request=2, memory_request_gb=8,
                    cpu_work=200, working_set_gb=4),
            PodSpec("huge-wss", cpu_request=2, memory_request_gb=8,
                    cpu_work=200, working_set_gb=120),
        ]
        nodes = [Node("compute-1", COMPUTE), Node("bigmem-1", BIGMEM)]
        InterfacePackingScheduler().place(identical_requests, nodes)
        placement = {pod.name: node.name for node in nodes
                     for pod in node.pods}
        return placement

    placement = run_once(experiment)
    print_header("M3 — identical requests, different working sets")
    print(format_table(["pod", "placed on"],
                       [[k, v] for k, v in placement.items()]))
    assert placement["huge-wss"] == "bigmem-1"
    assert placement["small-wss"] == "compute-1"
