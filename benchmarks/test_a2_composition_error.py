"""A2 — §6's open question: how do leaf-interface errors compose?

"An important question in composition is how the lack of accuracy in
different lower-level interfaces influences the accuracy of a higher-
level interface."  We answer it empirically for linear composition (the
common case — a service interface summing resource interfaces):

* **independent, zero-mean leaf errors** partially cancel: end-to-end
  relative error concentrates like ``eps / sqrt(n)`` for n equal-share
  leaves;
* **correlated (systematic) leaf errors** pass straight through: the
  composed error equals the leaf error regardless of depth.

The practical consequence the bench demonstrates: unbiased-but-noisy leaf
interfaces are benign; biased ones poison everything above them.
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import EnergyInterface
from repro.core.report import format_table
from repro.core.units import Energy

from conftest import print_header

LEAF_SHARE_JOULES = 1.0
EPSILON = 0.10
N_WORLDS = 400


class LeafInterface(EnergyInterface):
    """A leaf with a fixed relative error against its ground truth."""

    def __init__(self, name, relative_error):
        super().__init__(name)
        self.relative_error = relative_error

    def E_op(self):
        return Energy(LEAF_SHARE_JOULES * (1.0 + self.relative_error))


class ComposedInterface(EnergyInterface):
    """A parent summing its leaves — the canonical composition."""

    def __init__(self, leaves):
        super().__init__("composed")
        self.leaves = leaves

    def E_total(self):
        return Energy(sum(leaf.E_op().as_joules for leaf in self.leaves))


def composed_error(n_leaves: int, correlated: bool,
                   rng: np.random.Generator) -> float:
    """One random world: build leaves with eps-sized errors, compose."""
    if correlated:
        shared = float(rng.choice([-EPSILON, EPSILON]))
        errors = [shared] * n_leaves
    else:
        errors = [float(rng.choice([-EPSILON, EPSILON]))
                  for _ in range(n_leaves)]
    composed = ComposedInterface(
        [LeafInterface(f"leaf{i}", e) for i, e in enumerate(errors)])
    truth = n_leaves * LEAF_SHARE_JOULES
    predicted = composed.E_total().as_joules
    return abs(predicted - truth) / truth


def sweep(correlated: bool) -> dict[int, float]:
    rng = np.random.default_rng(13 if correlated else 31)
    results = {}
    for n_leaves in (1, 4, 16, 64):
        errors = [composed_error(n_leaves, correlated, rng)
                  for _ in range(N_WORLDS)]
        results[n_leaves] = float(np.mean(errors))
    return results


def test_a2_error_composition(run_once):
    def experiment():
        return {
            "independent": sweep(correlated=False),
            "correlated": sweep(correlated=True),
        }

    results = run_once(experiment)
    print_header("A2 — end-to-end error vs leaf count "
                 f"(leaf error = {EPSILON:.0%})")
    rows = []
    for n_leaves in (1, 4, 16, 64):
        rows.append([
            str(n_leaves),
            f"{results['independent'][n_leaves]:.3%}",
            f"{EPSILON / np.sqrt(n_leaves):.3%}",
            f"{results['correlated'][n_leaves]:.3%}",
        ])
    print(format_table(
        ["leaves", "independent errors", "eps/sqrt(n) theory",
         "correlated errors"], rows))

    independent = results["independent"]
    correlated = results["correlated"]
    # Independent errors shrink roughly like 1/sqrt(n)...
    for n_leaves in (4, 16, 64):
        theory = EPSILON / np.sqrt(n_leaves) * np.sqrt(2 / np.pi) \
            if n_leaves > 1 else EPSILON
        assert independent[n_leaves] < EPSILON * 0.75
        assert independent[n_leaves] == \
            __import__("pytest").approx(theory, rel=0.35)
    assert independent[64] < independent[4] < independent[1]
    # ...while correlated errors never shrink.
    for n_leaves in (1, 4, 16, 64):
        assert correlated[n_leaves] == \
            __import__("pytest").approx(EPSILON, rel=1e-9)


def test_a2_worst_case_bounds_compose_additively(run_once):
    """Contracts survive composition: the sum of leaf upper bounds is a
    sound upper bound for the composition, whatever the leaf errors."""

    def experiment():
        rng = np.random.default_rng(7)
        sound = 0
        trials = 200
        for _ in range(trials):
            n_leaves = int(rng.integers(1, 20))
            errors = rng.uniform(-EPSILON, EPSILON, size=n_leaves)
            leaves = [LeafInterface(f"l{i}", float(e))
                      for i, e in enumerate(errors)]
            composed = ComposedInterface(leaves)
            bound = sum(
                leaf.worst_case("E_op").as_joules * (1 + EPSILON)
                / (1 + leaf.relative_error)
                for leaf in leaves)
            if composed.E_total().as_joules <= bound + 1e-12:
                sound += 1
        return {"sound": sound, "trials": trials}

    result = run_once(experiment)
    print_header("A2 — additive worst-case bounds")
    print(f"sound in {result['sound']}/{result['trials']} random "
          f"compositions")
    assert result["sound"] == result["trials"]
