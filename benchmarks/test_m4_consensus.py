"""M4 — §1's Ethereum claim: PoW -> PoS saves ~99.95%.

The reduction is a design-level property visible by evaluating two energy
interfaces over the same service abstraction (a day of chain security /
a block), long before any deployment — energy clarity's cheapest win.
"""

from __future__ import annotations

from repro.apps.consensus import (
    PoSEnergyInterface,
    PoSNetworkSpec,
    PoWEnergyInterface,
    PoWNetworkSpec,
    merge_savings,
)
from repro.core.report import format_table

from conftest import print_header


def test_m4_merge_savings(run_once):
    def experiment():
        pow_iface = PoWEnergyInterface(PoWNetworkSpec())
        pos_iface = PoSEnergyInterface(PoSNetworkSpec())
        return {
            "pow_daily_j": pow_iface.E_secure_day().as_joules,
            "pos_daily_j": pos_iface.E_secure_day().as_joules,
            "pow_per_block_j": pow_iface.E_per_block().as_joules,
            "pos_per_block_j": pos_iface.E_per_block().as_joules,
            "savings": merge_savings(),
        }

    result = run_once(experiment)
    print_header("M4 — proof-of-work vs proof-of-stake")
    print(format_table(
        ["protocol", "energy/day", "energy/block"],
        [["PoW", f"{result['pow_daily_j'] / 3.6e9:.1f} MWh",
          f"{result['pow_per_block_j'] / 3.6e6:.1f} kWh"],
         ["PoS", f"{result['pos_daily_j'] / 3.6e9:.3f} MWh",
          f"{result['pos_per_block_j'] / 3.6e6:.4f} kWh"]]))
    print(f"\nreduction: {result['savings']:.4%}  (paper: 99.95%)")

    assert result["savings"] > 0.999
    assert result["savings"] < 0.99999
    assert abs(result["savings"] - 0.9995) < 0.001
