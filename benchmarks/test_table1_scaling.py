"""T1b (extension) — the GPT-2 interface generalises across the family.

§3's defining property: an interface "is valid for all possible inputs,
previously seen or unseen — unlike energy profiling or empirical
modeling, which relies on sampling only some of the possible inputs."
The calibration never saw a transformer; the interface is derived from
the architecture.  So the same calibrated unit energies must predict
*every* GPT-2 variant and any context length without re-profiling.

Two sweeps on the sim4090:

* model size (117M → 774M parameters): error stays low and flat;
* per-token energy vs context length: the interface's prediction tracks
  the measured KV-cache growth curve point by point.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.hardware.profiles import SIM4090, build_gpu_workstation
from repro.llm.config import GPT2_LARGE, GPT2_MEDIUM, GPT2_SMALL
from repro.llm.interface import GPT2EnergyInterface
from repro.llm.runtime import GPT2Runtime
from repro.calibration import calibrate
from repro.measurement.nvml import NVMLSim

from conftest import print_header


def test_t1b_model_size_sweep(run_once):
    def experiment():
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        nvml = NVMLSim(gpu, seed=7)
        model = calibrate(machine, source="gpu0", nvml=nvml,
                          seed=7).model  # calibrated ONCE
        results = []
        for config in (GPT2_SMALL, GPT2_MEDIUM, GPT2_LARGE):
            runtime = GPT2Runtime(gpu, config)
            interface = GPT2EnergyInterface(config, model, SIM4090)
            gpu.idle(0.05)
            stats = runtime.generate(prompt_len=16, n_tokens=60)
            measured = nvml.measure_interval(stats.t_start, stats.t_end)
            predicted = interface.E_generate(16, 60).as_joules
            results.append({
                "model": config.name,
                "params_m": config.param_count / 1e6,
                "measured": measured,
                "predicted": predicted,
                "error": abs(predicted - measured) / measured,
            })
        return results

    results = run_once(experiment)
    print_header("T1b — one calibration predicts the whole GPT-2 family")
    rows = [[r["model"], f"{r['params_m']:.0f}M",
             f"{r['predicted']:.2f} J", f"{r['measured']:.2f} J",
             f"{100 * r['error']:.2f}%"] for r in results]
    print(format_table(["model", "params", "predicted", "measured",
                        "error"], rows))

    for result in results:
        assert result["error"] < 0.03, result
    # Bigger model costs more; the interface tracks the scaling.
    measured = [r["measured"] for r in results]
    predicted = [r["predicted"] for r in results]
    assert measured == sorted(measured)
    assert predicted == sorted(predicted)
    # 774M vs 117M should scale roughly with parameter count (decode is
    # weight-streaming bound).
    ratio_measured = measured[-1] / measured[0]
    ratio_params = results[-1]["params_m"] / results[0]["params_m"]
    assert 0.4 * ratio_params < ratio_measured < 1.6 * ratio_params


def test_t1b_context_length_curve(run_once):
    def experiment():
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        nvml = NVMLSim(gpu, seed=7)
        model = calibrate(machine, source="gpu0", nvml=nvml,
                          seed=7).model
        runtime = GPT2Runtime(gpu, GPT2_SMALL)
        interface = GPT2EnergyInterface(GPT2_SMALL, model, SIM4090)

        points = []
        for kv_len in (0, 128, 384, 768):
            runtime.reset_cache()
            if kv_len:
                runtime.prefill(kv_len)
            # Measure a 32-token block at this context depth.
            gpu.idle(0.02)
            before = gpu.now
            for _ in range(32):
                runtime.decode_token()
            measured = nvml.measure_interval(before, gpu.now) / 32
            predicted = np.mean([
                interface.E_decode_token(kv_len + step).as_joules
                for step in range(32)])
            points.append({"kv_len": kv_len, "measured": measured,
                           "predicted": float(predicted)})
        return points

    points = run_once(experiment)
    print_header("T1b — per-token energy vs context length (gpt2)")
    rows = [[str(p["kv_len"]), f"{p['predicted'] * 1e3:.2f} mJ",
             f"{p['measured'] * 1e3:.2f} mJ",
             f"{100 * abs(p['predicted'] - p['measured']) / p['measured']:.2f}%"]
            for p in points]
    print(format_table(["context", "predicted/token", "measured/token",
                        "error"], rows))

    for point in points:
        error = abs(point["predicted"] - point["measured"]) \
            / point["measured"]
        assert error < 0.04, point
    # KV growth: deeper context costs measurably more per token.
    assert points[-1]["measured"] > points[0]["measured"] * 1.05
