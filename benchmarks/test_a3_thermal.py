"""A3 — §6's "no energy modularity": thermal coupling, quantified.

"Running a process on a core produces heat that in turn can affect the
energy consumption of a nearby circuit."  Our GPUs model exactly this:
static power scales with die temperature, and the die heats under load.
An energy interface that assumes the calibration-time (cool) static power
under-predicts long runs; an interface extended with a thermal term
(steady-state temperature from the datasheet's thermal resistance)
recovers most of the gap.

The bench uses a thermally-exaggerated GPU profile so the effect is
clearly visible above the sensor noise, then reports both interfaces'
errors versus run length.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.report import format_table
from repro.hardware.gpu import KernelProfile
from repro.hardware.machine import Machine
from repro.hardware.gpu import GPU
from repro.hardware.profiles import SIM3070

from conftest import print_header

#: SIM3070 with severe leakage and a fast thermal mass: a passively
#: cooled small-form-factor build of the same silicon.
HOT_SPEC = replace(SIM3070, name="sim3070-sff", leakage_coeff=0.02,
                   thermal_r=0.5, thermal_c=40.0)

#: A steady VRAM-bound kernel (1 ms of memory traffic per launch).
KERNEL = KernelProfile("load", vram_sectors=1.4e10 * 0.001,
                       instructions=1e8, l2_sectors=1e6,
                       row_miss_fraction=0.03)


def run_for(seconds: float) -> dict:
    machine = Machine("sff-box")
    gpu = machine.add(GPU("gpu0", HOT_SPEC))
    t_start = machine.now
    while machine.now - t_start < seconds:
        gpu.launch(KERNEL)
    measured = machine.ledger.energy_between(t_start, machine.now,
                                             component="gpu0")
    duration = machine.now - t_start
    launches = gpu.counters.kernel_launches

    dynamic = gpu.kernel_dynamic_energy(KERNEL) * launches
    # Interface 1: constant (cool) static power.
    naive = dynamic + HOT_SPEC.p_static_w * duration
    # Interface 2: with a thermal term.  From the datasheet thermal
    # resistance and capacity, the die heads to a steady state
    # T_ss = T_amb + P_ss * R (P_ss solved as a fixed point because
    # leakage feeds back into power), approached with time constant RC.
    # The average leakage over the run uses the transient's mean rise.
    p_dyn = dynamic / duration
    k, r, p_s0 = HOT_SPEC.leakage_coeff, HOT_SPEC.thermal_r, \
        HOT_SPEC.p_static_w
    p_ss = (p_dyn + p_s0) / (1.0 - k * r * p_s0)
    delta_ss = p_ss * r
    tau = HOT_SPEC.thermal_r * HOT_SPEC.thermal_c
    mean_rise = delta_ss * (1.0 - tau / duration
                            * (1.0 - np.exp(-duration / tau)))
    thermal_aware = (p_dyn + p_s0 * (1.0 + k * mean_rise)) * duration
    return {
        "seconds": seconds,
        "measured": measured,
        "temperature": gpu.temperature,
        "naive_error": abs(naive - measured) / measured,
        "thermal_error": abs(thermal_aware - measured) / measured,
    }


def test_a3_thermal_term(run_once):
    def experiment():
        return [run_for(seconds) for seconds in (2.0, 30.0, 120.0)]

    results = run_once(experiment)
    print_header("A3 — thermal non-modularity "
                 f"(leakage {HOT_SPEC.leakage_coeff}/degC)")
    rows = [[f"{r['seconds']:.0f} s", f"{r['temperature']:.0f} C",
             f"{100 * r['naive_error']:.2f}%",
             f"{100 * r['thermal_error']:.2f}%"] for r in results]
    print(format_table(
        ["run length", "die temp", "error (no thermal term)",
         "error (with thermal term)"], rows))

    # The cool-static interface degrades as the die heats...
    assert results[-1]["naive_error"] > results[0]["naive_error"]
    assert results[-1]["naive_error"] > 0.03
    # ...while the thermal-aware interface stays accurate on long runs.
    assert results[-1]["thermal_error"] < results[-1]["naive_error"] / 2
    assert results[-1]["thermal_error"] < 0.03


def test_a3_neighbour_heating(run_once):
    """Cross-component coupling: a busy neighbour raises *this* core's
    static energy — the exact §6 example, on the CPU package."""

    def experiment():
        from repro.hardware.cpu import Core, Package
        from repro.hardware.profiles import BIG_CORE
        from repro.hardware.thermal import LeakageModel, ThermalNode

        def build():
            machine = Machine("m")
            package = machine.add(Package(
                "pkg", static_active_w=5.0, static_idle_w=5.0,
                thermal=ThermalNode(r_thermal=3.0, c_thermal=5.0),
                leakage=LeakageModel(0.05)))
            victim = machine.add(Core("victim", BIG_CORE, package))
            neighbour = machine.add(Core("neighbour", BIG_CORE, package))
            return machine, victim, neighbour

        # Quiet neighbour: victim's package-share measured over 60 s.
        machine_a, victim_a, _ = build()
        machine_a.advance(60.0)
        quiet = machine_a.ledger.total_joules(component="pkg")

        # Busy neighbour: same victim workload (none), neighbour flat out.
        machine_b, _, neighbour_b = build()
        t = 0.0
        while t < 60.0:
            t_end, _ = neighbour_b.execute_at(t, BIG_CORE.max_capacity
                                              * 0.5)
            machine_b.advance_to(t_end)
            t = t_end
        busy = machine_b.ledger.total_joules(component="pkg")
        return {"quiet_pkg_joules": quiet, "busy_pkg_joules": busy}

    result = run_once(experiment)
    print_header("A3 — neighbour heating raises shared static energy")
    print(format_table(
        ["scenario", "package static energy (60 s)"],
        [["neighbour idle", f"{result['quiet_pkg_joules']:.1f} J"],
         ["neighbour busy", f"{result['busy_pkg_joules']:.1f} J"]]))
    assert result["busy_pkg_joules"] > 1.1 * result["quiet_pkg_joules"]
