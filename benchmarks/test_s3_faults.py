"""S3 — graceful degradation holds goodput under a seeded fault plan.

The serving claim of S1 assumed the evaluation substrate never fails.
This experiment drops that assumption: a replayable
:class:`~repro.faults.FaultPlan` injects failures into 5% of the
gateway's keyed evaluations — ECV sampling errors, interface
exceptions, NaN hardware readings, latency spikes — while the gateway's
resilience policy (retry with capped backoff, a simulated deadline, the
cache → bound → reject degradation ladder) absorbs them.  Three claims:

* **goodput holds**: ≥ 90% of offered requests are served despite the
  5% per-site injection rate (faults compound across sites, so the raw
  evaluation failure rate is well above 5%);
* **nothing leaks**: every fault either retries clean, degrades to a
  typed fallback or becomes a typed shed decision — ``serve`` never
  raises;
* **replay is engine-independent**: the same seed and the same plan
  produce *identical per-request outcomes* (decision, evaluation
  status, fault codes) under the serial, vectorized and multi-process
  engines, because injection happens at the top-level keyed-evaluation
  boundary that all three engines cross identically.
"""

from __future__ import annotations

import pytest

from repro.core.policy import DeadlinePolicy, Policy, RetryPolicy
from repro.faults import FaultPlan
from repro.serving import (
    EnergyAwareGateway,
    EnergyBudget,
    GatewayConfig,
    KVStoreAdapter,
    QuantileBudgetPolicy,
    zip_arrivals,
)
from repro.sim.rng import RngFactory
from repro.workloads import kv_request_trace, poisson_arrivals

from conftest import print_header

pytestmark = pytest.mark.fast

SEED = 42
RATE = 120.0              # requests / second
HORIZON = 5.0             # seconds of traffic
FAULT_RATE = 0.05         # per-site injection probability
BUDGET_J, REFILL_W = 0.5, 0.25
ENGINES = ("serial", "vector", "parallel")


def _workload():
    factory = RngFactory(SEED)
    times = poisson_arrivals(RATE, HORIZON, factory)
    requests = kv_request_trace(len(times), factory.stream("trace"),
                                put_fraction=0.8)
    return zip_arrivals(times, requests)


def _run(engine: str):
    adapter = KVStoreAdapter(value_bytes=64 * 1024)
    budget = EnergyBudget("node", capacity_joules=BUDGET_J,
                          refill_watts=REFILL_W)
    policy = Policy(mc_engine=engine,
                    retry=RetryPolicy(max_attempts=3),
                    deadline=DeadlinePolicy(timeout_s=0.5))
    gateway = EnergyAwareGateway(
        adapter, budget, QuantileBudgetPolicy(),
        config=GatewayConfig(policy=policy))
    gateway.inject_faults(FaultPlan.uniform(FAULT_RATE, entropy=SEED))
    report = gateway.serve(_workload(), horizon=HORIZON)
    outcomes = [(r.request_id, r.decision, r.eval_status,
                 tuple(r.eval_faults))
                for r in gateway.metrics.records]
    return report, outcomes


def _experiment():
    reports, outcomes = {}, {}
    for engine in ENGINES:
        reports[engine], outcomes[engine] = _run(engine)
    base = reports["vector"]
    return {
        "offered": base.offered,
        "goodput": base.goodput,
        "eval_degraded": base.eval_degraded,
        "eval_rejected": base.eval_rejected,
        "faults_injected": int(base.fault_stats["total_injected"]),
        "serial_matches": outcomes["serial"] == outcomes["vector"],
        "parallel_matches": outcomes["parallel"] == outcomes["vector"],
        "_reports": reports,
    }


def test_degradation_holds_goodput(run_once):
    result = run_once(
        _experiment,
        seed=SEED, fault_rate=FAULT_RATE, rate_rps=RATE,
        horizon_s=HORIZON)

    print_header("S3: serving under a 5% seeded fault plan")
    print(f"offered {result['offered']} requests at {RATE:.0f}/s; "
          f"{result['faults_injected']} faults injected")
    for engine in ENGINES:
        report = result["_reports"][engine]
        print(f"  {engine:<8} goodput {report.goodput:6.1%}  "
              f"degraded {report.eval_degraded:3d}  "
              f"rejected {report.eval_rejected:3d}")

    # Faults actually flowed (otherwise the experiment proves nothing).
    assert result["faults_injected"] > 0, "the fault plan never fired"

    # Goodput holds on every engine despite the injections.
    for engine in ENGINES:
        goodput = result["_reports"][engine].goodput
        assert goodput >= 0.9, (
            f"{engine}: goodput {goodput:.1%} under the 5% fault plan — "
            f"degradation failed to hold the 90% line")

    # Same seed + same plan => identical per-request outcomes everywhere.
    assert result["serial_matches"], (
        "serial and vector engines disagree on per-request outcomes "
        "under an identical fault plan — the replay contract is broken")
    assert result["parallel_matches"], (
        "parallel and vector engines disagree on per-request outcomes "
        "under an identical fault plan — the replay contract is broken")
