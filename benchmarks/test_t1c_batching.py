"""T1c (extension) — the batching curve: LLM serving's biggest knob.

§1 motivates energy clarity with ML's energy footprint; for LLM serving
the dominant configuration decision is the batch size.  The batched
GPT-2 interface predicts the energy-per-token curve — steep amortisation
of the weight stream, then a flatten toward the compute-bound regime —
and the benchmark validates it against the simulated GPU across the
sweep.  This is the ClusterFuzz story for serving: the configuration
question answered from interfaces instead of load tests.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.hardware.profiles import SIM4090, build_gpu_workstation
from repro.llm.batching import BatchedGPT2Interface, BatchedGPT2Runtime
from repro.llm.config import GPT2_SMALL
from repro.calibration import calibrate
from repro.measurement.nvml import NVMLSim

from conftest import print_header

BATCHES = (1, 2, 4, 8, 16, 32, 64)
KV_LEN = 256
MIN_WINDOW_SECONDS = 0.08  # span many sensor update periods


def test_t1c_batching_curve(run_once):
    def experiment():
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        nvml = NVMLSim(gpu, seed=7)
        model = calibrate(machine, source="gpu0", nvml=nvml,
                          seed=7).model
        runtime = BatchedGPT2Runtime(gpu, GPT2_SMALL)
        interface = BatchedGPT2Interface(GPT2_SMALL, model, SIM4090)

        points = []
        for batch in BATCHES:
            gpu.idle(0.02)
            t0 = gpu.now
            steps = 0
            tokens = 0
            while gpu.now - t0 < MIN_WINDOW_SECONDS or steps < 4:
                _, _, step_tokens = runtime.decode_steps(
                    batch, KV_LEN + steps, 1)
                tokens += step_tokens
                steps += 1
            measured = nvml.measure_interval(t0, gpu.now) / tokens
            predicted = sum(
                interface.E_per_token(batch, KV_LEN + step).as_joules
                for step in range(steps)) / steps
            points.append({
                "batch": batch,
                "measured": measured,
                "predicted": predicted,
                "error": abs(predicted - measured) / measured,
                "throughput": interface.tokens_per_second(batch, KV_LEN),
            })
        knee = interface.crossover_batch(KV_LEN)
        return {"points": points, "knee": knee}

    result = run_once(experiment)
    print_header("T1c — energy per token vs batch size (gpt2, sim4090)")
    rows = [[str(p["batch"]), f"{p['predicted'] * 1e3:.2f} mJ",
             f"{p['measured'] * 1e3:.2f} mJ",
             f"{100 * p['error']:.1f}%",
             f"{p['throughput']:.0f} tok/s"]
            for p in result["points"]]
    print(format_table(["batch", "predicted/token", "measured/token",
                        "error", "throughput"], rows))
    print(f"\ninterface-recommended serving batch (knee): "
          f"{result['knee']}")

    points = result["points"]
    for point in points:
        assert point["error"] < 0.06, point
    measured_curve = [p["measured"] for p in points]
    assert measured_curve == sorted(measured_curve, reverse=True)
    # Batching is roughly an order of magnitude at this scale.
    assert measured_curve[0] > 8 * measured_curve[-1]
    assert 8 <= result["knee"] <= 256
