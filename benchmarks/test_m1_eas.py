"""M1 — §1's Linux-EAS motivating claim, measured.

"Real-time video transcoding can exhibit a bi-modal behavior ... [EAS]
uses core utilization as a proxy ... this is inaccurate for many
applications."  We run four schedulers over the same bimodal transcoder
mix on a big.LITTLE machine:

* ``eas`` — utilisation-EWMA prediction (the kernel's proxy);
* ``eas-peak`` — EWMA clamped to the observed peak (how operators rescue
  QoS today);
* ``interface`` — the tasks' energy/utilisation interfaces predict each
  quantum;
* ``oracle`` — perfect knowledge (upper bound).

Expected shape: plain EAS misses a large fraction of deadlines (its
energy number is meaningless at that QoS); at equal QoS the interface
scheduler beats peak-EAS by a clear margin and matches the oracle.  On
steady workloads all schedulers tie — the interface only wins where
there is phase structure to expose.
"""

from __future__ import annotations

from repro.apps.transcode import bimodal_transcoder, steady_task
from repro.core.report import format_table
from repro.hardware.profiles import build_big_little
from repro.managers.base import SchedulerSim
from repro.managers.eas import EASScheduler, PeakEASScheduler
from repro.managers.interface_scheduler import (
    InterfaceScheduler,
    OracleScheduler,
)

from conftest import print_header

CORE_NAMES = ("little0", "little1", "little2", "little3",
              "big0", "big1", "big2", "big3")
N_QUANTA = 240


def fresh_sim():
    machine = build_big_little()
    cores = [machine.component(name) for name in CORE_NAMES]
    return SchedulerSim(machine, cores, quantum_seconds=0.05)


def transcoder_mix():
    return ([bimodal_transcoder(f"tc{i}", burst_util=780, trough_util=40,
                                burst_quanta=1, trough_quanta=5,
                                phase_offset=i) for i in range(4)]
            + [steady_task("bg", 100)])


def steady_mix():
    return [steady_task(f"s{i}", 120 + 40 * i) for i in range(4)]


def run_matrix(tasks_factory):
    schedulers = [EASScheduler(), PeakEASScheduler(), InterfaceScheduler(),
                  OracleScheduler()]
    results = {}
    for scheduler in schedulers:
        result = fresh_sim().run(scheduler, tasks_factory(), N_QUANTA)
        results[scheduler.name] = {
            "energy": result.energy_joules,
            "miss_ratio": result.miss_ratio,
            "energy_per_work": result.energy_per_work,
        }
    return results


def test_m1_bimodal_transcoding(run_once):
    results = run_once(lambda: run_matrix(transcoder_mix))
    print_header("M1 — schedulers on bimodal transcoding (big.LITTLE)")
    rows = [[name, f"{r['energy']:.2f} J", f"{r['miss_ratio']:.1%}",
             f"{1000 * r['energy_per_work']:.2f} mJ/cap-s"]
            for name, r in results.items()]
    print(format_table(["scheduler", "energy", "late work", "energy/work"],
                       rows))

    eas, peak = results["eas"], results["eas-peak"]
    interface, oracle = results["interface"], results["oracle"]
    # Plain EAS trades deadlines for energy — unusable for real-time.
    assert eas["miss_ratio"] > 0.05
    # At (near) equal QoS, interfaces beat the peak-clamped proxy...
    assert interface["miss_ratio"] <= peak["miss_ratio"] + 0.02
    savings = 1.0 - interface["energy"] / peak["energy"]
    assert savings > 0.05, f"interface should save >5%, got {savings:.1%}"
    # ...and match perfect knowledge.
    assert abs(interface["energy"] - oracle["energy"]) \
        < 0.01 * oracle["energy"]


def test_m1_steady_control(run_once):
    results = run_once(lambda: run_matrix(steady_mix))
    print_header("M1 control — steady workload (no phase structure)")
    rows = [[name, f"{r['energy']:.2f} J", f"{r['miss_ratio']:.1%}"]
            for name, r in results.items()]
    print(format_table(["scheduler", "energy", "late work"], rows))
    energies = [r["energy"] for r in results.values()]
    assert max(energies) - min(energies) < 0.02 * min(energies), \
        "steady loads must show parity: the EWMA is already perfect there"
