"""A1 — §2's non-intuitive claim: a busy core can be energy-optimal.

"Scheduling a task to a core that is already highly utilized may actually
be energy-optimal, due to lower marginal energy cost."  The mechanism is
shared package power: an already-active package has paid its static
power, so adding a task there costs only dynamic energy, while waking an
idle package costs its static power for the task's whole duration.

We measure both placements on the simulated machine *and* predict both
with an interface; the interface correctly identifies the non-obvious
winner — which is exactly what §2 says energy clarity is for.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.hardware.profiles import build_big_little
from repro.managers.base import SchedulerSim
from repro.managers.interface_scheduler import OracleScheduler
from repro.apps.transcode import steady_task

from conftest import print_header

QUANTA = 100
QUANTUM = 0.05


def run_placement(colocate: bool) -> float:
    """Energy of running a background task plus a new task, placed either
    on the busy package (colocate) or the idle one."""
    machine = build_big_little()
    existing_core = machine.component("big0")
    new_core = machine.component("big1") if colocate \
        else machine.component("little0")
    # Power-gate whichever package is unused so idle-package wake cost is
    # visible (deep package idle).
    if colocate:
        machine.component("pkg-little").set_powered(False)

    sim = SchedulerSim(machine, [existing_core, new_core],
                       quantum_seconds=QUANTUM)
    tasks = [steady_task("existing", 600.0), steady_task("new", 180.0)]
    result = sim.run(OracleScheduler(), tasks, QUANTA)
    return result.energy_joules


def test_a1_colocation_wins(run_once):
    def experiment():
        baseline_machine = build_big_little()
        baseline_machine.component("pkg-little").set_powered(False)
        sim = SchedulerSim(baseline_machine,
                           [baseline_machine.component("big0")],
                           quantum_seconds=QUANTUM)
        baseline = sim.run(OracleScheduler(),
                           [steady_task("existing", 600.0)],
                           QUANTA).energy_joules
        colocated = run_placement(colocate=True)
        spread = run_placement(colocate=False)
        return {
            "baseline": baseline,
            "colocated": colocated,
            "spread": spread,
            "marginal_colocated": colocated - baseline,
            "marginal_spread": spread - baseline,
        }

    result = run_once(experiment)
    print_header("A1 — marginal energy of task placement")
    print(format_table(
        ["placement", "total energy", "marginal energy of new task"],
        [["existing task only", f"{result['baseline']:.2f} J", "-"],
         ["new task on busy big package",
          f"{result['colocated']:.2f} J",
          f"{result['marginal_colocated']:.2f} J"],
         ["new task wakes LITTLE package",
          f"{result['spread']:.2f} J",
          f"{result['marginal_spread']:.2f} J"]]))

    # The counter-intuitive result: the busy package is cheaper even
    # though the LITTLE *core* is more efficient in isolation, because
    # waking the second package costs its static power throughout.
    assert result["marginal_colocated"] < result["marginal_spread"]
    ratio = result["marginal_spread"] / result["marginal_colocated"]
    print(f"\nwaking the idle package costs {ratio:.2f}x more at the margin")
    assert ratio > 1.1
