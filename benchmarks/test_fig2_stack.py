"""F2 — Fig. 2: layered composition and machine retargeting.

Fig. 2's layered view promises two advantages (§3):

1. **Machine retargeting** — moving the application to a different
   machine only replaces the bottom (hardware) layer's interfaces;
   everything above, including the workload-derived ECV bindings, carries
   over — and the retargeted end-to-end interface is as accurate on the
   new machine as the original was on the old one.
2. **Granularity tailoring** — the same system exposes interfaces at
   service, OS and hardware level; predictions made at different layers
   are mutually consistent.

We validate both with the Fig. 1 service: deploy on a SIM4090 node,
compose the stack and check accuracy; then redeploy the *same software*
on a SIM3070 node, replace only the hardware layer (new calibration) and
check accuracy again without re-observing the workload.
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import evaluate
from repro.apps.mlservice import MLWebService, build_service_machine, \
    build_service_stack
from repro.core.report import format_table
from repro.hardware.profiles import SIM3070, SIM4090
from repro.calibration import calibrate
from repro.workloads.traces import image_request_trace

from conftest import print_header


def deploy_and_measure(gpu_spec, bindings_from=None, seed=11) -> dict:
    """Deploy the service on a machine; predict with the composed stack.

    ``bindings_from`` carries another deployment's observed ECV bindings —
    the retargeting scenario where the workload is known but the new
    machine has never served it.
    """
    machine = build_service_machine(gpu_spec)
    service = MLWebService(machine)
    model = calibrate(machine, source="gpu0", seed=5).model
    rng = np.random.default_rng(seed)

    if bindings_from is None:
        for request in image_request_trace(500, rng):
            service.handle(request)
        bindings = service.observed_bindings()
    else:
        # Same workload, new machine: reuse the observed bindings and
        # fast-forward the caches so hit behaviour matches the bindings.
        for request in image_request_trace(500, rng):
            service.handle(request)
        bindings = bindings_from

    stack = build_service_stack(service, model)
    interface = stack.exported_interface("runtime/ml_webservice")

    trace = image_request_trace(400, rng)
    t_start = machine.now
    for request in trace:
        service.handle(request)
    measured = machine.ledger.energy_between(t_start, machine.now)
    predicted = sum(
        evaluate(interface("E_handle", r.image_pixels, r.zero_pixels), env=bindings).as_joules
        for r in trace)
    return {
        "gpu": gpu_spec.name,
        "measured": measured,
        "predicted": predicted,
        "error": abs(predicted - measured) / measured,
        "bindings": bindings,
        "stack": stack,
    }


def test_fig2_machine_retargeting(run_once):
    """Swap the hardware layer; upper layers and bindings carry over."""

    def experiment():
        original = deploy_and_measure(SIM4090)
        retargeted = deploy_and_measure(SIM3070,
                                        bindings_from=original["bindings"])
        return {"original": original, "retargeted": retargeted}

    results = run_once(experiment)
    original, retargeted = results["original"], results["retargeted"]
    print_header("F2 / Fig. 2 — machine retargeting via layer swap")
    print(format_table(
        ["deployment", "predicted", "measured", "error"],
        [[original["gpu"], f"{original['predicted']:.2f} J",
          f"{original['measured']:.2f} J", f"{100 * original['error']:.1f}%"],
         [retargeted["gpu"] + " (retargeted)",
          f"{retargeted['predicted']:.2f} J",
          f"{retargeted['measured']:.2f} J",
          f"{100 * retargeted['error']:.1f}%"]]))
    assert original["error"] < 0.10
    assert retargeted["error"] < 0.12
    # The two machines genuinely differ — retargeting wasn't a no-op.
    assert abs(retargeted["measured"] - original["measured"]) \
        > 0.15 * original["measured"]


def test_fig2_granularity_consistency(run_once):
    """Service-level and layer-level views of the same request agree."""

    def experiment():
        machine = build_service_machine(SIM4090)
        service = MLWebService(machine)
        model = calibrate(machine, source="gpu0", seed=5).model
        rng = np.random.default_rng(11)
        for request in image_request_trace(500, rng):
            service.handle(request)
        stack = build_service_stack(service, model)
        service_iface = stack.exported_interface("runtime/ml_webservice")
        cache_iface = stack.exported_interface("os/redis_cache")
        cnn_iface = stack.exported_interface("hardware/cnn_model")

        probe = (49000, 12000)
        # Service-level, forced to the infer path.
        top = evaluate(service_iface("E_handle", *probe), env={"request_hit": False}).as_joules
        # Recomposed by hand from the lower layers.
        from repro.apps.mlservice import RESPONSE_BYTES
        resolved = service_iface
        while hasattr(resolved, "inner"):
            resolved = resolved.inner
        bottom = (cnn_iface.E_forward(*probe).as_joules
                  + cache_iface.E_store(RESPONSE_BYTES).as_joules
                  + resolved.cpu_joules_per_request
                  + resolved.node_static_power_w
                  * (resolved.cpu_seconds_per_request
                     + cnn_iface.T_forward(*probe)
                     + cache_iface.T_store(RESPONSE_BYTES)))
        return {"top": top, "bottom": bottom}

    result = run_once(experiment)
    print_header("F2 — cross-layer consistency")
    print(format_table(
        ["view", "energy (infer path)"],
        [["service-level interface", f"{result['top']:.4f} J"],
         ["hand-composed from layers", f"{result['bottom']:.4f} J"]]))
    assert result["top"] == \
        __import__("pytest").approx(result["bottom"], rel=1e-9)
