"""Tests for the scheduling framework, EAS and the interface scheduler."""

import pytest

from repro.apps.transcode import bimodal_transcoder, noisy_task, steady_task
from repro.core.errors import SchedulerError
from repro.hardware.profiles import build_big_little
from repro.managers.base import SchedulerSim, Task
from repro.managers.eas import EASScheduler, PeakEASScheduler
from repro.managers.interface_scheduler import (
    InterfaceScheduler,
    OracleScheduler,
    UtilizationInterface,
)

ALL_CORES = ("little0", "little1", "little2", "little3",
             "big0", "big1", "big2", "big3")


def fresh_sim(quantum=0.05):
    machine = build_big_little()
    cores = [machine.component(name) for name in ALL_CORES]
    return machine, SchedulerSim(machine, cores, quantum_seconds=quantum)


def transcoder_mix():
    return ([bimodal_transcoder(f"tc{i}", burst_util=780, trough_util=40,
                                burst_quanta=1, trough_quanta=5,
                                phase_offset=i) for i in range(4)]
            + [steady_task("bg", 100)])


class TestTask:
    def test_demand_from_profile(self):
        task = steady_task("s", 200.0)
        assert task.demand(0) == 200.0
        assert task.demand(99) == 200.0

    def test_negative_demand_rejected(self):
        task = Task("bad", lambda q: -1.0)
        with pytest.raises(SchedulerError):
            task.demand(0)

    def test_bimodal_profile_shape(self):
        task = bimodal_transcoder("t", burst_util=800, trough_util=50,
                                  burst_quanta=2, trough_quanta=3)
        demands = [task.demand(q) for q in range(5)]
        assert demands == [800, 800, 50, 50, 50]

    def test_phase_offset_shifts(self):
        task = bimodal_transcoder("t", burst_quanta=1, trough_quanta=1,
                                  phase_offset=1)
        assert task.demand(0) == task.utilization_profile(0)
        assert task.demand(0) != bimodal_transcoder(
            "t2", burst_quanta=1, trough_quanta=1).demand(0)

    def test_noisy_task_cached_and_nonnegative(self):
        task = noisy_task("n", 200.0, 50.0, seed=1)
        assert task.demand(3) == task.demand(3)
        assert all(task.demand(q) >= 0 for q in range(50))


class TestPredictions:
    def test_eas_converges_on_steady_load(self):
        scheduler = EASScheduler(decay=0.5, initial_utilization=0.0)
        task = steady_task("s", 300.0)
        for _ in range(20):
            scheduler.observe(task, task.demand(0))
        assert scheduler.predict(task, 21) == pytest.approx(300.0, rel=0.01)

    def test_eas_predicts_mean_of_bimodal(self):
        """The paper's claim: the EWMA smears the modes together."""
        scheduler = EASScheduler(decay=0.3)
        task = bimodal_transcoder("t", burst_util=800, trough_util=50,
                                  burst_quanta=3, trough_quanta=3)
        for quantum in range(60):
            scheduler.observe(task, task.demand(quantum))
        prediction = scheduler.predict(task, 60)
        assert 100 < prediction < 750  # neither mode, somewhere between

    def test_interface_scheduler_predicts_phases_exactly(self):
        scheduler = InterfaceScheduler()
        task = bimodal_transcoder("t", burst_util=800, trough_util=50,
                                  burst_quanta=1, trough_quanta=1)
        assert scheduler.predict(task, 0) == 800
        assert scheduler.predict(task, 1) == 50

    def test_interface_scheduler_falls_back_to_ewma(self):
        scheduler = InterfaceScheduler()
        task = Task("opaque", lambda q: 123.0)  # no interface
        scheduler.observe(task, 123.0)
        assert scheduler.predict(task, 0) == pytest.approx(123.0)

    def test_peak_scheduler_clamps_to_peak(self):
        scheduler = PeakEASScheduler()
        task = bimodal_transcoder("t", burst_util=800, trough_util=50,
                                  burst_quanta=1, trough_quanta=1)
        for quantum in range(10):
            scheduler.observe(task, task.demand(quantum))
        assert scheduler.predict(task, 10) > 700

    def test_oracle_is_exact(self):
        scheduler = OracleScheduler()
        task = bimodal_transcoder("t")
        assert scheduler.predict(task, 4) == task.demand(4)

    def test_eas_decay_validation(self):
        with pytest.raises(SchedulerError):
            EASScheduler(decay=0.0)
        with pytest.raises(SchedulerError):
            PeakEASScheduler(peak_decay=1.0)

    def test_utilization_interface_rejects_negative(self):
        iface = UtilizationInterface(lambda q: -5.0)
        with pytest.raises(SchedulerError):
            iface.utilization(0)


class TestSimulation:
    def test_delivered_work_matches_demand_when_feasible(self):
        machine, sim = fresh_sim()
        tasks = [steady_task("s", 100.0)]
        result = sim.run(OracleScheduler(), tasks, 10)
        assert result.delivered_work == pytest.approx(100.0 * 10 * 0.05)
        assert result.miss_ratio == 0.0

    def test_energy_is_positive_and_accounted(self):
        machine, sim = fresh_sim()
        result = sim.run(OracleScheduler(), [steady_task("s", 100.0)], 10)
        assert result.energy_joules > 0
        assert result.energy_joules == pytest.approx(
            machine.ledger.total_joules(domain="cpu"), rel=1e-6)

    def test_overload_creates_backlog_and_misses(self):
        machine, sim = fresh_sim()
        # 9 tasks of 1024 demand >> 4 big cores' capacity
        tasks = [steady_task(f"s{i}", 1024.0) for i in range(9)]
        result = sim.run(OracleScheduler(), tasks, 5)
        assert result.missed_work > 0
        assert result.miss_ratio > 0

    def test_placement_log(self):
        machine, sim = fresh_sim()
        result = sim.run(OracleScheduler(), [steady_task("s", 100.0)], 3,
                         log_placements=True)
        assert len(result.placements_log) == 3
        assert "s" in result.placements_log[0]

    def test_validation(self):
        machine, sim = fresh_sim()
        with pytest.raises(SchedulerError):
            sim.run(OracleScheduler(), [steady_task("s", 1.0)], 0)
        with pytest.raises(SchedulerError):
            SchedulerSim(machine, [], quantum_seconds=0.05)
        with pytest.raises(SchedulerError):
            SchedulerSim(machine, [machine.component("big0")],
                         quantum_seconds=0.0)


class TestM1Claims:
    """The paper's EAS motivating claims, as testable invariants."""

    def test_interface_beats_peak_eas_on_bimodal(self):
        _, sim1 = fresh_sim()
        peak = sim1.run(PeakEASScheduler(), transcoder_mix(), 120)
        _, sim2 = fresh_sim()
        interface = sim2.run(InterfaceScheduler(), transcoder_mix(), 120)
        assert interface.miss_ratio <= peak.miss_ratio + 0.02
        assert interface.energy_joules < peak.energy_joules

    def test_plain_eas_misses_deadlines_on_bimodal(self):
        _, sim = fresh_sim()
        result = sim.run(EASScheduler(), transcoder_mix(), 120)
        assert result.miss_ratio > 0.05

    def test_interface_matches_oracle(self):
        _, sim1 = fresh_sim()
        interface = sim1.run(InterfaceScheduler(), transcoder_mix(), 120)
        _, sim2 = fresh_sim()
        oracle = sim2.run(OracleScheduler(), transcoder_mix(), 120)
        assert interface.energy_joules == pytest.approx(
            oracle.energy_joules, rel=0.01)
        assert interface.miss_ratio == pytest.approx(oracle.miss_ratio,
                                                     abs=0.01)

    def test_parity_on_steady_workload(self):
        steady = [steady_task(f"s{i}", 120 + 40 * i) for i in range(4)]
        _, sim1 = fresh_sim()
        eas = sim1.run(EASScheduler(), steady, 100)
        _, sim2 = fresh_sim()
        interface = sim2.run(InterfaceScheduler(), steady, 100)
        assert interface.energy_joules == pytest.approx(eas.energy_joules,
                                                        rel=0.01)
