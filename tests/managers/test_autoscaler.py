"""Tests for the reactive vs interface-driven autoscaler."""


import pytest

from repro.core.errors import SchedulerError
from repro.managers.autoscaler import (
    AutoscaleSim,
    InterfaceAutoscaler,
    ReactiveAutoscaler,
    ReplicaSpec,
    diurnal_profile,
)

SPEC = ReplicaSpec(capacity_rps=100.0, power_idle_w=35.0,
                   joules_per_request=0.8, startup_energy_j=900.0,
                   startup_intervals=1)


class TestSpecs:
    def test_validation(self):
        with pytest.raises(SchedulerError):
            ReplicaSpec(capacity_rps=0.0)
        with pytest.raises(SchedulerError):
            ReplicaSpec(power_idle_w=-1.0)
        with pytest.raises(SchedulerError):
            ReactiveAutoscaler(SPEC, target_utilization=0.0)
        with pytest.raises(SchedulerError):
            InterfaceAutoscaler(SPEC, lambda i: 100.0, 900.0, headroom=0.5)

    def test_diurnal_profile_shape(self):
        profile = diurnal_profile(base_rps=100.0, peak_rps=1000.0,
                                  intervals_per_day=96)
        assert profile(0) == pytest.approx(100.0)
        assert profile(48) == pytest.approx(1000.0)
        assert profile(0) < profile(24) < profile(48)
        assert profile(96) == pytest.approx(profile(0))

    def test_diurnal_validation(self):
        with pytest.raises(SchedulerError):
            diurnal_profile(base_rps=500.0, peak_rps=100.0)


class TestDecisions:
    def test_reactive_sizes_for_observed(self):
        scaler = ReactiveAutoscaler(SPEC, target_utilization=0.7)
        assert scaler.decide(0, observed_rps=350.0, current_replicas=1) == 5
        assert scaler.decide(0, observed_rps=0.0, current_replicas=3) == 1

    def test_reactive_respects_bounds(self):
        scaler = ReactiveAutoscaler(SPEC, max_replicas=4)
        assert scaler.decide(0, observed_rps=10_000.0,
                             current_replicas=1) == 4

    def test_interface_sizes_for_forecast(self):
        scaler = InterfaceAutoscaler(SPEC, forecast=lambda i: 500.0,
                                     interval_seconds=900.0)
        decision = scaler.decide(0, observed_rps=0.0, current_replicas=1)
        # 500 rps * 1.1 headroom needs 6 replicas of 100 rps.
        assert decision == 6

    def test_interface_cost_trades_drops_against_idle(self):
        cheap_drops = InterfaceAutoscaler(SPEC, lambda i: 500.0, 900.0,
                                          drop_penalty_j=0.0)
        dear_drops = InterfaceAutoscaler(SPEC, lambda i: 500.0, 900.0,
                                         drop_penalty_j=1000.0)
        few = cheap_drops.decide(0, 0.0, 1)
        many = dear_drops.decide(0, 0.0, 1)
        assert many >= few
        assert few == 1  # free drops -> no reason to run replicas

    def test_predicted_cost_accounts_startup(self):
        scaler = InterfaceAutoscaler(SPEC, lambda i: 100.0, 900.0)
        keeping = scaler.predicted_cost(2, 100.0, current_replicas=2)
        growing = scaler.predicted_cost(2, 100.0, current_replicas=1)
        assert growing == pytest.approx(keeping + SPEC.startup_energy_j)


class TestSimulation:
    def sim(self):
        # Hourly intervals make the diurnal ramp steep enough that a
        # reactive scaler's one-interval lag visibly drops traffic.
        profile = diurnal_profile(base_rps=120.0, peak_rps=1200.0,
                                  intervals_per_day=24)
        return AutoscaleSim(SPEC, profile, interval_seconds=3600.0), profile

    def test_conservation_served_plus_dropped_is_offered(self):
        sim, profile = self.sim()
        result = sim.run(ReactiveAutoscaler(SPEC), 48, initial_replicas=2)
        offered = sum(profile(i) for i in range(48)) * 3600.0
        assert result.served_requests + result.dropped_requests == \
            pytest.approx(offered)

    def test_interface_scaler_outperforms_reactive(self):
        """The headline claim: prediction beats reaction on both axes
        that matter — drops at the ramp and energy overall."""
        sim, profile = self.sim()
        reactive = sim.run(ReactiveAutoscaler(SPEC), 48,
                           initial_replicas=2)
        interface = sim.run(
            InterfaceAutoscaler(SPEC, profile, 3600.0), 48,
            initial_replicas=2)
        assert interface.drop_ratio < reactive.drop_ratio
        assert interface.drop_ratio < 0.005
        assert interface.joules_per_request < reactive.joules_per_request

    def test_reactive_lags_the_ramp(self):
        """Reactive sizing uses the last observation, so the morning
        ramp drops traffic even though total capacity would suffice."""
        sim, _ = self.sim()
        result = sim.run(ReactiveAutoscaler(SPEC), 48, initial_replicas=2)
        assert result.drop_ratio > 0.01

    def test_flat_load_parity(self):
        """With a constant arrival rate there is nothing to predict, so
        the two scalers converge to the same steady configuration."""
        flat = lambda i: 400.0
        sim = AutoscaleSim(SPEC, flat, interval_seconds=3600.0)
        reactive = sim.run(ReactiveAutoscaler(SPEC, target_utilization=0.9),
                           48)
        interface = sim.run(InterfaceAutoscaler(SPEC, flat, 3600.0,
                                                headroom=1.1), 48)
        assert interface.energy_joules == pytest.approx(
            reactive.energy_joules, rel=0.05)

    def test_validation(self):
        sim, _ = self.sim()
        with pytest.raises(SchedulerError):
            sim.run(ReactiveAutoscaler(SPEC), 0)
        with pytest.raises(SchedulerError):
            AutoscaleSim(SPEC, lambda i: 1.0, interval_seconds=0.0)
