"""Tests for the LRU cache manager and its ECV exports."""

import numpy as np
import pytest

from repro.core.ecv import BernoulliECV
from repro.core.errors import SchedulerError
from repro.managers.cachemgr import LRUCacheManager
from repro.workloads.popularity import ZipfPopularity


class TestLRUSemantics:
    def test_miss_then_hit(self):
        cache = LRUCacheManager("c", capacity=2)
        assert cache.lookup("a") is False
        assert cache.lookup("a") is True

    def test_eviction_order_is_lru(self):
        cache = LRUCacheManager("c", capacity=2)
        cache.lookup("a")
        cache.lookup("b")
        cache.lookup("a")      # refresh a
        cache.lookup("c")      # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_capacity_respected(self):
        cache = LRUCacheManager("c", capacity=3)
        for key in range(10):
            cache.lookup(key)
        assert len(cache) == 3

    def test_capacity_validation(self):
        with pytest.raises(SchedulerError):
            LRUCacheManager("c", capacity=0)


class TestStatistics:
    def test_hit_rate(self):
        cache = LRUCacheManager("c", capacity=10)
        cache.lookup("a")          # miss
        cache.lookup("a")          # hit
        cache.lookup("a")          # hit
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)
        assert cache.observations == 3

    def test_empty_hit_rate(self):
        assert LRUCacheManager("c", 10).hit_rate == 0.0

    def test_reset_statistics_keeps_contents(self):
        cache = LRUCacheManager("c", capacity=10)
        cache.lookup("a")
        cache.reset_statistics()
        assert cache.observations == 0
        assert "a" in cache


class TestECVBindings:
    def test_no_binding_before_min_observations(self):
        cache = LRUCacheManager("c", 10, min_observations=5)
        cache.lookup("a")
        assert cache.known_bindings() == {}

    def test_binding_reflects_observed_rate(self):
        cache = LRUCacheManager("c", 10, ecv_name="local_cache_hit",
                                min_observations=4)
        for _ in range(4):
            cache.lookup("a")
        bindings = cache.known_bindings()
        ecv = bindings["local_cache_hit"]
        assert isinstance(ecv, BernoulliECV)
        assert ecv.p == pytest.approx(0.75)

    def test_export_interface_applies_binding(self):
        from repro.core.interface import EnergyInterface
        from repro.core.stack import Resource
        from repro.core.units import Energy

        class CacheIface(EnergyInterface):
            def __init__(self):
                super().__init__("cache")
                self.declare_ecv(BernoulliECV("local_cache_hit", 0.5))

            def E_lookup(self):
                return Energy(1.0 if self.ecv("local_cache_hit") else 10.0)

        manager = LRUCacheManager("systemd", 10, min_observations=2)
        manager.register(Resource("cache", CacheIface()))
        for _ in range(10):
            manager.lookup("hot")  # 9 hits, 1 miss -> p = 0.9
        exported = manager.export_interface("cache")
        expected = exported.expected("E_lookup").as_joules
        assert expected == pytest.approx(0.9 * 1.0 + 0.1 * 10.0)


class TestAgainstZipfAnalytics:
    def test_lru_hit_rate_bounded_by_ideal_cache(self):
        """The analytic ideal-cache rate upper-bounds simulated LRU, and
        LRU gets reasonably close (it keeps most of the hot head)."""
        popularity = ZipfPopularity(n_objects=500, alpha=1.0)
        cache = LRUCacheManager("c", capacity=50)
        rng = np.random.default_rng(0)
        for key in popularity.sample(rng, 3000):
            cache.lookup(int(key))
        cache.reset_statistics()
        for key in popularity.sample(rng, 5000):
            cache.lookup(int(key))
        analytic_upper_bound = popularity.expected_hit_rate(50)
        assert cache.hit_rate <= analytic_upper_bound + 0.02
        assert cache.hit_rate > 0.7 * analytic_upper_bound
