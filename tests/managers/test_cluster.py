"""Tests for the Kubernetes-like cluster scheduler (§1's claim M3)."""

import pytest

from repro.core.errors import SchedulerError
from repro.managers.cluster import (
    InterfacePackingScheduler,
    Node,
    NodeType,
    PodEnergyInterface,
    PodSpec,
    RequestScheduler,
    run_cluster,
)

COMPUTE = NodeType("compute", cores=16, memory_gb=64,
                   core_throughput=1.2, idle_power_w=60.0)
BIGMEM = NodeType("bigmem", cores=8, memory_gb=512,
                  core_throughput=1.0, idle_power_w=80.0)


def fresh_nodes():
    return [Node("c1", COMPUTE), Node("c2", COMPUTE), Node("m1", BIGMEM)]


def workload():
    web = [PodSpec(f"web{i}", cpu_request=2, memory_request_gb=4,
                   cpu_work=200, working_set_gb=3) for i in range(10)]
    db = [PodSpec(f"db{i}", cpu_request=2, memory_request_gb=16,
                  cpu_work=300, working_set_gb=100) for i in range(4)]
    return web + db


class TestPodEnergyInterface:
    def test_fitting_pod_cheaper_than_thrashing(self):
        """The paper's claim: memory-intensive app cheaper on big-memory."""
        pod = PodSpec("db", 2, 16, cpu_work=300, working_set_gb=100)
        iface = PodEnergyInterface(pod)
        on_compute = iface.E_run(COMPUTE).as_joules   # 100 GB > 64 GB
        on_bigmem = iface.E_run(BIGMEM).as_joules
        assert on_compute > on_bigmem

    def test_residency_affects_fit(self):
        pod = PodSpec("db", 2, 16, cpu_work=300, working_set_gb=100)
        iface = PodEnergyInterface(pod)
        empty = iface.E_run(BIGMEM, resident_gb=0.0).as_joules
        crowded = iface.E_run(BIGMEM, resident_gb=450.0).as_joules
        assert crowded > empty

    def test_duration_scales_with_work(self):
        small = PodEnergyInterface(PodSpec("a", 1, 1, 100, 1))
        large = PodEnergyInterface(PodSpec("b", 1, 1, 300, 1))
        assert large.E_duration(COMPUTE) == pytest.approx(
            3 * small.E_duration(COMPUTE))

    def test_miss_penalty_inflates_work(self):
        pod = PodSpec("p", 1, 1, cpu_work=100, working_set_gb=100,
                      miss_penalty=4.0)
        assert pod.effective_work(False) == 400.0
        assert pod.effective_work(True) == 100.0


class TestSchedulers:
    def test_request_scheduler_respects_declared_requests(self):
        nodes = fresh_nodes()
        RequestScheduler().place(workload(), nodes)
        for node in nodes:
            assert sum(p.cpu_request for p in node.pods) <= \
                node.node_type.cores
            assert sum(p.memory_request_gb for p in node.pods) <= \
                node.node_type.memory_gb

    def test_interface_scheduler_sends_dbs_to_bigmem(self):
        nodes = fresh_nodes()
        InterfacePackingScheduler().place(workload(), nodes)
        bigmem = next(node for node in nodes if node.name == "m1")
        db_on_bigmem = [p for p in bigmem.pods if p.name.startswith("db")]
        assert len(db_on_bigmem) >= 3

    def test_interface_placement_beats_request_placement(self):
        request_outcome = run_cluster(RequestScheduler(), workload(),
                                      fresh_nodes())
        interface_outcome = run_cluster(InterfacePackingScheduler(),
                                        workload(), fresh_nodes())
        assert interface_outcome.total_energy_joules < \
            request_outcome.total_energy_joules

    def test_unplaceable_pod_rejected(self):
        giant = PodSpec("giant", cpu_request=100, memory_request_gb=1,
                        cpu_work=1, working_set_gb=1)
        with pytest.raises(SchedulerError):
            RequestScheduler().place([giant], fresh_nodes())
        with pytest.raises(SchedulerError):
            InterfacePackingScheduler().place([giant], fresh_nodes())


class TestRunCluster:
    def test_outcome_accounts_all_nodes(self):
        outcome = run_cluster(RequestScheduler(), workload(), fresh_nodes())
        assert set(outcome.per_node) == {"c1", "c2", "m1"}
        assert outcome.total_energy_joules == pytest.approx(
            sum(outcome.per_node.values()))

    def test_idle_nodes_still_draw_power(self):
        nodes = fresh_nodes()
        tiny = [PodSpec("one", 1, 1, cpu_work=10, working_set_gb=1)]
        outcome = run_cluster(RequestScheduler(), tiny, nodes)
        # All three nodes appear, including the two idle ones.
        assert all(energy > 0 for energy in outcome.per_node.values())

    def test_placement_cleared_between_runs(self):
        nodes = fresh_nodes()
        run_cluster(RequestScheduler(), workload(), nodes)
        run_cluster(RequestScheduler(), workload(), nodes)
        assert sum(len(node.pods) for node in nodes) == len(workload())

    def test_node_type_validation(self):
        with pytest.raises(SchedulerError):
            NodeType("bad", cores=0, memory_gb=1)
