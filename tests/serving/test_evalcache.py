"""Tests for the interface-evaluation cache and ECV fingerprints."""

import pytest

from repro.core.ecv import (
    BernoulliECV,
    CategoricalECV,
    ContinuousECV,
    FixedECV,
    UniformIntECV,
)
from repro.core.errors import ServingError
from repro.core.interface import EnergyInterface
from repro.core.units import Energy
from repro.serving.evalcache import (
    DEFAULT_P_QUANTUM,
    EvalCache,
    ecv_fingerprint,
    env_fingerprint,
)


class CountingInterface(EnergyInterface):
    """A branching interface that counts how often it actually runs."""

    def __init__(self):
        super().__init__("counting")
        self.declare_ecv(BernoulliECV("hit", p=0.5))
        self.calls = 0

    def E_op(self, size: int) -> Energy:
        self.calls += 1
        if self.ecv("hit"):
            return Energy(0.1 * size)
        return Energy(1.0 * size)


class TestFingerprints:
    def test_bernoulli_quantised(self):
        close = (ecv_fingerprint(BernoulliECV("h", p=0.912)),
                 ecv_fingerprint(BernoulliECV("h", p=0.913)))
        assert close[0] == close[1]
        far = ecv_fingerprint(BernoulliECV("h", p=0.5))
        assert far != close[0]

    def test_kinds_are_distinguished(self):
        prints = {
            ecv_fingerprint(BernoulliECV("x", p=0.5)),
            ecv_fingerprint(FixedECV("x", 0.5)),
            ecv_fingerprint(CategoricalECV("x", {0.5: 1.0})),
            ecv_fingerprint(UniformIntECV("x", 0, 1)),
            ecv_fingerprint(ContinuousECV("x", 0.0, 1.0)),
        }
        assert len(prints) == 5

    def test_env_fingerprint_order_independent(self):
        a = env_fingerprint({"x": 1, "y": BernoulliECV("y", p=0.25)})
        b = env_fingerprint({"y": BernoulliECV("y", p=0.25), "x": 1})
        assert a == b

    def test_empty_env(self):
        assert env_fingerprint(None) == ()
        assert env_fingerprint({}) == ()


class TestEvalCache:
    def test_hit_returns_same_value_without_reevaluating(self):
        iface = CountingInterface()
        cache = EvalCache()
        first = cache.evaluate(iface, "E_op", (10,), "expected")
        runs_after_first = iface.calls
        second = cache.evaluate(iface, "E_op", (10,), "expected")
        assert second.as_joules == first.as_joules
        assert iface.calls == runs_after_first
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_mode_is_part_of_the_key(self):
        iface = CountingInterface()
        cache = EvalCache()
        expected = cache.evaluate(iface, "E_op", (10,), "expected")
        worst = cache.evaluate(iface, "E_op", (10,), "worst")
        assert worst.as_joules > expected.as_joules
        assert cache.misses == 2

    def test_env_change_invalidates(self):
        iface = CountingInterface()
        cache = EvalCache()
        low = cache.evaluate(iface, "E_op", (10,), "expected",
                             env={"hit": BernoulliECV("hit", p=0.0)})
        high = cache.evaluate(iface, "E_op", (10,), "expected",
                              env={"hit": BernoulliECV("hit", p=1.0)})
        assert low.as_joules == pytest.approx(10.0)
        assert high.as_joules == pytest.approx(1.0)
        assert cache.misses == 2

    def test_quantised_drift_stays_cached(self):
        iface = CountingInterface()
        cache = EvalCache()
        cache.evaluate(iface, "E_op", (10,), "expected",
                       env={"hit": BernoulliECV("hit", p=0.9120)})
        cache.evaluate(iface, "E_op", (10,), "expected",
                       env={"hit": BernoulliECV("hit", p=0.9121)})
        assert cache.hits == 1

    def test_precomputed_fingerprint_wins(self):
        iface = CountingInterface()
        cache = EvalCache()
        cache.evaluate(iface, "E_op", (10,), "expected",
                       env={"hit": BernoulliECV("hit", p=0.2)},
                       fingerprint=("shared",))
        # different env, same fingerprint: the caller vouches for equality
        cache.evaluate(iface, "E_op", (10,), "expected",
                       env={"hit": BernoulliECV("hit", p=0.21)},
                       fingerprint=("shared",))
        assert cache.hits == 1

    def test_lru_eviction(self):
        iface = CountingInterface()
        cache = EvalCache(max_entries=2)
        for size in (1, 2, 3):
            cache.evaluate(iface, "E_op", (size,), "expected")
        assert cache.evictions == 1
        assert len(cache) == 2
        # size=1 was evicted; re-asking re-evaluates
        cache.evaluate(iface, "E_op", (1,), "expected")
        assert cache.misses == 4

    def test_unhashable_args_evaluate_uncached(self):
        class SumInterface(EnergyInterface):
            def E_sum(self, values):
                return Energy(float(sum(values)))

        iface = SumInterface("sums")
        cache = EvalCache()
        value = cache.evaluate(iface, "E_sum", ([1, 2, 3],), "expected")
        again = cache.evaluate(iface, "E_sum", ([1, 2, 3],), "expected")
        assert value.as_joules == again.as_joules == 6.0
        assert cache.hits == 0 and cache.misses == 2
        assert len(cache) == 0

    def test_invalidate_keeps_stats(self):
        iface = CountingInterface()
        cache = EvalCache()
        cache.evaluate(iface, "E_op", (10,), "expected")
        cache.invalidate()
        assert len(cache) == 0
        assert cache.misses == 1
        cache.evaluate(iface, "E_op", (10,), "expected")
        assert cache.misses == 2

    def test_stats_dict(self):
        stats = EvalCache().stats()
        assert stats["lookups"] == 0
        assert stats["hit_rate"] == 0.0

    def test_bad_capacity(self):
        with pytest.raises(ServingError):
            EvalCache(max_entries=0)

    def test_default_quantum(self):
        assert EvalCache().p_quantum == DEFAULT_P_QUANTUM
