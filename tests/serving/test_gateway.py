"""Tests for the gateway lifecycle: queueing, shedding, settlement."""

import pytest

from repro.core.errors import ServingError
from repro.core.interface import EnergyInterface
from repro.core.units import Energy
from repro.serving import (
    AdmitAllPolicy,
    EnergyAwareGateway,
    EnergyBudget,
    GatewayConfig,
    HardBudgetPolicy,
    KVStoreAdapter,
    ServingMetrics,
    attribution_report,
    format_report,
    zip_arrivals,
)
from repro.serving.adapters import ServiceAdapter
from repro.sim.rng import RngFactory
from repro.workloads import kv_request_trace, poisson_arrivals


class _Ledger:
    """Minimal stand-in for the hardware ledger: one running total."""

    def __init__(self):
        self.joules = 0.0

    def total_joules(self):
        return self.joules


class _FakeMachine:
    """A clock plus ledger; idling burns ``static_w``."""

    def __init__(self, static_w=0.0):
        self.now = 0.0
        self.ledger = _Ledger()
        self.static_w = static_w

    def advance_to(self, t):
        if t > self.now:
            self.ledger.joules += (t - self.now) * self.static_w
            self.now = t


class _ConstInterface(EnergyInterface):
    def __init__(self, joules):
        super().__init__("const")
        self.joules = joules

    def E_op(self):
        return Energy(self.joules)


class FakeAdapter(ServiceAdapter):
    """Deterministic service: every request takes ``service_s`` seconds
    and burns exactly ``joules_per_op`` (so predictions are perfect)."""

    def __init__(self, joules_per_op=1.0, service_s=0.01, static_w=0.0,
                 degraded_joules=None):
        super().__init__("fake", _FakeMachine(static_w),
                         _ConstInterface(joules_per_op))
        self.joules_per_op = joules_per_op
        self.service_s = service_s
        self.degraded_joules = degraded_joules

    def cost_call(self, request):
        return "E_op", ()

    def _run(self, request):
        self.machine.now += self.service_s
        self.machine.ledger.joules += self.joules_per_op

    def degrade(self, request):
        if self.degraded_joules is None:
            return None
        return ("degraded", request)


class _TwoTierInterface(EnergyInterface):
    def __init__(self, full, cheap):
        super().__init__("two-tier")
        self.full = full
        self.cheap = cheap

    def E_op(self):
        return Energy(self.full)

    def E_cheap(self):
        return Energy(self.cheap)


class DegradableAdapter(FakeAdapter):
    """Charges less for degraded variants."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.interface = _TwoTierInterface(self.joules_per_op,
                                           self.degraded_joules)

    def cost_call(self, request):
        if isinstance(request, tuple) and request[0] == "degraded":
            return "E_cheap", ()
        return "E_op", ()

    def _run(self, request):
        self.machine.now += self.service_s
        if isinstance(request, tuple) and request[0] == "degraded":
            self.machine.ledger.joules += self.degraded_joules
        else:
            self.machine.ledger.joules += self.joules_per_op


def arrivals(n, spacing=0.1):
    return [(spacing * (i + 1), f"req{i}") for i in range(n)]


class TestGatewayBasics:
    def test_admits_everything_under_a_loose_budget(self):
        adapter = FakeAdapter(joules_per_op=1.0)
        budget = EnergyBudget("b", capacity_joules=100.0)
        gateway = EnergyAwareGateway(adapter, budget, HardBudgetPolicy())
        report = gateway.serve(arrivals(5))
        assert report.offered == 5
        assert report.admitted == 5
        assert report.rejected == 0
        assert report.ledger_joules == pytest.approx(5.0)
        assert report.predicted_joules == pytest.approx(5.0)
        assert report.mean_prediction_error == pytest.approx(0.0)

    def test_hard_budget_sheds_excess(self):
        adapter = FakeAdapter(joules_per_op=1.0)
        budget = EnergyBudget("b", capacity_joules=3.0)
        gateway = EnergyAwareGateway(adapter, budget,
                                     HardBudgetPolicy(defer_horizon_s=0.0))
        report = gateway.serve(arrivals(10))
        assert report.admitted == 3
        assert report.rejected == 7
        assert report.ledger_joules == pytest.approx(3.0)
        assert report.within_budget

    def test_measured_settles_against_budget(self):
        # the app burns 2x its prediction; settlement must track reality
        adapter = FakeAdapter(joules_per_op=1.0)
        adapter.interface.joules = 0.5  # predict half the true cost
        budget = EnergyBudget("b", capacity_joules=3.0)
        gateway = EnergyAwareGateway(adapter, budget,
                                     HardBudgetPolicy(defer_horizon_s=0.0))
        report = gateway.serve(arrivals(10))
        # worst-case predicts 0.5 J/op, but each op drains a measured 1 J
        assert report.admitted < 10
        assert report.ledger_joules == pytest.approx(float(report.admitted))

    def test_static_power_is_charged(self):
        adapter = FakeAdapter(joules_per_op=0.0, static_w=2.0)
        budget = EnergyBudget("b", capacity_joules=100.0)
        gateway = EnergyAwareGateway(adapter, budget, AdmitAllPolicy())
        report = gateway.serve(arrivals(3, spacing=0.5), horizon=2.0)
        # 2 W for 2 s of wall clock (plus the service time tail)
        assert report.ledger_joules == pytest.approx(
            2.0 * (2.0 + 3 * adapter.service_s), rel=0.1)

    def test_horizon_extends_the_window(self):
        adapter = FakeAdapter()
        budget = EnergyBudget("b", capacity_joules=10.0, refill_watts=1.0)
        gateway = EnergyAwareGateway(adapter, budget, AdmitAllPolicy())
        report = gateway.serve(arrivals(2), horizon=5.0)
        assert report.horizon_s == pytest.approx(5.0)
        assert report.allowance_joules == pytest.approx(15.0)

    def test_queue_overflow_sheds(self):
        # all arrivals land at once; the queue holds only 2
        adapter = FakeAdapter(service_s=1.0)
        budget = EnergyBudget("b", capacity_joules=100.0)
        gateway = EnergyAwareGateway(
            adapter, budget, AdmitAllPolicy(),
            config=GatewayConfig(max_queue=2))
        report = gateway.serve([(0.0, f"req{i}") for i in range(6)])
        assert report.shed_queue_full > 0
        assert report.offered == 6
        assert (report.admitted + report.rejected
                + report.shed_queue_full) == 6

    def test_degrade_path(self):
        adapter = DegradableAdapter(joules_per_op=5.0, degraded_joules=0.5)
        budget = EnergyBudget("b", capacity_joules=2.0)
        gateway = EnergyAwareGateway(adapter, budget, HardBudgetPolicy())
        report = gateway.serve(arrivals(3))
        assert report.degraded > 0
        assert report.within_budget

    def test_defer_then_admit(self):
        # 1 J/op against a bucket refilling at 10 W: each op must wait
        # ~0.1 s for tokens, then runs
        adapter = FakeAdapter(joules_per_op=1.0, service_s=0.001)
        budget = EnergyBudget("b", capacity_joules=1.0, refill_watts=10.0)
        gateway = EnergyAwareGateway(adapter, budget,
                                     HardBudgetPolicy(max_deferrals=20))
        report = gateway.serve([(0.0, f"req{i}") for i in range(4)])
        assert report.admitted == 4
        assert report.deferred_total > 0

    def test_latency_percentiles_present(self):
        adapter = FakeAdapter()
        budget = EnergyBudget("b", capacity_joules=100.0)
        gateway = EnergyAwareGateway(adapter, budget, AdmitAllPolicy())
        report = gateway.serve(arrivals(5))
        assert report.p50_latency_s >= adapter.service_s
        assert report.p99_latency_s >= report.p50_latency_s

    def test_zip_arrivals_validates_lengths(self):
        with pytest.raises(ServingError):
            zip_arrivals([0.0, 1.0], ["only-one"])

    def test_format_report_renders(self):
        adapter = FakeAdapter()
        budget = EnergyBudget("b", capacity_joules=100.0)
        gateway = EnergyAwareGateway(adapter, budget, AdmitAllPolicy())
        report = gateway.serve(arrivals(2))
        text = format_report(report)
        assert "offered requests" in text
        assert "ledger energy" in text


class TestMetrics:
    def test_attribution_requires_a_window(self):
        with pytest.raises(ServingError):
            attribution_report(None, ServingMetrics())

    def test_empty_run_summary(self):
        report = ServingMetrics().summary(horizon_s=1.0, ledger_joules=0.0,
                                          allowance_joules=1.0)
        assert report.offered == 0
        assert report.p50_latency_s is None
        assert report.mean_prediction_error is None
        assert report.within_budget

    def test_zero_allowance_utilisation(self):
        report = ServingMetrics().summary(horizon_s=1.0, ledger_joules=1.0,
                                          allowance_joules=0.0)
        assert report.budget_utilisation == float("inf")
        assert not report.within_budget


class TestKVStoreIntegration:
    """A short end-to-end run on the real KV store app."""

    def test_gateway_holds_budget_on_real_hardware(self):
        adapter = KVStoreAdapter(value_bytes=256 * 1024)
        budget = EnergyBudget("node", capacity_joules=0.2,
                              refill_watts=0.15)
        gateway = EnergyAwareGateway(adapter, budget, HardBudgetPolicy())
        rng_factory = RngFactory(3)
        times = poisson_arrivals(200.0, 3.0, rng_factory)
        requests = kv_request_trace(len(times), rng_factory.stream("trace"),
                                    put_fraction=0.8)
        report = gateway.serve(zip_arrivals(times, requests), horizon=3.0)
        assert report.within_budget
        assert report.admitted > 0
        assert report.cache_stats["hit_rate"] > 0.5
        # per-request attribution over the run's machine window works
        attribution = attribution_report(adapter.machine.ledger,
                                         gateway.metrics)
        assert attribution.total_joules == pytest.approx(
            report.ledger_joules, rel=1e-6)
