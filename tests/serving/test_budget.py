"""Tests for energy budgets: specs, token buckets, hierarchies."""

import math

import pytest

from repro.core.errors import BudgetError
from repro.core.interface import EnergyInterface
from repro.core.stack import Layer, Resource, ResourceManager, SystemStack
from repro.serving.budget import (
    BudgetManager,
    BudgetSpec,
    EnergyBudget,
    parse_budget_spec,
)


class TestSpecParsing:
    def test_full_spec(self):
        spec = parse_budget_spec("500J+40W")
        assert spec.capacity_joules == 500.0
        assert spec.refill_watts == 40.0

    def test_capacity_only(self):
        assert parse_budget_spec("500J") == BudgetSpec(500.0, 0.0)

    def test_rate_only(self):
        assert parse_budget_spec("40W") == BudgetSpec(0.0, 40.0)

    def test_case_and_spaces(self):
        assert parse_budget_spec(" 2.5 j + 0.5 w ") == BudgetSpec(2.5, 0.5)

    @pytest.mark.parametrize("bad", ["", "banana", "J+W", "40", "-3J",
                                     "1J+2W+3J"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(BudgetError):
            parse_budget_spec(bad)

    def test_rejects_non_string(self):
        with pytest.raises(BudgetError):
            parse_budget_spec(500)

    def test_zero_budget_rejected(self):
        with pytest.raises(BudgetError):
            BudgetSpec(0.0, 0.0)

    def test_str_roundtrip(self):
        assert parse_budget_spec(str(BudgetSpec(3.0, 0.5))) == \
            BudgetSpec(3.0, 0.5)


class TestTokenBucket:
    def test_starts_full(self):
        budget = EnergyBudget("b", capacity_joules=10.0)
        assert budget.available(0.0) == 10.0

    def test_draw_and_refill(self):
        budget = EnergyBudget("b", capacity_joules=10.0, refill_watts=2.0)
        assert budget.try_draw(10.0, 0.0)
        assert budget.available(0.0) == 0.0
        assert budget.available(3.0) == pytest.approx(6.0)

    def test_refill_caps_at_capacity(self):
        budget = EnergyBudget("b", capacity_joules=10.0, refill_watts=2.0)
        assert budget.available(100.0) == 10.0

    def test_try_draw_refuses_overdraw(self):
        budget = EnergyBudget("b", capacity_joules=1.0)
        assert not budget.try_draw(2.0, 0.0)
        assert budget.available(0.0) == 1.0

    def test_force_draw_goes_negative(self):
        budget = EnergyBudget("b", capacity_joules=1.0, refill_watts=1.0)
        budget.force_draw(3.0, 0.0)
        assert budget.available(0.0) == pytest.approx(-2.0)
        assert not budget.can_draw(0.1, 0.0)
        # the deficit refills before admission resumes
        assert budget.can_draw(0.5, 3.0)

    def test_negative_draw_rejected(self):
        budget = EnergyBudget("b", capacity_joules=1.0)
        with pytest.raises(BudgetError):
            budget.can_draw(-1.0, 0.0)
        with pytest.raises(BudgetError):
            budget.force_draw(-1.0, 0.0)

    def test_rewind_rejected(self):
        budget = EnergyBudget("b", capacity_joules=1.0)
        budget.sync(5.0)
        with pytest.raises(BudgetError):
            budget.sync(1.0)

    def test_refund(self):
        budget = EnergyBudget("b", capacity_joules=10.0)
        budget.force_draw(6.0, 0.0)
        budget.refund(2.0, 0.0)
        assert budget.available(0.0) == pytest.approx(6.0)
        assert budget.drawn_joules == pytest.approx(4.0)

    def test_fill_fraction(self):
        budget = EnergyBudget("b", capacity_joules=10.0)
        budget.force_draw(7.5, 0.0)
        assert budget.fill_fraction(0.0) == pytest.approx(0.25)

    def test_time_until_affordable(self):
        budget = EnergyBudget("b", capacity_joules=10.0, refill_watts=2.0)
        budget.force_draw(10.0, 0.0)
        assert budget.time_until_affordable(6.0, 0.0) == pytest.approx(3.0)

    def test_time_until_affordable_never(self):
        no_refill = EnergyBudget("b", capacity_joules=10.0)
        no_refill.force_draw(10.0, 0.0)
        assert no_refill.time_until_affordable(1.0, 0.0) == math.inf
        # a request larger than the bucket can never fit
        refilling = EnergyBudget("c", capacity_joules=5.0, refill_watts=1.0)
        assert refilling.time_until_affordable(6.0, 0.0) == math.inf

    def test_cumulative_allowance(self):
        budget = EnergyBudget("b", capacity_joules=2.0, refill_watts=0.5)
        assert budget.cumulative_allowance(10.0) == pytest.approx(7.0)

    def test_initial_joules_override(self):
        budget = EnergyBudget("b", capacity_joules=10.0, refill_watts=1.0,
                              initial_joules=0.0)
        assert budget.available(0.0) == 0.0
        assert budget.cumulative_allowance(4.0) == pytest.approx(4.0)


class TestHierarchy:
    def test_chain_minimum_gates_draws(self):
        cluster = EnergyBudget("cluster", capacity_joules=100.0)
        node = EnergyBudget("node", capacity_joules=5.0, parent=cluster)
        assert node.available(0.0) == 5.0
        assert not node.can_draw(6.0, 0.0)
        assert node.try_draw(5.0, 0.0)
        # the draw hit both levels
        assert cluster.available(0.0) == pytest.approx(95.0)

    def test_exhausted_ancestor_blocks_leaf(self):
        cluster = EnergyBudget("cluster", capacity_joules=3.0)
        node = EnergyBudget("node", capacity_joules=100.0, parent=cluster)
        assert node.try_draw(3.0, 0.0)
        assert not node.can_draw(1.0, 0.0)

    def test_cycle_detected(self):
        a = EnergyBudget("a", capacity_joules=1.0)
        b = EnergyBudget("b", capacity_joules=1.0, parent=a)
        a.parent = b
        with pytest.raises(BudgetError):
            list(a.chain())

    def test_allowance_is_chain_minimum(self):
        cluster = EnergyBudget("cluster", capacity_joules=4.0,
                               refill_watts=0.1)
        node = EnergyBudget("node", capacity_joules=1.0, refill_watts=1.0,
                            parent=cluster)
        # at t=10 the node has released 11 J but the cluster only 5 J
        assert node.cumulative_allowance(10.0) == pytest.approx(5.0)


class _NullInterface(EnergyInterface):
    pass


def _two_layer_stack() -> SystemStack:
    hardware = Layer("hardware")
    hardware.add_manager(ResourceManager("driver")).register(
        Resource("dev", _NullInterface("dev")))
    runtime = Layer("runtime")
    runtime.add_manager(ResourceManager("rt")).register(
        Resource("app", _NullInterface("app")))
    return SystemStack([hardware, runtime])


class TestBudgetManager:
    def test_from_stack_chains_bottom_up(self):
        manager = BudgetManager.from_stack(
            _two_layer_stack(),
            {"hardware": "100J", "runtime": BudgetSpec(5.0, 0.0)})
        leaf = manager.leaf
        assert leaf.name == "runtime"
        assert leaf.parent is manager.budget_for("hardware")
        assert leaf.available(0.0) == 5.0

    def test_from_stack_skips_unspecified_layers(self):
        manager = BudgetManager.from_stack(_two_layer_stack(),
                                           {"runtime": "5J"})
        assert manager.leaf.parent is None

    def test_from_stack_requires_a_match(self):
        with pytest.raises(BudgetError):
            BudgetManager.from_stack(_two_layer_stack(), {"nope": "5J"})

    def test_duplicate_scope_rejected(self):
        manager = BudgetManager()
        manager.add_budget("node", BudgetSpec(1.0, 0.0))
        with pytest.raises(BudgetError):
            manager.add_budget("node", BudgetSpec(1.0, 0.0))

    def test_unknown_scope_rejected(self):
        with pytest.raises(BudgetError):
            BudgetManager().budget_for("node")

    def test_empty_manager_has_no_leaf(self):
        with pytest.raises(BudgetError):
            BudgetManager().leaf
