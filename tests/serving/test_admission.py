"""Tests for admission policies over predicted energy costs."""

import numpy as np
import pytest

from repro.core.errors import ServingError
from repro.serving.admission import (
    ADMIT,
    DEFER,
    DEGRADE,
    REJECT,
    AdmissionContext,
    AdmissionDecision,
    AdmitAllPolicy,
    HardBudgetPolicy,
    ProbabilisticPolicy,
    SLOAwarePolicy,
)
from repro.serving.budget import EnergyBudget


def ctx(budget, expected=1.0, worst=2.0, now=0.0, **kwargs):
    return AdmissionContext(now=now, budget=budget,
                            expected_joules=expected, worst_joules=worst,
                            **kwargs)


class TestDecision:
    def test_valid_actions(self):
        for action in (ADMIT, REJECT, DEFER, DEGRADE):
            assert AdmissionDecision(action).action == action

    def test_invalid_action_rejected(self):
        with pytest.raises(ServingError):
            AdmissionDecision("maybe")

    def test_has_degraded(self):
        budget = EnergyBudget("b", capacity_joules=1.0)
        assert not ctx(budget).has_degraded
        assert ctx(budget, degraded_expected_joules=0.1,
                   degraded_worst_joules=0.2).has_degraded


class TestAdmitAll:
    def test_admits_even_when_broke(self):
        budget = EnergyBudget("b", capacity_joules=1.0)
        budget.force_draw(100.0, 0.0)
        assert AdmitAllPolicy().decide(ctx(budget)).action == ADMIT


class TestHardBudget:
    def test_admits_when_worst_fits(self):
        budget = EnergyBudget("b", capacity_joules=10.0)
        decision = HardBudgetPolicy().decide(ctx(budget, worst=2.0))
        assert decision.action == ADMIT

    def test_gates_on_worst_not_expected(self):
        budget = EnergyBudget("b", capacity_joules=1.5)
        decision = HardBudgetPolicy().decide(
            ctx(budget, expected=1.0, worst=2.0))
        assert decision.action != ADMIT

    def test_prefers_degrade(self):
        budget = EnergyBudget("b", capacity_joules=1.0)
        decision = HardBudgetPolicy().decide(
            ctx(budget, worst=2.0, degraded_expected_joules=0.3,
                degraded_worst_joules=0.5))
        assert decision.action == DEGRADE

    def test_defers_when_refill_is_near(self):
        budget = EnergyBudget("b", capacity_joules=10.0, refill_watts=5.0)
        budget.force_draw(10.0, 0.0)
        decision = HardBudgetPolicy(defer_horizon_s=1.0).decide(
            ctx(budget, worst=2.0))
        assert decision.action == DEFER

    def test_rejects_past_defer_horizon(self):
        budget = EnergyBudget("b", capacity_joules=10.0, refill_watts=0.1)
        budget.force_draw(10.0, 0.0)
        decision = HardBudgetPolicy(defer_horizon_s=1.0).decide(
            ctx(budget, worst=2.0))
        assert decision.action == REJECT

    def test_rejects_after_max_deferrals(self):
        budget = EnergyBudget("b", capacity_joules=10.0, refill_watts=5.0)
        budget.force_draw(10.0, 0.0)
        decision = HardBudgetPolicy(max_deferrals=4).decide(
            ctx(budget, worst=2.0, deferrals=4))
        assert decision.action == REJECT


class TestProbabilistic:
    def test_admits_when_full(self):
        budget = EnergyBudget("b", capacity_joules=10.0)
        policy = ProbabilisticPolicy(rng=np.random.default_rng(0))
        assert policy.decide(ctx(budget, expected=1.0)).action == ADMIT

    def test_rejects_when_expected_does_not_fit(self):
        budget = EnergyBudget("b", capacity_joules=1.0)
        policy = ProbabilisticPolicy(rng=np.random.default_rng(0))
        assert policy.decide(ctx(budget, expected=2.0)).action == REJECT

    def test_sheds_more_as_bucket_drains(self):
        rng = np.random.default_rng(7)
        full = EnergyBudget("full", capacity_joules=10.0)
        low = EnergyBudget("low", capacity_joules=10.0)
        low.force_draw(9.0, 0.0)
        policy = ProbabilisticPolicy(rng=rng, gamma=2.0)
        admitted_full = sum(
            policy.decide(ctx(full, expected=0.0)).action == ADMIT
            for _ in range(200))
        admitted_low = sum(
            policy.decide(ctx(low, expected=0.0)).action == ADMIT
            for _ in range(200))
        assert admitted_full == 200          # p = 1.0**2
        assert admitted_low < 10             # p = 0.1**2 = 1%

    def test_seed_reproducible(self):
        budget = EnergyBudget("b", capacity_joules=10.0)
        budget.force_draw(5.0, 0.0)
        outcomes = []
        for _ in range(2):
            policy = ProbabilisticPolicy(rng=123)
            outcomes.append([policy.decide(ctx(budget, expected=0.0)).action
                             for _ in range(50)])
        assert outcomes[0] == outcomes[1]

    def test_bad_gamma(self):
        with pytest.raises(ServingError):
            ProbabilisticPolicy(gamma=0.0)


class TestSLOAware:
    def test_sheds_when_queue_already_blows_slo(self):
        budget = EnergyBudget("b", capacity_joules=10.0)
        decision = SLOAwarePolicy(slo_seconds=0.5).decide(
            ctx(budget, worst=1.0, wait_estimate_s=0.6))
        assert decision.action == REJECT

    def test_admits_inside_slo(self):
        budget = EnergyBudget("b", capacity_joules=10.0)
        decision = SLOAwarePolicy(slo_seconds=0.5).decide(
            ctx(budget, worst=1.0, wait_estimate_s=0.1))
        assert decision.action == ADMIT

    def test_defers_only_when_refill_lands_inside_slo(self):
        budget = EnergyBudget("b", capacity_joules=10.0, refill_watts=10.0)
        budget.force_draw(10.0, 0.0)
        # refill of 2 J takes 0.2 s; 0.2 + 0.1 wait fits a 0.5 s SLO
        decision = SLOAwarePolicy(slo_seconds=0.5).decide(
            ctx(budget, worst=2.0, wait_estimate_s=0.1))
        assert decision.action == DEFER
        # but not a 0.25 s SLO
        decision = SLOAwarePolicy(slo_seconds=0.25).decide(
            ctx(budget, worst=2.0, wait_estimate_s=0.1))
        assert decision.action == REJECT

    def test_degrades_before_deferring(self):
        budget = EnergyBudget("b", capacity_joules=1.0, refill_watts=10.0)
        budget.force_draw(1.0, 0.0)
        decision = SLOAwarePolicy(slo_seconds=5.0).decide(
            ctx(budget, worst=2.0, now=0.05,
                degraded_expected_joules=0.2, degraded_worst_joules=0.4))
        assert decision.action == DEGRADE

    def test_bad_slo(self):
        with pytest.raises(ServingError):
            SLOAwarePolicy(slo_seconds=0.0)
