"""Tests for the RAPL-like measurement channel."""

import pytest

from repro.core.errors import MeasurementError
from repro.hardware.cpu import Core, CoreTypeSpec, Package
from repro.hardware.dvfs import OPP, OPPTable
from repro.hardware.machine import Machine
from repro.hardware.memory import DRAM, DRAMSpec
from repro.measurement.meter import ledger_meter, rapl_meter
from repro.measurement.rapl import (
    COUNTER_WRAP,
    ENERGY_UNIT_J,
    RAPLEnergyCounter,
    RAPLSim,
)


def build_machine():
    machine = Machine("m")
    package = machine.add(Package("pkg", static_active_w=10.0,
                                  static_idle_w=10.0))
    spec = CoreTypeSpec("c", OPPTable([OPP(1e9, 100, 1.0, 0.1)]),
                        sleep_power_w=0.1)
    machine.add(Core("cpu0", spec, package))
    machine.add(DRAM("dram", DRAMSpec(p_refresh_w=2.0)))
    return machine


class TestRAPLRegisters:
    def test_domains(self):
        rapl = RAPLSim(build_machine())
        assert set(rapl.domains) == {"package-0", "dram", "psys"}

    def test_unknown_domain_rejected(self):
        with pytest.raises(MeasurementError):
            RAPLSim(build_machine()).read_energy_units("tpu")

    def test_package_counts_cpu_domain_only(self):
        machine = build_machine()
        rapl = RAPLSim(machine, update_period=0.001)
        machine.advance(1.0)
        # package-0: pkg 10 W + core sleep 0.1 W = 10.1 J
        joules = rapl.read_energy_units("package-0") * ENERGY_UNIT_J
        assert joules == pytest.approx(10.1, rel=0.01)

    def test_dram_domain(self):
        machine = build_machine()
        rapl = RAPLSim(machine, update_period=0.001)
        machine.advance(1.0)
        joules = rapl.read_energy_units("dram") * ENERGY_UNIT_J
        assert joules == pytest.approx(2.0, rel=0.01)

    def test_psys_covers_everything(self):
        machine = build_machine()
        rapl = RAPLSim(machine, update_period=0.001)
        machine.advance(1.0)
        joules = rapl.read_energy_units("psys") * ENERGY_UNIT_J
        assert joules == pytest.approx(12.1, rel=0.01)

    def test_update_period_quantises_time(self):
        machine = build_machine()
        rapl = RAPLSim(machine, update_period=1.0)
        machine.advance(0.7)
        assert rapl.read_energy_units("psys") == 0

    def test_sysfs_microjoules_view(self):
        machine = build_machine()
        rapl = RAPLSim(machine, update_period=0.001)
        machine.advance(1.0)
        assert rapl.read_energy_uj("dram") == pytest.approx(2e6, rel=0.01)

    def test_counter_wraps_32bit(self):
        machine = build_machine()
        rapl = RAPLSim(machine, update_period=0.001)
        # wrap span = 2^32 * 2^-16 J = 65536 J; ~12 W needs ~90 min.
        machine.advance(6000.0)  # ~73 kJ > wrap
        units = rapl.read_energy_units("psys")
        assert 0 <= units < COUNTER_WRAP
        true_joules = machine.total_joules()
        assert true_joules > rapl.wrap_joules  # it really wrapped
        true_units = int(true_joules / ENERGY_UNIT_J)
        assert units == pytest.approx(true_units % COUNTER_WRAP, abs=2e4)

    def test_negative_time_rejected(self):
        rapl = RAPLSim(build_machine())
        with pytest.raises(MeasurementError):
            rapl.read_energy_units_at("psys", -1.0)

    def test_bad_energy_unit_rejected(self):
        with pytest.raises(MeasurementError):
            RAPLSim(build_machine(), energy_unit_j=0.0)


class TestWrapSafeCounter:
    def test_accumulates_across_wrap(self):
        machine = build_machine()
        rapl = RAPLSim(machine, update_period=0.001)
        counter = RAPLEnergyCounter(rapl, "psys")
        for _ in range(10):
            machine.advance(1000.0)  # ~12 kJ per chunk, wraps mid-way
            counter.update()
        true_joules = machine.total_joules()
        assert true_joules > rapl.wrap_joules  # several wraps happened
        assert counter.joules == pytest.approx(true_joules, rel=0.01)


class TestMeters:
    def test_rapl_meter_handles_wrap(self):
        machine = build_machine()
        rapl = RAPLSim(machine, update_period=0.001)
        meter = rapl_meter(machine, rapl, "psys")
        machine.advance(5000.0)  # park near the wrap point
        t0 = machine.now
        measurement = meter.run(lambda: machine.advance(1000.0))
        truth = machine.ledger.energy_between(t0, machine.now)
        assert measurement.joules == pytest.approx(truth, rel=0.01)

    def test_ledger_meter_is_exact(self):
        machine = build_machine()
        meter = ledger_meter(machine)
        measurement = meter.run(lambda: machine.advance(2.0))
        assert measurement.joules == pytest.approx(24.2, rel=1e-6)
        assert measurement.duration == pytest.approx(2.0)
        assert measurement.average_power == pytest.approx(12.1)

    def test_component_filtered_ledger_meter(self):
        machine = build_machine()
        meter = ledger_meter(machine, component="dram")
        measurement = meter.run(lambda: machine.advance(2.0))
        assert measurement.joules == pytest.approx(4.0, rel=1e-6)

    def test_meter_rejects_clock_rewind(self):
        machine = build_machine()
        meter = ledger_meter(machine)
        measurement = meter.run(lambda: None)
        assert measurement.joules == 0.0
