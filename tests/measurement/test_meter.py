"""Tests for the metering harness and its span integration."""

import pytest

from repro.core.ecv import BernoulliECV
from repro.core.errors import MeasurementError
from repro.core.interface import EnergyInterface, evaluate
from repro.core.session import EvalSession, SpanRecorder
from repro.core.units import Energy
from repro.hardware.machine import Machine
from repro.hardware.memory import DRAM, DRAMSpec
from repro.measurement.meter import (
    attach_measurement,
    divergence_by_layer,
    ledger_meter,
)


class LeafInterface(EnergyInterface):
    def __init__(self):
        super().__init__("leaf")
        self.declare_ecv(BernoulliECV("warm", 0.5))

    def E_op(self, n):
        return Energy(float(n) * (1.0 if self.ecv("warm") else 2.0))


def recorded_span(joules_arg=2):
    recorder = SpanRecorder()
    session = EvalSession(hooks=[recorder])
    iface = LeafInterface()
    iface.span_labels = ("hardware", "leaf")
    evaluate(iface("E_op", joules_arg), session=session)
    return recorder.last_root


class TestAttachMeasurement:
    def test_sets_measurement_and_divergence(self):
        span = recorded_span(2)  # expected value: 3 J
        attach_measurement(span, 3.3, "rapl[package]")
        assert span.measured_j == 3.3
        assert span.measured_channel == "rapl[package]"
        assert span.divergence == pytest.approx(abs(3.0 - 3.3) / 3.3)

    def test_rejects_negative_energy(self):
        with pytest.raises(MeasurementError):
            attach_measurement(recorded_span(), -1.0, "bogus")


class TestMeterSpanIntegration:
    def test_run_attaches_to_span(self):
        machine = Machine("node")
        dram = machine.add(DRAM("dram0", DRAMSpec()))
        meter = ledger_meter(machine, component="dram0")
        span = recorded_span()
        measurement = meter.run(lambda: dram.access(bytes_read=4096),
                                span=span)
        assert measurement.joules > 0
        assert span.measured_j == measurement.joules
        assert span.measured_channel == meter.channel

    def test_run_without_span_unchanged(self):
        machine = Machine("node")
        dram = machine.add(DRAM("dram0", DRAMSpec()))
        meter = ledger_meter(machine, component="dram0")
        measurement = meter.run(lambda: dram.access(bytes_read=4096))
        assert measurement.joules > 0


class TestDivergenceByLayer:
    def test_groups_measured_spans_by_layer(self):
        first = recorded_span(2)
        second = recorded_span(4)
        attach_measurement(first, 3.1, "ledger")
        attach_measurement(second, 6.2, "ledger")
        totals = divergence_by_layer([first, second])
        predicted, measured = totals["hardware"]
        assert predicted == pytest.approx(3.0 + 6.0)
        assert measured == pytest.approx(9.3)

    def test_unmeasured_spans_ignored(self):
        assert divergence_by_layer([recorded_span()]) == {}
