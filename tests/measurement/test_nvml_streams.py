"""NVML sensor noise under the SeedSequence spawn-key discipline."""

import numpy as np

from repro.measurement.nvml import NVMLSensorProfile, NVMLSim
from repro.hardware.profiles import SIM3070, build_gpu_workstation


def noisy_profile(name):
    return NVMLSensorProfile(name=name, noise_std=0.01)


def samples(nvml, times):
    return [nvml.power_usage_at(t) for t in times]


def busy_gpu():
    machine = build_gpu_workstation(SIM3070)
    gpu = machine.component("gpu0")
    gpu.idle(5.0)
    return gpu


class TestStreams:
    def test_same_seed_replays_bitwise(self):
        gpu = busy_gpu()
        times = np.linspace(0.5, 4.5, 20)
        a = samples(NVMLSim(gpu, seed=9), times)
        b = samples(NVMLSim(gpu, seed=9), times)
        assert a == b

    def test_different_seeds_differ(self):
        gpu = busy_gpu()
        times = np.linspace(0.5, 4.5, 20)
        assert samples(NVMLSim(gpu, seed=9), times) \
            != samples(NVMLSim(gpu, seed=10), times)

    def test_different_sensor_profiles_draw_different_streams(self):
        """Two channels on the same board and seed must not alias —
        the channel id is folded into the spawn key."""
        gpu = busy_gpu()
        times = np.linspace(0.5, 4.5, 20)
        a = samples(NVMLSim(gpu, noisy_profile("chanA"), seed=9), times)
        b = samples(NVMLSim(gpu, noisy_profile("chanB"), seed=9), times)
        assert a != b

    def test_same_profile_name_same_stream(self):
        gpu = busy_gpu()
        times = np.linspace(0.5, 4.5, 20)
        a = samples(NVMLSim(gpu, noisy_profile("chanA"), seed=9), times)
        b = samples(NVMLSim(gpu, noisy_profile("chanA"), seed=9), times)
        assert a == b

    def test_subsystem_tags_never_collide(self):
        """The NVML tag must stay distinct from every other spawn-key
        family, or streams could alias across subsystems at equal seeds."""
        from repro.calibration.drift import _DRIFT_TAG
        from repro.measurement.nvml import _NVML_TAG

        tags = {0xC0, 0x0D, 0xFA, 0xB7, _DRIFT_TAG, _NVML_TAG}
        assert len(tags) == 6
        assert _NVML_TAG == 0x5E
