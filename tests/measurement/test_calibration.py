"""Tests for microbenchmarks and unit-energy calibration."""

import pytest

from repro.core.errors import MeasurementError
from repro.hardware.profiles import SIM3070, SIM4090, build_gpu_workstation
from repro.calibration import MicrobenchCalibrator
from repro.measurement.calibration import (
    DYNAMIC_METRICS,
    METRICS,
    CalibratedModel,
    fit_unit_energies,
    measure_launch_energy,
    measure_static_power,
)
from repro.measurement.microbench import (
    MicrobenchSample,
    compute,
    default_suite,
    pointer_chase,
    run_suite,
    scatter,
    stream,
)
from repro.measurement.nvml import NVMLSim


def build(spec=SIM4090, seed=1):
    machine = build_gpu_workstation(spec)
    gpu = machine.component("gpu0")
    return machine, gpu, NVMLSim(gpu, seed=seed)


class TestMicrobenchKernels:
    def test_pointer_chase_hit_levels(self):
        l1 = pointer_chase(32 * 1024)
        l2 = pointer_chase(4 * 1024 * 1024)
        vram = pointer_chase(512 * 1024 * 1024)
        assert l1.vram_sectors < l2.vram_sectors < vram.vram_sectors
        assert l2.l2_sectors > l1.l2_sectors

    def test_stream_is_vram_dominated(self):
        kernel = stream(256e6)
        assert kernel.vram_sectors == pytest.approx(256e6 / 32)

    def test_compute_is_instruction_dominated(self):
        kernel = compute(1e9)
        assert kernel.instructions == 1e9
        assert kernel.vram_sectors < kernel.instructions * 0.01

    def test_scatter_has_poor_locality(self):
        assert scatter(1e6).row_miss_fraction > stream().row_miss_fraction

    def test_default_suite_covers_corners(self):
        names = [k.name for k in default_suite()]
        assert any("pointer_chase" in n for n in names)
        assert any("stream" in n for n in names)
        assert any("compute" in n for n in names)
        assert any("scatter" in n for n in names)

    def test_parameter_validation(self):
        with pytest.raises(MeasurementError):
            pointer_chase(0)
        with pytest.raises(MeasurementError):
            stream(-1)
        with pytest.raises(MeasurementError):
            compute(0)
        with pytest.raises(MeasurementError):
            scatter(0)


class TestRunSuite:
    def test_samples_have_positive_energy(self):
        _, gpu, nvml = build()
        samples = run_suite(gpu, nvml, suite=[stream(64e6), compute(1e9)],
                            min_measure_seconds=0.05)
        assert len(samples) == 2
        assert all(s.measured_joules > 0 for s in samples)
        assert all(s.duration >= 0.05 for s in samples)

    def test_counters_match_launch_multiples(self):
        _, gpu, nvml = build()
        kernel = stream(64e6)
        (sample,) = run_suite(gpu, nvml, suite=[kernel],
                              min_measure_seconds=0.01, repeats=3)
        launches = sample.counters["kernel_launches"]
        assert sample.counters["vram_sectors"] == pytest.approx(
            launches * kernel.vram_sectors)

    def test_validation(self):
        _, gpu, nvml = build()
        with pytest.raises(MeasurementError):
            run_suite(gpu, nvml, repeats=0)
        with pytest.raises(MeasurementError):
            run_suite(gpu, nvml, min_measure_seconds=0.0)


class TestStaticAndLaunchMeasurement:
    def test_static_power_estimate(self):
        _, gpu, nvml = build()
        power = measure_static_power(gpu, nvml, seconds=1.0)
        assert power == pytest.approx(SIM4090.p_static_w, rel=0.02)

    def test_launch_energy_estimate(self):
        _, gpu, nvml = build()
        static = measure_static_power(gpu, nvml, seconds=1.0)
        launch = measure_launch_energy(gpu, nvml, static, seconds=0.5)
        assert launch == pytest.approx(SIM4090.e_kernel_launch, rel=0.25)

    def test_static_needs_positive_duration(self):
        _, gpu, nvml = build()
        with pytest.raises(MeasurementError):
            measure_static_power(gpu, nvml, seconds=0.0)


class TestFit:
    def test_full_calibration_recovers_unit_energies(self):
        _, gpu, nvml = build()
        model = MicrobenchCalibrator().calibrate_device(gpu, nvml)
        assert model.unit_energies["instructions"] == pytest.approx(
            SIM4090.e_instruction, rel=0.25)
        # e_vram absorbs the average hidden row cost, so compare loosely.
        assert model.unit_energies["vram_sectors"] == pytest.approx(
            SIM4090.e_vram_sector, rel=0.25)
        assert model.static_power_w == pytest.approx(SIM4090.p_static_w,
                                                     rel=0.05)
        assert model.residual_rms < 0.05

    def test_3070_has_higher_residual_than_4090(self):
        """The hidden row cost is bigger on the 3070, so the linear model
        fits it worse — the seed of Table 1's asymmetry."""
        _, gpu40, nvml40 = build(SIM4090)
        _, gpu30, nvml30 = build(SIM3070)
        model40 = MicrobenchCalibrator().calibrate_device(gpu40, nvml40)
        model30 = MicrobenchCalibrator().calibrate_device(gpu30, nvml30)
        assert model30.residual_rms > model40.residual_rms

    def test_predict_joules_linear(self):
        model = CalibratedModel("g", {m: 1.0 for m in METRICS}, 0.0, 6)
        counters = {m: 2.0 for m in METRICS}
        assert model.predict_joules(counters) == pytest.approx(12.0)

    def test_fit_needs_enough_samples(self):
        with pytest.raises(MeasurementError):
            fit_unit_energies([MicrobenchSample("k", {m: 1.0 for m in METRICS},
                                                1.0, 1.0)])

    def test_fit_rejects_nonpositive_energy(self):
        samples = [MicrobenchSample(f"k{i}", {m: float(i + 1)
                                              for m in METRICS}, 0.0, 1.0)
                   for i in range(7)]
        with pytest.raises(MeasurementError):
            fit_unit_energies(samples)

    def test_fit_rejects_unknown_pinned_metric(self):
        samples = [MicrobenchSample(f"k{i}", {m: float(i + 1)
                                              for m in METRICS}, 1.0, 1.0)
                   for i in range(7)]
        with pytest.raises(MeasurementError):
            fit_unit_energies(samples, fixed={"flux_capacitor": 1.0})

    def test_coefficients_never_negative(self):
        _, gpu, nvml = build(SIM3070, seed=3)
        model = MicrobenchCalibrator().calibrate_device(gpu, nvml)
        assert all(value >= 0.0 for value in model.unit_energies.values())

    def test_dynamic_metrics_excludes_static(self):
        assert "busy_seconds" not in DYNAMIC_METRICS
        assert "busy_seconds" in METRICS

    def test_describe_mentions_all_metrics(self):
        _, gpu, nvml = build()
        model = MicrobenchCalibrator().calibrate_device(gpu, nvml)
        text = model.describe()
        for metric in METRICS:
            assert metric in text


class TestPersistence:
    def test_json_round_trip(self):
        _, gpu, nvml = build()
        model = MicrobenchCalibrator().calibrate_device(gpu, nvml)
        restored = CalibratedModel.from_json(model.to_json())
        assert restored.gpu_name == model.gpu_name
        assert restored.unit_energies == model.unit_energies
        assert restored.residual_rms == model.residual_rms
        counters = {m: 1e6 for m in METRICS}
        assert restored.predict_joules(counters) == \
            pytest.approx(model.predict_joules(counters))

    def test_unknown_format_rejected(self):
        with pytest.raises(MeasurementError):
            CalibratedModel.from_json('{"format": "something-else"}')

    def test_missing_metric_rejected(self):
        import json
        payload = json.dumps({
            "format": "repro.calibrated-model/1",
            "gpu_name": "g",
            "unit_energies": {"instructions": 1.0},
            "residual_rms": 0.0,
            "n_samples": 1,
        })
        with pytest.raises(MeasurementError):
            CalibratedModel.from_json(payload)
