"""Tests for the NVML-like measurement channel."""

import pytest

from repro.core.errors import MeasurementError
from repro.hardware.gpu import GPU, GPUSpec, KernelProfile
from repro.hardware.machine import Machine
from repro.measurement.nvml import SENSOR_PROFILES, NVMLSensorProfile, NVMLSim


def quiet_spec():
    return GPUSpec(
        name="quiet", e_instruction=1e-12, e_l1_wavefront=1e-12,
        e_l2_sector=1e-12, e_vram_sector=1e-9, e_vram_row_activate=0.0,
        e_kernel_launch=0.0, p_static_w=100.0, thermal_r=0.1,
        thermal_c=1e6, leakage_coeff=0.0, instr_rate=1e12, l1_rate=1e12,
        l2_rate=1e11, vram_rate=1e10, kernel_launch_latency=0.0,
        row_miss_fraction_default=0.0,
    )


def build(profile=None):
    machine = Machine("m")
    gpu = machine.add(GPU("gpu", quiet_spec()))
    if profile is None:
        profile = NVMLSensorProfile("ideal", power_update_period=0.001,
                                    power_window=0.001,
                                    energy_update_period=0.001,
                                    gain=1.0, noise_std=0.0)
    return machine, gpu, NVMLSim(gpu, profile, seed=1)


class TestSensorProfile:
    def test_builtin_profiles_exist(self):
        assert "sim4090" in SENSOR_PROFILES
        assert "sim3070" in SENSOR_PROFILES

    def test_3070_sensor_worse_than_4090(self):
        p40, p30 = SENSOR_PROFILES["sim4090"], SENSOR_PROFILES["sim3070"]
        assert p30.noise_std > p40.noise_std
        assert p30.energy_update_period > p40.energy_update_period
        assert p30.gain != 1.0

    def test_validation(self):
        with pytest.raises(MeasurementError):
            NVMLSensorProfile("bad", gain=0.0)
        with pytest.raises(MeasurementError):
            NVMLSensorProfile("bad", noise_std=-0.1)


class TestEnergyCounter:
    def test_counter_tracks_static_power(self):
        machine, gpu, nvml = build()
        gpu.idle(1.0)
        # 100 W for 1 s = 100 J = 100000 mJ
        assert nvml.total_energy_consumption() == pytest.approx(100_000,
                                                                rel=0.01)

    def test_counter_is_quantised_to_millijoules(self):
        machine, gpu, nvml = build()
        gpu.idle(1.0)
        reading = nvml.total_energy_consumption()
        assert reading == round(reading)

    def test_update_period_lag(self):
        profile = NVMLSensorProfile("laggy", energy_update_period=1.0,
                                    gain=1.0, noise_std=0.0)
        machine, gpu, nvml = build(profile)
        gpu.idle(0.5)
        assert nvml.total_energy_consumption() == 0.0  # not updated yet
        gpu.idle(0.6)
        assert nvml.total_energy_consumption() == pytest.approx(100_000,
                                                                rel=0.01)

    def test_gain_scales_reading(self):
        profile = NVMLSensorProfile("biased", energy_update_period=0.001,
                                    gain=0.9, noise_std=0.0)
        machine, gpu, nvml = build(profile)
        gpu.idle(1.0)
        assert nvml.total_energy_consumption() == pytest.approx(90_000,
                                                                rel=0.01)

    def test_measure_interval(self):
        machine, gpu, nvml = build()
        gpu.idle(0.5)
        t0 = machine.now
        gpu.idle(1.0)
        measured = nvml.measure_interval(t0, machine.now)
        assert measured == pytest.approx(100.0, rel=0.01)

    def test_measure_interval_rejects_inverted(self):
        machine, gpu, nvml = build()
        with pytest.raises(MeasurementError):
            nvml.measure_interval(1.0, 0.5)

    def test_negative_time_rejected(self):
        _, _, nvml = build()
        with pytest.raises(MeasurementError):
            nvml.total_energy_consumption_at(-1.0)

    def test_noise_is_reproducible_by_seed(self):
        profile = NVMLSensorProfile("noisy", energy_update_period=0.001,
                                    noise_std=0.05)
        machine1, gpu1, _ = build(profile)
        nvml_a = NVMLSim(gpu1, profile, seed=9)
        machine2, gpu2, _ = build(profile)
        nvml_b = NVMLSim(gpu2, profile, seed=9)
        gpu1.idle(1.0)
        gpu2.idle(1.0)
        assert nvml_a.measure_interval(0.0, 1.0) == \
            nvml_b.measure_interval(0.0, 1.0)


class TestPowerReading:
    def test_power_reflects_static(self):
        machine, gpu, nvml = build()
        gpu.idle(1.0)
        # mW reading of a 100 W draw
        assert nvml.power_usage() == pytest.approx(100_000, rel=0.02)

    def test_power_rises_under_load(self):
        machine, gpu, nvml = build()
        gpu.idle(0.1)
        idle_power = nvml.power_usage()
        # VRAM-heavy kernel: 1e8 sectors -> 10 ms at 1e10/s, 0.1 J dynamic
        gpu.launch(KernelProfile("k", vram_sectors=1e8))
        loaded_power = nvml.power_usage()
        assert loaded_power > idle_power

    def test_power_at_zero_time(self):
        _, _, nvml = build()
        assert nvml.power_usage_at(0.0) == 0.0

    def test_temperature_integer_degrees(self):
        machine, gpu, nvml = build()
        assert nvml.temperature() == 25.0


class TestNvmlMeter:
    def test_meter_brackets_workload(self):
        from repro.measurement.meter import nvml_meter

        machine, gpu, nvml = build()
        meter = nvml_meter(machine, nvml)
        measurement = meter.run(lambda: gpu.idle(1.0))
        assert measurement.joules == pytest.approx(100.0, rel=0.02)
        assert measurement.duration == pytest.approx(1.0)
        assert measurement.average_power == pytest.approx(100.0, rel=0.02)
        assert "nvml" in measurement.channel
