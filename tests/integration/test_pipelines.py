"""Integration tests: the full pipelines the benchmarks rely on.

These are smaller/faster versions of the benchmark experiments, pinned
with assertions so regressions surface in the unit-test run, not only
when the benchmark harness is invoked.
"""

import numpy as np
import pytest

from repro.analysis.extract import extract_interface
from repro.analysis.symbex import ResourceModel
from repro.analysis.verify import divergence_test
from repro.apps.mlservice import (
    CNNModel,
    MLWebService,
    build_service_machine,
    build_service_stack,
)
from repro.apps.transcode import bimodal_transcoder, steady_task
from repro.core.interface import EnergyInterface
from repro.core.units import Energy
from repro.hardware.profiles import SIM3070, SIM4090, build_big_little, \
    build_gpu_workstation
from repro.llm.config import GPT2_SMALL
from repro.llm.interface import GPT2EnergyInterface
from repro.llm.runtime import GPT2Runtime
from repro.managers.base import SchedulerSim
from repro.managers.eas import PeakEASScheduler
from repro.managers.interface_scheduler import InterfaceScheduler
from repro.calibration import calibrate
from repro.measurement.meter import ledger_meter
from repro.measurement.nvml import NVMLSim
from repro.workloads.traces import image_request_trace


class TestTable1Pipeline:
    """Compact T1: calibrate, generate, predict, compare."""

    def run_one(self, spec, seed=7):
        machine = build_gpu_workstation(spec)
        gpu = machine.component("gpu0")
        nvml = NVMLSim(gpu, seed=seed)
        model = calibrate(machine, source="gpu0", nvml=nvml,
                          seed=seed).model
        runtime = GPT2Runtime(gpu, GPT2_SMALL)
        interface = GPT2EnergyInterface(GPT2_SMALL, model, spec)
        rng = np.random.default_rng(3)
        errors = []
        for _ in range(4):
            n_tokens = int(rng.integers(60, 160))
            prompt_len = int(rng.integers(8, 48))
            gpu.idle(0.05)
            stats = runtime.generate(prompt_len, n_tokens)
            measured = nvml.measure_interval(stats.t_start, stats.t_end)
            predicted = interface.E_generate(prompt_len,
                                             n_tokens).as_joules
            errors.append(abs(predicted - measured) / measured)
        return float(np.mean(errors))

    def test_shape_of_table1(self):
        error_4090 = self.run_one(SIM4090)
        error_3070 = self.run_one(SIM3070)
        assert error_4090 < 0.02
        assert error_3070 < 0.12
        assert error_3070 > 1.5 * error_4090


class TestSchedulerAgainstRAPL:
    """The scheduler's reported energy agrees with the RAPL channel."""

    def test_energy_cross_check(self):
        from repro.measurement.rapl import RAPLSim

        machine = build_big_little()
        cores = [machine.component(n) for n in
                 ("little0", "big0", "big1")]
        rapl = RAPLSim(machine, update_period=0.001)
        before = rapl.read_energy_units("package-0")
        sim = SchedulerSim(machine, cores, quantum_seconds=0.05)
        result = sim.run(InterfaceScheduler(),
                         [bimodal_transcoder("t"), steady_task("s", 100)],
                         60)
        after = rapl.read_energy_units("package-0")
        rapl_joules = (after - before) * rapl.energy_unit_j
        assert rapl_joules == pytest.approx(result.energy_joules, rel=0.01)


class TestExtractionOnRealHardwareModule:
    """Extract an interface from an implementation, then divergence-test
    the extracted interface against the same implementation running on
    the simulated machine — §4.2's full loop, automated."""

    def test_full_loop(self):
        machine = build_service_machine()
        service = MLWebService(machine)
        cnn = service.cnn
        gpu = machine.component("gpu0")

        # The implementation, written against abstract resources.
        def forward(res, image_pixels, zero_pixels):
            for _ in range(8):
                res.gpu.conv_stage(image_pixels - zero_pixels)
            for _ in range(8):
                res.gpu.relu_stage(1)
            for _ in range(16):
                res.gpu.mlp_stage(1)

        spec = gpu.spec

        class GpuStageIface(EnergyInterface):
            """Ground-truth costs of the CNN stages on this GPU."""

            def _cost(self, kernel):
                return Energy(
                    gpu.kernel_dynamic_energy(kernel)
                    + spec.p_static_w * gpu.kernel_duration(kernel))

            def E_conv_stage(self, active):
                return self._cost(cnn.conv_kernel_profile(int(active)))

            def E_relu_stage(self, _n):
                return self._cost(cnn.relu_kernel_profile())

            def E_mlp_stage(self, _n):
                return self._cost(cnn.mlp_kernel_profile())

        extracted = extract_interface(
            forward, [ResourceModel("gpu")], {"gpu": GpuStageIface()},
            name="cnn_forward")

        def run_impl(image_pixels, zero_pixels):
            for kernel in cnn.forward_kernels(image_pixels, zero_pixels):
                gpu.launch(kernel)

        report = divergence_test(
            extracted.E_call, run_impl,
            ledger_meter(machine, component="gpu0"),
            inputs=[(50176, 5000), (50176, 40000), (2048, 0)],
            threshold=0.02)
        assert report.ok, str(report)


class TestServiceWorstCaseContract:
    """The stack-exported interface's worst case really bounds every
    observed request."""

    def test_worst_case_bounds_measurements(self):
        machine = build_service_machine()
        service = MLWebService(machine)
        gpu = machine.component("gpu0")
        model = calibrate(machine, source="gpu0", seed=5).model
        rng = np.random.default_rng(11)
        for request in image_request_trace(300, rng):
            service.handle(request)
        stack = build_service_stack(service, model)
        interface = stack.exported_interface("runtime/ml_webservice")

        for request in image_request_trace(40, rng):
            bound = interface.worst_case(
                "E_handle", request.image_pixels,
                request.zero_pixels).as_joules
            t0 = machine.now
            service.handle(request)
            actual = machine.ledger.energy_between(t0, machine.now)
            assert actual <= bound * 1.10, \
                f"worst case {bound} violated by measurement {actual}"


class TestSchedulerEnergyClaimSmall:
    def test_interface_beats_peak_on_small_run(self):
        def run(scheduler):
            machine = build_big_little()
            cores = [machine.component(n) for n in
                     ("little0", "little1", "big0", "big1")]
            sim = SchedulerSim(machine, cores, quantum_seconds=0.05)
            tasks = [bimodal_transcoder("a", burst_util=780, trough_util=40,
                                        burst_quanta=1, trough_quanta=5),
                     bimodal_transcoder("b", burst_util=780, trough_util=40,
                                        burst_quanta=1, trough_quanta=5,
                                        phase_offset=3)]
            return sim.run(scheduler, tasks, 60)

        peak = run(PeakEASScheduler())
        interface = run(InterfaceScheduler())
        assert interface.energy_joules < peak.energy_joules
        assert interface.miss_ratio <= peak.miss_ratio + 0.02
