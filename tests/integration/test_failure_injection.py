"""Failure injection: the pipelines must *notice* broken inputs.

Negative controls for the reproduction: each test breaks one link of an
experiment's chain (wrong calibration, dead sensor, exhausted battery,
impossible placement) and asserts the system surfaces the failure
instead of silently producing plausible numbers.
"""

import pytest

from repro.core.errors import HardwareError, SchedulerError
from repro.hardware.battery import Battery, BatterySpec
from repro.hardware.profiles import SIM3070, SIM4090, build_gpu_workstation
from repro.llm.config import GPT2_SMALL
from repro.llm.interface import GPT2EnergyInterface
from repro.llm.runtime import GPT2Runtime
from repro.calibration import calibrate
from repro.measurement.nvml import NVMLSensorProfile, NVMLSim


class TestCrossDeviceCalibration:
    def test_wrong_devices_calibration_blows_up_the_error(self):
        """Negative control for T1: unit energies calibrated on the
        sim3070 must NOT predict the sim4090 — if they did, the T1
        errors would be meaningless."""
        machine30 = build_gpu_workstation(SIM3070)
        gpu30 = machine30.component("gpu0")
        wrong_model = calibrate(machine30, source="gpu0", seed=7).model

        machine40 = build_gpu_workstation(SIM4090)
        gpu40 = machine40.component("gpu0")
        nvml40 = NVMLSim(gpu40, seed=7)
        right_model = calibrate(machine40, source="gpu0",
                                nvml=nvml40).model

        runtime = GPT2Runtime(gpu40, GPT2_SMALL)
        gpu40.idle(0.05)
        stats = runtime.generate(16, 80)
        measured = nvml40.measure_interval(stats.t_start, stats.t_end)

        wrong = GPT2EnergyInterface(GPT2_SMALL, wrong_model, SIM4090)
        right = GPT2EnergyInterface(GPT2_SMALL, right_model, SIM4090)
        wrong_error = abs(wrong.E_generate(16, 80).as_joules
                          - measured) / measured
        right_error = abs(right.E_generate(16, 80).as_joules
                          - measured) / measured
        # The wrong coefficients partially cancel (higher per-event
        # energies vs lower static power), but the error is still an
        # order of magnitude worse than the correct calibration's.
        assert right_error < 0.05
        assert wrong_error > 0.05
        assert wrong_error > 5 * right_error


class TestDeadSensor:
    def test_never_updating_counter_reads_zero(self):
        """A sensor whose energy register never updates measures zero —
        and the measurement layer reports exactly that, rather than
        inventing a number."""
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        dead = NVMLSim(gpu, NVMLSensorProfile(
            "dead", energy_update_period=1e9, noise_std=0.0), seed=0)
        t0 = machine.now
        gpu.idle(1.0)
        assert dead.measure_interval(t0, machine.now) == 0.0

    def test_dead_sensor_fails_calibration_loudly(self):
        """Calibrating through a dead sensor must raise, not fit noise."""
        from repro.core.errors import MeasurementError
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        dead = NVMLSim(gpu, NVMLSensorProfile(
            "dead", energy_update_period=1e9, noise_std=0.0), seed=0)
        with pytest.raises(MeasurementError):
            calibrate(machine, source="gpu0", nvml=dead)


class TestBatteryExhaustion:
    def test_overdraw_raises_and_planner_would_have_said_no(self):
        from repro.apps.drone import (
            DroneSpec,
            MissionEnergyInterface,
            MissionLeg,
            MissionPlanner,
        )

        battery = Battery(BatterySpec(capacity_wh=5.0))
        interface = MissionEnergyInterface(DroneSpec())
        planner = MissionPlanner(interface, battery)
        legs = [MissionLeg(30_000.0)]
        report = planner.check(legs, payload_kg=1.0, ground_speed_mps=12.0)
        assert not report.feasible_expected  # the interface said NO-GO

        # Fly it anyway: the battery browns out mid-mission.
        hover_w = DroneSpec().hover_power(1.0)
        with pytest.raises(HardwareError, match="exhausted"):
            battery.draw(hover_w, seconds=3600.0)


class TestSchedulerMisuse:
    def test_core_refuses_overlapping_tasks(self):
        from repro.hardware.profiles import build_big_little

        machine = build_big_little()
        core = machine.component("big0")
        core.execute_at(0.0, 512.0)
        with pytest.raises(HardwareError, match="busy"):
            core.execute_at(0.1, 10.0)

    def test_gated_package_refuses_work(self):
        from repro.hardware.profiles import build_big_little

        machine = build_big_little()
        machine.component("pkg-big").set_powered(False)
        with pytest.raises(HardwareError, match="power-gated"):
            machine.component("big0").execute_at(0.0, 1.0)

    def test_empty_core_list_rejected(self):
        from repro.hardware.profiles import build_big_little
        from repro.managers.base import SchedulerSim

        with pytest.raises(SchedulerError):
            SchedulerSim(build_big_little(), [], quantum_seconds=0.05)


class TestLedgerDiscipline:
    def test_out_of_order_logging_rejected(self):
        """Components must not rewrite history; the ground truth stays
        append-only or every measurement above it is suspect."""
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        gpu.idle(1.0)
        gpu.log_activity(1.0, 1.1, 0.5)  # fine: starts move forward
        with pytest.raises(HardwareError, match="order"):
            gpu.log_activity(0.5, 0.6, 1.0)  # rewriting history
