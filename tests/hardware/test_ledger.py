"""Tests for the ground-truth energy ledger."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import HardwareError
from repro.hardware.ledger import EnergyLedger, EnergyRecord


def record(component="c", domain="d", t0=0.0, t1=1.0, joules=1.0, tag=""):
    return EnergyRecord(component, domain, t0, t1, joules, tag)


class TestEnergyRecord:
    def test_duration_and_power(self):
        r = record(t0=1.0, t1=3.0, joules=4.0)
        assert r.duration == 2.0
        assert r.average_power == 2.0

    def test_instant_record(self):
        r = record(t0=1.0, t1=1.0, joules=2.0)
        assert r.duration == 0.0
        assert r.average_power == float("inf")

    def test_rejects_inverted_interval(self):
        with pytest.raises(HardwareError):
            record(t0=2.0, t1=1.0)

    def test_rejects_negative_energy(self):
        with pytest.raises(HardwareError):
            record(joules=-1.0)

    def test_overlap_full(self):
        r = record(t0=0.0, t1=2.0, joules=4.0)
        assert r.overlap_joules(0.0, 2.0) == 4.0

    def test_overlap_partial_prorated(self):
        r = record(t0=0.0, t1=2.0, joules=4.0)
        assert r.overlap_joules(0.5, 1.0) == pytest.approx(1.0)

    def test_overlap_disjoint(self):
        r = record(t0=0.0, t1=1.0, joules=4.0)
        assert r.overlap_joules(2.0, 3.0) == 0.0

    def test_instant_overlap(self):
        r = record(t0=1.0, t1=1.0, joules=2.0)
        assert r.overlap_joules(0.5, 1.5) == 2.0
        assert r.overlap_joules(1.5, 2.0) == 0.0


class TestLedger:
    def test_total(self):
        ledger = EnergyLedger()
        ledger.log(record(joules=1.0))
        ledger.log(record(joules=2.0, t0=1.0, t1=2.0))
        assert ledger.total_joules() == 3.0
        assert len(ledger) == 2

    def test_order_enforced(self):
        ledger = EnergyLedger()
        ledger.log(record(t0=1.0, t1=2.0))
        with pytest.raises(HardwareError):
            ledger.log(record(t0=0.5, t1=3.0))

    def test_same_start_allowed(self):
        ledger = EnergyLedger()
        ledger.log(record(t0=1.0, t1=2.0))
        ledger.log(record(t0=1.0, t1=5.0))
        assert len(ledger) == 2

    def test_filters(self):
        ledger = EnergyLedger()
        ledger.log(record(component="gpu", domain="gpu", joules=1.0))
        ledger.log(record(component="cpu", domain="cpu", joules=2.0,
                          t0=0.0, t1=1.0))
        assert ledger.total_joules(component="gpu") == 1.0
        assert ledger.total_joules(domain="cpu") == 2.0
        assert len(ledger.records(component="cpu")) == 1

    def test_energy_between_prorates(self):
        ledger = EnergyLedger()
        ledger.log(record(t0=0.0, t1=10.0, joules=10.0))
        assert ledger.energy_between(2.0, 4.0) == pytest.approx(2.0)

    def test_energy_between_rejects_inverted(self):
        with pytest.raises(HardwareError):
            EnergyLedger().energy_between(2.0, 1.0)

    def test_power_at(self):
        ledger = EnergyLedger()
        ledger.log(record(t0=0.0, t1=2.0, joules=4.0))   # 2 W
        ledger.log(record(t0=1.0, t1=3.0, joules=2.0))   # 1 W
        assert ledger.power_at(0.5) == pytest.approx(2.0)
        assert ledger.power_at(1.5) == pytest.approx(3.0)
        assert ledger.power_at(2.5) == pytest.approx(1.0)
        assert ledger.power_at(5.0) == 0.0

    def test_by_component(self):
        ledger = EnergyLedger()
        ledger.log(record(component="a", joules=1.0))
        ledger.log(record(component="b", joules=2.0))
        ledger.log(record(component="a", joules=3.0, t0=1.0, t1=2.0))
        assert ledger.by_component() == {"a": 4.0, "b": 2.0}

    def test_by_tag(self):
        ledger = EnergyLedger()
        ledger.log(record(tag="static", joules=1.0))
        ledger.log(record(tag="task", joules=2.0))
        assert ledger.by_tag() == {"static": 1.0, "task": 2.0}

    def test_horizon(self):
        ledger = EnergyLedger()
        ledger.log(record(t0=0.0, t1=5.0))
        ledger.log(record(t0=1.0, t1=2.0))
        assert ledger.horizon == 5.0

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False)),
        min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_window_partition_conserves_energy(self, raw):
        """Splitting any window into halves conserves accounted energy."""
        ledger = EnergyLedger()
        for start, duration, joules in sorted(raw, key=lambda r: r[0]):
            ledger.log(EnergyRecord("c", "d", start, start + duration,
                                    joules))
        horizon = max(ledger.horizon, 1.0)
        whole = ledger.energy_between(0.0, horizon)
        midpoint = horizon / 2.0
        parts = (ledger.energy_between(0.0, midpoint)
                 + ledger.energy_between(midpoint, horizon))
        # Instant records sitting exactly on the midpoint are counted in
        # both halves; exclude that corner by checking one-sided bound.
        assert parts == pytest.approx(whole, rel=1e-9, abs=1e-9) or \
            parts >= whole
