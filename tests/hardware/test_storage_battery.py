"""Tests for the SSD and battery components."""

import pytest

from repro.core.errors import HardwareError
from repro.hardware.battery import Battery, BatterySpec
from repro.hardware.machine import Machine
from repro.hardware.storage import PAGE_BYTES, SSD, SSDSpec


def build_ssd(**overrides):
    spec_args = dict(capacity_blocks=8, pages_per_block=16,
                     gc_dirty_threshold=0.5, p_idle_w=0.0)
    spec_args.update(overrides)
    machine = Machine("box")
    ssd = machine.add(SSD("ssd0", SSDSpec(**spec_args)))
    return machine, ssd


class TestSSD:
    def test_read_energy_per_page(self):
        machine, ssd = build_ssd()
        _, joules = ssd.read(PAGE_BYTES * 3)
        assert joules == pytest.approx(3 * ssd.spec.e_read_page)
        assert ssd.pages_read == 3

    def test_partial_page_rounds_up(self):
        machine, ssd = build_ssd()
        _, joules = ssd.read(1)
        assert joules == pytest.approx(ssd.spec.e_read_page)

    def test_write_more_expensive_than_read(self):
        machine, ssd = build_ssd()
        _, read_j = ssd.read(PAGE_BYTES)
        _, write_j = ssd.write(PAGE_BYTES)
        assert write_j > read_j

    def test_gc_triggers_at_threshold(self):
        machine, ssd = build_ssd()
        # capacity 128 pages, threshold 0.5 -> GC at 64 dirty pages
        ssd.write(PAGE_BYTES * 63)
        assert ssd.gc_runs == 0
        _, joules = ssd.write(PAGE_BYTES * 2)
        assert ssd.gc_runs == 1
        assert joules > 2 * ssd.spec.e_write_page  # erase energy landed here

    def test_gc_clears_whole_blocks_only(self):
        machine, ssd = build_ssd()
        ssd.write(PAGE_BYTES * 70)
        # 70 dirty pages = 4 blocks (64 pages) erased, 6 left dirty
        assert ssd.dirty_pages == 6

    def test_gc_energy_accounted_with_tag(self):
        machine, ssd = build_ssd()
        ssd.write(PAGE_BYTES * 70)
        gc_energy = sum(r.joules for r in machine.ledger.records("ssd0")
                        if r.tag == "gc")
        assert gc_energy == pytest.approx(4 * ssd.spec.e_erase_block)

    def test_writes_until_gc_headroom(self):
        machine, ssd = build_ssd()
        assert ssd.writes_until_gc() == 64
        ssd.write(PAGE_BYTES * 10)
        assert ssd.writes_until_gc() == 54

    def test_validation(self):
        with pytest.raises(HardwareError):
            SSDSpec(e_read_page=-1.0)
        with pytest.raises(HardwareError):
            SSDSpec(gc_dirty_threshold=0.0)
        with pytest.raises(HardwareError):
            SSDSpec(pages_per_block=0)
        machine, ssd = build_ssd()
        with pytest.raises(HardwareError):
            ssd.read(-1)
        with pytest.raises(HardwareError):
            ssd.write(-1)


class TestBattery:
    def test_fresh_battery_full(self):
        battery = Battery(BatterySpec(capacity_wh=10.0))
        assert battery.state_of_charge == pytest.approx(1.0)
        assert battery.charge.as_joules == pytest.approx(36000.0)

    def test_usable_respects_reserve(self):
        battery = Battery(BatterySpec(capacity_wh=10.0,
                                      reserve_fraction=0.2))
        assert battery.usable().as_joules == pytest.approx(0.8 * 36000.0)

    def test_loss_grows_with_draw(self):
        battery = Battery()
        assert battery.loss_factor(0.0) == 1.0
        assert battery.loss_factor(500.0) > battery.loss_factor(50.0) > 1.0

    def test_draw_consumes_more_than_delivered(self):
        battery = Battery(BatterySpec(capacity_wh=50.0))
        used = battery.draw(power_w=300.0, seconds=10.0)
        assert used.as_joules > 3000.0

    def test_exhaustion_raises(self):
        battery = Battery(BatterySpec(capacity_wh=0.01))
        with pytest.raises(HardwareError, match="exhausted"):
            battery.draw(power_w=100.0, seconds=10.0)

    def test_fade_with_cycles(self):
        spec = BatterySpec(capacity_wh=10.0, fade_per_cycle=0.001)
        fresh = Battery(spec)
        aged = Battery(spec, cycles=300)
        assert aged.effective_capacity().as_joules == pytest.approx(
            0.7 * fresh.effective_capacity().as_joules)

    def test_recharge_counts_cycle(self):
        battery = Battery(BatterySpec(capacity_wh=10.0,
                                      fade_per_cycle=0.001))
        battery.draw(10.0, 100.0)
        battery.recharge()
        assert battery.cycles == 1.0
        assert battery.state_of_charge == pytest.approx(1.0)

    def test_fade_floor(self):
        battery = Battery(BatterySpec(fade_per_cycle=0.009), cycles=10000)
        assert battery.effective_capacity().as_joules == pytest.approx(
            0.5 * BatterySpec().capacity_wh * 3600.0)

    def test_validation(self):
        with pytest.raises(HardwareError):
            BatterySpec(capacity_wh=0.0)
        with pytest.raises(HardwareError):
            BatterySpec(reserve_fraction=1.0)
        with pytest.raises(HardwareError):
            Battery(cycles=-1)
        with pytest.raises(HardwareError):
            Battery().loss_factor(-1.0)
        with pytest.raises(HardwareError):
            Battery().draw(10.0, -1.0)
