"""Tests for the counter-level GPU simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import HardwareError
from repro.hardware.gpu import GPU, GPUCounters, GPUSpec, KernelProfile
from repro.hardware.machine import Machine
from repro.hardware.profiles import SIM3070, SIM4090, build_gpu_workstation


def small_spec(**overrides):
    base = dict(
        name="testgpu", e_instruction=1e-12, e_l1_wavefront=2e-12,
        e_l2_sector=4e-12, e_vram_sector=1e-9, e_vram_row_activate=4e-9,
        e_kernel_launch=1e-6, p_static_w=10.0, thermal_r=0.1,
        thermal_c=100.0, leakage_coeff=0.001, instr_rate=1e12,
        l1_rate=1e12, l2_rate=1e11, vram_rate=1e10,
        kernel_launch_latency=1e-6, row_miss_fraction_default=0.05,
    )
    base.update(overrides)
    return GPUSpec(**base)


def build(spec=None):
    machine = Machine("m")
    gpu = machine.add(GPU("gpu", spec if spec is not None else small_spec()))
    return machine, gpu


KERNEL = KernelProfile("k", instructions=1e6, l1_wavefronts=5e5,
                       l2_sectors=2e5, vram_sectors=1e5,
                       row_miss_fraction=0.1)


class TestSpecs:
    def test_negative_values_rejected(self):
        with pytest.raises(HardwareError):
            small_spec(e_vram_sector=-1.0)

    def test_kernel_validation(self):
        with pytest.raises(HardwareError):
            KernelProfile("bad", instructions=-1)
        with pytest.raises(HardwareError):
            KernelProfile("bad", row_miss_fraction=1.5)

    def test_kernel_scaling(self):
        scaled = KERNEL.scaled(2.0)
        assert scaled.instructions == 2e6
        assert scaled.vram_sectors == 2e5
        assert scaled.row_miss_fraction == KERNEL.row_miss_fraction


class TestDuration:
    def test_roofline_takes_slowest_pipe(self):
        _, gpu = build()
        # vram: 1e5 / 1e10 = 10 us dominates; + 1 us launch latency
        assert gpu.kernel_duration(KERNEL) == pytest.approx(11e-6)

    def test_compute_bound_kernel(self):
        _, gpu = build()
        kernel = KernelProfile("c", instructions=1e9)
        assert gpu.kernel_duration(kernel) == pytest.approx(1e-3 + 1e-6)


class TestEnergy:
    def test_dynamic_energy_formula(self):
        _, gpu = build()
        spec = gpu.spec
        expected = (1e6 * spec.e_instruction + 5e5 * spec.e_l1_wavefront
                    + 2e5 * spec.e_l2_sector + 1e5 * spec.e_vram_sector
                    + 1e5 * 0.1 * spec.e_vram_row_activate
                    + spec.e_kernel_launch)
        assert gpu.kernel_dynamic_energy(KERNEL) == pytest.approx(expected)

    def test_default_row_miss_used_when_unset(self):
        _, gpu = build()
        kernel = KernelProfile("k", vram_sectors=1e5)
        expected_row = 1e5 * 0.05 * gpu.spec.e_vram_row_activate
        total = gpu.kernel_dynamic_energy(kernel)
        no_row = 1e5 * gpu.spec.e_vram_sector + gpu.spec.e_kernel_launch
        assert total - no_row == pytest.approx(expected_row)

    def test_launch_accounts_dynamic_and_static(self):
        machine, gpu = build()
        duration = gpu.launch(KERNEL)
        total = machine.total_joules()
        expected = gpu.kernel_dynamic_energy(KERNEL) + 10.0 * duration
        assert total == pytest.approx(expected, rel=1e-6)

    def test_idle_accrues_static_only(self):
        machine, gpu = build()
        gpu.idle(2.0)
        assert machine.total_joules() == pytest.approx(20.0, rel=0.01)

    def test_idle_rejects_negative(self):
        _, gpu = build()
        with pytest.raises(HardwareError):
            gpu.idle(-1.0)


class TestCounters:
    def test_counters_accumulate(self):
        _, gpu = build()
        gpu.launch(KERNEL)
        gpu.launch(KERNEL)
        assert gpu.counters.instructions == 2e6
        assert gpu.counters.kernel_launches == 2
        assert gpu.counters.busy_seconds == pytest.approx(22e-6)

    def test_snapshot_delta(self):
        _, gpu = build()
        gpu.launch(KERNEL)
        snap = gpu.counters.snapshot()
        gpu.launch(KERNEL)
        delta = gpu.counters.delta(snap)
        assert delta.instructions == 1e6
        assert delta.kernel_launches == 1

    def test_as_dict_keys(self):
        counters = GPUCounters()
        assert set(counters.as_dict()) == {
            "instructions", "l1_wavefronts", "l2_sectors", "vram_sectors",
            "kernel_launches", "busy_seconds"}

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_counters_linear_in_launches(self, n):
        _, gpu = build()
        for _ in range(n):
            gpu.launch(KERNEL)
        assert gpu.counters.vram_sectors == pytest.approx(n * 1e5)


class TestThermals:
    def test_sustained_load_heats_die(self):
        _, gpu = build()
        hot_kernel = KernelProfile("h", instructions=1e11)
        gpu.launch(hot_kernel)
        assert gpu.temperature > 25.0

    def test_leakage_raises_static_power(self):
        _, gpu = build(small_spec(leakage_coeff=0.01))
        cold_power = gpu.static_power()
        gpu.launch(KernelProfile("h", instructions=1e11))
        assert gpu.static_power() > cold_power


class TestProfiles:
    def test_profile_relationships(self):
        """SIM3070 is less efficient per event than SIM4090 across the board."""
        assert SIM3070.e_instruction > SIM4090.e_instruction
        assert SIM3070.e_vram_sector > SIM4090.e_vram_sector
        assert SIM3070.e_vram_row_activate > SIM4090.e_vram_row_activate
        assert SIM3070.leakage_coeff > SIM4090.leakage_coeff
        assert SIM3070.vram_rate < SIM4090.vram_rate

    def test_workstation_builder(self):
        machine = build_gpu_workstation(SIM4090)
        names = {c.name for c in machine.components}
        assert "gpu0" in names and "dram0" in names

    def test_realistic_power_envelope(self):
        """A VRAM-saturating kernel should land in a plausible board power."""
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        stream = KernelProfile("s", vram_sectors=3.15e10 * 0.01,  # 10 ms
                               row_miss_fraction=0.02)
        duration = gpu.launch(stream)
        power = machine.total_joules() / duration
        assert 100.0 < power < 500.0
