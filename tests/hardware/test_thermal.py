"""Tests for the RC thermal model and leakage."""

import pytest

from repro.core.errors import HardwareError
from repro.hardware.thermal import LeakageModel, ThermalNode


class TestThermalNode:
    def test_starts_at_ambient(self):
        node = ThermalNode(r_thermal=1.0, c_thermal=10.0, t_ambient=25.0)
        assert node.temperature == 25.0

    def test_heating_raises_temperature(self):
        node = ThermalNode(r_thermal=1.0, c_thermal=10.0)
        node.deposit(100.0)
        node.step(1.0)
        assert node.temperature > 25.0

    def test_cooling_returns_to_ambient(self):
        node = ThermalNode(r_thermal=1.0, c_thermal=1.0, t_ambient=25.0)
        node.deposit(50.0)
        node.step(1.0)
        hot = node.temperature
        for _ in range(100):
            node.step(1.0)
        assert node.temperature < hot
        assert node.temperature == pytest.approx(25.0, abs=0.1)

    def test_steady_state_rise_matches_r(self):
        """Constant power P settles at ambient + P * R."""
        node = ThermalNode(r_thermal=2.0, c_thermal=1.0, t_ambient=25.0)
        power = 10.0
        for _ in range(500):
            node.deposit(power * 0.1)
            node.step(0.1)
        assert node.temperature == pytest.approx(25.0 + power * 2.0, rel=0.02)

    def test_stability_with_large_steps(self):
        """Sub-stepping keeps explicit Euler stable past 2*R*C."""
        node = ThermalNode(r_thermal=0.1, c_thermal=0.1, t_ambient=25.0)
        node.deposit(100.0)
        node.step(10.0)  # dt >> RC
        assert 0.0 < node.temperature < 200.0

    def test_reset(self):
        node = ThermalNode(1.0, 1.0, 25.0)
        node.deposit(10.0)
        node.step(1.0)
        node.reset()
        assert node.temperature == 25.0

    def test_zero_step_is_noop(self):
        node = ThermalNode(1.0, 1.0)
        assert node.step(0.0) == 25.0

    def test_rejects_bad_constants(self):
        with pytest.raises(HardwareError):
            ThermalNode(0.0, 1.0)
        with pytest.raises(HardwareError):
            ThermalNode(1.0, -1.0)

    def test_rejects_negative_heat(self):
        with pytest.raises(HardwareError):
            ThermalNode(1.0, 1.0).deposit(-1.0)

    def test_rejects_negative_step(self):
        with pytest.raises(HardwareError):
            ThermalNode(1.0, 1.0).step(-1.0)


class TestLeakageModel:
    def test_reference_point_is_unity(self):
        assert LeakageModel(0.01, t_ref=25.0).factor(25.0) == 1.0

    def test_grows_with_temperature(self):
        model = LeakageModel(0.01, t_ref=25.0)
        assert model.factor(35.0) == pytest.approx(1.1)

    def test_never_negative(self):
        model = LeakageModel(0.1, t_ref=25.0)
        assert model.factor(-100.0) == 0.0

    def test_rejects_negative_coefficient(self):
        with pytest.raises(HardwareError):
            LeakageModel(-0.01)
