"""Tests for the CPU model: cores, OPPs, packages, sleep states."""

import pytest

from repro.core.errors import HardwareError
from repro.hardware.cpu import Core, CoreTypeSpec, Package
from repro.hardware.dvfs import (
    OPP,
    OPPTable,
    PerformanceGovernor,
    PowersaveGovernor,
    SchedutilGovernor,
)
from repro.hardware.machine import Machine
from repro.hardware.profiles import BIG_CORE, LITTLE_CORE, build_big_little


def tiny_core_spec():
    return CoreTypeSpec("tiny", OPPTable([
        OPP(1e9, 100, power_active_w=1.0, power_idle_w=0.1),
        OPP(2e9, 200, power_active_w=4.0, power_idle_w=0.2),
    ]), sleep_power_w=0.01)


def build_machine():
    machine = Machine("m")
    package = machine.add(Package("pkg", static_active_w=1.0,
                                  static_idle_w=0.1))
    core = machine.add(Core("core0", tiny_core_spec(), package))
    return machine, package, core


class TestOPP:
    def test_energy_per_capacity_second(self):
        opp = OPP(1e9, 100, 1.0, 0.1)
        assert opp.energy_per_capacity_second == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(HardwareError):
            OPP(0.0, 100, 1.0, 0.1)
        with pytest.raises(HardwareError):
            OPP(1e9, 0, 1.0, 0.1)
        with pytest.raises(HardwareError):
            OPP(1e9, 100, 0.1, 1.0)  # active < idle


class TestOPPTable:
    def test_sorted_by_frequency(self):
        table = OPPTable([OPP(2e9, 200, 4.0, 0.2), OPP(1e9, 100, 1.0, 0.1)])
        assert table[0].frequency_hz == 1e9
        assert table.max_opp.frequency_hz == 2e9

    def test_lowest_fitting(self):
        table = tiny_core_spec().opp_table
        assert table.lowest_fitting(50).capacity == 100
        assert table.lowest_fitting(150).capacity == 200
        assert table.lowest_fitting(500).capacity == 200  # saturates

    def test_capacity_monotonicity_enforced(self):
        with pytest.raises(HardwareError):
            OPPTable([OPP(1e9, 200, 1.0, 0.1), OPP(2e9, 100, 4.0, 0.2)])

    def test_empty_rejected(self):
        with pytest.raises(HardwareError):
            OPPTable([])

    def test_index_of_unknown(self):
        table = tiny_core_spec().opp_table
        with pytest.raises(HardwareError):
            table.index_of(OPP(9e9, 1000, 10.0, 1.0))


class TestGovernors:
    def test_performance_picks_top(self):
        table = tiny_core_spec().opp_table
        assert PerformanceGovernor().select(table, 10).capacity == 200

    def test_powersave_picks_bottom(self):
        table = tiny_core_spec().opp_table
        assert PowersaveGovernor().select(table, 150).capacity == 100

    def test_schedutil_headroom(self):
        table = tiny_core_spec().opp_table
        # 90 * 1.25 = 112.5 > 100 -> needs the 200 OPP
        assert SchedutilGovernor().select(table, 90).capacity == 200
        assert SchedutilGovernor().select(table, 70).capacity == 100

    def test_schedutil_rejects_headroom_below_one(self):
        with pytest.raises(HardwareError):
            SchedutilGovernor(headroom=0.9)


class TestCoreExecution:
    def test_duration_and_energy(self):
        _, _, core = build_machine()
        core.set_opp(core.spec.opp_table[0])  # 100 capacity, 1 W / 0.1 W
        assert core.duration_of(50.0) == pytest.approx(0.5)
        assert core.energy_of(50.0) == pytest.approx(0.9 * 0.5)

    def test_execute_at_logs_and_blocks(self):
        machine, _, core = build_machine()
        t_end, joules = core.execute_at(0.0, 100.0)
        assert t_end == pytest.approx(1.0)
        assert core.busy_until == pytest.approx(1.0)
        with pytest.raises(HardwareError):
            core.execute_at(0.5, 10.0)

    def test_run_advances_clock(self):
        machine, _, core = build_machine()
        core.run(100.0)
        assert machine.now == pytest.approx(1.0)

    def test_negative_work_rejected(self):
        _, _, core = build_machine()
        with pytest.raises(HardwareError):
            core.duration_of(-1.0)

    def test_higher_opp_is_faster_but_less_efficient(self):
        _, _, core = build_machine()
        low, high = core.spec.opp_table[0], core.spec.opp_table[1]
        assert core.duration_of(100, high) < core.duration_of(100, low)
        assert core.energy_of(100, high) > core.energy_of(100, low)

    def test_powered_off_package_blocks_execution(self):
        machine, package, core = build_machine()
        package.set_powered(False)
        with pytest.raises(HardwareError):
            core.execute_at(0.0, 10.0)

    def test_apply_governor_changes_opp(self):
        _, _, core = build_machine()
        core.apply_governor(PerformanceGovernor(), 10.0)
        assert core.opp.capacity == 200


class TestStaticAccounting:
    def test_sleeping_core_uses_sleep_power(self):
        machine, _, core = build_machine()
        machine.advance(10.0)
        core_static = machine.ledger.total_joules(component="core0")
        assert core_static == pytest.approx(0.01 * 10.0)

    def test_busy_core_uses_opp_idle_power(self):
        machine, _, core = build_machine()
        core.execute_at(0.0, 100.0)  # busy for 1 s at OPP0
        machine.advance(1.0)
        static = sum(r.joules for r in machine.ledger.records("core0")
                     if r.tag == "static")
        assert static == pytest.approx(0.1 * 1.0)

    def test_package_active_vs_idle(self):
        machine, package, core = build_machine()
        core.execute_at(0.0, 100.0)
        machine.advance(1.0)   # busy interval -> active power
        machine.advance(1.0)   # idle interval -> idle power
        records = machine.ledger.records("pkg")
        assert records[0].joules == pytest.approx(1.0, rel=0.02)
        assert records[1].joules == pytest.approx(0.1, rel=0.02)

    def test_power_gated_package_draws_nothing(self):
        machine, package, _ = build_machine()
        package.set_powered(False)
        machine.advance(5.0)
        assert machine.ledger.total_joules(component="pkg") == 0.0

    def test_package_heats_with_load(self):
        machine, package, core = build_machine()
        for _ in range(20):
            core.run(200.0)
        assert package.temperature > 25.0

    def test_conservation_total_is_sum_of_parts(self):
        machine, _, core = build_machine()
        core.run(100.0)
        machine.advance(2.0)
        total = machine.total_joules()
        parts = sum(machine.energy_breakdown().values())
        assert total == pytest.approx(parts)

    def test_package_validation(self):
        with pytest.raises(HardwareError):
            Package("p", static_active_w=0.1, static_idle_w=0.5)


class TestProfiles:
    def test_big_little_machine_shape(self):
        machine = build_big_little(n_little=2, n_big=3)
        names = {c.name for c in machine.components}
        assert {"little0", "little1", "big0", "big1", "big2"} <= names

    def test_little_is_more_efficient_than_big(self):
        """Joules per capacity-second at every OPP pair."""
        little_best = min(o.energy_per_capacity_second
                          for o in LITTLE_CORE.opp_table)
        big_best = min(o.energy_per_capacity_second
                       for o in BIG_CORE.opp_table)
        assert little_best < big_best

    def test_big_has_more_capacity(self):
        assert BIG_CORE.max_capacity > LITTLE_CORE.max_capacity

    def test_capacity_convention(self):
        assert BIG_CORE.max_capacity == 1024
