"""Tests for DRAM and NIC components (incl. the radio side effect)."""

import pytest

from repro.core.errors import HardwareError
from repro.hardware.machine import Machine
from repro.hardware.memory import DRAM, DRAMSpec, LINE_BYTES
from repro.hardware.nic import NIC, NICSpec


def build_dram():
    machine = Machine("m")
    dram = machine.add(DRAM("dram", DRAMSpec(e_read_line=10e-9,
                                             e_write_line=20e-9,
                                             p_refresh_w=1.0,
                                             bandwidth_bytes=1e9)))
    return machine, dram


def build_nic():
    machine = Machine("m")
    nic = machine.add(NIC("nic", NICSpec(e_per_byte_tx=1e-9,
                                         e_per_byte_rx=0.5e-9,
                                         e_wake=0.01, wake_latency=0.001,
                                         p_idle_w=0.2, p_off_w=0.001,
                                         bandwidth_bytes=1e6)))
    return machine, nic


class TestDRAM:
    def test_access_energy_rounds_to_lines(self):
        _, dram = build_dram()
        assert dram.access_energy(bytes_read=1) == pytest.approx(10e-9)
        assert dram.access_energy(bytes_read=LINE_BYTES + 1) == \
            pytest.approx(20e-9)
        assert dram.access_energy(bytes_written=LINE_BYTES) == \
            pytest.approx(20e-9)

    def test_access_duration(self):
        _, dram = build_dram()
        assert dram.access_duration(bytes_read=1e6) == pytest.approx(1e-3)

    def test_access_logs_and_advances(self):
        machine, dram = build_dram()
        t_end, joules = dram.access(bytes_read=128)
        assert machine.now == pytest.approx(128 / 1e9)
        assert joules == pytest.approx(20e-9)
        assert dram.lines_read == 2

    def test_refresh_power_accrues(self):
        machine, dram = build_dram()
        machine.advance(3.0)
        assert machine.total_joules() == pytest.approx(3.0)

    def test_rejects_negative(self):
        _, dram = build_dram()
        with pytest.raises(HardwareError):
            dram.access_energy(bytes_read=-1)


class TestNIC:
    def test_send_wakes_radio(self):
        """The §4.2 side effect: the first sender pays the wake."""
        machine, nic = build_nic()
        assert nic.state == "off"
        nic.send(1000)
        assert nic.state == "idle"
        assert nic.wake_count == 1
        wake_energy = sum(r.joules for r in machine.ledger.records("nic")
                          if r.tag == "wake")
        assert wake_energy == pytest.approx(0.01)

    def test_second_send_skips_wake(self):
        machine, nic = build_nic()
        first = nic.send(1000)
        second = nic.send(1000)
        assert nic.wake_count == 1
        assert second < first  # no wake latency the second time

    def test_tx_rx_energy(self):
        machine, nic = build_nic()
        nic.wake()
        t0 = machine.now
        nic.send(1000)
        tx = sum(r.joules for r in machine.ledger.records("nic")
                 if r.tag == "tx")
        assert tx == pytest.approx(1000 * 1e-9)
        nic.receive(1000)
        rx = sum(r.joules for r in machine.ledger.records("nic")
                 if r.tag == "rx")
        assert rx == pytest.approx(1000 * 0.5e-9)

    def test_sleep_returns_to_off(self):
        machine, nic = build_nic()
        nic.send(10)
        nic.sleep()
        assert nic.state == "off"
        nic.send(10)
        assert nic.wake_count == 2

    def test_idle_vs_off_static_power(self):
        machine, nic = build_nic()
        machine.advance(1.0)
        off_energy = machine.total_joules()
        assert off_energy == pytest.approx(0.001)
        nic.wake()
        t0 = machine.now
        machine.advance(1.0)
        idle_energy = machine.ledger.energy_between(t0, machine.now)
        assert idle_energy == pytest.approx(0.2, rel=0.01)

    def test_counters(self):
        _, nic = build_nic()
        nic.send(100)
        nic.receive(50)
        assert nic.bytes_tx == 100
        assert nic.bytes_rx == 50

    def test_rejects_negative_transfer(self):
        _, nic = build_nic()
        with pytest.raises(HardwareError):
            nic.send(-1)

    def test_spec_validation(self):
        with pytest.raises(HardwareError):
            NICSpec(e_per_byte_tx=-1.0)

    def test_dram_spec_validation(self):
        with pytest.raises(HardwareError):
            DRAMSpec(e_read_line=-1.0)


class TestMachine:
    def test_duplicate_component_rejected(self):
        machine = Machine("m")
        machine.add(DRAM("x"))
        with pytest.raises(HardwareError):
            machine.add(DRAM("x"))

    def test_unknown_component_rejected(self):
        with pytest.raises(HardwareError):
            Machine("m").component("ghost")

    def test_clock_rejects_rewind(self):
        machine = Machine("m")
        machine.advance(1.0)
        with pytest.raises(HardwareError):
            machine.advance_to(0.5)
        with pytest.raises(HardwareError):
            machine.advance(-0.1)

    def test_unattached_component_cannot_log(self):
        dram = DRAM("loose")
        with pytest.raises(HardwareError):
            dram.log_activity(0.0, 1.0, 1.0)
        with pytest.raises(HardwareError):
            dram.machine
