"""Tests for the GPT-2 configuration, kernels and runtime."""

import pytest

from repro.core.errors import WorkloadError
from repro.hardware.profiles import SIM4090, build_gpu_workstation
from repro.llm.config import (
    GPT2_LARGE,
    GPT2_MEDIUM,
    GPT2_SMALL,
    GPT2_XL,
    GPT2Config,
)
from repro.llm.kernels import (
    attention_kernel,
    decode_step_kernels,
    embedding_kernel,
    gemv_kernel,
    layernorm_kernel,
    prefill_kernels,
)
from repro.llm.runtime import GPT2Runtime


class TestConfig:
    def test_gpt2_small_parameter_count(self):
        """The public 124M figure, within 2%."""
        assert GPT2_SMALL.param_count == pytest.approx(124e6, rel=0.02)

    def test_gpt2_medium_parameter_count(self):
        assert GPT2_MEDIUM.param_count == pytest.approx(355e6, rel=0.03)

    def test_gpt2_large_parameter_count(self):
        assert GPT2_LARGE.param_count == pytest.approx(774e6, rel=0.03)

    def test_gpt2_xl_parameter_count(self):
        assert GPT2_XL.param_count == pytest.approx(1.56e9, rel=0.03)

    def test_d_ff_is_4x(self):
        assert GPT2_SMALL.d_ff == 4 * GPT2_SMALL.d_model

    def test_kv_bytes_per_token(self):
        expected = 2 * 12 * 768 * 2
        assert GPT2_SMALL.kv_bytes_per_token() == expected

    def test_weight_bytes_fp16(self):
        assert GPT2_SMALL.weight_bytes == GPT2_SMALL.param_count * 2

    def test_head_divisibility_enforced(self):
        with pytest.raises(WorkloadError):
            GPT2Config("bad", n_layer=2, n_head=7, d_model=768)

    def test_positive_dims_enforced(self):
        with pytest.raises(WorkloadError):
            GPT2Config("bad", n_layer=0, n_head=1, d_model=64)


class TestKernels:
    def test_gemv_counts(self):
        kernel = gemv_kernel("g", weight_bytes=3200, macs=1600)
        assert kernel.vram_sectors == pytest.approx(100.0)
        assert kernel.instructions == pytest.approx(1600 / 32 * 1.3)

    def test_attention_scales_with_kv_len(self):
        short = attention_kernel(GPT2_SMALL, 10)
        long = attention_kernel(GPT2_SMALL, 100)
        assert long.vram_sectors == pytest.approx(10 * short.vram_sectors,
                                                  rel=0.01)

    def test_attention_zero_context(self):
        kernel = attention_kernel(GPT2_SMALL, 0)
        assert kernel.vram_sectors == 0.0

    def test_attention_rejects_negative(self):
        with pytest.raises(WorkloadError):
            attention_kernel(GPT2_SMALL, -1)

    def test_layernorm_stays_in_cache(self):
        assert layernorm_kernel(GPT2_SMALL).vram_sectors == 0.0

    def test_embedding_is_tiny(self):
        kernel = embedding_kernel(GPT2_SMALL)
        assert kernel.vram_sectors < 1000

    def test_decode_step_kernel_count(self):
        kernels = decode_step_kernels(GPT2_SMALL, 10)
        # embedding + 12 layers x 7 + final LN + lm_head
        assert len(kernels) == 1 + 12 * 7 + 2

    def test_decode_step_dominated_by_weights(self):
        """Batch-1 decode streams roughly the whole model per token."""
        kernels = decode_step_kernels(GPT2_SMALL, 0)
        vram_bytes = sum(k.vram_sectors for k in kernels) * 32
        assert vram_bytes == pytest.approx(GPT2_SMALL.weight_bytes,
                                           rel=0.10)

    def test_prefill_streams_weights_once(self):
        """Prefill cost is sublinear in prompt length (weights amortise)."""
        short = prefill_kernels(GPT2_SMALL, 8)
        long = prefill_kernels(GPT2_SMALL, 64)
        vram = lambda ks: sum(k.vram_sectors for k in ks)
        assert vram(long) < 8 * vram(short)

    def test_prefill_empty_prompt(self):
        assert prefill_kernels(GPT2_SMALL, 0) == []

    def test_prefill_rejects_negative(self):
        with pytest.raises(WorkloadError):
            prefill_kernels(GPT2_SMALL, -1)

    def test_gemv_rejects_negative(self):
        with pytest.raises(WorkloadError):
            gemv_kernel("g", weight_bytes=-1, macs=0)


class TestRuntime:
    def build(self):
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        return machine, GPT2Runtime(gpu, GPT2_SMALL)

    def test_generate_reports_stats(self):
        machine, runtime = self.build()
        stats = runtime.generate(prompt_len=8, n_tokens=5)
        assert stats.generated_tokens == 5
        assert stats.duration > 0
        assert stats.kernel_launches == len(prefill_kernels(GPT2_SMALL, 8)) \
            + 5 * len(decode_step_kernels(GPT2_SMALL, 0))
        assert stats.tokens_per_second > 0

    def test_kv_cache_grows(self):
        _, runtime = self.build()
        runtime.generate(prompt_len=8, n_tokens=3)
        assert runtime.kv_len == 11

    def test_reset_cache(self):
        _, runtime = self.build()
        runtime.generate(prompt_len=8, n_tokens=2)
        runtime.reset_cache()
        assert runtime.kv_len == 0

    def test_decode_cost_grows_with_context(self):
        """Later tokens read a longer KV cache, so they cost more."""
        machine, runtime = self.build()
        runtime.prefill(1)
        before = machine.total_joules()
        runtime.decode_token()
        early = machine.total_joules() - before
        for _ in range(400):
            runtime.decode_token()
        before = machine.total_joules()
        runtime.decode_token()
        late = machine.total_joules() - before
        assert late > early

    def test_context_overflow_rejected(self):
        _, runtime = self.build()
        with pytest.raises(WorkloadError):
            runtime.prefill(GPT2_SMALL.n_ctx + 1)
        runtime.reset_cache()
        runtime.kv_len = GPT2_SMALL.n_ctx
        with pytest.raises(WorkloadError):
            runtime.decode_token()

    def test_negative_tokens_rejected(self):
        _, runtime = self.build()
        with pytest.raises(WorkloadError):
            runtime.generate(1, -1)
