"""Tests for the manually-derived GPT-2 energy interface (§5)."""

import pytest

from repro.hardware.profiles import SIM4090, build_gpu_workstation
from repro.llm.config import GPT2_SMALL
from repro.llm.interface import GPT2EnergyInterface
from repro.llm.runtime import GPT2Runtime
from repro.calibration import calibrate
from repro.measurement.calibration import METRICS, CalibratedModel
from repro.measurement.nvml import NVMLSim


def oracle_model(spec=SIM4090):
    """A calibrated model with the simulator's true unit energies."""
    return CalibratedModel(spec.name, {
        "instructions": spec.e_instruction,
        "l1_wavefronts": spec.e_l1_wavefront,
        "l2_sectors": spec.e_l2_sector,
        "vram_sectors": spec.e_vram_sector,
        "kernel_launches": spec.e_kernel_launch,
        "busy_seconds": spec.p_static_w,
    }, residual_rms=0.0, n_samples=0)


class TestCounterPrediction:
    def test_predicted_counters_match_execution_exactly(self):
        """The interface's counts are derived from the same architecture
        the runtime executes, so they must agree to the last sector."""
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        runtime = GPT2Runtime(gpu, GPT2_SMALL)
        interface = GPT2EnergyInterface(GPT2_SMALL, oracle_model(), SIM4090)

        stats = runtime.generate(prompt_len=16, n_tokens=10)
        predicted = interface.predicted_counters(16, 10)
        actual = stats.counters.as_dict()
        for metric in METRICS:
            assert predicted[metric] == pytest.approx(actual[metric],
                                                      rel=1e-9), metric

    def test_predicted_duration_matches(self):
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        runtime = GPT2Runtime(gpu, GPT2_SMALL)
        interface = GPT2EnergyInterface(GPT2_SMALL, oracle_model(), SIM4090)
        stats = runtime.generate(prompt_len=4, n_tokens=6)
        assert interface.predicted_duration(4, 6) == pytest.approx(
            stats.duration, rel=1e-9)

    def test_decode_energy_monotone_in_context(self):
        interface = GPT2EnergyInterface(GPT2_SMALL, oracle_model(), SIM4090)
        assert interface.E_decode_token(500).as_joules > \
            interface.E_decode_token(10).as_joules

    def test_generate_decomposes_into_prefill_plus_decode(self):
        interface = GPT2EnergyInterface(GPT2_SMALL, oracle_model(), SIM4090)
        full = interface.E_generate(32, 0).as_joules
        prefill = interface.E_prefill(32).as_joules
        assert full == pytest.approx(prefill)

    def test_abstract_units_ground_to_same_prediction(self):
        """§3's abstract-unit path: counts + unit costs == direct Joules."""
        model = oracle_model()
        interface = GPT2EnergyInterface(GPT2_SMALL, model, SIM4090)
        abstract = interface.E_generate_abstract(8, 5)
        grounded = abstract.ground(model.unit_energies)
        direct = interface.E_generate(8, 5)
        assert grounded.as_joules == pytest.approx(direct.as_joules)


class TestEndToEndError:
    def test_oracle_units_give_small_error(self):
        """With true unit energies, only the hidden row cost and sensor
        imperfections remain — the error must be well under 10 %."""
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        nvml = NVMLSim(gpu, seed=2)
        runtime = GPT2Runtime(gpu, GPT2_SMALL)
        interface = GPT2EnergyInterface(GPT2_SMALL, oracle_model(), SIM4090)
        gpu.idle(0.05)
        stats = runtime.generate(prompt_len=16, n_tokens=60)
        measured = nvml.measure_interval(stats.t_start, stats.t_end)
        predicted = interface.E_generate(16, 60).as_joules
        assert abs(predicted - measured) / measured < 0.10

    def test_calibrated_units_give_table1_quality_error(self):
        """The full §5 pipeline on the 4090 profile: low single digits."""
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        nvml = NVMLSim(gpu, seed=2)
        model = calibrate(machine, source="gpu0", nvml=nvml).model
        runtime = GPT2Runtime(gpu, GPT2_SMALL)
        interface = GPT2EnergyInterface(GPT2_SMALL, model, SIM4090)
        gpu.idle(0.05)
        stats = runtime.generate(prompt_len=16, n_tokens=80)
        measured = nvml.measure_interval(stats.t_start, stats.t_end)
        predicted = interface.E_generate(16, 80).as_joules
        assert abs(predicted - measured) / measured < 0.05


class TestIdleInterface:
    def test_idle_energy_is_static_power_times_duration(self):
        """§3's special idle-state input, validated against the device."""
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        interface = GPT2EnergyInterface(GPT2_SMALL, oracle_model(), SIM4090)
        t0 = machine.now
        gpu.idle(3.0)
        measured = machine.ledger.energy_between(t0, machine.now,
                                                 component="gpu0")
        predicted = interface.E_idle(3.0).as_joules
        assert predicted == pytest.approx(measured, rel=0.01)

    def test_idle_scales_linearly(self):
        interface = GPT2EnergyInterface(GPT2_SMALL, oracle_model(), SIM4090)
        assert interface.E_idle(10.0).as_joules == pytest.approx(
            10 * interface.E_idle(1.0).as_joules)
