"""Tests for batched LLM serving and its configuration interface."""

import pytest

from repro.core.errors import WorkloadError
from repro.hardware.profiles import SIM4090, build_gpu_workstation
from repro.llm.batching import (
    BatchedGPT2Interface,
    BatchedGPT2Runtime,
    batched_decode_kernels,
)
from repro.llm.config import GPT2_SMALL
from repro.llm.kernels import decode_step_kernels
from repro.measurement.calibration import CalibratedModel


def oracle_model(spec=SIM4090):
    return CalibratedModel(spec.name, {
        "instructions": spec.e_instruction,
        "l1_wavefronts": spec.e_l1_wavefront,
        "l2_sectors": spec.e_l2_sector,
        "vram_sectors": spec.e_vram_sector,
        "kernel_launches": spec.e_kernel_launch,
        "busy_seconds": spec.p_static_w,
    }, residual_rms=0.0, n_samples=0)


def interface():
    return BatchedGPT2Interface(GPT2_SMALL, oracle_model(), SIM4090)


class TestBatchedKernels:
    def test_weights_amortised_kv_not(self):
        b1 = batched_decode_kernels(GPT2_SMALL, 256, 1)
        b8 = batched_decode_kernels(GPT2_SMALL, 256, 8)
        vram = lambda ks: sum(k.vram_sectors for k in ks)
        instr = lambda ks: sum(k.instructions for k in ks)
        # Weight traffic barely grows; compute grows ~8x.
        assert vram(b8) < 2.5 * vram(b1)
        assert instr(b8) > 6 * instr(b1)

    def test_batch_one_close_to_unbatched_decode(self):
        batched = batched_decode_kernels(GPT2_SMALL, 128, 1)
        plain = decode_step_kernels(GPT2_SMALL, 128)
        vram = lambda ks: sum(k.vram_sectors for k in ks)
        assert vram(batched) == pytest.approx(vram(plain), rel=0.05)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            batched_decode_kernels(GPT2_SMALL, 10, 0)
        with pytest.raises(WorkloadError):
            batched_decode_kernels(GPT2_SMALL, -1, 1)


class TestInterface:
    def test_per_token_energy_falls_with_batch(self):
        iface = interface()
        curve = [iface.E_per_token(b, 256).as_joules
                 for b in (1, 4, 16, 64)]
        assert curve == sorted(curve, reverse=True)
        assert curve[0] > 2 * curve[-1]  # batching is a big lever

    def test_curve_flattens(self):
        """Diminishing returns: the 16->64 gain is far smaller than 1->4."""
        iface = interface()
        e1, e4 = (iface.E_per_token(b, 256).as_joules for b in (1, 4))
        e16, e64 = (iface.E_per_token(b, 256).as_joules for b in (16, 64))
        assert (e1 - e4) > 4 * (e16 - e64)

    def test_throughput_grows_with_batch(self):
        iface = interface()
        assert iface.tokens_per_second(32, 256) > \
            5 * iface.tokens_per_second(1, 256)

    def test_crossover_is_interior(self):
        iface = interface()
        knee = iface.crossover_batch(256)
        assert 8 <= knee <= 256

    def test_longer_context_shifts_crossover_down(self):
        """More KV traffic per sequence -> amortisation saturates sooner
        (the KV term does not amortise)."""
        iface = interface()
        assert iface.crossover_batch(900) <= iface.crossover_batch(16)


class TestAgainstSimulation:
    def test_interface_matches_simulated_batched_serving(self):
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        runtime = BatchedGPT2Runtime(gpu, GPT2_SMALL)
        iface = interface()
        for batch in (1, 8, 32):
            t0, t1, tokens = runtime.decode_steps(batch, kv_len=256,
                                                  n_steps=4)
            measured = machine.ledger.energy_between(
                t0, t1, component="gpu0") / tokens
            predicted = sum(
                iface.E_per_token(batch, 256 + step).as_joules
                for step in range(4)) / 4
            # Oracle units: only the hidden row cost separates them.
            assert predicted == pytest.approx(measured, rel=0.05), batch

    def test_runtime_validation(self):
        machine = build_gpu_workstation(SIM4090)
        runtime = BatchedGPT2Runtime(machine.component("gpu0"), GPT2_SMALL)
        with pytest.raises(WorkloadError):
            runtime.decode_steps(1, 10, 0)
