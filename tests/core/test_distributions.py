"""Unit and property tests for the energy distribution algebra."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import (
    Discrete,
    Empirical,
    IndependentSum,
    Mixture,
    Normal,
    PointMass,
    Scaled,
    Uniform,
    as_distribution,
)
from repro.core.errors import ECVBindingError, EvaluationError
from repro.core.units import Energy

RNG = np.random.default_rng(42)

values = st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestPointMass:
    def test_moments(self):
        d = PointMass(3.0)
        assert d.mean() == 3.0
        assert d.variance() == 0.0
        assert d.std() == 0.0

    def test_bounds(self):
        d = PointMass(3.0)
        assert d.lower_bound() == d.upper_bound() == 3.0

    def test_accepts_energy(self):
        assert PointMass(Energy.millijoules(2)).mean() == pytest.approx(2e-3)

    def test_sampling_is_constant(self):
        assert (PointMass(1.5).sample(RNG, 10) == 1.5).all()

    def test_quantile(self):
        assert PointMass(2.0).quantile(0.99) == 2.0

    def test_quantile_validates_level(self):
        with pytest.raises(EvaluationError):
            PointMass(1.0).quantile(1.5)


class TestDiscrete:
    def test_moments(self):
        d = Discrete([1.0, 3.0], [0.5, 0.5])
        assert d.mean() == pytest.approx(2.0)
        assert d.variance() == pytest.approx(1.0)

    def test_bounds(self):
        d = Discrete([5.0, 1.0, 3.0], [0.2, 0.3, 0.5])
        assert d.lower_bound() == 1.0
        assert d.upper_bound() == 5.0

    def test_quantile_exact(self):
        d = Discrete([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        assert d.quantile(0.1) == 1.0
        assert d.quantile(0.4) == 2.0
        assert d.quantile(0.99) == 3.0

    def test_support_sorted(self):
        d = Discrete([3.0, 1.0], [0.5, 0.5])
        assert [v for v, _ in d.support] == [1.0, 3.0]

    def test_sampling_within_support(self):
        d = Discrete([1.0, 2.0], [0.5, 0.5])
        draws = d.sample(RNG, 100)
        assert set(np.unique(draws)) <= {1.0, 2.0}

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ECVBindingError):
            Discrete([1.0, 2.0], [0.5, 0.6])

    def test_rejects_negative_probabilities(self):
        with pytest.raises(ECVBindingError):
            Discrete([1.0, 2.0], [-0.5, 1.5])

    def test_rejects_empty(self):
        with pytest.raises(ECVBindingError):
            Discrete([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ECVBindingError):
            Discrete([1.0], [0.5, 0.5])


class TestUniform:
    def test_moments(self):
        d = Uniform(0.0, 12.0)
        assert d.mean() == pytest.approx(6.0)
        assert d.variance() == pytest.approx(12.0)

    def test_quantile(self):
        d = Uniform(10.0, 20.0)
        assert d.quantile(0.5) == pytest.approx(15.0)
        assert d.quantile(0.0) == 10.0
        assert d.quantile(1.0) == 20.0

    def test_sampling_in_bounds(self):
        d = Uniform(1.0, 2.0)
        draws = d.sample(RNG, 200)
        assert (draws >= 1.0).all() and (draws <= 2.0).all()

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ECVBindingError):
            Uniform(2.0, 1.0)


class TestNormal:
    def test_moments(self):
        d = Normal(10.0, 2.0)
        assert d.mean() == 10.0
        assert d.variance() == 4.0

    def test_clip_at_zero_bounds(self):
        d = Normal(1.0, 5.0, clip_at_zero=True)
        assert d.lower_bound() == 0.0
        draws = d.sample(RNG, 500)
        assert (draws >= 0.0).all()

    def test_unclipped_bounds(self):
        d = Normal(1.0, 5.0, clip_at_zero=False)
        assert d.lower_bound() == -math.inf

    def test_upper_bound_infinite(self):
        assert Normal(1.0, 1.0).upper_bound() == math.inf

    def test_degenerate_normal(self):
        d = Normal(3.0, 0.0)
        assert d.upper_bound() == 3.0

    def test_rejects_negative_std(self):
        with pytest.raises(ECVBindingError):
            Normal(1.0, -1.0)


class TestEmpirical:
    def test_moments_match_numpy(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        d = Empirical(samples)
        assert d.mean() == pytest.approx(np.mean(samples))
        assert d.variance() == pytest.approx(np.var(samples, ddof=1))

    def test_bounds(self):
        d = Empirical([3.0, 1.0, 2.0])
        assert d.lower_bound() == 1.0
        assert d.upper_bound() == 3.0

    def test_single_sample_variance_zero(self):
        assert Empirical([2.0]).variance() == 0.0

    def test_len(self):
        assert len(Empirical([1.0, 2.0])) == 2

    def test_quantile(self):
        d = Empirical(list(range(101)))
        assert d.quantile(0.5) == pytest.approx(50.0)

    def test_rejects_empty(self):
        with pytest.raises(ECVBindingError):
            Empirical([])


class TestMixture:
    def test_mean_total_expectation(self):
        m = Mixture([PointMass(0.0), PointMass(10.0)], [0.9, 0.1])
        assert m.mean() == pytest.approx(1.0)

    def test_variance_total_variance(self):
        m = Mixture([PointMass(0.0), PointMass(10.0)], [0.5, 0.5])
        assert m.variance() == pytest.approx(25.0)

    def test_variance_with_component_spread(self):
        m = Mixture([Uniform(0.0, 2.0), PointMass(5.0)], [0.5, 0.5])
        # E = .5*1 + .5*5 = 3; E[X^2] = .5*(4/3 + 1) + .5*25
        expected_second = 0.5 * (1.0 / 3.0 + 1.0) + 0.5 * 25.0
        assert m.variance() == pytest.approx(expected_second - 9.0)

    def test_bounds_ignore_zero_weight(self):
        m = Mixture([PointMass(1.0), PointMass(100.0)], [1.0, 0.0])
        assert m.upper_bound() == 1.0

    def test_collapse_single(self):
        d = Mixture.collapse([PointMass(2.0)], [1.0])
        assert isinstance(d, PointMass)

    def test_sampling_mixes(self):
        m = Mixture([PointMass(0.0), PointMass(1.0)], [0.5, 0.5])
        draws = m.sample(np.random.default_rng(0), 1000)
        assert 0.4 < draws.mean() < 0.6

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ECVBindingError):
            Mixture([PointMass(1.0)], [0.9])


class TestAlgebra:
    def test_point_sum_collapses(self):
        s = PointMass(1.0) + PointMass(2.0)
        assert isinstance(s, PointMass)
        assert s.mean() == 3.0

    def test_adding_zero_is_identity(self):
        u = Uniform(0.0, 1.0)
        assert (u + PointMass(0.0)) is u
        assert (PointMass(0.0) + u) is u

    def test_sum_moments_add(self):
        s = Uniform(0.0, 2.0) + Uniform(0.0, 2.0)
        assert s.mean() == pytest.approx(2.0)
        assert s.variance() == pytest.approx(2 * 4.0 / 12.0)

    def test_sum_accepts_scalars_and_energy(self):
        s = Uniform(0.0, 2.0) + 1.0 + Energy(2.0)
        assert s.mean() == pytest.approx(4.0)

    def test_sum_flattens(self):
        s = Uniform(0, 1) + Uniform(0, 1) + Uniform(0, 1)
        assert isinstance(s, IndependentSum)
        assert s.mean() == pytest.approx(1.5)

    def test_sum_bounds(self):
        s = Uniform(1.0, 2.0) + Uniform(3.0, 4.0)
        assert s.lower_bound() == pytest.approx(4.0)
        assert s.upper_bound() == pytest.approx(6.0)

    def test_scaling_moments(self):
        d = 3 * Uniform(0.0, 2.0)
        assert d.mean() == pytest.approx(3.0)
        assert d.variance() == pytest.approx(9 * 4.0 / 12.0)

    def test_scaling_point_mass_stays_point(self):
        assert isinstance(2 * PointMass(1.0), PointMass)

    def test_negative_scale_rejected(self):
        with pytest.raises(ECVBindingError):
            Scaled(Uniform(0, 1), -1.0)

    def test_scaled_quantile_delegates(self):
        d = 2 * Uniform(0.0, 1.0)
        assert d.quantile(0.5) == pytest.approx(1.0)

    def test_mean_energy_wrapper(self):
        assert PointMass(1.5).mean_energy() == Energy(1.5)

    @given(st.lists(values, min_size=1, max_size=5),
           st.lists(values, min_size=1, max_size=5))
    @settings(max_examples=50)
    def test_independent_sum_means_add(self, xs, ys):
        d1 = Empirical(xs)
        d2 = Empirical(ys)
        total = d1 + d2
        assert total.mean() == pytest.approx(d1.mean() + d2.mean(),
                                             rel=1e-9, abs=1e-9)

    @given(st.lists(values, min_size=2, max_size=6))
    @settings(max_examples=50)
    def test_bounds_always_bracket_mean(self, xs):
        d = Empirical(xs)
        slack = 1e-9 * max(abs(x) for x in xs) + 1e-12
        assert d.lower_bound() - slack <= d.mean() <= d.upper_bound() + slack

    @given(st.lists(values, min_size=2, max_size=6),
           st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    @settings(max_examples=50)
    def test_samples_within_bounds(self, xs, scale):
        d = Scaled(Empirical(xs), scale)
        draws = d.sample(np.random.default_rng(1), 50)
        assert (draws >= d.lower_bound() - 1e-9).all()
        assert (draws <= d.upper_bound() + 1e-9).all()


class TestAsDistribution:
    def test_passthrough(self):
        d = Uniform(0, 1)
        assert as_distribution(d) is d

    def test_energy_becomes_point(self):
        d = as_distribution(Energy(2.0))
        assert isinstance(d, PointMass)
        assert d.mean() == 2.0

    def test_number_becomes_point(self):
        assert as_distribution(1.5).mean() == 1.5

    def test_rejects_junk(self):
        with pytest.raises(EvaluationError):
            as_distribution("a lot")
