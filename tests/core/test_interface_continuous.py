"""Edge cases of interface evaluation with continuous ECVs.

The evaluator cannot enumerate a :class:`ContinuousECV`, so two fallback
paths exist (module docstring of :mod:`repro.core.interface`):

* expected/distribution mode falls back to **Monte Carlo** — which must
  be deterministic run-to-run, or serving-time memoization and test
  reproducibility both break;
* worst/best mode evaluates the **interval endpoints** — exact for
  interfaces monotone in the ECV, including nested compositions.
"""

import numpy as np
import pytest

from repro.core.distributions import Empirical
from repro.core.ecv import BernoulliECV, ContinuousECV
from repro.core.interface import EnergyInterface, evaluate
from repro.core.units import Energy


class LoadInterface(EnergyInterface):
    """Energy linear in a continuous utilisation ECV on [0.2, 0.8]."""

    def __init__(self):
        super().__init__("load")
        self.declare_ecv(ContinuousECV("utilisation", 0.2, 0.8))

    def E_tick(self, watts: float) -> Energy:
        return Energy(watts * self.ecv("utilisation"))


class NodeInterface(EnergyInterface):
    """Nests LoadInterface under a discrete branch of its own."""

    def __init__(self):
        super().__init__("node")
        self.cpu = LoadInterface()
        self.declare_ecv(BernoulliECV("boost", p=0.25))

    def E_step(self) -> Energy:
        base = self.cpu.E_tick(10.0)
        if self.ecv("boost"):
            return base + self.cpu.E_tick(4.0)
        return base


class TestMonteCarloDeterminism:
    def test_default_seed_reproducible(self):
        """Without an explicit rng, repeated evaluations agree exactly."""
        iface = LoadInterface()
        first = iface.expected("E_tick", 10.0)
        second = iface.expected("E_tick", 10.0)
        assert first.as_joules == second.as_joules
        # and the value is the uniform mean, up to sampling error
        assert first.as_joules == pytest.approx(5.0, rel=0.02)

    def test_fresh_interface_same_result(self):
        """Determinism holds across interface instances, not just calls."""
        assert (LoadInterface().expected("E_tick", 10.0).as_joules
                == LoadInterface().expected("E_tick", 10.0).as_joules)

    def test_explicit_seed_reproducible(self):
        iface = LoadInterface()
        draws = [evaluate(iface("E_tick", 10.0), mode="expected", rng=np.random.default_rng(99), n_samples=500).as_joules
                 for _ in range(2)]
        assert draws[0] == draws[1]

    def test_different_seeds_differ(self):
        iface = LoadInterface()
        a = evaluate(iface("E_tick", 10.0), mode="expected", rng=np.random.default_rng(1), n_samples=200)
        b = evaluate(iface("E_tick", 10.0), mode="expected", rng=np.random.default_rng(2), n_samples=200)
        assert a.as_joules != b.as_joules

    def test_distribution_mode_empirical_and_deterministic(self):
        iface = LoadInterface()
        first = iface.distribution("E_tick", 10.0)
        second = iface.distribution("E_tick", 10.0)
        assert isinstance(first, Empirical)
        assert first.mean() == second.mean()
        assert 2.0 <= first.lower_bound() <= first.upper_bound() <= 8.0

    def test_nested_discrete_and_continuous_deterministic(self):
        """A discrete branch over a continuous read still goes MC, and
        the default seed still pins the answer."""
        iface = NodeInterface()
        first = iface.expected("E_step")
        second = iface.expected("E_step")
        assert first.as_joules == second.as_joules
        # E = 10u + 0.25 * 4u with E[u] = 0.5 -> 5.5 J
        assert first.as_joules == pytest.approx(5.5, rel=0.05)


class TestWorstCaseEndpoints:
    def test_interval_upper_endpoint(self):
        iface = LoadInterface()
        assert iface.worst_case("E_tick", 10.0).as_joules == \
            pytest.approx(8.0)

    def test_interval_lower_endpoint_in_best_mode(self):
        iface = LoadInterface()
        best = evaluate(iface("E_tick", 10.0), mode="best")
        assert best.as_joules == pytest.approx(2.0)

    def test_nested_interfaces_take_joint_extremes(self):
        """Worst case of the composition: boost on AND utilisation at the
        top of its interval, across both interface layers — exact, not
        sampled."""
        iface = NodeInterface()
        worst = iface.worst_case("E_step")
        assert worst.as_joules == pytest.approx((10.0 + 4.0) * 0.8)

    def test_nested_best_case(self):
        iface = NodeInterface()
        best = evaluate(iface("E_step"), mode="best")
        assert best.as_joules == pytest.approx(10.0 * 0.2)

    def test_degenerate_interval(self):
        class Pinned(EnergyInterface):
            def __init__(self):
                super().__init__("pinned")
                self.declare_ecv(ContinuousECV("x", 0.3, 0.3))

            def E_op(self):
                return Energy(self.ecv("x"))

        assert Pinned().worst_case("E_op").as_joules == pytest.approx(0.3)

    def test_env_binding_overrides_interval(self):
        """Binding the continuous ECV to a narrower interval tightens the
        worst case (the §4 contract-refinement move)."""
        iface = LoadInterface()
        worst = evaluate(iface("E_tick", 10.0), mode="worst", env={"utilisation": ContinuousECV("utilisation", 0.2, 0.5)})
        assert worst.as_joules == pytest.approx(5.0)

    def test_free_function_worst_over_composition(self):
        node = NodeInterface()
        worst = evaluate(lambda: node.E_step() + node.cpu.E_tick(5.0),
                         mode="worst")
        assert worst.as_joules == pytest.approx((14.0 + 5.0) * 0.8)
