"""Property-based tests for the interface evaluator's invariants.

Hypothesis generates random piecewise-linear interfaces over Bernoulli
ECVs and checks the ordering and consistency laws every evaluation mode
must satisfy, regardless of interface shape:

* best <= expected <= worst,
* distribution mode's mean equals expected mode,
* distribution bounds equal best/worst,
* binding an ECV to a constant collapses the corresponding branch,
* trace probabilities always sum to 1.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ecv import BernoulliECV
from repro.core.interface import EnergyInterface, enumerate_traces, evaluate
from repro.core.units import Energy

probabilities = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)
coefficients = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=4, max_size=4)


def build_interface(p1, p2, coeffs):
    """A two-ECV interface with four distinct path energies."""

    class Generated(EnergyInterface):
        def __init__(self):
            super().__init__("generated")
            self.declare_ecv(BernoulliECV("a", p1))
            self.declare_ecv(BernoulliECV("b", p2))

        def E_op(self, scale):
            a, b = self.ecv("a"), self.ecv("b")
            index = (2 if a else 0) + (1 if b else 0)
            return Energy(coeffs[index] * scale)

    return Generated()


class TestEvaluatorLaws:
    @given(probabilities, probabilities, coefficients)
    @settings(max_examples=80)
    def test_mode_ordering(self, p1, p2, coeffs):
        iface = build_interface(p1, p2, coeffs)
        best = evaluate(iface("E_op", 2.0), mode="best").as_joules
        expected = iface.expected("E_op", 2.0).as_joules
        worst = iface.worst_case("E_op", 2.0).as_joules
        assert best - 1e-9 <= expected <= worst + 1e-9

    @given(probabilities, probabilities, coefficients)
    @settings(max_examples=80)
    def test_distribution_mean_equals_expected(self, p1, p2, coeffs):
        iface = build_interface(p1, p2, coeffs)
        expected = iface.expected("E_op", 2.0).as_joules
        dist = iface.distribution("E_op", 2.0)
        assert dist.mean() == pytest.approx(expected, rel=1e-9, abs=1e-12)

    @given(probabilities, probabilities, coefficients)
    @settings(max_examples=50)
    def test_distribution_bounds_equal_best_worst(self, p1, p2, coeffs):
        iface = build_interface(p1, p2, coeffs)
        dist = iface.distribution("E_op", 2.0)
        best = evaluate(iface("E_op", 2.0), mode="best").as_joules
        worst = iface.worst_case("E_op", 2.0).as_joules
        assert dist.lower_bound() == pytest.approx(best, abs=1e-12)
        assert dist.upper_bound() == pytest.approx(worst, abs=1e-12)

    @given(probabilities, probabilities, coefficients)
    @settings(max_examples=50)
    def test_trace_probabilities_normalise(self, p1, p2, coeffs):
        iface = build_interface(p1, p2, coeffs)
        traces = enumerate_traces(lambda: iface.E_op(1.0))
        assert sum(t.probability for t in traces) == pytest.approx(1.0)
        assert len(traces) <= 4

    @given(probabilities, probabilities, coefficients, st.booleans())
    @settings(max_examples=50)
    def test_binding_collapses_to_conditional_expectation(self, p1, p2,
                                                          coeffs, a_value):
        iface = build_interface(p1, p2, coeffs)
        bound = iface.expected("E_op", 1.0, env={"a": a_value}).as_joules
        base = 2 if a_value else 0
        manual = p2 * coeffs[base + 1] + (1 - p2) * coeffs[base]
        assert bound == pytest.approx(manual, rel=1e-9, abs=1e-12)

    @given(probabilities, probabilities, coefficients)
    @settings(max_examples=50)
    def test_law_of_total_expectation_over_binding(self, p1, p2, coeffs):
        """E[X] == p*E[X|a] + (1-p)*E[X|not a]."""
        iface = build_interface(p1, p2, coeffs)
        total = iface.expected("E_op", 1.0).as_joules
        given_true = iface.expected("E_op", 1.0, env={"a": True}).as_joules
        given_false = iface.expected("E_op", 1.0,
                                     env={"a": False}).as_joules
        assert total == pytest.approx(
            p1 * given_true + (1 - p1) * given_false, rel=1e-9, abs=1e-12)

    @given(probabilities, probabilities, coefficients,
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30)
    def test_samples_lie_within_bounds(self, p1, p2, coeffs, seed):
        iface = build_interface(p1, p2, coeffs)
        rng = np.random.default_rng(seed)
        sample = evaluate(iface("E_op", 1.0), mode="sample", rng=rng).as_joules
        best = evaluate(iface("E_op", 1.0), mode="best").as_joules
        worst = iface.worst_case("E_op", 1.0).as_joules
        assert best - 1e-12 <= sample <= worst + 1e-12
