"""Tests for the energy-interface evaluator (trace enumeration & modes)."""

import numpy as np
import pytest

from repro.core.distributions import Discrete, Empirical, Normal
from repro.core.ecv import (
    BernoulliECV,
    CategoricalECV,
    ContinuousECV,
    ECVEnvironment,
    UniformIntECV,
)
from repro.core.errors import EvaluationError, UnknownECVError
from repro.core.interface import (
    EnergyInterface,
    enumerate_traces,
    evaluate,
)
from repro.core.units import AbstractEnergy, Energy, Unit


class CacheInterface(EnergyInterface):
    """Fig. 1's cache-lookup interface, used throughout the tests."""

    def __init__(self, p_hit=0.9):
        super().__init__("cache")
        self.declare_ecv(BernoulliECV("hit", p=p_hit,
                                      description="cache hit"))

    def E_lookup(self, n):
        per_byte = 5 if self.ecv("hit") else 100
        return Energy.millijoules(per_byte * n)


class ServiceInterface(EnergyInterface):
    """A two-level interface: nests the cache interface."""

    def __init__(self):
        super().__init__("service")
        self.declare_ecv(BernoulliECV("request_hit", p=0.5))
        self.cache = CacheInterface()

    def E_handle(self, n):
        if self.ecv("request_hit"):
            return self.cache.E_lookup(n)
        return Energy.joules(50)


class TestDeterministicEvaluation:
    def test_expected_mode_weights_branches(self):
        iface = CacheInterface(p_hit=0.9)
        expected = iface.expected("E_lookup", 1000)
        assert expected.as_joules == pytest.approx(
            0.9 * 5.0 + 0.1 * 100.0)

    def test_env_override_forces_branch(self):
        iface = CacheInterface()
        assert iface.expected("E_lookup", 1000,
                              env={"hit": False}).as_joules == 100.0

    def test_qualified_env_override(self):
        iface = CacheInterface()
        result = iface.expected("E_lookup", 1000, env={"cache.hit": True})
        assert result.as_joules == pytest.approx(5.0)

    def test_worst_case(self):
        iface = CacheInterface()
        assert iface.worst_case("E_lookup", 1000).as_joules == 100.0

    def test_best_case(self):
        iface = CacheInterface()
        best = evaluate(iface("E_lookup", 1000), mode="best")
        assert best.as_joules == pytest.approx(5.0)

    def test_worst_ignores_probability_zero_support(self):
        # Even p=0.999 hit keeps the miss as worst case.
        iface = CacheInterface(p_hit=0.999)
        assert iface.worst_case("E_lookup", 1000).as_joules == 100.0

    def test_fixed_mode_requires_single_values(self):
        iface = CacheInterface()
        with pytest.raises(EvaluationError):
            evaluate(iface("E_lookup", 1000), mode="fixed")
        result = evaluate(iface("E_lookup", 1000), mode="fixed", env={"hit": True})
        assert result.as_joules == pytest.approx(5.0)

    def test_unknown_mode_rejected(self):
        iface = CacheInterface()
        with pytest.raises(EvaluationError):
            evaluate(iface("E_lookup", 1000), mode="pessimist")


class TestDistributionMode:
    def test_distribution_is_discrete(self):
        iface = CacheInterface(p_hit=0.75)
        dist = iface.distribution("E_lookup", 1000)
        assert isinstance(dist, Discrete)
        assert dist.mean() == pytest.approx(0.75 * 5 + 0.25 * 100)

    def test_distribution_bounds(self):
        dist = CacheInterface().distribution("E_lookup", 1000)
        assert dist.lower_bound() == pytest.approx(5.0)
        assert dist.upper_bound() == pytest.approx(100.0)

    def test_method_returning_distribution_mixes(self):
        class Noisy(EnergyInterface):
            def __init__(self):
                super().__init__("noisy")
                self.declare_ecv(BernoulliECV("warm", 0.5))

            def E_op(self):
                if self.ecv("warm"):
                    return Normal(1.0, 0.1)
                return Normal(2.0, 0.1)

        dist = Noisy().distribution("E_op")
        assert dist.mean() == pytest.approx(1.5)


class TestNestedInterfaces:
    def test_nested_expected(self):
        iface = ServiceInterface()
        # 0.5 * (0.9*5 + 0.1*100) + 0.5 * 50, all in Joules
        expected = iface.expected("E_handle", 1000)
        assert expected.as_joules == pytest.approx(
            0.5 * (0.9 * 5 + 0.1 * 100) + 0.5 * 50)

    def test_nested_trace_count(self):
        iface = ServiceInterface()
        traces = enumerate_traces(lambda: iface.E_handle(1000))
        assert len(traces) == 3  # hit+cachehit, hit+miss, miss

    def test_trace_probabilities_sum_to_one(self):
        iface = ServiceInterface()
        traces = enumerate_traces(lambda: iface.E_handle(1000))
        assert sum(t.probability for t in traces) == pytest.approx(1.0)

    def test_trace_assignments_recorded(self):
        iface = ServiceInterface()
        traces = enumerate_traces(lambda: iface.E_handle(1000))
        keys = set()
        for trace in traces:
            keys.update(trace.assignments)
        assert "service.request_hit" in keys
        assert "cache.hit" in keys

    def test_nested_env_override_by_qualified_name(self):
        iface = ServiceInterface()
        result = iface.expected("E_handle", 1000,
                                env={"service.request_hit": True,
                                     "cache.hit": False})
        assert result.as_joules == pytest.approx(100.0)


class TestCategoricalAndInt:
    def test_categorical_enumeration(self):
        class Dvfs(EnergyInterface):
            def __init__(self):
                super().__init__("dvfs")
                self.declare_ecv(CategoricalECV(
                    "state", {"low": 0.5, "high": 0.5}))

            def E_op(self):
                return Energy(1.0 if self.ecv("state") == "low" else 4.0)

        assert Dvfs().expected("E_op").as_joules == pytest.approx(2.5)

    def test_uniform_int_enumeration(self):
        class Retry(EnergyInterface):
            def __init__(self):
                super().__init__("retry")
                self.declare_ecv(UniformIntECV("attempts", 1, 4))

            def E_op(self):
                return Energy(float(self.ecv("attempts")))

        assert Retry().expected("E_op").as_joules == pytest.approx(2.5)


class TestContinuousFallback:
    class Leaky(EnergyInterface):
        def __init__(self):
            super().__init__("leaky")
            self.declare_ecv(ContinuousECV("temp", 20.0, 80.0))

        def E_op(self):
            return Energy(1.0 + 0.01 * self.ecv("temp"))

    def test_expected_falls_back_to_monte_carlo(self):
        rng = np.random.default_rng(0)
        result = self.Leaky().expected("E_op", rng=rng, n_samples=4000)
        assert result.as_joules == pytest.approx(1.5, rel=0.02)

    def test_distribution_mode_returns_empirical(self):
        rng = np.random.default_rng(0)
        dist = self.Leaky().distribution("E_op", rng=rng, n_samples=500)
        assert isinstance(dist, Empirical)

    def test_worst_uses_interval_endpoints(self):
        assert self.Leaky().worst_case("E_op").as_joules == pytest.approx(1.8)


class TestSampleMode:
    def test_sample_returns_energy(self):
        iface = CacheInterface()
        rng = np.random.default_rng(0)
        sample = evaluate(iface("E_lookup", 1000), mode="sample", rng=rng)
        assert sample.as_joules in (pytest.approx(5.0), pytest.approx(100.0))

    def test_sample_reproducible_with_seed(self):
        iface = CacheInterface()
        a = evaluate(iface("E_lookup", 1000), mode="sample", rng=np.random.default_rng(3))
        b = evaluate(iface("E_lookup", 1000), mode="sample", rng=np.random.default_rng(3))
        assert a == b


class TestAbstractOutcomes:
    class Abstract(EnergyInterface):
        def __init__(self):
            super().__init__("abstract")
            self.declare_ecv(BernoulliECV("hit", 0.5))

        def E_op(self):
            if self.ecv("hit"):
                return 2 * Unit("relu")
            return 4 * Unit("relu")

    def test_expected_averages_abstract(self):
        result = self.Abstract().expected("E_op")
        assert isinstance(result, AbstractEnergy)
        assert result.coefficient("relu") == pytest.approx(3.0)

    def test_distribution_mode_rejects_abstract(self):
        with pytest.raises(EvaluationError):
            self.Abstract().distribution("E_op")

    def test_worst_mode_rejects_abstract(self):
        with pytest.raises(EvaluationError):
            self.Abstract().worst_case("E_op")


class TestErrors:
    def test_undeclared_ecv_raises(self):
        class Bad(EnergyInterface):
            def E_op(self):
                return Energy(float(self.ecv("mystery")))

        with pytest.raises(UnknownECVError):
            Bad().expected("E_op")

    def test_ecv_read_outside_evaluation(self):
        iface = CacheInterface()
        with pytest.raises(EvaluationError):
            iface.ecv("hit")

    def test_max_traces_guard(self):
        class Wide(EnergyInterface):
            def __init__(self):
                super().__init__("wide")
                for index in range(20):
                    self.declare_ecv(BernoulliECV(f"b{index}", 0.5))

            def E_op(self):
                total = sum(1.0 for index in range(20)
                            if self.ecv(f"b{index}"))
                return Energy(total)

        with pytest.raises(EvaluationError):
            Wide().expected("E_op", max_traces=64)

    def test_junk_return_rejected(self):
        class Junk(EnergyInterface):
            def E_op(self):
                return "many joules"

        with pytest.raises(EvaluationError):
            Junk().expected("E_op")

    def test_free_function_evaluate(self):
        cache = CacheInterface()
        result = evaluate(lambda: cache.E_lookup(1000) + Energy(0.5),
                          mode="expected")
        assert result.as_joules == pytest.approx(0.9 * 5 + 0.1 * 100 + 0.5)


class TestDeclarations:
    def test_declarations_exposed(self):
        iface = CacheInterface()
        assert "hit" in iface.ecv_declarations

    def test_repr_mentions_ecvs(self):
        assert "hit" in repr(CacheInterface())

    def test_default_name_is_class_name(self):
        class Unnamed(EnergyInterface):
            pass

        assert Unnamed().name == "Unnamed"
