"""Tests for interface composition combinators."""

import pytest

from repro.core.composition import (
    BoundInterface,
    OverheadInterface,
    SequenceInterface,
)
from repro.core.ecv import BernoulliECV
from repro.core.errors import CompositionError
from repro.core.interface import EnergyInterface, evaluate
from repro.core.units import Energy, Unit


class CacheInterface(EnergyInterface):
    def __init__(self, p_hit=0.9):
        super().__init__("cache")
        self.declare_ecv(BernoulliECV("hit", p=p_hit))

    def E_lookup(self, n):
        return Energy(5.0 if self.ecv("hit") else 100.0)

    def helper(self):
        return "not an energy method"


class FlatInterface(EnergyInterface):
    def __init__(self):
        super().__init__("flat")

    def E_op(self, n):
        return Energy(float(n))


class TestBoundInterface:
    def test_binding_changes_expected(self):
        bound = BoundInterface(CacheInterface(0.9),
                               {"hit": BernoulliECV("hit", 0.5)})
        assert bound.expected("E_lookup", 1).as_joules == pytest.approx(52.5)

    def test_caller_env_still_overrides(self):
        bound = BoundInterface(CacheInterface(0.9),
                               {"hit": BernoulliECV("hit", 0.5)})
        forced = evaluate(bound("E_lookup", 1), env={"hit": True})
        assert forced.as_joules == pytest.approx(5.0)

    def test_binding_to_fixed_value(self):
        bound = BoundInterface(CacheInterface(), {"hit": False})
        assert bound.expected("E_lookup", 1).as_joules == 100.0

    def test_name_defaults_to_inner(self):
        assert BoundInterface(CacheInterface(), {}).name == "cache"

    def test_non_energy_attributes_pass_through(self):
        bound = BoundInterface(CacheInterface(), {})
        assert bound.helper() == "not an energy method"

    def test_inner_and_bindings_accessible(self):
        inner = CacheInterface()
        bound = BoundInterface(inner, {"hit": True})
        assert bound.inner is inner
        assert bound.bindings == {"hit": True}

    def test_direct_call_outside_evaluation_works_when_deterministic(self):
        # A bound E_ method called outside evaluate() delegates directly;
        # ECV reads then fail as usual, but methods without reads work.
        bound = BoundInterface(FlatInterface(), {})
        assert bound.E_op(3).as_joules == 3.0

    def test_double_binding_outer_wins_over_inner(self):
        inner_bound = BoundInterface(CacheInterface(),
                                     {"hit": BernoulliECV("hit", 1.0)})
        outer_bound = BoundInterface(inner_bound,
                                     {"hit": BernoulliECV("hit", 0.0)})
        # Precedence is caller env > outer manager > inner manager: a
        # higher-layer manager re-exporting an interface may specialise it.
        assert outer_bound.expected("E_lookup", 1).as_joules == 100.0


class TestOverheadInterface:
    def test_fixed_overhead_added(self):
        iface = OverheadInterface(FlatInterface(), Energy(1.0))
        assert iface.E_op(2).as_joules == pytest.approx(3.0)

    def test_float_overhead(self):
        iface = OverheadInterface(FlatInterface(), 0.5)
        assert iface.E_op(2).as_joules == pytest.approx(2.5)

    def test_callable_overhead_sees_args(self):
        iface = OverheadInterface(
            FlatInterface(),
            lambda method, args, kwargs: Energy(0.1 * args[0]))
        assert iface.E_op(10).as_joules == pytest.approx(11.0)

    def test_overhead_inside_evaluation(self):
        iface = OverheadInterface(CacheInterface(0.5), Energy(1.0))
        assert iface.expected("E_lookup", 1).as_joules == pytest.approx(53.5)

    def test_abstract_overhead_with_abstract_inner(self):
        class AbstractIface(EnergyInterface):
            def E_op(self):
                return 2 * Unit("relu")

        iface = OverheadInterface(AbstractIface(), lambda m, a, k: Unit("relu"))
        assert iface.E_op().coefficient("relu") == 3.0

    def test_mixed_abstract_concrete_rejected(self):
        class AbstractIface(EnergyInterface):
            def E_op(self):
                return 2 * Unit("relu")

        iface = OverheadInterface(AbstractIface(), Energy(1.0))
        with pytest.raises(CompositionError):
            iface.E_op()

    def test_inner_accessible(self):
        inner = FlatInterface()
        assert OverheadInterface(inner, 0.0).inner is inner


class TestSequenceInterface:
    def test_sums_steps(self):
        flat = FlatInterface()
        seq = SequenceInterface("pipeline", [
            (flat, "E_op", lambda n: (n,)),
            (flat, "E_op", lambda n: (2 * n,)),
        ])
        assert seq.E_sequence(3).as_joules == pytest.approx(9.0)

    def test_non_tuple_args_fn(self):
        flat = FlatInterface()
        seq = SequenceInterface("pipeline", [(flat, "E_op", lambda n: n)])
        assert seq.E_sequence(4).as_joules == 4.0

    def test_sequence_with_ecvs_enumerates(self):
        cache = CacheInterface(0.5)
        flat = FlatInterface()
        seq = SequenceInterface("pipeline", [
            (cache, "E_lookup", lambda n: (n,)),
            (flat, "E_op", lambda n: (n,)),
        ])
        expected = seq.expected("E_sequence", 10)
        assert expected.as_joules == pytest.approx(0.5 * 5 + 0.5 * 100 + 10)

    def test_empty_sequence_rejected(self):
        with pytest.raises(CompositionError):
            SequenceInterface("pipeline", [])
