"""DeprecationWarnings from the PR-4 shims must point at the *caller*.

A shim warning attributed to ``repro/core/session.py`` is useless — the
whole point of ``stacklevel`` is that ``python -W error::DeprecationWarning``
and CI logs name the file that needs migrating.  These tests freeze that
contract for every deprecated entry point: the recorded warning's
``filename``/``lineno`` must be *this* file, at the call line.
"""

import warnings

import pytest

from repro.core.ecv import BernoulliECV
from repro.core.interface import EnergyInterface
from repro.core.session import EvalSession
from repro.core.units import Energy


class LeafIface(EnergyInterface):
    def __init__(self) -> None:
        super().__init__("leaf")
        self.declare_ecv(BernoulliECV("warm", p=0.5, description="warm"))

    def E_op(self, n: int) -> Energy:
        return Energy(float(n) * (1.0 if self.ecv("warm") else 2.0))


def caught(fn):
    """Run ``fn``, returning the single DeprecationWarning it raises."""
    with warnings.catch_warnings(record=True) as records:
        warnings.simplefilter("always")
        fn()
    deprecations = [r for r in records
                    if issubclass(r.category, DeprecationWarning)]
    assert len(deprecations) == 1, deprecations
    return deprecations[0]


class TestWarningAttribution:
    def test_interface_evaluate_points_at_caller(self):
        iface = LeafIface()
        record = caught(lambda: iface.evaluate("E_op", 2))
        assert record.filename == __file__

    def test_session_evaluate_points_at_caller(self):
        iface = LeafIface()
        record = caught(
            lambda: EvalSession(seed=1).evaluate(iface, "E_op", 2))
        assert record.filename == __file__

    def test_session_evaluate_fn_points_at_caller(self):
        iface = LeafIface()
        record = caught(
            lambda: EvalSession(seed=1).evaluate_fn(lambda: iface.E_op(2)))
        assert record.filename == __file__

    def test_moved_module_default_points_at_caller(self):
        import repro.core.interface as interface_module

        record = caught(lambda: interface_module.DEFAULT_MAX_TRACES)
        assert record.filename == __file__

    def test_legacy_gateway_knobs_point_at_caller(self):
        from repro.serving.gateway import GatewayConfig

        record = caught(lambda: GatewayConfig(mc_engine="vector"))
        assert record.filename == __file__

    def test_lineno_is_the_call_line(self):
        import inspect

        iface = LeafIface()
        with warnings.catch_warnings(record=True) as records:
            warnings.simplefilter("always")
            expected_line = inspect.currentframe().f_lineno + 1
            iface.evaluate("E_op", 2)
        record = next(r for r in records
                      if issubclass(r.category, DeprecationWarning))
        assert record.lineno == expected_line


def test_migrated_suite_is_warning_clean():
    """The canonical spelling raises no DeprecationWarning at all."""
    from repro.core.interface import evaluate

    iface = LeafIface()
    with warnings.catch_warnings(record=True) as records:
        warnings.simplefilter("error", DeprecationWarning)
        value = evaluate(iface("E_op", 2), session=EvalSession(seed=1))
    assert value.as_joules == pytest.approx(3.0)
    assert not records
