"""Tests for human-readable interface rendering and tables."""

from repro.core.ecv import (
    BernoulliECV,
    CategoricalECV,
    ContinuousECV,
    FixedECV,
    UniformIntECV,
)
from repro.core.interface import EnergyInterface
from repro.core.report import describe_interface, format_comparison, format_table
from repro.core.units import Energy


class DocumentedInterface(EnergyInterface):
    """A cache lookup interface used to test rendering."""

    def __init__(self):
        super().__init__("cache")
        self.declare_ecv(BernoulliECV("hit", 0.9, description="found locally"))
        self.declare_ecv(CategoricalECV("tier", {"ssd": 0.5, "hdd": 0.5}))
        self.declare_ecv(FixedECV("line_size", 64))
        self.declare_ecv(UniformIntECV("retries", 0, 3))
        self.declare_ecv(ContinuousECV("temperature", 20.0, 90.0))

    def E_lookup(self, n):
        """Energy for one lookup."""
        return Energy(5.0 if self.ecv("hit") else 100.0)


class TestDescribeInterface:
    def test_mentions_name_and_ecvs(self):
        text = describe_interface(DocumentedInterface())
        assert "cache" in text
        assert "hit ~ Bernoulli(p=0.9)" in text
        assert "found locally" in text
        assert "tier ~ Categorical" in text
        assert "line_size ~ Fixed(64)" in text
        assert "retries ~ UniformInt[0, 3]" in text
        assert "temperature ~ Continuous[20, 90]" in text

    def test_includes_method_source(self):
        text = describe_interface(DocumentedInterface())
        assert "def E_lookup" in text
        assert "self.ecv(\"hit\")" in text or "self.ecv('hit')" in text

    def test_signature_only_mode(self):
        text = describe_interface(DocumentedInterface(),
                                  include_source=False)
        assert "def E_lookup" not in text
        assert "E_lookup" in text


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(["GPU", "Error"],
                             [["sim4090", "0.70%"], ["sim3070", "6.06%"]],
                             title="Table 1")
        lines = table.splitlines()
        assert lines[0] == "Table 1"
        assert lines[1].startswith("GPU")
        assert "sim4090" in table
        assert "6.06%" in table

    def test_handles_non_strings(self):
        table = format_table(["n", "joules"], [[1, 2.5]])
        assert "2.5" in table

    def test_column_widths_accommodate_longest(self):
        table = format_table(["a"], [["averyverylongvalue"]])
        header, separator, row = table.splitlines()
        assert len(separator) >= len("averyverylongvalue")


class TestFormatComparison:
    def test_basic(self):
        line = format_comparison("gpt2", 10.0, 9.5)
        assert "predicted 10 J" in line
        assert "measured 9.5 J" in line
        assert "5.26%" in line

    def test_zero_measurement(self):
        assert "n/a" in format_comparison("x", 1.0, 0.0)


class TestRenderStack:
    def test_fig2_style_rendering(self):
        from repro.core.stack import Layer, Resource, ResourceManager, \
            SystemStack

        class Mgr(ResourceManager):
            def known_bindings(self):
                return {"hit": True}

        hardware = Layer("hardware")
        hardware.add_manager(ResourceManager("driver")).register(
            Resource("accel", DocumentedInterface(),
                     description="vendor interface"))
        runtime = Layer("runtime")
        runtime.add_manager(Mgr("python")).register(
            Resource("webapp", DocumentedInterface()))
        from repro.core.report import render_stack
        text = render_stack(SystemStack([hardware, runtime]))
        lines = text.splitlines()
        # top-down: runtime before hardware
        assert lines[1] == "[runtime]"
        assert "[hardware]" in text
        assert "binds ['hit']" in text
        assert "resource accel" in text
        assert "vendor interface" in text
        assert "ECVs=" in text
