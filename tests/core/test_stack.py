"""Tests for the layered system stack (resources, managers, layers)."""

import pytest

from repro.core.ecv import BernoulliECV
from repro.core.errors import CompositionError
from repro.core.interface import EnergyInterface
from repro.core.stack import Layer, Resource, ResourceManager, SystemStack
from repro.core.units import Energy


class LeafInterface(EnergyInterface):
    def __init__(self, joules_per_op, name="leaf"):
        super().__init__(name)
        self.joules_per_op = joules_per_op
        self.declare_ecv(BernoulliECV("warm", 0.5))

    def E_op(self, n):
        factor = 1.0 if self.ecv("warm") else 2.0
        return Energy(self.joules_per_op * n * factor)


class KnowingManager(ResourceManager):
    """A manager that knows its resources are always warm."""

    def known_bindings(self):
        return {"warm": True}


def build_stack(joules_per_op=1.0):
    hardware = Layer("hardware")
    manager = hardware.add_manager(KnowingManager("driver"))
    manager.register(Resource("accel", LeafInterface(joules_per_op)))
    return SystemStack([hardware])


class TestResource:
    def test_requires_name(self):
        with pytest.raises(CompositionError):
            Resource("", LeafInterface(1.0))


class TestResourceManager:
    def test_register_and_lookup(self):
        manager = ResourceManager("m")
        resource = manager.register(Resource("r", LeafInterface(1.0)))
        assert manager.resource("r") is resource

    def test_duplicate_rejected(self):
        manager = ResourceManager("m")
        manager.register(Resource("r", LeafInterface(1.0)))
        with pytest.raises(CompositionError):
            manager.register(Resource("r", LeafInterface(2.0)))

    def test_unknown_lookup_rejected(self):
        with pytest.raises(CompositionError):
            ResourceManager("m").resource("ghost")

    def test_base_manager_exports_unwrapped(self):
        manager = ResourceManager("m")
        iface = LeafInterface(1.0)
        manager.register(Resource("r", iface))
        assert manager.export_interface("r") is iface

    def test_knowing_manager_binds_ecvs(self):
        manager = KnowingManager("m")
        manager.register(Resource("r", LeafInterface(1.0)))
        exported = manager.export_interface("r")
        assert exported.expected("E_op", 10).as_joules == pytest.approx(10.0)

    def test_export_all(self):
        manager = KnowingManager("m")
        manager.register(Resource("a", LeafInterface(1.0, "a")))
        manager.register(Resource("b", LeafInterface(2.0, "b")))
        assert set(manager.export_all()) == {"a", "b"}


class TestLayer:
    def test_manager_lookup(self):
        layer = Layer("os")
        manager = layer.add_manager(ResourceManager("systemd"))
        assert layer.manager("systemd") is manager

    def test_unknown_manager(self):
        with pytest.raises(CompositionError):
            Layer("os").manager("ghost")

    def test_resources_across_managers(self):
        layer = Layer("os")
        m1 = layer.add_manager(ResourceManager("a"))
        m2 = layer.add_manager(ResourceManager("b"))
        m1.register(Resource("r1", LeafInterface(1.0)))
        m2.register(Resource("r2", LeafInterface(1.0)))
        assert {r.name for r in layer.resources()} == {"r1", "r2"}

    def test_duplicate_export_detected(self):
        layer = Layer("os")
        m1 = layer.add_manager(ResourceManager("a"))
        m2 = layer.add_manager(ResourceManager("b"))
        m1.register(Resource("same", LeafInterface(1.0)))
        m2.register(Resource("same", LeafInterface(1.0)))
        with pytest.raises(CompositionError):
            layer.exported_interfaces()


class TestSystemStack:
    def test_layer_lookup(self):
        stack = build_stack()
        assert stack.layer("hardware").name == "hardware"

    def test_unknown_layer(self):
        with pytest.raises(CompositionError):
            build_stack().layer("cloud")

    def test_duplicate_layer_rejected(self):
        stack = build_stack()
        with pytest.raises(CompositionError):
            stack.add_layer(Layer("hardware"))

    def test_resource_path_lookup(self):
        stack = build_stack()
        assert stack.resource("hardware/accel").name == "accel"

    def test_bad_path_rejected(self):
        with pytest.raises(CompositionError):
            build_stack().resource("accel")

    def test_missing_resource_rejected(self):
        with pytest.raises(CompositionError):
            build_stack().resource("hardware/ghost")

    def test_exported_interface_applies_manager_knowledge(self):
        stack = build_stack(joules_per_op=2.0)
        iface = stack.exported_interface("hardware/accel")
        assert iface.expected("E_op", 5).as_joules == pytest.approx(10.0)

    def test_replace_layer_retargets(self):
        """§3's machine-swap: replace hardware, predictions change."""
        stack = build_stack(joules_per_op=1.0)
        before = stack.exported_interface("hardware/accel").expected(
            "E_op", 10).as_joules

        replacement = Layer("hardware")
        manager = replacement.add_manager(KnowingManager("driver"))
        manager.register(Resource("accel", LeafInterface(3.0)))
        stack.replace_layer("hardware", replacement)

        after = stack.exported_interface("hardware/accel").expected(
            "E_op", 10).as_joules
        assert after == pytest.approx(3.0 * before)

    def test_replace_missing_layer_rejected(self):
        with pytest.raises(CompositionError):
            build_stack().replace_layer("cloud", Layer("cloud"))

    def test_stack_bindings_merge_upward(self):
        hardware = Layer("hardware")
        hw_manager = hardware.add_manager(KnowingManager("driver"))
        hw_manager.register(Resource("accel", LeafInterface(1.0)))

        class UpperManager(ResourceManager):
            def known_bindings(self):
                return {"warm": False, "request_hit": True}

        runtime = Layer("runtime")
        runtime.add_manager(UpperManager("python"))
        stack = SystemStack([hardware, runtime])
        bindings = stack.stack_bindings()
        assert bindings["warm"] is False  # higher layer wins
        assert bindings["request_hit"] is True

    def test_repr_shows_order(self):
        stack = build_stack()
        stack.add_layer(Layer("os"))
        assert "hardware -> os" in repr(stack)
