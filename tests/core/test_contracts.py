"""Tests for energy contracts (§4.1)."""

import pytest

from repro.core.contracts import (
    BudgetContract,
    ConstantEnergyContract,
    UpperBoundContract,
    check_refinement,
)
from repro.core.ecv import BernoulliECV
from repro.core.errors import ContractViolation
from repro.core.interface import EnergyInterface
from repro.core.units import Energy


class LinearInterface(EnergyInterface):
    def __init__(self, slope, name="linear"):
        super().__init__(name)
        self.slope = slope

    def E_op(self, n):
        return Energy(self.slope * n)


class StochasticInterface(EnergyInterface):
    def __init__(self, lo=1.0, hi=3.0):
        super().__init__("stochastic")
        self.lo, self.hi = lo, hi
        self.declare_ecv(BernoulliECV("fast_path", 0.5))

    def E_op(self, n):
        return Energy((self.lo if self.ecv("fast_path") else self.hi) * n)


class TestUpperBoundContract:
    def test_conforming_implementation_passes(self):
        bound = LinearInterface(2.0, "bound")
        impl = LinearInterface(1.0, "impl")
        report = UpperBoundContract(bound.E_op).check(impl.E_op,
                                                      [1, 10, 100])
        assert report.ok
        assert report.checked == 3

    def test_violating_implementation_fails(self):
        bound = LinearInterface(1.0, "bound")
        impl = LinearInterface(2.0, "impl")
        report = UpperBoundContract(bound.E_op).check(impl.E_op, [5])
        assert not report.ok
        assert report.violations[0].inputs == (5,)

    def test_worst_case_of_implementation_is_checked(self):
        bound = LinearInterface(2.0, "bound")
        impl = StochasticInterface(lo=0.5, hi=3.0)
        report = UpperBoundContract(bound.E_op).check(impl.E_op, [1])
        assert not report.ok  # worst case 3.0 > bound 2.0

    def test_slack_allows_small_overshoot(self):
        bound = LinearInterface(1.0, "bound")
        impl = LinearInterface(1.04, "impl")
        assert not UpperBoundContract(bound.E_op).check(impl.E_op, [1]).ok
        assert UpperBoundContract(bound.E_op,
                                  slack=0.05).check(impl.E_op, [1]).ok

    def test_negative_slack_rejected(self):
        with pytest.raises(ContractViolation):
            UpperBoundContract(lambda n: Energy(1.0), slack=-0.1)

    def test_raise_on_violation(self):
        bound = LinearInterface(1.0, "bound")
        impl = LinearInterface(2.0, "impl")
        report = UpperBoundContract(bound.E_op).check(impl.E_op, [1])
        with pytest.raises(ContractViolation):
            report.raise_on_violation()

    def test_tuple_inputs(self):
        class TwoArg(EnergyInterface):
            def E_op(self, a, b):
                return Energy(float(a + b))

        bound = TwoArg()
        report = UpperBoundContract(bound.E_op).check(bound.E_op,
                                                      [(1, 2), (3, 4)])
        assert report.ok

    def test_report_str(self):
        bound = LinearInterface(2.0, "bound")
        report = UpperBoundContract(bound.E_op).check(bound.E_op, [1])
        assert "OK" in str(report)


class TestBudgetContract:
    def test_within_budget(self):
        impl = LinearInterface(1.0)
        assert BudgetContract(Energy(100)).check(impl.E_op, [1, 50, 99]).ok

    def test_over_budget_flagged(self):
        impl = LinearInterface(1.0)
        report = BudgetContract(Energy(10)).check(impl.E_op, [5, 20])
        assert len(report.violations) == 1
        assert report.violations[0].inputs == (20,)

    def test_budget_accepts_float(self):
        assert BudgetContract(5.0).budget == Energy(5.0)

    def test_stochastic_worst_case_checked(self):
        impl = StochasticInterface(lo=1.0, hi=20.0)
        report = BudgetContract(Energy(10)).check(impl.E_op, [1])
        assert not report.ok


class TestConstantEnergyContract:
    def test_constant_implementation_passes(self):
        class Constant(EnergyInterface):
            def E_op(self, n):
                return Energy(7.0)

        report = ConstantEnergyContract().check(Constant().E_op, [1, 2, 3])
        assert report.ok

    def test_input_dependent_energy_fails(self):
        impl = LinearInterface(1.0)
        report = ConstantEnergyContract().check(impl.E_op, [1, 2])
        assert not report.ok

    def test_ecv_dependent_energy_fails(self):
        """The side-channel case: same input, ECV-visible variation."""
        impl = StochasticInterface(lo=1.0, hi=2.0)
        report = ConstantEnergyContract().check(impl.E_op, [5])
        assert not report.ok

    def test_tolerance_allows_small_jitter(self):
        class Jittery(EnergyInterface):
            def __init__(self):
                super().__init__("jittery")
                self.declare_ecv(BernoulliECV("x", 0.5))

            def E_op(self, n):
                return Energy(100.0 + (0.001 if self.ecv("x") else 0.0))

        assert not ConstantEnergyContract(rel_tol=1e-6).check(
            Jittery().E_op, [1]).ok
        assert ConstantEnergyContract(rel_tol=1e-3).check(
            Jittery().E_op, [1]).ok

    def test_empty_inputs_trivially_ok(self):
        report = ConstantEnergyContract().check(
            LinearInterface(1.0).E_op, [])
        assert report.ok


class TestRefinement:
    def test_compatible_composition(self):
        abstract = LinearInterface(3.0, "abstract")
        concrete = StochasticInterface(lo=1.0, hi=2.5)
        report = check_refinement(abstract.E_op, concrete.E_op, [1, 10])
        assert report.ok

    def test_incompatible_composition_flagged(self):
        abstract = LinearInterface(2.0, "abstract")
        concrete = StochasticInterface(lo=1.0, hi=2.5)
        report = check_refinement(abstract.E_op, concrete.E_op, [1])
        assert not report.ok

    def test_violation_str_mentions_energies(self):
        abstract = LinearInterface(1.0, "abstract")
        concrete = LinearInterface(2.0, "concrete")
        report = check_refinement(abstract.E_op, concrete.E_op, [3])
        text = str(report.violations[0])
        assert "exceeds" in text
