"""Tests for the fault-injection layer and the unified policy/error API.

The load-bearing contracts:

* **replayable chaos** — the same seed and the same
  :class:`~repro.faults.FaultPlan` produce bitwise-identical values and
  identical degradation decisions under the serial, vectorized and
  multi-process engines;
* **the resilience pipeline** — retry with capped, seeded-jitter
  backoff; simulated deadlines; the cache → bound → reject ladder;
* **engine-level faults** — a parallel run that loses shards recomputes
  them and still matches the vector engine bitwise, and the pickling
  fallback surfaces its cause instead of swallowing it;
* **the error taxonomy** — one root, stable unique codes, and
  dual-inheritance shims that keep historical ``except ValueError`` /
  ``except RuntimeError`` handlers working;
* **the policy façade** — one declarative :class:`~repro.core.policy.
  Policy` accepted everywhere, with deprecation shims for the old
  per-knob spellings.
"""

import math
import warnings

import numpy as np
import pytest

from repro.core.ecv import BernoulliECV, ContinuousECV
from repro.core.errors import (
    ERROR_CODES,
    DeadlineExceeded,
    EventStateError,
    FaultInjected,
    HardwareError,
    IntervalError,
    ReproError,
    ServingError,
    SimTimeError,
)
from repro.core.interface import EnergyInterface, evaluate
from repro.core.policy import (
    DeadlinePolicy,
    DegradePolicy,
    Policy,
    RetryPolicy,
    resolve_policy,
)
from repro.core.session import EvalSession, SpanRecorder
from repro.core.units import Energy, as_joules
from repro.faults import (
    EvalOutcome,
    FaultHook,
    FaultPlan,
    FaultSpec,
    ResilientEvaluator,
)
from repro.hardware.ledger import EnergyLedger, EnergyRecord
from repro.managers.base import ComponentHealth


class FlakyInterface(EnergyInterface):
    """An ECV-bearing interface for chaos runs (picklable, module level)."""

    def __init__(self):
        super().__init__("flaky")
        self.declare_ecv(BernoulliECV("hit", 0.6))
        self.declare_ecv(ContinuousECV("scale", low=0.5, high=2.0))

    def E_op(self, n):
        hit = self.ecv("hit")
        return Energy((hit * 1.0 + (1 - hit) * 3.0) * n * self.ecv("scale"))


def _outcome_signature(outcome: EvalOutcome):
    joules = None if outcome.value is None else as_joules(outcome.value)
    return (outcome.status, joules, outcome.attempts, outcome.faults,
            outcome.latency_s)


def _chaos_run(engine, *, entropy=99, probability=0.3, rounds=30):
    session = EvalSession(seed=11, engine=engine, n_samples=64)
    FaultHook(FaultPlan.uniform(probability, entropy=entropy)
              ).install(session)
    resilient = ResilientEvaluator(
        session, Policy(retry=RetryPolicy(max_attempts=3),
                        deadline=DeadlinePolicy(timeout_s=0.5)))
    interface = FlakyInterface()
    return [_outcome_signature(resilient.evaluate_call(
        interface("E_op", n % 4 + 1), mode="expected"))
        for n in range(rounds)]


class TestReplayableChaos:
    def test_identical_outcomes_across_engines(self):
        serial = _chaos_run("serial")
        assert serial == _chaos_run("vector")
        assert serial == _chaos_run("parallel")
        statuses = {sig[0] for sig in serial}
        assert "ok" in statuses
        assert statuses - {"ok"}, (
            "the 30% plan never degraded anything — injection is dead")

    def test_plan_replay_and_clone(self):
        plan = FaultPlan.uniform(0.4, entropy=5)
        first = [plan.decide("interface") is not None for _ in range(50)]
        plan.reset()
        second = [plan.decide("interface") is not None for _ in range(50)]
        assert first == second
        cloned = plan.clone()
        assert first == [cloned.decide("interface") is not None
                         for _ in range(50)]
        assert any(first) and not all(first)

    def test_different_entropy_differs(self):
        a = _chaos_run("vector", entropy=1)
        b = _chaos_run("vector", entropy=2)
        assert a != b

    def test_nested_evaluations_do_not_consume_decisions(self):
        # A fault plan consults once per *top-level* evaluation, so the
        # visit count is engine-independent even though the serial
        # engine re-enters the body per sample.
        counts = {}
        for engine in ("serial", "vector"):
            session = EvalSession(seed=3, engine=engine, n_samples=32)
            hook = FaultHook(FaultPlan.uniform(0.0, entropy=1)
                             ).install(session)
            evaluate(FlakyInterface()("E_op", 2), session=session,
                     mode="expected")
            counts[engine] = dict(hook.plan.visits)
        assert counts["serial"] == counts["vector"]


class TestResiliencePipeline:
    def _evaluator(self, specs, policy=None, entropy=7):
        session = EvalSession(seed=1, engine="vector", n_samples=32)
        hook = FaultHook(FaultPlan(specs, entropy=entropy)).install(session)
        resilient = ResilientEvaluator(
            session,
            policy if policy is not None
            else Policy(retry=RetryPolicy(max_attempts=3),
                        deadline=DeadlinePolicy(timeout_s=0.5)))
        return resilient, hook

    def test_certain_fault_degrades_to_bound(self):
        resilient, _ = self._evaluator([FaultSpec("interface", 1.0)])
        outcome = resilient.evaluate_call(FlakyInterface()("E_op", 2),
                                          mode="expected")
        assert outcome.status == "degraded-bound"
        assert outcome.attempts == 3
        assert "fault-injected" in outcome.faults
        # The bound is the suspended worst-mode evaluation: pessimistic
        # (>= the clean expected value) but finite and usable.
        assert math.isfinite(as_joules(outcome.value))

    def test_cache_tier_answers_after_one_success(self):
        resilient, hook = self._evaluator([FaultSpec("interface", 1.0)])
        interface = FlakyInterface()
        with hook.suspended():
            clean = resilient.evaluate_call(interface("E_op", 2),
                                            mode="expected")
        assert clean.ok
        faulty = resilient.evaluate_call(interface("E_op", 2),
                                         mode="expected")
        assert faulty.status == "degraded-cache"
        assert as_joules(faulty.value) == as_joules(clean.value)

    def test_reject_when_ladder_is_empty(self):
        resilient, _ = self._evaluator(
            [FaultSpec("interface", 1.0)],
            policy=Policy(retry=RetryPolicy(max_attempts=2),
                          degrade=DegradePolicy(ladder=("reject",))))
        outcome = resilient.evaluate_call(FlakyInterface()("E_op", 2),
                                          mode="expected")
        assert outcome.status == "rejected"
        assert not outcome.accepted
        assert isinstance(outcome.error, FaultInjected)
        with pytest.raises(FaultInjected):
            outcome.raise_for_status()

    def test_latency_faults_trip_the_deadline(self):
        resilient, _ = self._evaluator(
            [FaultSpec("latency", 1.0, latency_s=2.0)])
        outcome = resilient.evaluate_call(FlakyInterface()("E_op", 2),
                                          mode="expected")
        assert "deadline-exceeded" in outcome.faults
        assert outcome.latency_s > 0.5
        assert outcome.status == "degraded-bound"

    def test_nan_hardware_reading_is_never_served(self):
        resilient, _ = self._evaluator(
            [FaultSpec("hardware", 1.0, kind="nan")])
        outcome = resilient.evaluate_call(FlakyInterface()("E_op", 2),
                                          mode="expected")
        assert outcome.status != "ok"
        if outcome.value is not None:
            assert not math.isnan(as_joules(outcome.value))

    def test_backoff_is_capped_and_jittered(self):
        retry = RetryPolicy(base_delay_s=0.01, max_delay_s=0.05,
                            jitter=0.5)
        assert retry.backoff_s(1, unit=0.5) == pytest.approx(0.01)
        assert retry.backoff_s(2, unit=0.5) == pytest.approx(0.02)
        assert retry.backoff_s(10, unit=0.5) == pytest.approx(0.05)
        assert retry.backoff_s(1, unit=1.0) == pytest.approx(0.015)
        assert retry.backoff_s(1, unit=0.0) == pytest.approx(0.005)

    def test_deadline_error_carries_budget(self):
        exc = DeadlineExceeded("late", deadline_s=0.5, elapsed_s=0.7)
        assert exc.deadline_s == 0.5
        assert exc.elapsed_s == 0.7
        assert exc.code == "deadline-exceeded"


class TestEngineFaults:
    def test_dead_shards_recompute_bitwise_identical(self):
        interface = FlakyInterface()
        clean = EvalSession(seed=11, engine="vector")
        reference = evaluate(interface("E_op", 8), session=clean,
                             mode="distribution", n_samples=4000)

        from repro.core.mcengine import ParallelEngine
        chaotic = EvalSession(seed=11, engine=ParallelEngine(shards=4))
        hook = FaultHook(FaultPlan(
            [FaultSpec("mcengine.shard", 1.0)], entropy=3)
        ).install(chaotic)
        survived = evaluate(interface("E_op", 8), session=chaotic,
                            mode="distribution", n_samples=4000)
        assert np.array_equal(np.asarray(reference._samples),
                              np.asarray(survived._samples))
        assert hook.injected.get("mcengine.shard", 0) > 0

    def test_pickle_fallback_chains_cause_and_annotates(self):
        class Unpicklable(EnergyInterface):
            def __init__(self):
                super().__init__("unpicklable")
                self.declare_ecv(ContinuousECV("x", low=0.0, high=1.0))
                self._trap = lambda: None  # locals cannot be pickled

            def E_op(self, n):
                return Energy(n * self.ecv("x"))

        recorder = SpanRecorder()
        session = EvalSession(seed=1, engine="parallel",
                              hooks=[recorder])
        dist = evaluate(Unpicklable()("E_op", 4), session=session,
                        mode="distribution", n_samples=4000)
        assert len(np.asarray(dist._samples)) == 4000
        rendered = "\n".join(
            str(root.notes) for root in recorder.roots)
        assert "parallel fallback" in rendered


class TestErrorTaxonomy:
    def test_codes_are_unique_and_stable(self):
        assert len(ERROR_CODES) == len(set(ERROR_CODES))
        for code in ("fault-injected", "deadline-exceeded",
                     "budget-exceeded", "serving", "hardware"):
            assert code in ERROR_CODES

    def test_every_error_is_a_repro_error(self):
        for cls in ERROR_CODES.values():
            assert issubclass(cls, ReproError)

    def test_dual_inheritance_shims(self):
        # Historical handlers caught builtins; the typed hierarchy must
        # still land in those except blocks.
        assert issubclass(SimTimeError, ValueError)
        assert issubclass(IntervalError, ValueError)
        assert issubclass(EventStateError, RuntimeError)
        assert issubclass(SimTimeError, ReproError)

    def test_to_dict_round_trip(self):
        exc = FaultInjected("boom", site="ecv")
        payload = exc.to_dict()
        assert payload["code"] == "fault-injected"
        assert payload["message"] == "boom"


class TestPolicyFacade:
    def test_session_accepts_policy(self):
        session = EvalSession(policy=Policy(mc_engine="serial",
                                            n_samples=64))
        assert session.engine.name == "serial"
        assert session.n_samples == 64

    def test_gateway_config_legacy_kwargs_warn_but_work(self):
        from repro.serving.gateway import GatewayConfig
        with pytest.warns(DeprecationWarning):
            config = GatewayConfig(mc_engine="serial",
                                   admission_quantile=0.9)
        assert config.mc_engine == "serial"
        assert config.policy.mc_engine == "serial"
        assert config.admission_quantile == 0.9

    def test_gateway_config_policy_spelling_is_silent(self):
        from repro.serving.gateway import GatewayConfig
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = GatewayConfig(policy=Policy(mc_engine="parallel"))
        assert config.mc_engine == "parallel"

    def test_resolve_policy_legacy_wins(self):
        with pytest.warns(DeprecationWarning):
            resolved = resolve_policy(Policy(mc_engine="vector"),
                                      mc_engine="serial")
        assert resolved.mc_engine == "serial"

    def test_degrade_policy_validates_tiers(self):
        with pytest.raises(ServingError):
            DegradePolicy(ladder=("cache", "teleport"))


class TestComponentHealth:
    def test_breaker_opens_probates_and_half_opens(self):
        health = ComponentHealth(threshold=2, probation=2)
        health.mark_failure("n0")
        assert not health.quarantined("n0")
        health.mark_failure("n0")
        assert health.quarantined("n0")      # probation check 1
        assert health.quarantined("n0")      # probation check 2
        assert not health.quarantined("n0")  # half-open trial
        assert health.quarantined("n0")      # trial unused: re-armed
        health.mark_success("n0")
        assert not health.quarantined("n0")

    def test_healthy_never_empties_the_pool(self):
        health = ComponentHealth(threshold=1, probation=10)
        health.mark_failure("a")
        health.mark_failure("b")
        assert health.healthy(["a", "b"]) == ["a", "b"]
        health2 = ComponentHealth(threshold=1, probation=10)
        health2.mark_failure("a")
        assert health2.healthy(["a", "b"]) == ["b"]


class TestLedgerQuarantine:
    def test_nan_record_is_rejected(self):
        with pytest.raises(HardwareError):
            EnergyRecord("gpu", "pkg", 0.0, 1.0, float("nan"))
        with pytest.raises(HardwareError):
            EnergyRecord("gpu", "pkg", 0.0, 1.0, float("inf"))

    def test_log_reading_quarantines_garbage(self):
        ledger = EnergyLedger()
        assert ledger.log_reading("gpu", "pkg", 0.0, 1.0,
                                  float("nan")) is None
        assert ledger.log_reading("gpu", "pkg", 1.0, 2.0, -4.0) is None
        assert ledger.log_reading("gpu", "pkg", 2.0, 3.0, 5.0) is not None
        assert ledger.dropped == {"gpu": 2}
        assert ledger.total_joules() == 5.0
