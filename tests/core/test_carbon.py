"""Tests for carbon-aware scheduling over energy interfaces."""

import pytest

from repro.core.carbon import (
    SECONDS_PER_DAY,
    CarbonAwareScheduler,
    CarbonIntensitySignal,
    carbon_of,
    diurnal_grid,
)
from repro.core.errors import EnergyError
from repro.core.units import Energy

NOON = SECONDS_PER_DAY / 2
EVENING = SECONDS_PER_DAY * 0.8


class TestSignal:
    def test_diurnal_shape(self):
        grid = diurnal_grid(base_g_per_kwh=100.0, peak_g_per_kwh=400.0)
        assert grid.at(NOON) < grid.at(EVENING)
        assert grid.at(0.0) == pytest.approx(grid.at(SECONDS_PER_DAY),
                                             rel=1e-6)

    def test_average_brackets_extremes(self):
        grid = diurnal_grid()
        mean = grid.average(0.0, SECONDS_PER_DAY)
        lows = min(grid.at(t) for t in range(0, 86400, 900))
        highs = max(grid.at(t) for t in range(0, 86400, 900))
        assert lows < mean < highs

    def test_negative_intensity_rejected(self):
        bad = CarbonIntensitySignal(lambda t: -1.0)
        with pytest.raises(EnergyError):
            bad.at(0.0)

    def test_validation(self):
        with pytest.raises(EnergyError):
            diurnal_grid(base_g_per_kwh=500.0, peak_g_per_kwh=100.0)
        with pytest.raises(EnergyError):
            diurnal_grid(solar_dip_fraction=2.0)
        with pytest.raises(EnergyError):
            diurnal_grid().average(10.0, 5.0)


class TestCarbonOf:
    def test_unit_conversion(self):
        # 1 kWh at 300 g/kWh = 300 g
        assert carbon_of(Energy.kilowatt_hours(1), 300.0) == \
            pytest.approx(300.0)

    def test_accepts_joules(self):
        assert carbon_of(3.6e6, 100.0) == pytest.approx(100.0)

    def test_rejects_negative_intensity(self):
        with pytest.raises(EnergyError):
            carbon_of(1.0, -5.0)


class TestScheduler:
    def test_constant_grid_makes_start_irrelevant(self):
        scheduler = CarbonAwareScheduler(
            CarbonIntensitySignal(lambda t: 200.0))
        flat_power = lambda t: 1000.0
        a = scheduler.emissions(flat_power, 3600.0, start_s=0.0)
        b = scheduler.emissions(flat_power, 3600.0, start_s=40_000.0)
        assert a == pytest.approx(b)

    def test_best_start_lands_in_the_clean_window(self):
        """A 2-hour job with a full-day deadline runs where the grid is
        cleanest — mid-morning through noon on this shape — and far from
        the evening peak."""
        grid = diurnal_grid()
        scheduler = CarbonAwareScheduler(grid)
        choice = scheduler.best_start(lambda t: 5000.0,
                                      duration_s=2 * 3600.0,
                                      deadline_s=SECONDS_PER_DAY)
        midpoint = choice.start_seconds + 3600.0
        assert grid.at(midpoint) < 0.7 * grid.average(0.0, SECONDS_PER_DAY)
        assert abs(midpoint - EVENING) > 6 * 3600.0

    def test_deadline_limits_the_choice(self):
        """With only 3 hours of slack from midnight, the job cannot reach
        the solar window and emits more."""
        scheduler = CarbonAwareScheduler(diurnal_grid())
        free = scheduler.best_start(lambda t: 5000.0, 2 * 3600.0,
                                    deadline_s=SECONDS_PER_DAY)
        tight = scheduler.best_start(lambda t: 5000.0, 2 * 3600.0,
                                     deadline_s=5 * 3600.0)
        assert tight.grams > free.grams
        assert tight.start_seconds <= 3 * 3600.0

    def test_emissions_match_hand_integral(self):
        grid = CarbonIntensitySignal(lambda t: 100.0 if t < 1800 else 300.0)
        scheduler = CarbonAwareScheduler(grid, resolution_s=1800.0)
        grams = scheduler.emissions(lambda t: 3600.0, 3600.0, start_s=0.0)
        # 3600 W * 1800 s = 1.8 kWh at 100 then at 300 g/kWh
        assert grams == pytest.approx(1.8 * 100 + 1.8 * 300)

    def test_infeasible_deadline_rejected(self):
        scheduler = CarbonAwareScheduler(diurnal_grid())
        with pytest.raises(EnergyError):
            scheduler.best_start(lambda t: 1.0, duration_s=7200.0,
                                 deadline_s=3600.0)

    def test_negative_power_rejected(self):
        scheduler = CarbonAwareScheduler(diurnal_grid())
        with pytest.raises(EnergyError):
            scheduler.emissions(lambda t: -1.0, 3600.0, 0.0)

    def test_savings_versus_naive_start(self):
        """The whole point: interface + signal saves double-digit carbon
        against 'just start now' (at the evening peak)."""
        scheduler = CarbonAwareScheduler(diurnal_grid())
        power = lambda t: 6510.0    # the M2 fuzzing fleet's draw
        duration = 6 * 3600.0
        naive = scheduler.emissions(power, duration, start_s=EVENING)
        best = scheduler.best_start(power, duration,
                                    deadline_s=2 * SECONDS_PER_DAY)
        assert best.grams < 0.75 * naive
