"""Unit tests for energy-critical variables and environments."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ecv import (
    BernoulliECV,
    CategoricalECV,
    ContinuousECV,
    ECVEnvironment,
    FixedECV,
    UniformIntECV,
    as_ecv,
)
from repro.core.errors import ECVBindingError

RNG = np.random.default_rng(7)


class TestBernoulli:
    def test_support(self):
        ecv = BernoulliECV("hit", 0.3)
        assert dict(ecv.support()) == {False: pytest.approx(0.7),
                                       True: pytest.approx(0.3)}

    def test_degenerate_true(self):
        assert BernoulliECV("hit", 1.0).support() == [(True, 1.0)]

    def test_degenerate_false(self):
        assert BernoulliECV("hit", 0.0).support() == [(False, 1.0)]

    def test_sample_frequency(self):
        ecv = BernoulliECV("hit", 0.8)
        draws = [ecv.sample(RNG) for _ in range(1000)]
        assert 0.72 < np.mean(draws) < 0.88

    def test_extreme_values(self):
        assert set(BernoulliECV("hit", 0.5).extreme_values()) == {True, False}

    def test_is_enumerable(self):
        assert BernoulliECV("hit", 0.5).is_enumerable()

    def test_rejects_bad_probability(self):
        with pytest.raises(ECVBindingError):
            BernoulliECV("hit", 1.5)

    def test_rejects_empty_name(self):
        with pytest.raises(ECVBindingError):
            BernoulliECV("", 0.5)


class TestCategorical:
    def test_support_normalised(self):
        ecv = CategoricalECV("state", {"a": 1.0, "b": 0.0, "c": 0.0})
        assert ecv.support() == [("a", 1.0)]

    def test_sampling_covers_support(self):
        ecv = CategoricalECV("state", {"a": 0.5, "b": 0.5})
        draws = {ecv.sample(RNG) for _ in range(200)}
        assert draws == {"a", "b"}

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ECVBindingError):
            CategoricalECV("state", {"a": 0.5, "b": 0.6})

    def test_rejects_empty(self):
        with pytest.raises(ECVBindingError):
            CategoricalECV("state", {})

    def test_rejects_negative(self):
        with pytest.raises(ECVBindingError):
            CategoricalECV("state", {"a": -0.5, "b": 1.5})


class TestFixed:
    def test_support_single(self):
        assert FixedECV("n", 42).support() == [(42, 1.0)]

    def test_sample_constant(self):
        assert FixedECV("n", 42).sample(RNG) == 42

    def test_extremes(self):
        assert FixedECV("n", 42).extreme_values() == [42]


class TestUniformInt:
    def test_support(self):
        ecv = UniformIntECV("k", 1, 3)
        assert ecv.support() == [(1, pytest.approx(1 / 3)),
                                 (2, pytest.approx(1 / 3)),
                                 (3, pytest.approx(1 / 3))]

    def test_extremes(self):
        assert UniformIntECV("k", 1, 5).extreme_values() == [1, 5]

    def test_degenerate_extremes(self):
        assert UniformIntECV("k", 2, 2).extreme_values() == [2]

    def test_samples_in_range(self):
        ecv = UniformIntECV("k", 3, 6)
        assert all(3 <= ecv.sample(RNG) <= 6 for _ in range(100))

    def test_rejects_inverted(self):
        with pytest.raises(ECVBindingError):
            UniformIntECV("k", 5, 1)


class TestContinuous:
    def test_not_enumerable(self):
        ecv = ContinuousECV("load", 0.0, 1.0)
        assert ecv.support() is None
        assert not ecv.is_enumerable()

    def test_default_sampler_uniform(self):
        ecv = ContinuousECV("load", 2.0, 3.0)
        draws = [ecv.sample(RNG) for _ in range(100)]
        assert all(2.0 <= value <= 3.0 for value in draws)

    def test_custom_sampler_clamped(self):
        ecv = ContinuousECV("load", 0.0, 1.0, sampler=lambda rng: 5.0)
        assert ecv.sample(RNG) == 1.0

    def test_extremes(self):
        assert ContinuousECV("load", 0.0, 1.0).extreme_values() == [0.0, 1.0]

    def test_rejects_inverted(self):
        with pytest.raises(ECVBindingError):
            ContinuousECV("load", 1.0, 0.0)


class TestAsEcv:
    def test_ecv_passthrough(self):
        ecv = BernoulliECV("hit", 0.5)
        assert as_ecv("hit", ecv) is ecv

    def test_value_becomes_fixed(self):
        ecv = as_ecv("n", 7)
        assert isinstance(ecv, FixedECV)
        assert ecv.value == 7


class TestEnvironment:
    def test_qualified_lookup_wins(self):
        env = ECVEnvironment({"cache.hit": True, "hit": False})
        ecv = env.lookup("cache.hit", "hit")
        assert ecv.support() == [(True, 1.0)]

    def test_bare_fallback(self):
        env = ECVEnvironment({"hit": False})
        ecv = env.lookup("cache.hit", "hit")
        assert ecv.support() == [(False, 1.0)]

    def test_missing_returns_none(self):
        assert ECVEnvironment().lookup("a.b", "b") is None

    def test_extended_overrides(self):
        env = ECVEnvironment({"hit": False}).extended({"hit": True})
        assert env.lookup("x.hit", "hit").support() == [(True, 1.0)]

    def test_with_defaults_keeps_own_bindings(self):
        env = ECVEnvironment({"hit": True}).with_defaults({"hit": False,
                                                           "other": 1})
        assert env.lookup("x.hit", "hit").support() == [(True, 1.0)]
        assert env.lookup("x.other", "other").support() == [(1, 1.0)]

    def test_contains_and_len(self):
        env = ECVEnvironment({"a": 1, "b": 2})
        assert "a" in env
        assert len(env) == 2

    def test_empty_is_shared(self):
        assert len(ECVEnvironment.EMPTY) == 0

    @given(st.dictionaries(st.sampled_from(["a", "b", "c"]),
                           st.integers(), max_size=3),
           st.dictionaries(st.sampled_from(["a", "b", "c"]),
                           st.integers(), max_size=3))
    def test_extended_equals_dict_update(self, base, extra):
        env = ECVEnvironment(base).extended(extra)
        merged = dict(base)
        merged.update(extra)
        for key, value in merged.items():
            assert env.lookup(key, key).support() == [(value, 1.0)]
