"""Tests for :mod:`repro.core.session`: the unified evaluation pipeline.

Four concerns, one file:

* **backwards compatibility** — every pre-session call-site shape
  (``mode=``, ``env=``, ``rng=``, ``max_traces=``, the shorthands) must
  behave exactly as before when no session is given;
* **deterministic replay** — equal-seed sessions agree, across Monte
  Carlo fallback, ``"sample"`` mode and a full Fig. 2-style stack;
* **span trees** — nested, sequenced, bound and overhead-wrapped
  interfaces yield correctly parented spans whose child energies are
  consistent with the root;
* **hooks** — memoization at any layer and evaluation budgets.
"""

import json

import numpy as np
import pytest

from repro.core.composition import (
    BoundInterface,
    OverheadInterface,
    SequenceInterface,
)
from repro.core.ecv import BernoulliECV, ContinuousECV
from repro.core.errors import EvaluationError
from repro.core.interface import EnergyInterface, evaluate
from repro.core.session import (
    AccountingHook,
    EvalSession,
    MemoHook,
    SpanRecorder,
    chrome_trace,
    layer_breakdown,
    render_span_tree,
)
from repro.core.stack import Layer, Resource, ResourceManager, SystemStack
from repro.core.units import Energy


class LeafInterface(EnergyInterface):
    """1 J per op when warm, 2 J when cold."""

    def __init__(self, name="leaf"):
        super().__init__(name)
        self.declare_ecv(BernoulliECV("warm", 0.5))

    def E_op(self, n):
        factor = 1.0 if self.ecv("warm") else 2.0
        return Energy(float(n) * factor)


class OuterInterface(EnergyInterface):
    """Nests a leaf and adds 0.5 J of its own work."""

    def __init__(self):
        super().__init__("outer")
        self.inner = LeafInterface("inner")

    def E_req(self, n):
        return self.inner.E_op(n) + Energy(0.5)


class LoadInterface(EnergyInterface):
    """Continuous ECV: enumeration fails, Monte Carlo kicks in."""

    def __init__(self):
        super().__init__("load")
        self.declare_ecv(ContinuousECV("utilisation", 0.2, 0.8))

    def E_tick(self, watts):
        return Energy(watts * self.ecv("utilisation"))


def build_three_layer_stack():
    """A Fig. 2-shaped stack: hardware -> os -> runtime.

    The hardware leaf reads a continuous ECV, so expected-mode
    evaluation of the top interface exercises the Monte Carlo path end
    to end — the case seeded replay must pin down.
    """
    hw_iface = LoadInterface()
    hardware = Layer("hardware")
    driver = hardware.add_manager(ResourceManager("driver"))
    driver.register(Resource("cpu", hw_iface))

    class OsInterface(EnergyInterface):
        def __init__(self):
            super().__init__("os_svc")
            self.declare_ecv(BernoulliECV("contended", 0.25))

        def E_syscall(self, watts):
            base = hw_iface.E_tick(watts)
            if self.ecv("contended"):
                return base + hw_iface.E_tick(watts / 2)
            return base

    os_iface = OsInterface()
    os_layer = Layer("os")
    systemd = os_layer.add_manager(ResourceManager("systemd"))
    systemd.register(Resource("os_svc", os_iface))

    class AppInterface(EnergyInterface):
        def __init__(self):
            super().__init__("app")

        def E_handle(self, watts):
            return os_iface.E_syscall(watts) + Energy(0.1)

    runtime = Layer("runtime")
    rt = runtime.add_manager(ResourceManager("python")) \
        .register(Resource("app", AppInterface()))
    return SystemStack([hardware, os_layer, runtime]), rt.energy_interface


class TestBackwardsCompatibility:
    """Lock the pre-session call sites: no session, same answers."""

    def test_explicit_mode_and_env(self):
        iface = LeafInterface()
        assert iface.evaluate("E_op", 3, mode="expected",
                              env={"warm": True}).as_joules == 3.0
        assert iface.evaluate("E_op", 3, mode="worst").as_joules == 6.0
        assert iface.evaluate("E_op", 3, mode="best").as_joules == 3.0

    def test_max_traces_kwarg_still_accepted(self):
        iface = LeafInterface()
        value = iface.evaluate("E_op", 2, mode="expected", max_traces=16)
        assert value.as_joules == pytest.approx(3.0)

    def test_shorthands_unchanged(self):
        iface = LeafInterface()
        assert iface.expected("E_op", 2).as_joules == pytest.approx(3.0)
        assert iface.worst_case("E_op", 2).as_joules == 4.0
        dist = iface.distribution("E_op", 2)
        assert dist.mean() == pytest.approx(3.0)

    def test_free_function_evaluate(self):
        leaf = LeafInterface()
        value = evaluate(lambda: leaf.E_op(4), env={"warm": False})
        assert value.as_joules == 8.0

    def test_explicit_rng_kwarg(self):
        iface = LoadInterface()
        draws = [iface.evaluate("E_tick", 10.0, mode="expected",
                                rng=np.random.default_rng(99),
                                n_samples=300).as_joules
                 for _ in range(2)]
        assert draws[0] == draws[1]

    def test_unseeded_monte_carlo_still_pinned(self):
        """No session, no rng: the legacy fixed default seed holds."""
        first = LoadInterface().expected("E_tick", 10.0).as_joules
        second = LoadInterface().expected("E_tick", 10.0).as_joules
        assert first == second

    def test_sample_mode_returns_a_branch_value(self):
        iface = LeafInterface()
        value = iface.evaluate("E_op", 2, mode="sample")
        assert value.as_joules in (2.0, 4.0)


class TestDeterministicReplay:
    def test_equal_seed_sessions_agree_on_monte_carlo(self):
        iface = LoadInterface()
        a = evaluate(iface("E_tick", 10.0), session=EvalSession(seed=42))
        b = evaluate(iface("E_tick", 10.0), session=EvalSession(seed=42))
        assert a.as_joules == b.as_joules

    def test_different_seeds_differ(self):
        iface = LoadInterface()
        a = evaluate(iface("E_tick", 10.0), session=EvalSession(seed=1))
        b = evaluate(iface("E_tick", 10.0), session=EvalSession(seed=2))
        assert a.as_joules != b.as_joules

    def test_seeded_sample_sequences_replay(self):
        iface = LeafInterface()

        def draw_sequence(seed):
            session = EvalSession(mode="sample", seed=seed)
            return [evaluate(iface("E_op", 1), session=session).as_joules
                    for _ in range(20)]

        first = draw_sequence(7)
        assert first == draw_sequence(7)
        assert first != draw_sequence(8)
        assert set(first) == {1.0, 2.0}  # a seeded stream still mixes

    def test_equal_seed_sessions_agree_across_stack(self):
        """Fig. 2 shape: runtime -> os -> hardware, MC at the bottom."""
        stack, top = build_three_layer_stack()
        a = evaluate(top("E_handle", 8.0), session=stack.session(seed=1234))
        b = evaluate(top("E_handle", 8.0), session=stack.session(seed=1234))
        assert a.as_joules == b.as_joules
        c = evaluate(top("E_handle", 8.0), session=stack.session(seed=99))
        assert c.as_joules != a.as_joules


class TestSpanTree:
    def evaluate_with_spans(self, interface, method, *args, **kwargs):
        recorder = SpanRecorder()
        session = EvalSession(hooks=[recorder], **kwargs)
        value = evaluate(interface(method, *args), session=session)
        return value, recorder.last_root

    def test_nested_interface_parenting(self):
        value, root = self.evaluate_with_spans(OuterInterface(), "E_req", 2)
        assert root.label == "outer.E_req"
        assert [child.label for child in root.children] == ["inner.E_op"]
        assert root.value_j == pytest.approx(value.as_joules)
        assert root.value_j == pytest.approx(3.5)  # E[2n] = 3 + 0.5
        assert root.children_joules == pytest.approx(3.0)
        assert root.self_joules == pytest.approx(0.5)

    def test_sequence_children_sum_to_root(self):
        seq = SequenceInterface("pipeline", [
            (LeafInterface("stage_a"), "E_op", lambda n: (n,)),
            (LeafInterface("stage_b"), "E_op", lambda n: (2 * n,)),
        ])
        value, root = self.evaluate_with_spans(seq, "E_sequence", 1)
        assert [child.label for child in root.children] \
            == ["stage_a.E_op", "stage_b.E_op"]
        assert root.children_joules == pytest.approx(root.value_j)
        assert value.as_joules == pytest.approx(4.5)

    def test_bound_interface_is_transparent(self):
        bound = BoundInterface(LeafInterface(), {"warm": True})
        value, root = self.evaluate_with_spans(bound, "E_op", 2)
        # The binding overlay owns no span: the leaf's call IS the root.
        assert root.label == "leaf.E_op"
        assert not root.children
        assert value.as_joules == 2.0

    def test_overhead_interface_owns_a_span(self):
        wrapped = OverheadInterface(LeafInterface(), Energy(0.25),
                                    name="rpc")
        value, root = self.evaluate_with_spans(wrapped, "E_op", 2,
                                               env={"warm": True})
        assert root.label == "rpc.E_op"
        assert root.value_j == pytest.approx(2.25)
        assert [child.label for child in root.children] == ["leaf.E_op"]
        assert root.self_joules == pytest.approx(0.25)

    def test_probability_weighted_children(self):
        """Across enumerated traces, children carry branch probability
        and the weighted child energies account for the root."""
        value, root = self.evaluate_with_spans(
            build_three_layer_stack()[1], "E_handle", 8.0)
        by_label = {child.label: child for child in root.children}
        syscall = by_label["os_svc.E_syscall"]
        assert syscall.probability == pytest.approx(1.0)
        ticks = [span for span in syscall.children
                 if span.label == "load.E_tick"]
        assert ticks  # MC fallback still records hardware spans
        total = syscall.children_joules + (root.value_j - syscall.value_j)
        assert total == pytest.approx(root.value_j, rel=1e-6)

    def test_stack_layer_labels(self):
        stack, top = build_three_layer_stack()
        recorder = SpanRecorder()
        session = stack.session(hooks=[recorder])
        evaluate(top("E_handle", 8.0), session=session)
        root = recorder.last_root
        layers = {span.layer for span in root.walk()}
        assert layers == {"runtime", "os", "hardware"}
        assert root.resource == "app"
        breakdown = layer_breakdown(recorder.roots)
        assert set(breakdown) == {"runtime", "os", "hardware"}
        assert sum(breakdown.values()) == pytest.approx(root.value_j)

    def test_render_and_chrome_trace(self):
        stack, top = build_three_layer_stack()
        recorder = SpanRecorder()
        evaluate(top("E_handle", 8.0),
                 session=stack.session(hooks=[recorder]))
        text = render_span_tree(recorder.last_root)
        assert "app.E_handle" in text and "[hardware]" in text
        payload = chrome_trace(recorder.roots)
        events = payload["traceEvents"]
        assert events and all(e["ph"] == "X" and e["dur"] >= 0
                              for e in events)
        json.dumps(payload)  # must be serialisable as-is


class TestHooks:
    def test_memo_hit_on_repeat_evaluation(self):
        memo = MemoHook()
        session = EvalSession(hooks=[memo])
        iface = LeafInterface()
        first = evaluate(iface("E_op", 3), session=session)
        second = evaluate(iface("E_op", 3), session=session)
        assert first.as_joules == second.as_joules
        assert memo.hits == 1 and memo.misses == 1
        assert session.stats["memo_hits"] == 1

    def test_memo_is_mode_and_args_sensitive(self):
        memo = MemoHook()
        session = EvalSession(hooks=[memo])
        iface = LeafInterface()
        evaluate(iface("E_op", 3), session=session)
        evaluate(iface("E_op", 4), session=session)
        evaluate(iface("E_op", 3), session=session, mode="worst")
        assert memo.hits == 0

    def test_cached_evaluation_recorded_as_cache_hit_span(self):
        recorder = SpanRecorder()
        session = EvalSession(hooks=[MemoHook(), recorder])
        iface = OuterInterface()
        evaluate(iface("E_req", 2), session=session)
        evaluate(iface("E_req", 2), session=session)
        assert not recorder.roots[0].cache_hit
        assert recorder.roots[1].cache_hit
        assert recorder.roots[1].value_j \
            == pytest.approx(recorder.roots[0].value_j)

    def test_session_memoized_helper(self):
        calls = []
        session = EvalSession(hooks=[MemoHook()])

        def expensive():
            calls.append(1)
            return 17.0

        assert session.memoized(("rate", "core0", 0.5), expensive) == 17.0
        assert session.memoized(("rate", "core0", 0.5), expensive) == 17.0
        assert len(calls) == 1

    def test_accounting_budget_enforced(self):
        session = EvalSession(hooks=[AccountingHook(max_evaluations=2)])
        iface = LeafInterface()
        evaluate(iface("E_op", 1), session=session)
        evaluate(iface("E_op", 2), session=session)
        with pytest.raises(EvaluationError):
            evaluate(iface("E_op", 3), session=session)

    def test_memo_shared_across_layers(self):
        """One memo serves every layer's evaluations in the session."""
        stack, top = build_three_layer_stack()
        memo = MemoHook()
        session = stack.session(hooks=[memo])
        evaluate(top("E_handle", 8.0), session=session)
        manager = stack.layer("os").manager("systemd")
        os_iface = manager.resource("os_svc").energy_interface
        evaluate(os_iface("E_syscall", 8.0), session=session)
        evaluate(os_iface("E_syscall", 8.0), session=session)
        assert memo.hits >= 1
