"""Tests for :mod:`repro.core.mcengine`: the Monte Carlo engines.

Three contracts, one file:

* **replay identity** — at a fixed seed, serial, vectorized and every
  sharded parallel run produce bitwise-identical draws, whether or not
  the interface vectorizes (the fallback runs over the same columns);
* **column sampling** — for every ECV kind, ``sample_n(rng, n)`` is
  bitwise-equal to ``n`` sequential ``sample()`` calls from an
  identically-seeded generator (the property the whole replay story
  rests on);
* **integration** — budgets, hooks and the deprecation shims of the
  unified ``evaluate()`` see batched evaluations as first-class events.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import Normal, Uniform
from repro.core.ecv import (
    BernoulliECV,
    CategoricalECV,
    ContinuousECV,
    FixedECV,
    UniformIntECV,
)
from repro.core.errors import EvaluationError
from repro.core.interface import EnergyCall, EnergyInterface, evaluate
from repro.core.mcengine import (
    ColumnStore,
    MCTask,
    ParallelEngine,
    SerialEngine,
    VectorEngine,
    resolve_engine,
)
from repro.core.session import AccountingHook, EvalSession, SpanRecorder
from repro.core.units import Energy


class VectorizableInterface(EnergyInterface):
    """Pure arithmetic over its ECVs: the batch attempt succeeds."""

    def __init__(self):
        super().__init__("vec")
        self.declare_ecv(BernoulliECV("hit", 0.6))
        self.declare_ecv(ContinuousECV("scale", low=0.5, high=2.0))
        self.declare_ecv(UniformIntECV("ways", low=1, high=4))

    def E_op(self, n):
        hit = self.ecv("hit")
        per = hit * 1.0 + (1 - hit) * 3.0
        return Energy(per * n * self.ecv("scale") * self.ecv("ways"))


class BranchingInterface(EnergyInterface):
    """Branches on sampled values: the batch attempt must fall back."""

    def __init__(self):
        super().__init__("branchy")
        self.declare_ecv(BernoulliECV("hit", 0.4))
        self.declare_ecv(ContinuousECV("latency", low=0.1, high=2.0))
        self.declare_ecv(CategoricalECV("tier", {"ssd": 0.7, "hdd": 0.3}))

    def E_op(self, n):
        cost = {"ssd": 0.2, "hdd": 2.5}[self.ecv("tier")]
        if self.ecv("hit"):
            return Energy(0.1 * n)
        return Energy(cost * n + self.ecv("latency"))


class RepeatedReadInterface(EnergyInterface):
    """Reads the same ECV twice: occurrences get independent columns."""

    def __init__(self):
        super().__init__("rereader")
        self.declare_ecv(ContinuousECV("step", low=0.0, high=1.0))

    def E_op(self):
        return Energy(self.ecv("step") + 10.0 * self.ecv("step"))


def _draws(interface, engine, seed=11, n=400, args=(8,)):
    session = EvalSession(seed=seed, engine=engine)
    dist = evaluate(interface(interface_method(interface), *args),
                    session=session, mode="distribution", n_samples=n)
    return np.asarray(dist._samples)


def interface_method(interface):
    return "E_op"


class TestReplayIdentity:
    @pytest.mark.parametrize("iface_cls,args", [
        (VectorizableInterface, (8,)),
        (BranchingInterface, (8,)),
        (RepeatedReadInterface, ()),
    ])
    def test_all_engines_bitwise_equal(self, iface_cls, args):
        interface = iface_cls()
        serial = _draws(interface, "serial", args=args)
        vector = _draws(interface, "vector", args=args)
        assert np.array_equal(serial, vector)
        for shards in (2, 4, 8):
            sharded = _draws(interface, ParallelEngine(shards=shards),
                             args=args)
            assert np.array_equal(serial, sharded), (
                f"{shards}-shard run diverged from serial")

    def test_different_seeds_differ(self):
        interface = VectorizableInterface()
        assert not np.array_equal(_draws(interface, "vector", seed=1),
                                  _draws(interface, "vector", seed=2))

    def test_unseeded_session_is_deterministic(self):
        interface = VectorizableInterface()
        first = _draws_with_session(interface, EvalSession(engine="vector"))
        second = _draws_with_session(interface, EvalSession(engine="vector"))
        assert np.array_equal(first, second)

    def test_explicit_rng_override_is_replayable(self):
        interface = VectorizableInterface()
        session = EvalSession(engine="vector")
        first = evaluate(interface("E_op", 8), session=session,
                         mode="distribution", n_samples=100,
                         rng=np.random.default_rng(99))
        second = evaluate(interface("E_op", 8), session=session,
                          mode="distribution", n_samples=100,
                          rng=np.random.default_rng(99))
        assert np.array_equal(first._samples, second._samples)

    def test_outcome_distributions_replay(self):
        class NoisyInterface(EnergyInterface):
            def __init__(self):
                super().__init__("noisy")
                self.declare_ecv(ContinuousECV("x", low=0.0, high=1.0))

            def E_op(self, n):
                # Returns a distribution: per-sample outcome draws must
                # come from the same per-index streams in every engine.
                return Normal(mean=n * (1 + self.ecv("x")), std=0.25)

        interface = NoisyInterface()
        serial = _draws(interface, "serial")
        assert np.array_equal(serial, _draws(interface, "vector"))
        assert np.array_equal(
            serial, _draws(interface, ParallelEngine(shards=4)))


def _draws_with_session(interface, session, n=100):
    dist = evaluate(interface("E_op", 8), session=session,
                    mode="distribution", n_samples=n)
    return np.asarray(dist._samples)


class TestSampleN:
    """``sample_n`` must be bitwise-equal to sequential ``sample``."""

    @staticmethod
    def _assert_matches(ecv, n=257, seed=5):
        bulk = ecv.sample_n(np.random.default_rng(seed), n)
        seq_rng = np.random.default_rng(seed)
        sequential = [ecv.sample(seq_rng) for _ in range(n)]
        assert len(bulk) == n
        for got, want in zip(bulk, sequential):
            item = got.item() if isinstance(got, np.generic) else got
            assert item == want

    @given(p=st.floats(0.0, 1.0), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bernoulli(self, p, seed):
        self._assert_matches(BernoulliECV("b", p), seed=seed)

    @given(weights=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=6),
           seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_categorical(self, weights, seed):
        total = sum(weights)
        outcomes = {f"v{i}": w / total for i, w in enumerate(weights)}
        self._assert_matches(CategoricalECV("c", outcomes), seed=seed)

    @given(low=st.integers(-100, 100), span=st.integers(0, 200),
           seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_uniform_int(self, low, span, seed):
        self._assert_matches(UniformIntECV("u", low=low, high=low + span),
                             seed=seed)

    @given(low=st.floats(-1e3, 1e3), span=st.floats(0.001, 1e3),
           seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_continuous(self, low, span, seed):
        self._assert_matches(ContinuousECV("x", low=low, high=low + span),
                             seed=seed)

    def test_fixed(self):
        self._assert_matches(FixedECV("f", value="constant"))

    def test_continuous_custom_sampler(self):
        ecv = ContinuousECV("x", low=0.0, high=10.0,
                            sampler=lambda rng: float(rng.normal(5.0, 1.0)))
        self._assert_matches(ecv)

    def test_distribution_sample_n_aliases_sample(self):
        dist = Uniform(2.0, 7.0)
        bulk = dist.sample_n(np.random.default_rng(3), 64)
        assert np.array_equal(bulk, dist.sample(np.random.default_rng(3), 64))


class TestEngineBehaviour:
    def test_resolve_engine(self):
        assert resolve_engine(None).name == "vector"
        assert isinstance(resolve_engine("serial"), SerialEngine)
        assert isinstance(resolve_engine("vector"), VectorEngine)
        assert isinstance(resolve_engine("parallel"), ParallelEngine)
        engine = VectorEngine()
        assert resolve_engine(engine) is engine
        with pytest.raises(EvaluationError):
            resolve_engine("warp-drive")

    def test_evaluation_error_propagates_from_batch(self):
        class BrokenInterface(EnergyInterface):
            def __init__(self):
                super().__init__("broken")
                self.declare_ecv(ContinuousECV("x", low=0.0, high=1.0))

            def E_op(self, n):
                self.ecv("x")
                raise EvaluationError("genuinely broken")

        session = EvalSession(engine="vector")
        with pytest.raises(EvaluationError, match="genuinely broken"):
            evaluate(BrokenInterface()("E_op", 1), session=session,
                     mode="distribution", n_samples=16)

    def test_parallel_unpicklable_falls_back(self):
        # A closure is unpicklable; the parallel engine must fall back to
        # the in-process vectorized path and still honour the columns.
        ecv = ContinuousECV("x", low=0.0, high=1.0)
        iface = VectorizableInterface()

        def fn():
            return iface.E_op(8)

        serial = EvalSession(seed=3, engine="serial")
        parallel = EvalSession(seed=3, engine=ParallelEngine(shards=4))
        a = evaluate(fn, session=serial, mode="distribution", n_samples=50)
        b = evaluate(fn, session=parallel, mode="distribution", n_samples=50)
        assert np.array_equal(a._samples, b._samples)
        assert ecv is not None

    def test_column_store_is_per_occurrence(self):
        store = ColumnStore(entropy=42, n=16)
        ecv = ContinuousECV("x", low=0.0, high=1.0)
        first = store.column("iface.x", 0, ecv)
        again = store.column("iface.x", 0, ecv)
        second = store.column("iface.x", 1, ecv)
        assert first is again
        assert not np.array_equal(first, second)

    def test_engine_draws_directly(self):
        interface = VectorizableInterface()
        task = MCTask(fn=interface("E_op", 8), env=_empty_env(), n=32,
                      entropy=7)
        serial = SerialEngine().draws(task)
        vector = VectorEngine().draws(task)
        assert serial.shape == (32,)
        assert np.array_equal(serial, vector)


def _empty_env():
    from repro.core.ecv import ECVEnvironment
    return ECVEnvironment.EMPTY


class TestHooksAndBudgets:
    def test_accounting_counts_batched_traces(self):
        for engine in ("serial", "vector"):
            hook = AccountingHook()
            session = EvalSession(seed=1, engine=engine, hooks=[hook])
            evaluate(VectorizableInterface()("E_op", 8), session=session,
                     mode="distribution", n_samples=123)
            assert hook.traces == 123, engine
            assert session.stats["traces"] == 123

    def test_span_recorder_sees_one_batched_trace(self):
        recorder = SpanRecorder()
        session = EvalSession(seed=1, engine="vector", hooks=[recorder])
        evaluate(VectorizableInterface()("E_op", 8), session=session,
                 mode="distribution", n_samples=64)
        root = recorder.last_root
        assert root is not None

    def test_n_samples_default_comes_from_session(self):
        session = EvalSession(seed=1, engine="vector", n_samples=37)
        hook = AccountingHook()
        session.add_hook(hook)
        evaluate(VectorizableInterface()("E_op", 8), session=session,
                 mode="distribution")
        assert hook.traces == 37


class TestUnifiedEvaluateAPI:
    def test_energy_call_construction(self):
        interface = VectorizableInterface()
        call = interface("E_op", 8, extra=1)
        assert isinstance(call, EnergyCall)
        assert call.method_name == "E_op"
        assert call.args == (8,)
        assert call.kwargs == (("extra", 1),)

    def test_old_interface_evaluate_warns_and_matches(self):
        interface = VectorizableInterface()
        new = evaluate(interface("E_op", 8), mode="expected",
                       session=EvalSession(seed=5))
        with pytest.warns(DeprecationWarning, match="EnergyInterface.evaluate"):
            old = interface.evaluate("E_op", 8, mode="expected",
                                     session=EvalSession(seed=5))
        assert old.as_joules == new.as_joules

    def test_old_session_evaluate_warns_and_matches(self):
        interface = VectorizableInterface()
        new = evaluate(interface("E_op", 8),
                       session=EvalSession(seed=5), mode="distribution")
        with pytest.warns(DeprecationWarning, match="EvalSession.evaluate"):
            old = EvalSession(seed=5).evaluate(interface, "E_op", 8,
                                               mode="distribution")
        assert np.array_equal(old._samples, new._samples)

    def test_old_evaluate_fn_warns_and_matches(self):
        interface = VectorizableInterface()

        def fn():
            return interface.E_op(8)

        new = evaluate(fn, session=EvalSession(seed=5), mode="expected")
        with pytest.warns(DeprecationWarning, match="evaluate_fn"):
            old = EvalSession(seed=5).evaluate_fn(fn, mode="expected")
        assert old.as_joules == new.as_joules

    def test_moved_module_defaults_warn(self):
        import repro.core.interface as interface_module

        with pytest.warns(DeprecationWarning, match="DEFAULT_MAX_TRACES"):
            value = interface_module.DEFAULT_MAX_TRACES
        assert value == EvalSession.DEFAULT_MAX_TRACES
        with pytest.warns(DeprecationWarning, match="DEFAULT_MC_SAMPLES"):
            value = interface_module.DEFAULT_MC_SAMPLES
        assert value == EvalSession.DEFAULT_N_SAMPLES

    def test_shorthands_do_not_warn(self):
        interface = VectorizableInterface()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            interface.expected("E_op", 8)
            interface.worst_case("E_op", 8)
            interface.distribution("E_op", 8)


class TestQuantileDefaults:
    def test_quantile_budget_resolves_via_session(self):
        dist = Normal(mean=5.0, std=1.0)  # uses the MC base quantile
        session = EvalSession(n_samples=64)
        with _activated(session):
            inside = dist.quantile(0.5)
        outside = dist.quantile(0.5)
        # Inside a session the sampling budget follows the session's
        # n_samples; outside it uses the single class default.  The MC
        # rng is pinned, so equality against an explicit budget is exact.
        assert inside == dist.quantile(0.5, n_samples=64)
        assert outside == dist.quantile(
            0.5, n_samples=EvalSession.DEFAULT_QUANTILE_SAMPLES)

    def test_closed_form_quantile_ignores_budget(self):
        dist = Uniform(0.0, 1.0)
        assert dist.quantile(0.25) == 0.25
        assert dist.quantile(0.25, n_samples=3) == 0.25

    def test_all_distributions_share_default(self):
        from repro.core.distributions import _resolve_quantile_samples

        assert (_resolve_quantile_samples(None)
                == EvalSession.DEFAULT_QUANTILE_SAMPLES)
        assert _resolve_quantile_samples(123) == 123


class _activated:
    """Run a block with ``session`` as the ambient evaluation session."""

    def __init__(self, session):
        self.session = session

    def __enter__(self):
        from repro.core.interface import _ACTIVE_SESSION
        self._token = _ACTIVE_SESSION.set(self.session)
        return self.session

    def __exit__(self, *exc):
        from repro.core.interface import _ACTIVE_SESSION
        _ACTIVE_SESSION.reset(self._token)
        return False
