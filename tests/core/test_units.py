"""Unit tests for energy value types (Joules and abstract units)."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.units import ZERO, AbstractEnergy, Energy, Unit, as_joules
from repro.core.errors import UnitMismatchError

finite = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-9, max_value=1e9,
                     allow_nan=False, allow_infinity=False)


class TestEnergyConstructors:
    def test_joules_roundtrip(self):
        assert Energy.joules(2.5).as_joules == 2.5

    def test_millijoules(self):
        assert Energy.millijoules(1500).as_joules == pytest.approx(1.5)

    def test_microjoules(self):
        assert Energy.microjoules(3).as_joules == pytest.approx(3e-6)

    def test_nanojoules(self):
        assert Energy.nanojoules(7).as_joules == pytest.approx(7e-9)

    def test_picojoules(self):
        assert Energy.picojoules(9).as_joules == pytest.approx(9e-12)

    def test_watt_seconds_equal_joules(self):
        assert Energy.watt_seconds(4).as_joules == 4.0

    def test_watt_hours(self):
        assert Energy.watt_hours(1).as_joules == pytest.approx(3600.0)

    def test_kilowatt_hours(self):
        assert Energy.kilowatt_hours(2).as_joules == pytest.approx(7.2e6)

    def test_unit_accessors(self):
        e = Energy.joules(3600.0)
        assert e.as_millijoules == pytest.approx(3.6e6)
        assert e.as_microjoules == pytest.approx(3.6e9)
        assert e.as_watt_hours == pytest.approx(1.0)
        assert e.as_kilowatt_hours == pytest.approx(1e-3)


class TestEnergyArithmetic:
    def test_addition(self):
        assert (Energy(1.0) + Energy(2.0)).as_joules == 3.0

    def test_sum_builtin_works(self):
        total = sum([Energy(1.0), Energy(2.0), Energy(3.0)])
        assert total.as_joules == 6.0

    def test_subtraction(self):
        assert (Energy(5.0) - Energy(2.0)).as_joules == 3.0

    def test_scalar_multiplication_both_sides(self):
        assert (2 * Energy(1.5)).as_joules == 3.0
        assert (Energy(1.5) * 2).as_joules == 3.0

    def test_division_by_scalar(self):
        assert (Energy(3.0) / 2).as_joules == 1.5

    def test_division_by_energy_gives_ratio(self):
        assert Energy(3.0) / Energy(1.5) == 2.0

    def test_negation_and_abs(self):
        assert (-Energy(2.0)).as_joules == -2.0
        assert abs(Energy(-2.0)).as_joules == 2.0

    def test_float_coercion(self):
        assert float(Energy(1.25)) == 1.25

    def test_adding_non_energy_fails(self):
        with pytest.raises(TypeError):
            Energy(1.0) + "nope"

    @given(finite, finite)
    def test_addition_commutes(self, a, b):
        assert (Energy(a) + Energy(b)).as_joules == pytest.approx(
            (Energy(b) + Energy(a)).as_joules)

    @given(finite, finite, finite)
    def test_addition_associates(self, a, b, c):
        left = (Energy(a) + Energy(b)) + Energy(c)
        right = Energy(a) + (Energy(b) + Energy(c))
        assert left.as_joules == pytest.approx(right.as_joules, abs=1e-6)


class TestEnergyComparisons:
    def test_ordering(self):
        assert Energy(1.0) < Energy(2.0)
        assert Energy(2.0) > Energy(1.0)
        assert Energy(1.0) <= Energy(1.0)
        assert Energy(1.0) >= Energy(1.0)

    def test_equality_and_hash(self):
        assert Energy(1.0) == Energy(1.0)
        assert hash(Energy(1.0)) == hash(Energy(1.0))
        assert Energy(1.0) != Energy(2.0)

    def test_isclose(self):
        assert Energy(1.0).isclose(Energy(1.0 + 1e-12))
        assert not Energy(1.0).isclose(Energy(1.1))


class TestEnergyFormatting:
    def test_zero(self):
        assert str(ZERO) == "0 J"

    def test_joule_range(self):
        assert "J" in str(Energy(2.0))

    def test_millijoule_range(self):
        assert "mJ" in str(Energy(5e-3))

    def test_microjoule_range(self):
        assert "uJ" in str(Energy(5e-6))

    def test_nanojoule_range(self):
        assert "nJ" in str(Energy(5e-9))

    def test_picojoule_range(self):
        assert "pJ" in str(Energy(5e-13))

    def test_kwh_range(self):
        assert "kWh" in str(Energy.kilowatt_hours(2))


class TestAsJoules:
    def test_energy_passthrough(self):
        assert as_joules(Energy(2.0)) == 2.0

    def test_number_passthrough(self):
        assert as_joules(3) == 3.0
        assert as_joules(2.5) == 2.5

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_joules("watts")


class TestAbstractEnergy:
    def test_unit_constructor(self):
        relu = Unit("relu")
        assert relu.coefficient("relu") == 1.0
        assert relu.units == frozenset({"relu"})

    def test_linear_combination(self):
        cost = 8 * Unit("conv2d") + 16 * Unit("mlp")
        assert cost.coefficient("conv2d") == 8.0
        assert cost.coefficient("mlp") == 16.0
        assert cost.coefficient("absent") == 0.0

    def test_zero_terms_dropped(self):
        a = Unit("x")
        assert (a - a).is_zero()

    def test_subtraction(self):
        cost = 3 * Unit("x") - 1 * Unit("x")
        assert cost.coefficient("x") == 2.0

    def test_sum_builtin(self):
        total = sum([Unit("x"), Unit("x"), 2 * Unit("y")])
        assert total.coefficient("x") == 2.0
        assert total.coefficient("y") == 2.0

    def test_equality_and_hash(self):
        assert Unit("x") + Unit("y") == Unit("y") + Unit("x")
        assert hash(2 * Unit("x")) == hash(2 * Unit("x"))

    def test_ratio_of_proportional(self):
        a = 2 * Unit("relu")
        b = 4 * Unit("relu")
        assert b.ratio_to(a) == pytest.approx(2.0)

    def test_ratio_multi_unit_proportional(self):
        a = 2 * Unit("relu") + 4 * Unit("conv")
        b = 1 * Unit("relu") + 2 * Unit("conv")
        assert a.ratio_to(b) == pytest.approx(2.0)

    def test_ratio_of_zero_numerator(self):
        assert AbstractEnergy().ratio_to(Unit("x")) == 0.0

    def test_ratio_to_zero_fails(self):
        with pytest.raises(UnitMismatchError):
            Unit("x").ratio_to(AbstractEnergy())

    def test_ratio_different_units_fails(self):
        with pytest.raises(UnitMismatchError):
            Unit("relu").ratio_to(Unit("conv"))

    def test_ratio_nonproportional_fails(self):
        a = 2 * Unit("relu") + 4 * Unit("conv")
        b = 1 * Unit("relu") + 3 * Unit("conv")
        with pytest.raises(UnitMismatchError):
            a.ratio_to(b)

    def test_grounding(self):
        cost = 8 * Unit("conv2d") + 8 * Unit("relu")
        grounded = cost.ground({"conv2d": Energy.microjoules(3),
                                "relu": Energy.nanojoules(40)})
        assert grounded.as_joules == pytest.approx(8 * 3e-6 + 8 * 40e-9)

    def test_grounding_accepts_floats(self):
        assert Unit("x").ground({"x": 2.0}).as_joules == 2.0

    def test_grounding_missing_unit_fails(self):
        with pytest.raises(UnitMismatchError):
            (Unit("x") + Unit("y")).ground({"x": 1.0})

    def test_items_sorted(self):
        cost = Unit("b") + Unit("a")
        assert [unit for unit, _ in cost.items()] == ["a", "b"]

    def test_repr_zero(self):
        assert "0" in repr(AbstractEnergy())

    @given(st.dictionaries(st.sampled_from(["a", "b", "c"]), positive,
                           min_size=1),
           st.dictionaries(st.sampled_from(["a", "b", "c"]), positive,
                           min_size=1))
    def test_grounding_is_linear(self, terms1, terms2):
        costs = {"a": 1.5, "b": 2.5, "c": 0.5}
        x = AbstractEnergy(terms1)
        y = AbstractEnergy(terms2)
        combined = (x + y).ground(costs).as_joules
        separate = x.ground(costs).as_joules + y.ground(costs).as_joules
        assert combined == pytest.approx(separate, rel=1e-9)

    @given(st.dictionaries(st.sampled_from(["a", "b"]), positive, min_size=1),
           st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_scaling_scales_grounding(self, terms, factor):
        costs = {"a": 1.0, "b": 3.0}
        base = AbstractEnergy(terms)
        assert (factor * base).ground(costs).as_joules == pytest.approx(
            factor * base.ground(costs).as_joules, rel=1e-9)
