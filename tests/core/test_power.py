"""Tests for power values and peak-power provisioning."""

import pytest

from repro.core.errors import EnergyError
from repro.core.power import Power, ProvisioningReport, as_watts, provision
from repro.core.units import Energy


class TestPowerValue:
    def test_constructors(self):
        assert Power.watts(2.0).as_watts == 2.0
        assert Power.milliwatts(1500).as_watts == pytest.approx(1.5)
        assert Power.kilowatts(2).as_watts == pytest.approx(2000.0)
        assert Power.kilowatts(2).as_kilowatts == pytest.approx(2.0)

    def test_arithmetic(self):
        assert (Power(1.0) + Power(2.0)).as_watts == 3.0
        assert (Power(5.0) - Power(2.0)).as_watts == 3.0
        assert (2 * Power(1.5)).as_watts == 3.0
        assert (Power(3.0) / Power(1.5)) == 2.0
        assert (Power(3.0) / 3).as_watts == 1.0

    def test_sum_builtin(self):
        assert sum([Power(1.0), Power(2.0)]).as_watts == 3.0

    def test_power_times_time_is_energy(self):
        energy = Power(10.0).for_duration(3.0)
        assert isinstance(energy, Energy)
        assert energy.as_joules == pytest.approx(30.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(EnergyError):
            Power(1.0).for_duration(-1.0)

    def test_comparisons_and_hash(self):
        assert Power(1.0) < Power(2.0) <= Power(2.0)
        assert Power(3.0) > Power(2.0) >= Power(2.0)
        assert hash(Power(1.0)) == hash(Power(1.0))
        assert Power(1.0).isclose(Power(1.0 + 1e-12))

    def test_repr_ranges(self):
        assert "kW" in repr(Power(2500.0))
        assert "mW" in repr(Power(0.005))
        assert repr(Power(3.0)).endswith("3 W)")

    def test_as_watts_coercion(self):
        assert as_watts(Power(2.0)) == 2.0
        assert as_watts(3) == 3.0
        with pytest.raises(TypeError):
            as_watts("a lot")


class TestProvisioning:
    def test_sum_of_peaks(self):
        report = provision([Power(100.0), Power(200.0), 50.0],
                           budget=Power(400.0))
        assert report.sum_of_peaks.as_watts == pytest.approx(350.0)
        assert report.fits_worst_case

    def test_oversubscription_with_diversity(self):
        report = provision([Power(300.0)] * 4, budget=Power(1000.0),
                           diversity_factor=0.8)
        assert not report.fits_worst_case          # 1200 > 1000
        assert report.fits_diversified             # 960 <= 1000
        assert report.oversubscription == pytest.approx(1.2)

    def test_diversity_factor_validation(self):
        with pytest.raises(EnergyError):
            provision([Power(1.0)], Power(1.0), diversity_factor=0.0)
        with pytest.raises(EnergyError):
            provision([Power(1.0)], Power(1.0), diversity_factor=1.5)

    def test_zero_budget(self):
        report = ProvisioningReport(100.0, 100.0, 0.0)
        assert report.oversubscription == float("inf")

    def test_peak_power_from_interface_worst_case(self):
        """The paper's suggestion: worst-mode evaluation of a power-
        returning method IS the peak-power interface."""
        from repro.core.ecv import CategoricalECV
        from repro.core.interface import EnergyInterface, evaluate

        class NodePower(EnergyInterface):
            def __init__(self):
                super().__init__("node")
                self.declare_ecv(CategoricalECV(
                    "dvfs", {"low": 0.6, "high": 0.4}))

            def P_draw(self, utilization):
                base = 80.0 if self.ecv("dvfs") == "low" else 220.0
                return base * utilization  # treat Watts as the numeraire

        node = NodePower()
        peak = evaluate(node("P_draw", 1.0), mode="worst").as_joules
        expected = evaluate(node("P_draw", 1.0), mode="expected").as_joules
        assert peak == pytest.approx(220.0)
        assert expected == pytest.approx(0.6 * 80 + 0.4 * 220)
        report = provision([peak] * 10, budget=2000.0)
        assert not report.fits_worst_case
