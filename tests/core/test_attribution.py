"""Tests for the energy-attribution module."""

import pytest

from repro.core.attribution import POLICIES, attribute
from repro.core.errors import EnergyError
from repro.hardware.ledger import EnergyLedger, EnergyRecord


def ledger_with(records):
    ledger = EnergyLedger()
    for component, tag, t0, t1, joules in sorted(records,
                                                 key=lambda r: r[2]):
        ledger.log(EnergyRecord(component, "d", t0, t1, joules, tag))
    return ledger


BASIC = [
    ("cpu", "req-a", 0.0, 1.0, 4.0),
    ("cpu", "req-b", 1.0, 3.0, 4.0),   # twice the time, same dynamic J
    ("cpu", "static", 0.0, 4.0, 8.0),
]


class TestPolicies:
    def test_activity_ignores_overhead(self):
        result = attribute(ledger_with(BASIC), 0.0, 4.0, policy="activity")
        assert result.shares == {"req-a": 4.0, "req-b": 4.0}
        assert result.overhead_joules == 8.0
        assert result.total_joules == 16.0

    def test_proportional_splits_by_dynamic_energy(self):
        result = attribute(ledger_with(BASIC), 0.0, 4.0,
                           policy="proportional")
        assert result.share_of("req-a") == pytest.approx(4.0 + 4.0)
        assert result.share_of("req-b") == pytest.approx(4.0 + 4.0)

    def test_duration_splits_by_busy_time(self):
        result = attribute(ledger_with(BASIC), 0.0, 4.0, policy="duration")
        # req-a busy 1 s, req-b busy 2 s -> 1/3 vs 2/3 of the 8 J overhead
        assert result.share_of("req-a") == pytest.approx(4.0 + 8.0 / 3)
        assert result.share_of("req-b") == pytest.approx(4.0 + 16.0 / 3)

    def test_policies_conserve_energy(self):
        for policy in ("proportional", "duration"):
            result = attribute(ledger_with(BASIC), 0.0, 4.0, policy=policy)
            assert sum(result.shares.values()) == pytest.approx(
                result.total_joules)

    def test_unknown_policy_rejected(self):
        with pytest.raises(EnergyError):
            attribute(ledger_with(BASIC), 0.0, 4.0, policy="fair")

    def test_policy_list_is_exported(self):
        assert set(POLICIES) == {"activity", "proportional", "duration"}


class TestWindowing:
    def test_window_prorates_records(self):
        result = attribute(ledger_with(BASIC), 0.0, 2.0, policy="activity")
        # req-b's 4 J over [1, 3] contributes half inside [0, 2].
        assert result.share_of("req-b") == pytest.approx(2.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(EnergyError):
            attribute(ledger_with(BASIC), 2.0, 1.0)

    def test_component_filter(self):
        records = BASIC + [("gpu", "req-a", 0.0, 1.0, 100.0)]
        all_components = attribute(ledger_with(records), 0.0, 4.0,
                                   policy="activity")
        cpu_only = attribute(ledger_with(records), 0.0, 4.0,
                             policy="activity", component="cpu")
        assert all_components.share_of("req-a") == pytest.approx(104.0)
        assert cpu_only.share_of("req-a") == pytest.approx(4.0)


class TestEdgeCases:
    def test_all_overhead_window(self):
        ledger = ledger_with([("cpu", "static", 0.0, 2.0, 6.0)])
        result = attribute(ledger, 0.0, 2.0, policy="proportional")
        assert result.shares == {}
        assert result.overhead_joules == 6.0
        assert result.fractions() == {}

    def test_fractions_sum_to_one(self):
        result = attribute(ledger_with(BASIC), 0.0, 4.0,
                           policy="proportional")
        assert sum(result.fractions().values()) == pytest.approx(1.0)

    def test_str_mentions_policy_and_shares(self):
        text = str(attribute(ledger_with(BASIC), 0.0, 4.0))
        assert "proportional" in text
        assert "req-a" in text


class TestAgainstRealMachine:
    def test_service_attribution_matches_ledger(self):
        """Attribution over the ML service's ledger conserves energy and
        ranks the inference path first."""
        import numpy as np
        from repro.apps.mlservice import MLWebService, \
            build_service_machine
        from repro.workloads.traces import image_request_trace

        machine = build_service_machine()
        service = MLWebService(machine)
        rng = np.random.default_rng(4)
        t0 = machine.now
        for request in image_request_trace(150, rng):
            service.handle(request)
        result = attribute(machine.ledger, t0, machine.now,
                           policy="proportional")
        assert sum(result.shares.values()) == pytest.approx(
            machine.ledger.energy_between(t0, machine.now), rel=1e-9)
        assert result.share_of("cnn-forward") == max(result.shares.values())
