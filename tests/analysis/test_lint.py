"""Golden tests for the static energy-bug checker (EB101–EB106)."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULES,
    format_baseline,
    lint_function,
    lint_paths,
    load_baseline,
    render_text,
    to_json,
    to_sarif,
)
from repro.core.contracts import energy_spec
from repro.core.errors import LintError

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]


def lint_fixture(name):
    return lint_paths([str(FIXTURES / f"{name}.py")])


class TestGoldenPerRule:
    """Each seeded fixture triggers exactly its rule, nothing else."""

    @pytest.mark.parametrize("fixture, rule", [
        ("buggy_loop", "EB101"),
        ("buggy_crypto", "EB102"),
        ("buggy_radio", "EB103"),
        ("buggy_refinement", "EB104"),
        ("buggy_ecv", "EB105"),
        ("buggy_dead", "EB106"),
    ])
    def test_fixture_triggers_only_its_rule(self, fixture, rule):
        findings, checked = lint_fixture(fixture)
        assert checked == 1
        assert findings, f"{fixture} produced no findings"
        assert {f.rule for f in findings} == {rule}
        assert all(f.severity == RULES[rule].severity for f in findings)

    def test_clean_module_is_clean(self):
        findings, checked = lint_fixture("clean_module")
        assert checked == 1
        assert findings == []

    def test_early_exit_crypto_flags_branch_and_trip_count(self):
        findings, _ = lint_fixture("buggy_crypto")
        messages = " | ".join(f.message for f in findings)
        assert "branch condition" in messages
        assert "loop trip count" in messages

    def test_radio_leak_names_the_states(self):
        findings, _ = lint_fixture("buggy_radio")
        (finding,) = findings
        assert "'on'" in finding.message and "'off'" in finding.message

    def test_refinement_reports_the_margin(self):
        findings, _ = lint_fixture("buggy_refinement")
        (finding,) = findings
        assert "exceeds the interface bound" in finding.message
        assert "0.2" in finding.message  # 100 frames x 0.002 J extra pass


class TestAppsAreClean:
    def test_repro_apps_lint_clean_at_head(self):
        findings, checked = lint_paths([str(REPO_ROOT / "src/repro/apps")])
        assert findings == []
        assert checked >= 7  # one lintable impl per app module


class TestEngine:
    def test_undecorated_function_rejected(self):
        def bare(res, n):
            return 0

        with pytest.raises(LintError, match="EnergySpec"):
            lint_function(bare)

    def test_unsummarisable_function_becomes_eb101(self):
        @energy_spec(resources={"cpu": {}}, input_bounds={"n": (0, 10)})
        def spins(res, n):
            count = 0
            while count < n:
                count += 1
            return 0

        findings = lint_function(spins)
        assert [f.rule for f in findings] == ["EB101"]
        assert "cannot be summarised" in findings[0].message

    def test_bad_cost_declaration_raises(self):
        @energy_spec(resources={"cpu": {}}, input_bounds={"n": (0, 10)},
                     costs={"cpu.op": ("per_byte", 1.0)})
        def calls(res, n):
            res.cpu.op(n)
            return 0

        with pytest.raises(LintError, match="cost declaration"):
            lint_function(calls)

    def test_fingerprint_is_stable(self):
        findings, _ = lint_fixture("buggy_loop")
        assert findings[0].fingerprint() == "EB101:buggy_loop:drain_queue"

    def test_missing_target_raises(self):
        with pytest.raises(LintError, match="no such file"):
            lint_paths(["definitely/not/here.py"])


class TestOutputFormats:
    def test_text_output_lists_findings_and_summary(self):
        findings, checked = lint_fixture("buggy_loop")
        text = render_text(findings, checked)
        assert "EB101" in text
        assert "1 function(s) checked, 1 finding(s)" in text

    def test_json_shape_matches_divergence_report(self):
        findings, checked = lint_fixture("buggy_loop")
        payload = json.loads(to_json(findings, checked, suppressed=0))
        assert payload["tool"] == "repro-energy lint"
        assert payload["schema_version"] == "1"
        assert payload["summary"] == {"checked": 1, "findings": 1,
                                      "suppressed": 0, "ok": False}
        (finding,) = payload["findings"]
        assert finding["rule"] == "EB101"
        assert finding["severity"] == "error"
        assert finding["function"] == "drain_queue"
        assert finding["line"] > 0

    def test_sarif_is_valid_2_1_0(self):
        findings, _ = lint_fixture("buggy_radio")
        sarif = json.loads(to_sarif(findings))
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rule_ids == set(RULES)
        (result,) = run["results"]
        assert result["ruleId"] == "EB103"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] > 0


class TestBaseline:
    def test_roundtrip_suppresses_known_findings(self, tmp_path):
        findings, _ = lint_fixture("buggy_loop")
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(format_baseline(findings), encoding="utf-8")
        suppressions = load_baseline(baseline)
        assert all(f.fingerprint() in suppressions for f in findings)

    def test_comments_and_blanks_ignored(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("# header\n\nEB101:buggy_loop:drain_queue  # ok\n",
                            encoding="utf-8")
        assert load_baseline(baseline) == {"EB101:buggy_loop:drain_queue"}

    def test_committed_baseline_is_empty(self):
        assert load_baseline(REPO_ROOT / ".energy-lint.baseline") == set()
