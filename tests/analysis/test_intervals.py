"""Tests for the worst-case abstract domains (intervals + affine forms)."""

import math

import pytest

from repro.analysis.expr import BinOp, Compare, Const, UnaryOp, Var
from repro.analysis.intervals import (
    NONNEGATIVE,
    TOP,
    Interval,
    bound_expr,
    condition_status,
    interval_of,
    linearize,
)

N = Var("n")
M = Var("m")


def add(a, b):
    return BinOp("+", a, b)


def sub(a, b):
    return BinOp("-", a, b)


def mul(a, b):
    return BinOp("*", a, b)


class TestInterval:
    def test_point(self):
        box = Interval.point(3.0)
        assert box.is_point
        assert box.lo == box.hi == 3.0

    def test_arithmetic(self):
        a = Interval(1.0, 2.0)
        b = Interval(-1.0, 3.0)
        assert (a + b) == Interval(0.0, 5.0)
        assert (a - b) == Interval(-2.0, 3.0)
        assert (a * b) == Interval(-2.0, 6.0)

    def test_zero_times_infinity_is_zero(self):
        zero = Interval.point(0.0)
        assert (zero * NONNEGATIVE) == Interval.point(0.0)

    def test_bounded(self):
        assert Interval(0.0, 5.0).bounded
        assert not NONNEGATIVE.bounded
        assert not TOP.bounded


class TestIntervalOf:
    def test_var_from_env(self):
        assert interval_of(N, {"n": Interval(2.0, 4.0)}) == Interval(2.0, 4.0)

    def test_unknown_var_defaults_nonnegative(self):
        assert interval_of(N, {}) == NONNEGATIVE

    def test_linear_combination(self):
        env = {"n": Interval(0.0, 10.0)}
        expr = add(mul(Const(2.0), N), Const(1.0))
        assert interval_of(expr, env) == Interval(1.0, 21.0)

    def test_division_by_point(self):
        env = {"n": Interval(2.0, 8.0)}
        expr = BinOp("/", N, Const(2.0))
        assert interval_of(expr, env) == Interval(1.0, 4.0)


class TestAffine:
    def test_linearize_sum(self):
        form = linearize(add(mul(Const(3.0), N), sub(M, Const(1.0))))
        assert form.const == -1.0
        assert dict(form.coeffs) == {"n": 3.0, "m": 1.0}

    def test_nonlinear_returns_none(self):
        assert linearize(mul(N, N)) is None

    def test_affine_bounds_exact_under_cancellation(self):
        # n - n is 0 exactly; plain intervals would widen to [-10, 10].
        env = {"n": Interval(0.0, 10.0)}
        assert bound_expr(sub(N, N), env) == Interval.point(0.0)

    def test_bound_expr_falls_back_to_intervals(self):
        env = {"n": Interval(0.0, 3.0)}
        assert bound_expr(mul(N, N), env) == Interval(0.0, 9.0)


class TestConditionStatus:
    def test_never(self):
        env = {"n": Interval(0.0, 240.0)}
        clause = Compare(">", N, Const(1000.0))
        assert condition_status(clause, env) == "never"

    def test_always(self):
        env = {"n": Interval(0.0, 240.0)}
        clause = Compare("<=", N, Const(1000.0))
        assert condition_status(clause, env) == "always"

    def test_unknown(self):
        env = {"n": Interval(0.0, 240.0)}
        clause = Compare(">", N, Const(100.0))
        assert condition_status(clause, env) == "unknown"

    def test_negation(self):
        env = {"n": Interval(0.0, 240.0)}
        clause = UnaryOp("not", Compare(">", N, Const(1000.0)))
        assert condition_status(clause, env) == "always"

    def test_unbounded_input_is_unknown(self):
        clause = Compare(">", N, Const(1000.0))
        assert condition_status(clause, {}) == "unknown"


class TestUnboundedEnergy:
    def test_loop_energy_over_unbounded_input(self):
        env = {"n": Interval(0.0, math.inf)}
        energy = mul(N, Const(0.001))
        assert bound_expr(energy, env).hi == math.inf

    def test_loop_energy_over_bounded_input(self):
        env = {"n": Interval(0.0, 100.0)}
        energy = mul(N, Const(0.001))
        assert bound_expr(energy, env).hi == pytest.approx(0.1)
