"""Golden tests for the differential energy checker (EB201–EB206)."""

import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis.fingerprint import fingerprint_paths, load_fingerprints
from repro.analysis.lint import REGRESS_RULE_IDS, RULES, to_sarif
from repro.analysis.regress import bisect_range, diff_fingerprints
from repro.core.errors import RegressError

FIXTURES = Path(__file__).parent / "fixtures" / "regress"
REPO_ROOT = Path(__file__).parents[2]
APPS = str(REPO_ROOT / "src" / "repro" / "apps")

EB2XX = ["EB201", "EB202", "EB203", "EB204", "EB205", "EB206"]


def diff_pair(code, **kwargs):
    before = fingerprint_paths([str(FIXTURES / "before" / f"{code}.py")])
    after = fingerprint_paths([str(FIXTURES / "after" / f"{code}.py")])
    return diff_fingerprints(before, after, **kwargs)


class TestRuleRegistry:
    def test_all_regress_rules_are_registered(self):
        assert REGRESS_RULE_IDS == set(EB2XX)
        for rule in EB2XX:
            assert rule in RULES

    def test_masking_is_a_warning_the_rest_are_errors(self):
        assert RULES["EB206"].severity == "warning"
        for rule in EB2XX[:-1]:
            assert RULES[rule].severity == "error"


class TestGoldenPerRule:
    """Each before/after pair triggers exactly its rule, nothing else."""

    @pytest.mark.parametrize("rule", EB2XX)
    def test_pair_triggers_only_its_rule(self, rule):
        findings = diff_pair(rule.lower())
        assert [f.rule for f in findings] == [rule]
        assert findings[0].severity == RULES[rule].severity

    @pytest.mark.parametrize("rule", EB2XX)
    def test_pair_renders_to_sarif(self, rule):
        findings = diff_pair(rule.lower())
        sarif = json.loads(to_sarif(findings, tool="repro-energy regress"))
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-energy regress"
        assert [r["ruleId"] for r in run["results"]] == [rule]
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} \
            >= set(EB2XX)

    @pytest.mark.parametrize("rule", EB2XX)
    def test_identical_pair_member_is_clean(self, rule):
        """Diffing a fixture against itself finds nothing."""
        target = str(FIXTURES / "after" / f"{rule.lower()}.py")
        assert diff_fingerprints(fingerprint_paths([target]),
                                 fingerprint_paths([target])) == []


class TestDiffSemantics:
    def test_tolerance_silences_eb201(self):
        assert diff_pair("eb201", tolerance=2.0) == []

    def test_zero_tolerance_catches_eb206_growth_as_eb201(self):
        rules = {f.rule for f in diff_pair("eb206", tolerance=0.0)}
        assert "EB201" in rules

    def test_negative_tolerance_is_rejected(self):
        before = fingerprint_paths([str(FIXTURES / "before" / "eb201.py")])
        with pytest.raises(RegressError, match="tolerance"):
            diff_fingerprints(before, before, tolerance=-0.1)

    def test_disjoint_profiles_are_rejected(self):
        before = fingerprint_paths([str(FIXTURES / "before" / "eb201.py")])
        after = fingerprint_paths([str(FIXTURES / "before" / "eb201.py")],
                                  profiles={"exotic": 2.0})
        with pytest.raises(RegressError, match="no device profile"):
            diff_fingerprints(before, after)

    def test_removed_interface_is_not_a_regression(self):
        before = fingerprint_paths([str(FIXTURES / "before" / "eb201.py")])
        empty = fingerprint_paths([str(FIXTURES / "before" / "eb203.py")])
        rules = {f.rule for f in diff_fingerprints(before, empty)}
        assert "EB201" not in rules and "EB202" not in rules

    def test_new_unbounded_interface_is_flagged(self):
        baseline = fingerprint_paths(
            [str(FIXTURES / "before" / "eb201.py")])
        grown = fingerprint_paths(
            [str(FIXTURES / "before" / "eb201.py"),
             str(REPO_ROOT / "tests" / "analysis" / "fixtures"
                 / "buggy_loop.py")])
        rules = [f.rule for f in diff_fingerprints(baseline, grown)]
        assert rules == ["EB202"]


class TestNoChangeAtHead:
    """The committed baseline matches HEAD: the gate is green."""

    def test_head_diff_against_committed_baseline_is_empty(self):
        baseline = load_fingerprints(
            REPO_ROOT / ".energy-fingerprints.json")
        current = fingerprint_paths([APPS])
        assert diff_fingerprints(baseline, current) == []

    def test_committed_baseline_is_canonical_bytes(self):
        committed = (REPO_ROOT / ".energy-fingerprints.json").read_text(
            encoding="utf-8")
        parsed = load_fingerprints(REPO_ROOT / ".energy-fingerprints.json")
        assert parsed.to_json() == committed


@pytest.fixture(scope="module")
def synthetic_history(tmp_path_factory):
    """A 4-commit repo where commit 3 doubles the write cost."""
    repo = tmp_path_factory.mktemp("history")
    module = repo / "mod.py"
    subprocess.run(["git", "init", "-q"], cwd=repo, check=True)

    def commit(source, message):
        module.write_text(source, encoding="utf-8")
        subprocess.run(["git", "add", "mod.py"], cwd=repo, check=True)
        subprocess.run(["git", "-c", "user.name=t",
                        "-c", "user.email=t@example.invalid",
                        "commit", "-q", "-m", message], cwd=repo,
                       check=True)
        return subprocess.run(["git", "rev-parse", "HEAD"], cwd=repo,
                              check=True, capture_output=True,
                              text=True).stdout.strip()

    good = (FIXTURES / "before" / "eb201.py").read_text(encoding="utf-8")
    bad = (FIXTURES / "after" / "eb201.py").read_text(encoding="utf-8")
    commits = [
        commit(good, "seed the put"),
        commit(good + "\n# benign comment\n", "benign edit"),
        commit(bad, "double the write cost"),
        commit(bad + "\n# another benign edit\n", "benign edit 2"),
    ]
    return repo, commits


class TestBisection:
    def test_pinpoints_the_regressing_commit(self, synthetic_history):
        repo, commits = synthetic_history
        result = bisect_range(repo, f"{commits[0]}..{commits[3]}",
                              ["mod.py"])
        assert result.first_bad == commits[2]
        assert not result.ok
        assert [f.rule for f in result.findings] == ["EB201"]
        probed = {step.commit: step.bad for step in result.steps}
        assert probed[commits[2]] is True
        assert all(probed[c] is False for c in probed
                   if c in (commits[0], commits[1]))

    def test_clean_range_reports_ok(self, synthetic_history):
        repo, commits = synthetic_history
        result = bisect_range(repo, f"{commits[0]}..{commits[1]}",
                              ["mod.py"])
        assert result.ok and result.first_bad is None

    def test_malformed_range_is_rejected(self, synthetic_history):
        repo, _ = synthetic_history
        with pytest.raises(RegressError, match="GOOD\\.\\.BAD"):
            bisect_range(repo, "deadbeef", ["mod.py"])

    def test_empty_range_is_rejected(self, synthetic_history):
        repo, commits = synthetic_history
        with pytest.raises(RegressError, match="no commits"):
            bisect_range(repo, f"{commits[3]}..{commits[0]}", ["mod.py"])
