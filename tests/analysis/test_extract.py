"""Tests for interface extraction (implementation -> energy interface)."""

import pytest

from repro.analysis.extract import ExtractedInterface, extract_interface
from repro.analysis.symbex import ResourceModel
from repro.core.ecv import BernoulliECV
from repro.core.errors import ExtractionError
from repro.core.interface import EnergyInterface, evaluate
from repro.core.units import Energy

CACHE = ResourceModel("cache", returning={"lookup": "bool"})
GPU = ResourceModel("gpu")


class CacheIface(EnergyInterface):
    def E_lookup(self, size):
        return Energy.millijoules(2)

    def E_store(self, size):
        return Energy.millijoules(3)


class GpuIface(EnergyInterface):
    def E_conv2d(self, n):
        return Energy.microjoules(3 * n)

    def E_relu(self, n):
        return Energy.nanojoules(40 * n)

    def E_mlp(self, n):
        return Energy.microjoules(1 * n)


SUBS = {"cache": CacheIface(), "gpu": GpuIface()}


def ml_service(res, image_size, n_zeros):
    hit = res.cache.lookup(image_size)
    if hit:
        return 0
    res.gpu.conv2d(image_size - n_zeros)
    for _ in range(8):
        res.gpu.relu(256)
    res.gpu.mlp(256)


def token_decoder(res, n_tokens):
    res.gpu.conv2d(64)
    for _ in range(n_tokens):
        res.gpu.mlp(256)


def size_dependent(res, n):
    if n > 1000:
        res.gpu.conv2d(n)
    else:
        res.gpu.relu(n)


class TestExtraction:
    def test_extracts_paths_and_inputs(self):
        iface = extract_interface(ml_service, [CACHE, GPU], SUBS)
        assert isinstance(iface, ExtractedInterface)
        assert iface.input_names == ["image_size", "n_zeros"]
        assert len(iface.paths) == 2

    def test_discovered_ecv_declared_as_bernoulli(self):
        iface = extract_interface(ml_service, [CACHE, GPU], SUBS)
        ecv = iface.declared_ecv("cache_lookup_0")
        assert isinstance(ecv, BernoulliECV)
        assert "cache.lookup" in ecv.description

    def test_missing_subinterface_rejected(self):
        with pytest.raises(ExtractionError, match="gpu"):
            extract_interface(ml_service, [CACHE, GPU],
                              {"cache": CacheIface()})

    def test_custom_name(self):
        iface = extract_interface(ml_service, [CACHE, GPU], SUBS,
                                  name="webservice")
        assert iface.name == "webservice"


class TestEvaluation:
    def test_hit_path_energy(self):
        iface = extract_interface(ml_service, [CACHE, GPU], SUBS)
        energy = evaluate(iface("E_call", 1024, 100), env={"cache_lookup_0": True})
        assert energy.as_joules == pytest.approx(2e-3)

    def test_miss_path_energy(self):
        iface = extract_interface(ml_service, [CACHE, GPU], SUBS)
        energy = evaluate(iface("E_call", 1024, 100), env={"cache_lookup_0": False})
        expected = 2e-3 + 3e-6 * 924 + 8 * 40e-9 * 256 + 1e-6 * 256
        assert energy.as_joules == pytest.approx(expected)

    def test_expected_mixes_paths(self):
        iface = extract_interface(ml_service, [CACHE, GPU], SUBS)
        env = {"cache_lookup_0": BernoulliECV("cache_lookup_0", 0.9)}
        hit = evaluate(iface("E_call", 1024, 100), env={"cache_lookup_0": True}).as_joules
        miss = evaluate(iface("E_call", 1024, 100), env={"cache_lookup_0": False}).as_joules
        expected = iface.expected("E_call", 1024, 100, env=env).as_joules
        assert expected == pytest.approx(0.9 * hit + 0.1 * miss)

    def test_worst_case_is_miss_path(self):
        iface = extract_interface(ml_service, [CACHE, GPU], SUBS)
        worst = iface.worst_case("E_call", 1024, 100).as_joules
        miss = evaluate(iface("E_call", 1024, 100), env={"cache_lookup_0": False}).as_joules
        assert worst == pytest.approx(miss)

    def test_loop_summarised_interface_scales(self):
        iface = extract_interface(token_decoder, [GPU], SUBS)
        e10 = evaluate(iface("E_call", 10)).as_joules
        e20 = evaluate(iface("E_call", 20)).as_joules
        per_token = 1e-6 * 256
        assert e20 - e10 == pytest.approx(10 * per_token)

    def test_keyword_inputs(self):
        iface = extract_interface(token_decoder, [GPU], SUBS)
        assert evaluate(iface("E_call", n_tokens=5)).as_joules == \
            evaluate(iface("E_call", 5)).as_joules

    def test_missing_input_rejected(self):
        iface = extract_interface(token_decoder, [GPU], SUBS)
        with pytest.raises(ExtractionError, match="missing inputs"):
            iface.E_call()

    def test_input_conditions_select_path(self):
        iface = extract_interface(size_dependent, [GPU], SUBS)
        big = evaluate(iface("E_call", 2000)).as_joules
        small = evaluate(iface("E_call", 10)).as_joules
        assert big == pytest.approx(3e-6 * 2000)
        assert small == pytest.approx(40e-9 * 10)

    def test_agrees_with_handwritten_interface(self):
        """Extracted and handwritten interfaces predict identically."""

        class Handwritten(EnergyInterface):
            def __init__(self):
                super().__init__("handwritten")
                self.declare_ecv(BernoulliECV("cache_lookup_0", 0.5))
                self.cache = CacheIface()
                self.gpu = GpuIface()

            def E_handle(self, image_size, n_zeros):
                if self.ecv("cache_lookup_0"):
                    return self.cache.E_lookup(image_size)
                return (self.cache.E_lookup(image_size)
                        + self.gpu.E_conv2d(image_size - n_zeros)
                        + 8 * self.gpu.E_relu(256)
                        + self.gpu.E_mlp(256))

        extracted = extract_interface(ml_service, [CACHE, GPU], SUBS)
        handwritten = Handwritten()
        for inputs in [(1024, 100), (5000, 2500), (64, 0)]:
            assert extracted.expected("E_call", *inputs).as_joules == \
                pytest.approx(handwritten.expected("E_handle",
                                                   *inputs).as_joules)


class TestEmission:
    def test_emitted_source_shape(self):
        iface = extract_interface(ml_service, [CACHE, GPU], SUBS)
        source = iface.emit_python()
        assert source.startswith("def E_ml_service(image_size, n_zeros):")
        assert "# ECV: cache_lookup_0" in source
        assert "E_cache.lookup(image_size)" in source
        assert "E_gpu.conv2d((image_size - n_zeros))" in source

    def test_emitted_source_has_if_elif_chain(self):
        iface = extract_interface(size_dependent, [GPU], SUBS)
        source = iface.emit_python()
        assert "if (n > 1000):" in source
        assert "elif (n <= 1000):" in source

    def test_zero_energy_path_rendered(self):
        def maybe_noop(res, n):
            if n > 0:
                res.gpu.relu(n)

        iface = extract_interface(maybe_noop, [GPU], SUBS)
        assert "0  # this path consumes no modelled energy" in \
            iface.emit_python()
