"""EB105 fixture: branches on a cache-lookup result the interface never
exposes as an ECV, so extraction and the handwritten interface cannot
agree on the energy."""

from repro.core.contracts import energy_spec


def _get_bound(key):
    return 1.0


@energy_spec(
    resources={"cache": {"lookup": "bool"}, "cpu": {}},
    costs={"cache.lookup": 1e-5, "cpu.recompute": 0.01},
    input_bounds={"key": (0, 100)},
    bound=_get_bound,
)
def get(res, key):
    hit = res.cache.lookup(key)
    if hit:
        return 0
    res.cpu.recompute(key)
    return 1
