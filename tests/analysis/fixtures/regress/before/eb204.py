"""EB204 baseline: the radio goes back to sleep on the only path."""

from repro.analysis.sideeffects import RADIO_MODEL
from repro.core.contracts import energy_spec


@energy_spec(
    resources={"nic": {}},
    costs={"nic.send": 1.5e-4, "nic.wake": 8e-3, "nic.sleep": 1e-6},
    input_bounds={"urgent": (0, 1)},
    state_models=(RADIO_MODEL,),
)
def notify(res, urgent):
    res.nic.send(1)
    res.nic.sleep(0)
    return 0
