"""EB202 baseline: every path's energy is a bounded constant."""

from repro.core.contracts import energy_spec


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.step": 0.001},
    input_bounds={"n": (0, 8), "burst": (0, float("inf"))},
)
def process(res, n, burst):
    res.cpu.step(n)
    return 0
