"""EB206 baseline: a tight contract (zero slack) over a 0.002 J put."""

from repro.core.contracts import energy_spec


def _put_bound(nbytes):
    return 0.003


@energy_spec(
    resources={"ssd": {}},
    costs={"ssd.write": 0.002},
    input_bounds={"nbytes": (0, 4096)},
    bound=_put_bound,
    slack=0.0,
)
def kv_put(res, nbytes):
    res.ssd.write(nbytes)
    return 0
