"""EB201 baseline: a put whose worst case is 0.002 J."""

from repro.core.contracts import energy_spec


@energy_spec(
    resources={"ssd": {}},
    costs={"ssd.write": 0.002},
    input_bounds={"nbytes": (0, 4096)},
)
def kv_put(res, nbytes):
    res.ssd.write(nbytes)
    return 0
