"""EB205 baseline: the cache is consulted but control flow ignores the
answer, so no ECV needs exposing."""

from repro.core.contracts import energy_spec


@energy_spec(
    resources={"cache": {"lookup": "bool"}, "cpu": {}},
    costs={"cache.lookup": 1e-5, "cpu.recompute": 0.01},
    input_bounds={"key": (0, 100)},
)
def get(res, key):
    res.cache.lookup(key)
    res.cpu.recompute(key)
    return 0
