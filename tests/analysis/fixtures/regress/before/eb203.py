"""EB203 baseline: the declared-constant-energy compare takes no
secret-dependent branch."""

from repro.core.contracts import energy_spec


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.compare": 0.001},
    input_bounds={"secret": (0, 32)},
    secret_params=("secret",),
    constant_energy=True,
)
def compare(res, secret):
    res.cpu.compare(1)
    return 0
