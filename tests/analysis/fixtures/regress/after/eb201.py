"""EB201 regression: the write path doubled in cost — no point-in-time
rule trips (still bounded, still leak-free), only the diff sees it."""

from repro.core.contracts import energy_spec


@energy_spec(
    resources={"ssd": {}},
    costs={"ssd.write": 0.004},
    input_bounds={"nbytes": (0, 4096)},
)
def kv_put(res, nbytes):
    res.ssd.write(nbytes)
    return 0
