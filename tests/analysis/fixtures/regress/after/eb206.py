"""EB206 regression: the write got 4% costlier — inside the EB201
tolerance — and the same change raised the contract's slack.  The diff
flags the loosened spec as a possible mask for the regression."""

from repro.core.contracts import energy_spec


def _put_bound(nbytes):
    return 0.003


@energy_spec(
    resources={"ssd": {}},
    costs={"ssd.write": 0.00208},
    input_bounds={"nbytes": (0, 4096)},
    bound=_put_bound,
    slack=0.5,
)
def kv_put(res, nbytes):
    res.ssd.write(nbytes)
    return 0
