"""EB203 regression: control flow now forks on the secret.  Both arms
cost the same, so the worst case is unchanged and EB201 stays quiet —
but the branch itself is a new side channel."""

from repro.core.contracts import energy_spec


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.compare": 0.001},
    input_bounds={"secret": (0, 32)},
    secret_params=("secret",),
    constant_energy=True,
)
def compare(res, secret):
    if secret > 0:
        res.cpu.compare(1)
    else:
        res.cpu.compare(1)
    return 0
