"""EB205 regression: the hit path now skips the recompute — energy
depends on a cache-lookup result the spec still does not expose as an
ECV, so the extracted and handwritten interfaces can no longer agree."""

from repro.core.contracts import energy_spec


@energy_spec(
    resources={"cache": {"lookup": "bool"}, "cpu": {}},
    costs={"cache.lookup": 1e-5, "cpu.recompute": 0.01},
    input_bounds={"key": (0, 100)},
)
def get(res, key):
    hit = res.cache.lookup(key)
    if hit:
        return 0
    res.cpu.recompute(key)
    return 1
