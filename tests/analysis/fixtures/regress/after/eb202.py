"""EB202 regression: a new branch drains an unbounded backlog, adding a
path whose worst-case energy no contract covers."""

from repro.core.contracts import energy_spec


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.step": 0.001},
    input_bounds={"n": (0, 8), "burst": (0, float("inf"))},
)
def process(res, n, burst):
    res.cpu.step(n)
    if n > 4:
        for _ in range(burst):
            res.cpu.step(1)
    return 0
