"""EB204 regression: the paper's radio bug, introduced by the diff — a
new urgent path returns with the NIC still awake, so the device's final
state now depends on which path ran."""

from repro.analysis.sideeffects import RADIO_MODEL
from repro.core.contracts import energy_spec


@energy_spec(
    resources={"nic": {}},
    costs={"nic.send": 1.5e-4, "nic.wake": 8e-3, "nic.sleep": 1e-6},
    input_bounds={"urgent": (0, 1)},
    state_models=(RADIO_MODEL,),
)
def notify(res, urgent):
    res.nic.send(1)
    if urgent > 0:
        return 1
    res.nic.sleep(0)
    return 0
