"""EB106 fixture: the panic guard can never hold under the declared
input bounds, so the path it protects is energy-dead."""

from repro.core.contracts import energy_spec


def _encode_bound(frames):
    return 0.002 * frames + 1.0


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.encode": 0.002, "cpu.panic": 1.0},
    input_bounds={"frames": (0, 240)},
    bound=_encode_bound,
)
def encode(res, frames):
    if frames > 1000:
        res.cpu.panic(1)
        return 1
    for _ in range(frames):
        res.cpu.encode(1)
    return 0
