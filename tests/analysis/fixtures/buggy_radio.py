"""EB103 fixture: the paper's radio bug — the urgent path returns with
the NIC still on, so callers after it are charged inconsistently."""

from repro.analysis.sideeffects import RADIO_MODEL
from repro.core.contracts import energy_spec


def _notify_bound(urgent):
    return 1.0


@energy_spec(
    resources={"nic": {}},
    costs={"nic.send": 1.5e-4, "nic.wake": 8e-3, "nic.sleep": 1e-6},
    input_bounds={"urgent": (0, 1)},
    state_models=(RADIO_MODEL,),
    bound=_notify_bound,
)
def notify(res, urgent):
    res.nic.send(1)
    if urgent > 0:
        return 1
    res.nic.sleep(0)
    return 0
