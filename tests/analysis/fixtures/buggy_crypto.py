"""EB102 fixture: the early-exit MAC compare, declared constant-energy.

Both the trip count (bytes compared so far) and the final branch depend
on ``matching_prefix`` — the secret — so the linter must flag the module
as a static energy side-channel.  Inputs are bounded and no bound
contract is declared, so no other rule fires.
"""

from repro.core.contracts import energy_spec


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.compare": 0.002},
    input_bounds={"mac_bytes": (0, 32), "matching_prefix": (0, 32)},
    secret_params=("matching_prefix",),
    constant_energy=True,
)
def early_exit_verify(res, mac_bytes, matching_prefix):
    for _ in range(matching_prefix):
        res.cpu.compare(1)
    if matching_prefix < mac_bytes:
        res.cpu.compare(1)
        return 0
    return 1
