"""EB101 fixture: a loop whose trip count has no finite input bound and
no bound contract — its worst-case energy is unbounded."""

from repro.core.contracts import energy_spec


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.step": 0.001},
    input_bounds={"backlog": (0, float("inf"))},
)
def drain_queue(res, backlog):
    for _ in range(backlog):
        res.cpu.step(1)
    return 0
