"""EB104 fixture: the implementation encodes every frame twice but the
handwritten interface bound only charges one pass."""

from repro.core.contracts import energy_spec


def _encode_bound(frames):
    return 0.002 * frames


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.encode": 0.002},
    input_bounds={"frames": (0, 100)},
    bound=_encode_bound,
)
def encode_twice(res, frames):
    for _ in range(frames):
        res.cpu.encode(1)
    for _ in range(frames):
        res.cpu.encode(1)
    return 0
