"""Seeded energy-bug fixtures: each module triggers exactly one rule."""
