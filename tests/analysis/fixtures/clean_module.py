"""Clean fixture: bounded loop, exact bound contract — zero findings."""

from repro.core.contracts import energy_spec


def _gop_bound(frames):
    return 0.002 * frames


@energy_spec(
    resources={"cpu": {}},
    costs={"cpu.encode": 0.002},
    input_bounds={"frames": (0, 240)},
    bound=_gop_bound,
)
def encode_gop(res, frames):
    for _ in range(frames):
        res.cpu.encode(1)
    return 0
