"""Tests for the secret-taint analysis feeding rule EB102."""

from repro.analysis.symbex import ResourceModel, symbolic_execute
from repro.analysis.taint import analyze_taint, tainted_symbols

CPU = ResourceModel("cpu")
CACHE = ResourceModel("cache", returning={"lookup": "bool"})


def secret_branch(res, n, secret):
    if secret > n:
        res.cpu.heavy(n)
        return 1
    res.cpu.light(n)
    return 0


def secret_trip_count(res, secret):
    for _ in range(secret):
        res.cpu.compare(1)
    return 0


def secret_through_resource(res, secret):
    hit = res.cache.lookup(secret)
    if hit:
        return 0
    res.cpu.recompute(1)
    return 1


def public_only(res, n):
    if n > 10:
        res.cpu.heavy(n)
    else:
        res.cpu.light(n)
    return 0


class TestTaintedSymbols:
    def test_secrets_are_sources(self):
        paths = symbolic_execute(secret_branch, [CPU])
        assert "secret" in tainted_symbols(paths, ["secret"])

    def test_resource_result_of_secret_call_is_tainted(self):
        paths = symbolic_execute(secret_through_resource, [CACHE, CPU])
        tainted = tainted_symbols(paths, ["secret"])
        assert any(name.startswith("cache_lookup") for name in tainted)

    def test_untainted_result_stays_clean(self):
        paths = symbolic_execute(secret_through_resource, [CACHE, CPU])
        tainted = tainted_symbols(paths, [])
        assert tainted == set()


class TestAnalyzeTaint:
    def test_secret_branch_flagged_once(self):
        paths = symbolic_execute(secret_branch, [CPU])
        uses = analyze_taint(paths, ["secret"])
        # The two arms contribute a clause and its negation: one decision.
        assert len(uses) == 1
        assert uses[0].kind == "branch"
        assert "secret" in uses[0].secrets

    def test_secret_trip_count_flagged(self):
        paths = symbolic_execute(secret_trip_count, [CPU])
        uses = analyze_taint(paths, ["secret"])
        assert [use.kind for use in uses] == ["trip-count"]
        assert "secret" in uses[0].describe()

    def test_branch_on_tainted_resource_result_flagged(self):
        paths = symbolic_execute(secret_through_resource, [CACHE, CPU])
        uses = analyze_taint(paths, ["secret"])
        assert any(use.kind == "branch" for use in uses)

    def test_public_branching_is_clean(self):
        paths = symbolic_execute(public_only, [CPU])
        assert analyze_taint(paths, ["secret"]) == []

    def test_no_secrets_no_uses(self):
        paths = symbolic_execute(secret_branch, [CPU])
        assert analyze_taint(paths, []) == []
