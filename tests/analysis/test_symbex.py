"""Tests for the restricted symbolic executor."""

import pytest

from repro.analysis.expr import evaluate_expr
from repro.analysis.symbex import ResourceModel, symbolic_execute
from repro.core.errors import SymbolicExecutionError

GPU = ResourceModel("gpu")
CACHE = ResourceModel("cache", returning={"lookup": "bool"})
QUEUE = ResourceModel("queue", returning={"depth": "int"})


# --- implementations under analysis (module level so getsource works) ----

def straight_line(res, n):
    res.gpu.conv2d(n)
    res.gpu.mlp(256)


def branch_on_input(res, n):
    if n > 1024:
        res.gpu.big_op(n)
    else:
        res.gpu.small_op(n)


def branch_on_resource(res, n):
    hit = res.cache.lookup(n)
    if hit:
        return 0
    res.gpu.infer(n)
    return 1


def concrete_loop(res, n):
    for _ in range(4):
        res.gpu.relu(n)


def symbolic_loop(res, n):
    res.gpu.setup(1)
    for _ in range(n):
        res.gpu.step(8)


def symbolic_loop_two_bounds(res, a, b):
    for _ in range(a, b):
        res.gpu.step(1)


def loop_with_branch_inside(res, n):
    for _ in range(n):
        hit = res.cache.lookup(1)
        if hit:
            res.gpu.small_op(1)


def loop_with_accumulator(res, n):
    total = 0
    for _ in range(n):
        total = total + 1
    res.gpu.op(total)


def loop_energy_depends_on_index(res, n):
    for index in range(n):
        res.gpu.op(index)


def nested_condition(res, n, m):
    if n > 10:
        if m > 20:
            res.gpu.both(n, m)
        else:
            res.gpu.only_n(n)
    else:
        res.gpu.neither(1)


def uses_min_max(res, n):
    res.gpu.op(min(n, 100))
    res.gpu.op2(max(n, 10))


def uses_abs(res, n):
    res.gpu.op(abs(n))


def uses_bool_ops(res, n, m):
    if n > 0 and m > 0:
        res.gpu.both_positive(n + m)
    else:
        res.gpu.fallback(1)


def uses_ifexp(res, n):
    res.gpu.op(5 if n > 3 else 7)


def uses_while_concrete(res, n):
    count = 0
    while count < 3:
        res.gpu.op(count)
        count += 1


def helper_double(x):
    return 2 * x


def uses_helper(res, n):
    res.gpu.op(helper_double(n))


def uses_tuple_unpack(res, n):
    a, b = 1, n
    res.gpu.op(a + b)


def uses_queue_int(res, n):
    depth = res.queue.depth(0)
    if depth > 5:
        res.gpu.drain(depth)


def while_symbolic(res, n):
    count = 0
    while count < n:
        count += 1


def breaks_in_summarised_loop(res, n):
    for _ in range(n):
        break


def uses_assert(res, n):
    assert n > 0
    res.gpu.op(n)


def break_late_in_summarised_loop(res, n):
    for _ in range(n):
        res.gpu.op(1)
        break


def continue_under_dead_guard(res, n):
    for _ in range(n):
        res.gpu.op(1)
        if 1 > 2:
            continue


def break_in_concrete_loop_ok(res, n):
    for index in range(5):
        if index >= 3:
            break
        res.gpu.op(1)


# --- tests ---------------------------------------------------------------

class TestStraightLine:
    def test_single_path(self):
        paths = symbolic_execute(straight_line, [GPU])
        assert len(paths) == 1
        assert [t.render() for t in paths[0].energy_terms] == [
            "E_gpu.conv2d(n)", "E_gpu.mlp(256)"]
        assert paths[0].condition == []


class TestBranching:
    def test_input_branch_two_paths(self):
        paths = symbolic_execute(branch_on_input, [GPU])
        assert len(paths) == 2
        conditions = {p.condition_text() for p in paths}
        assert "(n > 1024)" in conditions
        assert "(n <= 1024)" in conditions

    def test_resource_branch_creates_ecv(self):
        paths = symbolic_execute(branch_on_resource, [CACHE, GPU])
        assert len(paths) == 2
        all_ecvs = {name for p in paths for name in p.ecvs}
        assert all_ecvs == {"cache_lookup_0"}
        kind, origin = paths[0].ecvs["cache_lookup_0"]
        assert kind == "bool"
        assert "cache.lookup" in origin

    def test_returns_recorded(self):
        paths = symbolic_execute(branch_on_resource, [CACHE, GPU])
        returns = {p.returns for p in paths}
        assert returns == {0, 1}

    def test_nested_conditions_three_paths(self):
        paths = symbolic_execute(nested_condition, [GPU])
        assert len(paths) == 3

    def test_bool_ops_short_circuit(self):
        paths = symbolic_execute(uses_bool_ops, [GPU])
        # n>0 and m>0 -> 3 paths: (T,T), (T,F), (F,_)
        assert len(paths) == 3

    def test_ifexp_branches(self):
        paths = symbolic_execute(uses_ifexp, [GPU])
        assert len(paths) == 2

    def test_int_valued_resource_return(self):
        paths = symbolic_execute(uses_queue_int, [QUEUE, GPU])
        assert len(paths) == 2
        kind, _ = paths[0].ecvs["queue_depth_0"]
        assert kind == "int"


class TestLoops:
    def test_concrete_loop_unrolls(self):
        paths = symbolic_execute(concrete_loop, [GPU])
        assert len(paths[0].energy_terms) == 4

    def test_symbolic_loop_summarised(self):
        paths = symbolic_execute(symbolic_loop, [GPU])
        (path,) = paths
        assert len(path.energy_terms) == 2
        scaled = path.energy_terms[1]
        value = evaluate_expr(scaled.multiplier, {"n": 7})
        assert value == 7

    def test_symbolic_loop_with_start(self):
        (path,) = symbolic_execute(symbolic_loop_two_bounds, [GPU])
        value = evaluate_expr(path.energy_terms[0].multiplier,
                              {"a": 3, "b": 10})
        assert value == 7

    def test_branch_inside_summarised_loop_rejected(self):
        with pytest.raises(SymbolicExecutionError, match="summarised loop"):
            symbolic_execute(loop_with_branch_inside, [CACHE, GPU])

    def test_accumulator_in_summarised_loop_rejected(self):
        with pytest.raises(SymbolicExecutionError, match="mutates"):
            symbolic_execute(loop_with_accumulator, [GPU])

    def test_index_dependent_energy_rejected(self):
        with pytest.raises(SymbolicExecutionError, match="loop index"):
            symbolic_execute(loop_energy_depends_on_index, [GPU])

    def test_concrete_while(self):
        (path,) = symbolic_execute(uses_while_concrete, [GPU])
        assert len(path.energy_terms) == 3

    def test_symbolic_while_rejected(self):
        with pytest.raises(SymbolicExecutionError, match="while"):
            symbolic_execute(while_symbolic, [GPU])

    def test_break_in_summarised_loop_rejected(self):
        with pytest.raises(SymbolicExecutionError):
            symbolic_execute(breaks_in_summarised_loop, [GPU])

    def test_break_error_names_construct_and_line(self):
        with pytest.raises(SymbolicExecutionError,
                           match="'break' at line 4"):
            symbolic_execute(break_late_in_summarised_loop, [GPU])

    def test_continue_under_dead_guard_refused(self):
        # A continue guarded by a concrete-False condition used to slip
        # through summarisation silently (the guard never fired during
        # the single summarisation run); it must be refused up front.
        with pytest.raises(SymbolicExecutionError,
                           match="'continue' at line 5"):
            symbolic_execute(continue_under_dead_guard, [GPU])

    def test_break_in_concrete_loop_still_fine(self):
        (path,) = symbolic_execute(break_in_concrete_loop_ok, [GPU])
        assert len(path.energy_terms) == 3


class TestBuiltinsAndHelpers:
    def test_min_max_fork(self):
        paths = symbolic_execute(uses_min_max, [GPU])
        assert len(paths) == 4  # 2 for min x 2 for max

    def test_abs_forks(self):
        paths = symbolic_execute(uses_abs, [GPU])
        assert len(paths) == 2

    def test_helper_inlined(self):
        (path,) = symbolic_execute(uses_helper, [GPU],
                                   helpers={"helper_double": helper_double})
        value = evaluate_expr(path.energy_terms[0].args[0], {"n": 5})
        assert value == 10

    def test_tuple_unpack(self):
        (path,) = symbolic_execute(uses_tuple_unpack, [GPU])
        value = evaluate_expr(path.energy_terms[0].args[0], {"n": 5})
        assert value == 6

    def test_assert_splits_and_fails(self):
        with pytest.raises(SymbolicExecutionError, match="assertion"):
            symbolic_execute(uses_assert, [GPU])


class TestGuards:
    def test_undeclared_resource_rejected(self):
        with pytest.raises(SymbolicExecutionError, match="undeclared"):
            symbolic_execute(branch_on_resource, [CACHE])  # no gpu model

    def test_path_explosion_guard(self):
        def wide(res, a, b, c):
            if a > 0:
                res.gpu.op(1)
            if b > 0:
                res.gpu.op(2)
            if c > 0:
                res.gpu.op(3)

        # 8 paths is fine; force a tiny cap to trigger the guard.
        with pytest.raises(SymbolicExecutionError, match="explosion"):
            symbolic_execute(branch_on_input, [GPU], max_paths=1)

    def test_probabilities_irrelevant_here(self):
        paths = symbolic_execute(branch_on_input, [GPU], max_paths=8)
        assert len(paths) == 2
