"""Tests for the symbolic expression language."""

import pytest

from repro.analysis.expr import (
    BinOp,
    Compare,
    Const,
    EnergyTerm,
    FreshSymbol,
    UnaryOp,
    Var,
    as_expr,
    evaluate_expr,
)
from repro.core.errors import ExtractionError


class TestConstruction:
    def test_operators_build_trees(self):
        expr = Var("x") + 2 * Var("y") - 1
        assert isinstance(expr, BinOp)
        assert expr.free_variables() == {"x", "y"}

    def test_reflected_operators(self):
        expr = 10 - Var("x")
        assert evaluate_expr(expr, {"x": 3}) == 7

    def test_comparison_builds_compare(self):
        expr = Var("x") < 5
        assert isinstance(expr, Compare)

    def test_sym_eq(self):
        expr = Var("x").sym_eq(3)
        assert evaluate_expr(expr, {"x": 3}) is True

    def test_truthiness_is_refused(self):
        with pytest.raises(ExtractionError):
            bool(Var("x") < 5)

    def test_as_expr_coercions(self):
        assert isinstance(as_expr(5), Const)
        assert isinstance(as_expr(Var("x")), Var)
        with pytest.raises(ExtractionError):
            as_expr(object())

    def test_unsupported_operator_rejected(self):
        with pytest.raises(ExtractionError):
            BinOp("@", Const(1), Const(2))
        with pytest.raises(ExtractionError):
            Compare("in", Const(1), Const(2))
        with pytest.raises(ExtractionError):
            UnaryOp("~", Const(1))


class TestEvaluation:
    def test_arithmetic(self):
        expr = (Var("a") + Var("b")) * 2 - Var("a") / 2
        assert evaluate_expr(expr, {"a": 4, "b": 1}) == pytest.approx(8.0)

    def test_floor_div_and_mod(self):
        assert evaluate_expr(Var("n") // 3, {"n": 10}) == 3
        assert evaluate_expr(Var("n") % 3, {"n": 10}) == 1

    def test_power(self):
        assert evaluate_expr(Var("n") ** 2, {"n": 5}) == 25

    def test_negation(self):
        assert evaluate_expr(-Var("n"), {"n": 5}) == -5

    def test_comparisons(self):
        env = {"x": 3}
        assert evaluate_expr(Var("x") < 5, env) is True
        assert evaluate_expr(Var("x") >= 5, env) is False
        assert evaluate_expr(Var("x").sym_ne(3), env) is False

    def test_missing_binding_raises(self):
        with pytest.raises(ExtractionError):
            evaluate_expr(Var("ghost"), {})

    def test_fresh_symbol_missing_binding_names_origin(self):
        symbol = FreshSymbol("cache_hit", origin="result of cache.lookup")
        with pytest.raises(ExtractionError, match="cache.lookup"):
            evaluate_expr(symbol, {})


class TestNegation:
    def test_compare_negation_table(self):
        pairs = [("<", ">="), ("<=", ">"), (">", "<="), (">=", "<"),
                 ("==", "!="), ("!=", "==")]
        for op, negated in pairs:
            expr = Compare(op, Var("x"), Const(1))
            assert expr.negated().op == negated

    def test_not_unwraps(self):
        inner = Compare("<", Var("x"), Const(1))
        wrapped = UnaryOp("not", inner)
        assert wrapped.negated() is inner


class TestRendering:
    def test_render_round_trips_semantics(self):
        expr = (Var("x") + 1) * 2
        assert eval(expr.render(), {"x": 3}) == 8

    def test_repr_is_render(self):
        assert repr(Var("x")) == "x"


class TestEnergyTerm:
    def test_render_plain_call(self):
        term = EnergyTerm("cache", "lookup", (Var("n"),))
        assert term.render() == "E_cache.lookup(n)"

    def test_render_with_multiplier(self):
        term = EnergyTerm("gpu", "mlp", (Const(256),)).scaled(Var("k"))
        assert "k" in term.render()
        assert "E_gpu.mlp(256)" in term.render()

    def test_free_variables_include_args_and_multiplier(self):
        term = EnergyTerm("gpu", "op", (Var("n"),)).scaled(Var("k"))
        assert term.free_variables() == {"n", "k"}
