"""Determinism and round-trip tests for the fingerprint baseline."""

import json
from pathlib import Path

import pytest

from repro.analysis.fingerprint import (
    DEVICE_PROFILES,
    FingerprintSet,
    fingerprint_paths,
    load_fingerprints,
)
from repro.analysis.lint import format_baseline, lint_paths, load_baseline, \
    to_sarif
from repro.core.errors import RegressError

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]
APPS = str(REPO_ROOT / "src" / "repro" / "apps")


class TestDeviceProfiles:
    def test_reference_profile_is_unit_scale(self):
        assert DEVICE_PROFILES["sim4090"] == 1.0

    def test_older_silicon_pays_more(self):
        assert DEVICE_PROFILES["sim3070"] > 1.0


class TestFingerprinting:
    def test_covers_all_seven_apps(self):
        prints = fingerprint_paths([APPS])
        assert len(prints.interfaces) == 7
        modules = {fp.key.split(":")[0]
                   for fp in prints.interfaces.values()}
        assert modules == {"consensus", "crypto", "drone", "fuzzing",
                           "kvstore", "mlservice", "transcode"}

    def test_every_interface_has_both_profiles(self):
        prints = fingerprint_paths([APPS])
        for fp in prints.interfaces.values():
            for path in fp.paths:
                assert set(path.worst_case) == set(DEVICE_PROFILES)

    def test_worst_case_scales_with_profile(self):
        prints = fingerprint_paths([APPS])
        fp = prints.interfaces["kvstore:kv_put_impl"]
        slow = fp.worst_case("sim3070")
        fast = fp.worst_case("sim4090")
        assert slow == pytest.approx(
            fast * DEVICE_PROFILES["sim3070"])

    def test_file_and_key_are_checkout_relative(self):
        prints = fingerprint_paths([APPS])
        fp = prints.interfaces["kvstore:kv_put_impl"]
        assert not Path(fp.file).is_absolute()
        assert "_energy_lint_" not in fp.key


class TestDeterminism:
    """Satellite: baselines and SARIF must be byte-stable across runs."""

    def test_fingerprint_json_is_byte_stable(self):
        first = fingerprint_paths([APPS]).to_json()
        second = fingerprint_paths([APPS]).to_json()
        assert first == second

    def test_fingerprint_round_trip_is_identity(self):
        document = fingerprint_paths([APPS]).to_json()
        assert FingerprintSet.from_json(document).to_json() == document

    def test_fingerprint_json_keys_are_sorted(self):
        payload = json.loads(fingerprint_paths([APPS]).to_json())
        keys = list(payload["interfaces"])
        assert keys == sorted(keys)

    def test_sarif_is_byte_stable(self):
        target = str(FIXTURES / "buggy_radio.py")
        first, _ = lint_paths([target])
        second, _ = lint_paths([target])
        assert to_sarif(first) == to_sarif(second)

    def test_lint_baseline_round_trip(self, tmp_path):
        findings, _ = lint_paths([str(FIXTURES / "buggy_radio.py")])
        assert findings
        baseline = tmp_path / ".energy-lint.baseline"
        baseline.write_text(format_baseline(findings), encoding="utf-8")
        assert load_baseline(baseline) == {f.fingerprint()
                                           for f in findings}

    def test_finding_fingerprint_is_stem_stable(self, tmp_path):
        """The same module fingerprints identically wherever it lives."""
        source = (FIXTURES / "buggy_radio.py").read_text(encoding="utf-8")
        copy = tmp_path / "buggy_radio.py"
        copy.write_text(source, encoding="utf-8")
        original, _ = lint_paths([str(FIXTURES / "buggy_radio.py")])
        relocated, _ = lint_paths([str(copy)])
        assert ({f.fingerprint() for f in original}
                == {f.fingerprint() for f in relocated})


class TestSerialisationErrors:
    def test_missing_baseline_names_the_fix(self, tmp_path):
        with pytest.raises(RegressError, match="--write-baseline"):
            load_fingerprints(tmp_path / "absent.json")

    def test_invalid_json_is_a_regress_error(self):
        with pytest.raises(RegressError, match="not valid JSON"):
            FingerprintSet.from_json("{nope")

    def test_wrong_schema_version_is_rejected(self):
        document = json.dumps({"schema_version": "99", "profiles": {},
                               "interfaces": {}})
        with pytest.raises(RegressError, match="schema version"):
            FingerprintSet.from_json(document)

    def test_malformed_interfaces_are_rejected(self):
        document = json.dumps({"schema_version": "1", "profiles": {},
                               "interfaces": {"x:y": {"module": "x"}}})
        with pytest.raises(RegressError, match="malformed"):
            FingerprintSet.from_json(document)
