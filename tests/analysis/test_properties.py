"""Property-based tests: extraction agrees with direct interpretation.

The key soundness property of the §4.2 toolchain: for *any* inputs and
any resolution of the resource-result ECVs, evaluating the extracted
interface must equal running the implementation against a cost-charging
interpreter.  Hypothesis drives both through randomized inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.extract import extract_interface
from repro.analysis.symbex import ResourceModel
from repro.core.interface import EnergyInterface, evaluate
from repro.core.units import Energy

ints = st.integers(min_value=0, max_value=10_000)
small_ints = st.integers(min_value=0, max_value=40)


class ChargingInterface(EnergyInterface):
    """Charges linear costs per op — easy to mirror by hand."""

    COSTS = {"alpha": 3.0, "beta": 5.0, "gamma": 0.25, "probe": 0.5}

    def E_alpha(self, n):
        return Energy(self.COSTS["alpha"] * n)

    def E_probe(self, n):
        return Energy(self.COSTS["probe"])

    def E_beta(self, n):
        return Energy(self.COSTS["beta"] * n)

    def E_gamma(self, n):
        return Energy(self.COSTS["gamma"] * n)


SUBS = {"dev": ChargingInterface()}
DEV = ResourceModel("dev", returning={"probe": "bool"})


# --- implementations (module level for inspect.getsource) -----------------

def piecewise(res, x, y):
    if x > y:
        res.dev.alpha(x - y)
    else:
        res.dev.beta(y - x)
    if x > 1000:
        res.dev.gamma(x)


def with_loop(res, n, k):
    res.dev.alpha(1)
    for _ in range(k):
        res.dev.gamma(n)


def with_probe(res, n):
    warm = res.dev.probe(n)
    if warm:
        res.dev.gamma(n)
    else:
        res.dev.beta(n)


def reference_piecewise(x, y):
    costs = ChargingInterface.COSTS
    total = costs["alpha"] * (x - y) if x > y else costs["beta"] * (y - x)
    if x > 1000:
        total += costs["gamma"] * x
    return total


def reference_with_loop(n, k):
    costs = ChargingInterface.COSTS
    return costs["alpha"] * 1 + k * costs["gamma"] * n


def reference_with_probe(n, warm):
    costs = ChargingInterface.COSTS
    body = costs["gamma"] * n if warm else costs["beta"] * n
    return costs["probe"] + body


PIECEWISE = extract_interface(piecewise, [DEV], SUBS)
WITH_LOOP = extract_interface(with_loop, [DEV], SUBS)
WITH_PROBE = extract_interface(with_probe, [DEV], SUBS)


class TestExtractionSoundness:
    @given(ints, ints)
    @settings(max_examples=150)
    def test_piecewise_matches_reference(self, x, y):
        extracted = PIECEWISE.E_call(x, y).as_joules
        assert extracted == pytest.approx(reference_piecewise(x, y))

    @given(ints, small_ints)
    @settings(max_examples=100)
    def test_loop_summarisation_matches_unrolled(self, n, k):
        extracted = WITH_LOOP.E_call(n, k).as_joules
        assert extracted == pytest.approx(reference_with_loop(n, k))

    @given(ints, st.booleans())
    @settings(max_examples=100)
    def test_probe_ecv_matches_reference(self, n, warm):
        extracted = evaluate(WITH_PROBE("E_call", n), env={"dev_probe_0": warm}).as_joules
        assert extracted == pytest.approx(reference_with_probe(n, warm))

    @given(ints, st.floats(min_value=0.0, max_value=1.0,
                           allow_nan=False))
    @settings(max_examples=60)
    def test_probe_expectation_is_convex_combination(self, n, p):
        from repro.core.ecv import BernoulliECV
        expected = WITH_PROBE.expected(
            "E_call", n,
            env={"dev_probe_0": BernoulliECV("dev_probe_0", p)}).as_joules
        warm = reference_with_probe(n, True)
        cold = reference_with_probe(n, False)
        assert expected == pytest.approx(p * warm + (1 - p) * cold,
                                         abs=1e-9)

    @given(ints, ints)
    @settings(max_examples=60)
    def test_worst_case_dominates_every_resolution(self, x, y):
        worst = PIECEWISE.worst_case("E_call", x, y).as_joules
        assert worst >= reference_piecewise(x, y) - 1e-9

    @given(ints)
    @settings(max_examples=60)
    def test_emitted_source_is_valid_python(self, n):
        import ast
        ast.parse(WITH_LOOP.emit_python())
        ast.parse(PIECEWISE.emit_python())
        ast.parse(WITH_PROBE.emit_python())
