"""Tests for device-state side-effect analysis (the §4.2 radio example)."""

import pytest

from repro.analysis.sideeffects import (
    RADIO_MODEL,
    DeviceStateModel,
    analyze_module,
    analyze_sequence,
)
from repro.analysis.symbex import ResourceModel

NIC = ResourceModel("nic")
CACHE = ResourceModel("cache", returning={"lookup": "bool"})


def sync_app(res, payload):
    res.nic.send(payload)
    res.nic.send(payload)


def polite_app(res, payload):
    res.nic.send(payload)
    res.nic.sleep()


def conditional_sender(res, payload):
    fresh = res.cache.lookup(payload)
    if fresh:
        return
    res.nic.send(payload)


def terms(path):
    return [t.render() for t in path.energy_terms]


class TestSingleModule:
    def test_first_send_pays_wake(self):
        analysis = analyze_module(sync_app, [NIC], [RADIO_MODEL])
        (path,) = analysis.paths
        assert terms(path) == ["E_nic.wake()", "E_nic.send(payload)",
                               "E_nic.send(payload)"]

    def test_final_state_recorded(self):
        analysis = analyze_module(sync_app, [NIC], [RADIO_MODEL])
        assert analysis.paths[0].final_states["nic"] == "on"
        assert analysis.possible_final_states("nic") == {"on"}

    def test_warm_start_skips_wake(self):
        analysis = analyze_module(sync_app, [NIC], [RADIO_MODEL],
                                  initial_states={"nic": "on"})
        (path,) = analysis.paths
        assert terms(path) == ["E_nic.send(payload)", "E_nic.send(payload)"]

    def test_sleep_restores_off(self):
        analysis = analyze_module(polite_app, [NIC], [RADIO_MODEL])
        assert analysis.paths[0].final_states["nic"] == "off"


class TestSequences:
    def test_second_module_benefits_from_first(self):
        """The paper's exact claim: apps after the radio-waker pay less."""
        analyses = analyze_sequence([sync_app, sync_app], [NIC],
                                    [RADIO_MODEL])
        first, second = analyses
        assert terms(first.paths[0])[0] == "E_nic.wake()"
        assert "E_nic.wake()" not in terms(second.paths[0])

    def test_polite_predecessor_means_wake_again(self):
        analyses = analyze_sequence([polite_app, sync_app], [NIC],
                                    [RADIO_MODEL])
        _, second = analyses
        assert terms(second.paths[0])[0] == "E_nic.wake()"

    def test_uncertain_state_charged_conservatively(self):
        """A conditional sender may or may not leave the radio on; the
        follower is charged under the worst case (wake included)."""
        analyses = analyze_sequence([conditional_sender, sync_app],
                                    [NIC, CACHE], [RADIO_MODEL])
        follower = analyses[1]
        assert any("E_nic.wake()" in terms(path)
                   for path in follower.paths)


class TestModelValidation:
    def test_empty_resource_rejected(self):
        from repro.core.errors import ExtractionError
        with pytest.raises(ExtractionError):
            DeviceStateModel("", "off", {})

    def test_unknown_state_left_unchanged(self):
        model = DeviceStateModel("nic", "weird", RADIO_MODEL.transitions)
        analysis = analyze_module(sync_app, [NIC], [model])
        # "weird" is not in send's table, so state persists and no wake.
        assert analysis.paths[0].final_states["nic"] == "weird"
