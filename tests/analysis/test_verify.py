"""Tests for divergence testing (energy-bug detection, §4.2)."""

import pytest

from repro.analysis.verify import divergence_test
from repro.core.errors import EnergyError
from repro.core.interface import EnergyInterface
from repro.core.units import Energy
from repro.hardware.machine import Machine
from repro.hardware.memory import DRAM, DRAMSpec
from repro.measurement.meter import ledger_meter


class DramInterface(EnergyInterface):
    """Interface for a module that reads n kilobytes from DRAM."""

    def __init__(self, spec):
        super().__init__("reader")
        self.spec = spec

    def E_read(self, n_kb):
        lines = n_kb * 1024 // 64
        return Energy(lines * self.spec.e_read_line)


def build():
    machine = Machine("m")
    spec = DRAMSpec(e_read_line=10e-9, e_write_line=20e-9,
                    p_refresh_w=0.0, bandwidth_bytes=1e9)
    dram = machine.add(DRAM("dram", spec))
    return machine, dram, DramInterface(spec)


class TestDivergenceTest:
    def test_faithful_implementation_passes(self):
        machine, dram, iface = build()

        def run(n_kb):
            dram.access(bytes_read=n_kb * 1024)

        report = divergence_test(iface.E_read, run, ledger_meter(machine),
                                 inputs=[1, 4, 16], threshold=0.05)
        assert report.ok
        assert report.checked == 3
        assert report.worst_error < 0.01
        assert "no energy bugs" in str(report)

    def test_energy_bug_detected(self):
        """Injected bug: the implementation reads everything twice."""
        machine, dram, iface = build()

        def buggy_run(n_kb):
            dram.access(bytes_read=n_kb * 1024)
            dram.access(bytes_read=n_kb * 1024)  # the bug

        report = divergence_test(iface.E_read, buggy_run,
                                 ledger_meter(machine),
                                 inputs=[4], threshold=0.10)
        assert not report.ok
        bug = report.bugs[0]
        assert bug.relative_error == pytest.approx(0.5, abs=0.01)
        assert "MORE energy" in str(bug)

    def test_stale_interface_detected(self):
        """The opposite divergence: implementation got cheaper."""
        machine, dram, iface = build()

        def optimised_run(n_kb):
            dram.access(bytes_read=n_kb * 1024 // 2)

        report = divergence_test(iface.E_read, optimised_run,
                                 ledger_meter(machine),
                                 inputs=[4], threshold=0.10)
        assert not report.ok
        assert "stale interface" in str(report.bugs[0])

    def test_threshold_controls_sensitivity(self):
        machine, dram, iface = build()

        def slightly_off(n_kb):
            dram.access(bytes_read=int(n_kb * 1024 * 1.05))

        meter = ledger_meter(machine)
        strict = divergence_test(iface.E_read, slightly_off, meter,
                                 inputs=[64], threshold=0.01)
        lax = divergence_test(iface.E_read, slightly_off, meter,
                              inputs=[64], threshold=0.20)
        assert not strict.ok
        assert lax.ok

    def test_zero_measurement_with_positive_prediction(self):
        machine, dram, iface = build()
        report = divergence_test(iface.E_read, lambda n_kb: None,
                                 ledger_meter(machine), inputs=[4])
        assert not report.ok
        assert report.bugs[0].relative_error == float("inf")

    def test_bad_threshold_rejected(self):
        machine, _, iface = build()
        with pytest.raises(EnergyError):
            divergence_test(iface.E_read, lambda n: None,
                            ledger_meter(machine), inputs=[1], threshold=0.0)


class TestReportSchema:
    """The dynamic findings render like the static linter's (PR goal:
    one JSON shape for ``lint`` and ``divergence-test`` output)."""

    def build_buggy_report(self):
        machine, dram, iface = build()

        def buggy_run(n_kb):
            dram.access(bytes_read=n_kb * 1024)
            dram.access(bytes_read=n_kb * 1024)

        return divergence_test(iface.E_read, buggy_run,
                               ledger_meter(machine),
                               inputs=[4], threshold=0.10)

    def test_bug_has_severity_and_rule(self):
        report = self.build_buggy_report()
        bug = report.bugs[0]
        assert bug.severity == "error"
        assert str(bug).startswith("EB001 [error] ")

    def test_bug_to_dict(self):
        bug = self.build_buggy_report().bugs[0]
        payload = bug.to_dict()
        assert payload["rule"] == "EB001"
        assert payload["severity"] == "error"
        assert payload["inputs"] == [4]
        assert payload["measured_joules"] == pytest.approx(
            2 * payload["predicted_joules"], rel=0.01)
        assert "MORE energy" in payload["message"]

    def test_report_to_dict_matches_lint_shape(self):
        from repro.analysis.lint import LINT_SCHEMA_VERSION

        payload = self.build_buggy_report().to_dict()
        assert payload["tool"] == "repro-energy divergence-test"
        assert payload["schema_version"] == LINT_SCHEMA_VERSION
        summary = payload["summary"]
        assert summary["checked"] == 1
        assert summary["findings"] == 1
        assert summary["ok"] is False
        assert payload["findings"][0]["rule"] == "EB001"
