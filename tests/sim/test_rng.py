"""Tests for deterministic RNG streams."""

from repro.sim.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_in_64_bit_range(self):
        assert 0 <= derive_seed(123, "stream") < 2 ** 64


class TestRngFactory:
    def test_same_stream_reproduces(self):
        factory = RngFactory(7)
        a = factory.stream("arrivals").random(5)
        b = factory.stream("arrivals").random(5)
        assert (a == b).all()

    def test_different_streams_differ(self):
        factory = RngFactory(7)
        a = factory.stream("arrivals").random(5)
        b = factory.stream("noise").random(5)
        assert not (a == b).all()

    def test_child_factories_are_independent(self):
        factory = RngFactory(7)
        child = factory.child("experiment-1")
        a = factory.stream("x").random(5)
        b = child.stream("x").random(5)
        assert not (a == b).all()

    def test_child_is_deterministic(self):
        a = RngFactory(7).child("e").stream("x").random(3)
        b = RngFactory(7).child("e").stream("x").random(3)
        assert (a == b).all()
