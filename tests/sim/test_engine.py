"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import Engine
from repro.sim.events import Event, Timeout


class TestEvents:
    def test_succeed_once(self):
        event = Event("e")
        event.succeed(42)
        assert event.triggered
        assert event.value == 42
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_callback_after_trigger_fires_immediately(self):
        event = Event()
        event.succeed(1)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [1]

    def test_timeout_rejects_negative(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)


class TestEngine:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_single_timeout(self):
        engine = Engine()
        log = []

        def proc():
            yield engine.timeout(1.5)
            log.append(engine.now)

        engine.process(proc())
        engine.run()
        assert log == [1.5]

    def test_events_fire_in_time_order(self):
        engine = Engine()
        log = []

        def proc(delay, label):
            yield engine.timeout(delay)
            log.append(label)

        engine.process(proc(3.0, "c"))
        engine.process(proc(1.0, "a"))
        engine.process(proc(2.0, "b"))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_tie_break_is_schedule_order(self):
        engine = Engine()
        log = []

        def proc(label):
            yield engine.timeout(1.0)
            log.append(label)

        for label in "xyz":
            engine.process(proc(label))
        engine.run()
        assert log == ["x", "y", "z"]

    def test_run_until_stops_clock(self):
        engine = Engine()

        def proc():
            yield engine.timeout(10.0)

        engine.process(proc())
        assert engine.run(until=4.0) == 4.0
        assert engine.now == 4.0
        assert engine.run() == 10.0

    def test_run_until_advances_even_without_events(self):
        assert Engine().run(until=2.0) == 2.0

    def test_process_return_value(self):
        engine = Engine()

        def child():
            yield engine.timeout(1.0)
            return "done"

        def parent(results):
            value = yield engine.process(child(), "child")
            results.append(value)

        results = []
        engine.process(parent(results))
        engine.run()
        assert results == ["done"]

    def test_waiting_on_shared_event(self):
        engine = Engine()
        gate = engine.event("gate")
        log = []

        def waiter(label):
            value = yield gate
            log.append((label, value, engine.now))

        def opener():
            yield engine.timeout(2.0)
            gate.succeed("open")

        engine.process(waiter("w1"))
        engine.process(waiter("w2"))
        engine.process(opener())
        engine.run()
        assert log == [("w1", "open", 2.0), ("w2", "open", 2.0)]

    def test_sequential_timeouts_accumulate(self):
        engine = Engine()
        times = []

        def proc():
            for _ in range(3):
                yield engine.timeout(1.0)
                times.append(engine.now)

        engine.process(proc())
        engine.run()
        assert times == [1.0, 2.0, 3.0]

    def test_call_at(self):
        engine = Engine()
        log = []
        engine.call_at(5.0, lambda: log.append(engine.now))
        engine.run()
        assert log == [5.0]

    def test_call_at_past_rejected(self):
        engine = Engine()
        engine.call_at(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.call_at(0.5, lambda: None)

    def test_yielding_junk_rejected(self):
        engine = Engine()

        def proc():
            yield "not an event"

        engine.process(proc())
        with pytest.raises(TypeError):
            engine.run()

    def test_run_all(self):
        engine = Engine()
        log = []

        def proc(d):
            yield engine.timeout(d)
            log.append(d)

        engine.run_all([proc(2.0), proc(1.0)])
        assert log == [1.0, 2.0]
