"""The compile cache: MemoHook-shaped keys, env-change invalidation.

A compiled entry is only sound while the distributions it was compiled
against still hold.  These tests pin the invalidation contract:

* same query, same environment → the *same object* back (a hit);
* a different environment binding → a different cache key (env
  fingerprints are part of the key, exactly like ``MemoHook``);
* mutating a *declared* ECV in place (a manager re-learning a hit rate)
  → the stale entry is invalidated on the next lookup and recompiled;
* sub-quantum drift in a bound probability → still a hit (the quantised
  fingerprint policy shared with ``MemoHook``).
"""

import pytest

from repro.compile import CompileCache, CompiledBackend
from repro.core.distributions import Discrete, PointMass
from repro.core.ecv import BernoulliECV, ContinuousECV, ECVEnvironment
from repro.core.interface import EnergyInterface, evaluate
from repro.core.session import EvalSession
from repro.core.units import Energy


class CacheIface(EnergyInterface):
    def __init__(self, p_hit: float = 0.5) -> None:
        super().__init__("cachetest")
        self.declare_ecv(BernoulliECV("hit", p=p_hit,
                                      description="cache hit"))

    def E_lookup(self, nbytes: int) -> Energy:
        if self.ecv("hit"):
            return Energy(1e-9 * nbytes)
        return Energy(20e-9 * nbytes)


class ContinuousCacheIface(EnergyInterface):
    """A lookup with a continuous load term, so the plain pipeline is
    forced past exact enumeration into the Monte Carlo stage — where the
    prediction backend engages."""

    def __init__(self, p_hit: float = 0.5) -> None:
        super().__init__("cachetest_cont")
        self.declare_ecv(BernoulliECV("hit", p=p_hit,
                                      description="cache hit"))
        self.declare_ecv(ContinuousECV("load", low=0.0, high=1.0,
                                       description="bus load"))

    def E_lookup(self, nbytes: int) -> Energy:
        hit = self.ecv("hit")
        base = hit * 1e-9 * nbytes + (1 - hit) * 20e-9 * nbytes
        return Energy(base + 2e-9 * nbytes * self.ecv("load"))


class TestCacheHits:
    def test_repeat_query_is_a_hit_and_same_object(self):
        cache = CompileCache()
        iface = CacheIface()
        first = cache.get(iface("E_lookup", 64), ECVEnvironment.EMPTY)
        second = cache.get(iface("E_lookup", 64), ECVEnvironment.EMPTY)
        assert first is second
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1

    def test_different_args_are_different_entries(self):
        cache = CompileCache()
        iface = CacheIface()
        cache.get(iface("E_lookup", 64), ECVEnvironment.EMPTY)
        cache.get(iface("E_lookup", 128), ECVEnvironment.EMPTY)
        assert len(cache) == 2
        assert cache.stats["misses"] == 2

    def test_lru_eviction(self):
        cache = CompileCache(maxsize=2)
        iface = CacheIface()
        for nbytes in (1, 2, 3):
            cache.get(iface("E_lookup", nbytes), ECVEnvironment.EMPTY)
        assert len(cache) == 2
        cache.get(iface("E_lookup", 1), ECVEnvironment.EMPTY)
        assert cache.stats["misses"] == 4  # 1 was evicted, recompiled


class TestEnvChangeInvalidation:
    def test_env_binding_changes_the_answer(self):
        cache = CompileCache()
        iface = CacheIface(p_hit=0.5)
        base = cache.get(iface("E_lookup", 1000), ECVEnvironment.EMPTY)
        rebound = cache.get(iface("E_lookup", 1000),
                            ECVEnvironment({"hit": BernoulliECV(
                                "hit", p=0.9)}))
        assert base is not rebound
        # E[base] = (1 + 20)/2 µJ; E[rebound] = 0.9·1 + 0.1·20 µJ.
        assert base.dist.mean() == pytest.approx(10.5e-6)
        assert rebound.dist.mean() == pytest.approx(2.9e-6)

    def test_env_pinned_value_compiles_to_point_mass(self):
        cache = CompileCache()
        iface = CacheIface()
        entry = cache.get(iface("E_lookup", 1000),
                          ECVEnvironment({"hit": True}))
        assert entry.tier == "analytic"
        # A pinned binding leaves a single certain outcome.
        assert isinstance(entry.dist, (PointMass, Discrete))
        assert entry.dist.mean() == pytest.approx(1e-6)
        assert float(entry.dist.quantile(0.01)) \
            == pytest.approx(float(entry.dist.quantile(0.99)))

    def test_declared_ecv_mutation_invalidates(self):
        cache = CompileCache()
        iface = CacheIface(p_hit=0.5)
        first = cache.get(iface("E_lookup", 1000), ECVEnvironment.EMPTY)
        assert first.dist.mean() == pytest.approx(10.5e-6)
        # A manager re-learns the hit rate in place (same declared name).
        iface.declare_ecv(BernoulliECV("hit", p=1.0,
                                       description="relearned"))
        second = cache.get(iface("E_lookup", 1000), ECVEnvironment.EMPTY)
        assert cache.stats["invalidations"] == 1
        assert second is not first
        assert second.dist.mean() == pytest.approx(1e-6)

    def test_sub_quantum_drift_stays_cached(self):
        """Quantised fingerprints: MemoHook's drift-tolerance policy."""
        cache = CompileCache()
        iface = CacheIface(p_hit=0.5)
        first = cache.get(iface("E_lookup", 1000), ECVEnvironment.EMPTY)
        iface.declare_ecv(BernoulliECV("hit", p=0.5 + 1e-6,
                                       description="tiny drift"))
        second = cache.get(iface("E_lookup", 1000), ECVEnvironment.EMPTY)
        assert second is first
        assert cache.stats["invalidations"] == 0


class TestBackendCacheIntegration:
    def test_session_backend_reuses_cache_across_evaluations(self):
        backend = CompiledBackend()
        iface = ContinuousCacheIface()
        session = EvalSession(seed=7, backend=backend)
        for _ in range(3):
            evaluate(iface("E_lookup", 64), session=session,
                     mode="expected")
        assert backend.cache.stats["misses"] == 1
        assert backend.cache.stats["hits"] == 2
        assert backend.stats["analytic"] == 3

    def test_env_change_through_session_recompiles(self):
        backend = CompiledBackend()
        iface = ContinuousCacheIface(p_hit=0.5)
        session = EvalSession(seed=7, backend=backend)
        a = evaluate(iface("E_lookup", 1000), session=session,
                     mode="expected")
        iface.declare_ecv(BernoulliECV("hit", p=1.0,
                                       description="relearned"))
        b = evaluate(iface("E_lookup", 1000), session=session,
                     mode="expected")
        # E[base] + E[load term]: (10.5 + 1) µJ, then (1 + 1) µJ.
        assert a.as_joules == pytest.approx(11.5e-6)
        assert b.as_joules == pytest.approx(2e-6)
        assert backend.cache.stats["invalidations"] == 1
