"""Compiled-vs-engine equality across every ``repro.apps`` module.

The compile layer's contract, checked app by app:

* **kernel** paths produce draws *bitwise identical* to a
  :class:`~repro.core.mcengine.VectorEngine` run at the same entropy;
* **analytic** paths produce a closed-form mean and quantiles contained
  in the interval the affine/interval machinery proves for the body;
* **sampled** fallbacks answer exactly what the plain sampled backend
  answers (the compile layer must never change a result, only its cost).

The targets come from the same registry the ``repro-energy compile``
subcommand reports on, so the CLI and the test suite cannot drift apart;
:mod:`repro.apps.transcode` (which models energy through utilisation
tasks, not an ``EnergyInterface``) is covered by an interface built over
its bimodal transcoder profile.
"""

import numpy as np
import pytest

from repro.apps.transcode import bimodal_transcoder
from repro.cli import _compile_targets
from repro.compile import AnalyticDistribution, compile_call
from repro.core.distributions import Discrete, Mixture, PointMass
from repro.core.ecv import BernoulliECV, ECVEnvironment
from repro.core.interface import EnergyInterface, evaluate
from repro.core.session import EvalSession
from repro.core.units import Energy

SEED = 7
N = 2000


def all_queries():
    """Every (label, EnergyCall) pair of the CLI's compile targets."""
    queries = []
    for name, builder in _compile_targets().items():
        for interface, methods in builder():
            for method, args in methods:
                queries.append((f"{name}.{method}",
                                interface(method, *args)))
    return queries


QUERIES = all_queries()


class GopEnergyInterface(EnergyInterface):
    """Transcode's GOP energy over the bimodal task's utilisation levels.

    :mod:`repro.apps.transcode` prices work through EAS utilisation
    tasks rather than an ``EnergyInterface``; this wraps its bimodal
    profile (burst vs trough capacity units) behind one so the seventh
    app module exercises the compile layer too.
    """

    def __init__(self) -> None:
        super().__init__("transcode_gop")
        task = bimodal_transcoder("gop")
        self.burst_util = task.utilization_profile(0)
        self.trough_util = task.utilization_profile(3)
        self.declare_ecv(BernoulliECV(
            "burst", p=0.5, description="quantum lands in a compute burst"))

    def E_gop(self, frames: int) -> Energy:
        burst = self.ecv("burst")
        util = (burst * self.burst_util
                + (1 - burst) * self.trough_util)
        return Energy.joules(frames * util * 1e-3)


def engine_distribution(call, entropy, n):
    """The plain pipeline's distribution-mode answer for ``call``.

    ``Empirical`` when continuous ECVs forced the vector engine,
    ``Discrete`` when exact enumeration sufficed.
    """
    session = EvalSession(seed=entropy, engine="vector")
    return evaluate(call, session=session, mode="distribution", n_samples=n)


def engine_draws(call, entropy, n):
    """The vector engine's sorted draw column for ``call``."""
    return np.asarray(engine_distribution(call, entropy, n)._samples)


class TestTierAssignments:
    def test_every_app_module_is_covered(self):
        labels = {label.split(".")[0] for label, _ in QUERIES}
        assert {"bench", "consensus", "crypto", "drone", "fuzzing",
                "kvstore", "mlservice"} <= labels

    def test_transcode_gop_compiles_analytic(self):
        iface = GopEnergyInterface()
        entry = compile_call(iface("E_gop", 240), ECVEnvironment.EMPTY)
        assert entry.tier == "analytic"
        # E[util] = (820 + 45) / 2 at p = 0.5.
        expected = 240 * (iface.burst_util + iface.trough_util) / 2 * 1e-3
        assert entry.dist.mean() == pytest.approx(expected)

    def test_drone_leg_falls_back_honestly(self):
        entry = next(
            compile_call(call, ECVEnvironment.EMPTY)
            for label, call in QUERIES if label.startswith("drone."))
        assert entry.tier == "sampled"
        assert "branchy" in entry.reason

    def test_bench_handle_compiles_to_a_kernel(self):
        entry = next(
            compile_call(call, ECVEnvironment.EMPTY)
            for label, call in QUERIES if label == "bench.E_handle")
        assert entry.tier == "kernel"
        assert entry.kernel_source.startswith("lambda ")


@pytest.mark.parametrize("label,call", QUERIES,
                         ids=[label for label, _ in QUERIES])
class TestCompiledEqualsEngine:
    def test_compiled_matches_vector_engine(self, label, call):
        entry = compile_call(call, ECVEnvironment.EMPTY)
        if entry.tier == "kernel":
            draws = entry.predict("distribution", SEED, N)._samples
            assert np.array_equal(np.asarray(draws),
                                  engine_draws(call, SEED, N)), (
                f"{label}: kernel draws diverge from VectorEngine at "
                f"seed {SEED}")
        elif entry.tier == "analytic":
            interval = entry.proven_interval()
            assert interval is not None and interval.bounded, label
            dist = entry.dist
            lo = interval.lo - 1e-12 * max(1.0, abs(interval.lo))
            hi = interval.hi + 1e-12 * max(1.0, abs(interval.hi))
            assert lo <= dist.mean() <= hi, label
            for q in (0.05, 0.5, 0.95):
                assert lo <= dist.quantile(q) <= hi, (label, q)
            # The closed-form mean must agree with the plain pipeline:
            # exactly when it enumerates, to sampling accuracy when
            # continuous ECVs force Monte Carlo.
            reference = engine_distribution(call, SEED, 4000)
            if hasattr(reference, "_samples"):
                sampled = np.asarray(reference._samples)
                spread = max(float(np.std(sampled)),
                             1e-15 * abs(dist.mean()))
                assert abs(dist.mean() - float(np.mean(sampled))) \
                    <= 5 * spread / np.sqrt(4000) + 1e-12, label
            else:
                assert dist.mean() == pytest.approx(
                    float(reference.mean()), rel=1e-9), label
        else:
            # Fallback tier: the compiled backend must answer exactly
            # what the sampled backend answers.
            a = evaluate(call, session=EvalSession(seed=SEED,
                                                   backend="compiled"),
                         mode="distribution", n_samples=N)
            b = evaluate(call, session=EvalSession(seed=SEED),
                         mode="distribution", n_samples=N)
            assert np.array_equal(np.asarray(a._samples),
                                  np.asarray(b._samples)), label

    def test_analytic_distribution_shape(self, label, call):
        entry = compile_call(call, ECVEnvironment.EMPTY)
        if entry.tier != "analytic":
            pytest.skip(f"{label} is {entry.tier}")
        assert isinstance(entry.dist, (AnalyticDistribution, PointMass,
                                       Discrete, Mixture))


class TestBackendThroughSession:
    def test_kernel_expected_mode_matches_sampled(self):
        call = next(c for label, c in QUERIES if label == "bench.E_handle")
        compiled = evaluate(call, session=EvalSession(
            seed=SEED, backend="compiled"), mode="expected", n_samples=N)
        sampled = evaluate(call, session=EvalSession(seed=SEED),
                           mode="expected", n_samples=N)
        assert compiled.as_joules == sampled.as_joules

    def test_worst_mode_unchanged_by_backend(self):
        call = next(c for label, c in QUERIES if label == "kvstore.E_put")
        compiled = evaluate(call, session=EvalSession(backend="compiled"),
                            mode="worst")
        sampled = evaluate(call, session=EvalSession(), mode="worst")
        assert compiled.as_joules == sampled.as_joules

    def test_fallback_is_annotated(self):
        from repro.core.session import SpanRecorder

        call = next(c for label, c in QUERIES if label.startswith("drone."))
        recorder = SpanRecorder()
        session = EvalSession(seed=SEED, backend="compiled",
                              hooks=[recorder])
        evaluate(call, session=session, mode="distribution", n_samples=64)
        notes = [note for span in recorder.last_root.walk()
                 for note in span.notes]
        assert any("compile fallback" in note for note in notes)
