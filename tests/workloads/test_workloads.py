"""Tests for workload generators: arrivals, popularity, traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import WorkloadError
from repro.workloads.arrivals import (
    bursty_arrivals,
    interarrival_iter,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.popularity import UniformPopularity, ZipfPopularity
from repro.sim.rng import RngFactory
from repro.workloads.traces import (
    GenerationRequest,
    ImageRequest,
    KVRequest,
    generation_trace,
    image_request_trace,
    kv_request_trace,
    repeated_image_trace,
)

RNG = np.random.default_rng(5)


class TestArrivals:
    def test_poisson_rate(self):
        times = poisson_arrivals(100.0, 50.0, np.random.default_rng(1))
        assert len(times) == pytest.approx(5000, rel=0.1)
        assert all(0 <= t < 50.0 for t in times)
        assert times == sorted(times)

    def test_poisson_validation(self):
        with pytest.raises(WorkloadError):
            poisson_arrivals(-1.0, 1.0, RNG)
        with pytest.raises(WorkloadError):
            poisson_arrivals(1.0, -1.0, RNG)

    def test_poisson_degenerate_workloads_are_empty(self):
        assert poisson_arrivals(0.0, 10.0, RNG) == []
        assert poisson_arrivals(100.0, 0.0, RNG) == []
        assert poisson_arrivals(0.0, 0.0, RNG) == []

    def test_poisson_strictly_inside_horizon(self):
        # Dense traffic over a short horizon: every timestamp must land
        # strictly below the horizon (the boundary belongs outside).
        for seed in range(5):
            times = poisson_arrivals(5000.0, 1.0,
                                     np.random.default_rng(seed))
            assert times
            assert all(0.0 <= t < 1.0 for t in times)

    def test_uniform_spacing(self):
        times = uniform_arrivals(4, 8.0)
        assert times == [1.0, 3.0, 5.0, 7.0]

    def test_uniform_empty(self):
        assert uniform_arrivals(0, 1.0) == []

    def test_bursty_has_more_variance_than_poisson(self):
        rng = np.random.default_rng(2)
        bursty = bursty_arrivals(base_rate=10.0, burst_rate=400.0,
                                 burst_fraction=0.2, horizon_seconds=100.0,
                                 rng=rng)
        poisson = poisson_arrivals(len(bursty) / 100.0, 100.0,
                                   np.random.default_rng(3))
        gaps_b = np.diff(bursty)
        gaps_p = np.diff(poisson)
        cv = lambda x: np.std(x) / np.mean(x)
        assert cv(gaps_b) > cv(gaps_p)

    def test_bursty_validation(self):
        with pytest.raises(WorkloadError):
            bursty_arrivals(10.0, 20.0, 1.5, 10.0, RNG)
        with pytest.raises(WorkloadError):
            bursty_arrivals(-1.0, 20.0, 0.2, 10.0, RNG)
        with pytest.raises(WorkloadError):
            bursty_arrivals(10.0, 20.0, 0.2, -1.0, RNG)
        with pytest.raises(WorkloadError):
            bursty_arrivals(10.0, 20.0, 0.2, 10.0, RNG, phase_seconds=0.0)

    def test_bursty_zero_rates_and_horizon(self):
        # Zero rates are valid degenerate phases, not errors.
        assert bursty_arrivals(0.0, 0.0, 0.2, 10.0, RNG) == []
        assert bursty_arrivals(10.0, 20.0, 0.2, 0.0, RNG) == []
        quiet_only = bursty_arrivals(0.0, 50.0, 0.5, 20.0,
                                     np.random.default_rng(9))
        assert all(0.0 <= t < 20.0 for t in quiet_only)

    def test_bursty_strictly_inside_horizon(self):
        for seed in range(5):
            times = bursty_arrivals(200.0, 2000.0, 0.3, 2.0,
                                    np.random.default_rng(seed))
            assert times == sorted(times)
            assert all(0.0 <= t < 2.0 for t in times)

    def test_bursty_horizon_extension_only_appends(self):
        # With burst_fraction=0, burst phases have zero length and must
        # consume no draws: extending the horizon at the same seed only
        # appends arrivals, it never shifts the earlier ones.
        short = bursty_arrivals(50.0, 500.0, 0.0, 5.0,
                                np.random.default_rng(4))
        long = bursty_arrivals(50.0, 500.0, 0.0, 10.0,
                               np.random.default_rng(4))
        assert short == [t for t in long if t < 5.0]

    def test_interarrival_roundtrip(self):
        times = [1.0, 2.5, 4.0]
        gaps = list(interarrival_iter(times))
        assert gaps == [1.0, 1.5, 1.5]
        assert list(np.cumsum(gaps)) == pytest.approx(times)


class TestSeededArrivals:
    """Generators accept an int seed or RngFactory via repro.sim.rng."""

    def test_int_seed_reproducible(self):
        assert poisson_arrivals(50.0, 10.0, 42) == \
            poisson_arrivals(50.0, 10.0, 42)

    def test_int_seed_matches_factory_stream(self):
        from_seed = poisson_arrivals(50.0, 10.0, 42)
        from_factory = poisson_arrivals(50.0, 10.0, RngFactory(42))
        explicit = poisson_arrivals(50.0, 10.0,
                                    RngFactory(42).stream("arrivals"))
        assert from_seed == from_factory == explicit

    def test_different_seeds_differ(self):
        assert poisson_arrivals(50.0, 10.0, 1) != \
            poisson_arrivals(50.0, 10.0, 2)

    def test_bursty_accepts_seed(self):
        first = bursty_arrivals(10.0, 100.0, 0.2, 20.0, 7)
        second = bursty_arrivals(10.0, 100.0, 0.2, 20.0, 7)
        assert first == second and len(first) > 0

    def test_factory_streams_are_independent(self):
        factory = RngFactory(5)
        times = poisson_arrivals(50.0, 10.0, factory)
        # a different named stream from the same root is not consumed
        other = factory.stream("trace")
        assert poisson_arrivals(50.0, 10.0, RngFactory(5)) == times
        assert other.random() != times[0]

    def test_rejects_junk_rng(self):
        with pytest.raises(WorkloadError):
            poisson_arrivals(50.0, 10.0, "not-an-rng")


class TestPopularity:
    def test_zipf_head_is_hot(self):
        pop = ZipfPopularity(1000, alpha=1.0)
        assert pop.probability(0) > pop.probability(10) > pop.probability(500)

    def test_zipf_probabilities_normalised(self):
        pop = ZipfPopularity(100, alpha=0.8)
        assert sum(pop.probability(i) for i in range(100)) == \
            pytest.approx(1.0)

    def test_zipf_alpha_zero_is_uniform(self):
        pop = ZipfPopularity(10, alpha=0.0)
        assert pop.probability(0) == pytest.approx(0.1)

    def test_expected_hit_rate_monotone_in_capacity(self):
        pop = ZipfPopularity(100, alpha=1.0)
        rates = [pop.expected_hit_rate(c) for c in (1, 10, 50, 100)]
        assert rates == sorted(rates)
        assert rates[-1] == pytest.approx(1.0)

    def test_sampling_skews_to_head(self):
        pop = ZipfPopularity(100, alpha=1.2)
        draws = pop.sample(np.random.default_rng(0), 2000)
        assert (draws < 10).mean() > (draws >= 90).mean()

    def test_uniform_popularity(self):
        pop = UniformPopularity(50)
        assert pop.probability(0) == pytest.approx(0.02)
        assert pop.expected_hit_rate(25) == pytest.approx(0.5)
        draws = pop.sample(np.random.default_rng(0), 100)
        assert all(0 <= d < 50 for d in draws)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfPopularity(0)
        with pytest.raises(WorkloadError):
            ZipfPopularity(10, alpha=-1.0)
        with pytest.raises(WorkloadError):
            UniformPopularity(0)


class TestTraces:
    def test_image_request_fields_valid(self):
        trace = image_request_trace(100, np.random.default_rng(0))
        assert len(trace) == 100
        for request in trace:
            assert request.image_pixels >= 1024
            assert 0 <= request.zero_pixels <= request.image_pixels

    def test_image_request_validation(self):
        with pytest.raises(WorkloadError):
            ImageRequest(0, 100, 200)

    def test_popular_objects_recur(self):
        trace = image_request_trace(500, np.random.default_rng(0),
                                    n_objects=100, zipf_alpha=1.2)
        ids = [r.object_id for r in trace]
        assert len(set(ids)) < 100  # repeats exist

    def test_generation_trace_within_bounds(self):
        trace = generation_trace(50, np.random.default_rng(0),
                                 prompt_range=(8, 64), max_output=200)
        for request in trace:
            assert 8 <= request.prompt_tokens <= 64
            assert 50 <= request.output_tokens <= 200

    def test_generation_request_validation(self):
        with pytest.raises(WorkloadError):
            GenerationRequest(-1, 10)

    def test_repeated_trace_fixes_abstraction_per_object(self):
        trace = repeated_image_trace(400, np.random.default_rng(0),
                                     n_objects=50)
        by_object = {}
        for request in trace:
            key = (request.image_pixels, request.zero_pixels)
            assert by_object.setdefault(request.object_id, key) == key

    def test_repeated_trace_fields_valid(self):
        for request in repeated_image_trace(100, np.random.default_rng(1)):
            assert request.image_pixels >= 1024
            assert 0 <= request.zero_pixels <= request.image_pixels

    def test_kv_trace_mixes_ops(self):
        trace = kv_request_trace(200, np.random.default_rng(0),
                                 put_fraction=0.5, n_keys=20)
        ops = {r.op for r in trace}
        assert ops == {"put", "get"}
        assert all(0 <= r.key < 20 for r in trace)

    def test_kv_put_fraction_extremes(self):
        rng = np.random.default_rng(0)
        assert all(r.op == "put"
                   for r in kv_request_trace(50, rng, put_fraction=1.0))
        assert all(r.op == "get"
                   for r in kv_request_trace(50, rng, put_fraction=0.0))

    def test_kv_request_validation(self):
        with pytest.raises(WorkloadError):
            KVRequest("delete", 1)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=20)
    def test_trace_lengths(self, n):
        assert len(generation_trace(n, np.random.default_rng(1))) == n
