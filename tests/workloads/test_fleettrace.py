"""Tests for the fleet workload generators (diurnal, flash, Zipf)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import WorkloadError
from repro.sim.rng import RngFactory
from repro.workloads.fleettrace import (
    TenantRequest,
    diurnal_arrivals,
    flash_crowd_arrivals,
    fleet_request_trace,
    request_unit,
    zipf_tenant_trace,
)


class TestDiurnal:
    def test_bounds_and_order(self):
        times = diurnal_arrivals(100.0, 50.0, np.random.default_rng(1),
                                 period_seconds=50.0)
        assert times == sorted(times)
        assert all(0.0 <= t < 50.0 for t in times)

    def test_mean_rate_is_respected(self):
        # Over whole periods the sinusoid integrates away: the count
        # should approximate mean_rate * horizon.
        times = diurnal_arrivals(200.0, 100.0, np.random.default_rng(2),
                                 period_seconds=10.0)
        assert len(times) == pytest.approx(20000, rel=0.1)

    def test_day_busier_than_night(self):
        # One full period: the rising half of the sine carries more
        # arrivals than the falling half.
        times = diurnal_arrivals(500.0, 100.0, np.random.default_rng(3),
                                 period_seconds=100.0, amplitude=0.9)
        day = sum(1 for t in times if t < 50.0)
        night = len(times) - day
        assert day > 1.5 * night

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError):
            diurnal_arrivals(-1.0, 10.0, rng)
        with pytest.raises(WorkloadError):
            diurnal_arrivals(1.0, -1.0, rng)
        with pytest.raises(WorkloadError):
            diurnal_arrivals(1.0, 10.0, rng, amplitude=1.5)
        with pytest.raises(WorkloadError):
            diurnal_arrivals(1.0, 10.0, rng, period_seconds=0.0)

    def test_degenerate_empty(self):
        rng = np.random.default_rng(0)
        assert diurnal_arrivals(0.0, 10.0, rng) == []
        assert diurnal_arrivals(10.0, 0.0, rng) == []

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           rate=st.floats(1.0, 200.0),
           horizon=st.floats(0.1, 30.0),
           amplitude=st.floats(0.0, 1.0))
    def test_seed_determinism(self, seed, rate, horizon, amplitude):
        first = diurnal_arrivals(rate, horizon, seed,
                                 period_seconds=horizon,
                                 amplitude=amplitude)
        second = diurnal_arrivals(rate, horizon, seed,
                                  period_seconds=horizon,
                                  amplitude=amplitude)
        assert first == second
        assert all(0.0 <= t < horizon for t in first)


class TestFlashCrowd:
    def test_crowd_window_is_denser(self):
        times = flash_crowd_arrivals(50.0, 1000.0, [(40.0, 20.0)], 100.0,
                                     np.random.default_rng(5))
        inside = sum(1 for t in times if 40.0 <= t < 60.0)
        outside = len(times) - inside
        # 20 s at 1000/s vs 80 s at 50/s: the crowd dominates.
        assert inside > 3 * outside

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError):
            flash_crowd_arrivals(-1.0, 10.0, [], 10.0, rng)
        with pytest.raises(WorkloadError):
            flash_crowd_arrivals(10.0, 5.0, [(0.0, 1.0)], 10.0, rng)
        with pytest.raises(WorkloadError):
            flash_crowd_arrivals(1.0, 2.0, [(0.0, -1.0)], 10.0, rng)

    def test_no_crowds_is_plain_poisson_shape(self):
        times = flash_crowd_arrivals(100.0, 400.0, [], 50.0,
                                     np.random.default_rng(6))
        assert len(times) == pytest.approx(5000, rel=0.15)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           base=st.floats(1.0, 100.0),
           boost=st.floats(0.0, 300.0),
           start=st.floats(0.0, 20.0),
           duration=st.floats(0.0, 10.0))
    def test_seed_determinism(self, seed, base, boost, start, duration):
        crowds = [(start, duration)]
        first = flash_crowd_arrivals(base, base + boost, crowds, 25.0, seed)
        second = flash_crowd_arrivals(base, base + boost, crowds, 25.0, seed)
        assert first == second
        assert all(0.0 <= t < 25.0 for t in first)


class TestZipfTenants:
    def test_shape_and_range(self):
        ids = zipf_tenant_trace(5000, 8, np.random.default_rng(7))
        assert ids.dtype == np.int64
        assert len(ids) == 5000
        assert ids.min() >= 0 and ids.max() < 8

    def test_skew(self):
        ids = zipf_tenant_trace(20000, 10, np.random.default_rng(8),
                                alpha=1.2)
        counts = np.bincount(ids, minlength=10)
        assert counts[0] > 2 * counts[4]

    def test_factory_uses_named_stream(self):
        # The same root seed must give the same tenants whether passed
        # as an int or as a factory — both route through "tenants".
        from_int = zipf_tenant_trace(100, 4, 42)
        from_factory = zipf_tenant_trace(100, 4, RngFactory(42))
        assert np.array_equal(from_int, from_factory)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           n=st.integers(0, 500),
           tenants=st.integers(1, 50),
           alpha=st.floats(0.5, 2.5))
    def test_seed_determinism(self, seed, n, tenants, alpha):
        first = zipf_tenant_trace(n, tenants, seed, alpha=alpha)
        second = zipf_tenant_trace(n, tenants, seed, alpha=alpha)
        assert np.array_equal(first, second)
        assert len(first) == n


class TestRequestTrace:
    def test_streams_lazily_and_deterministically(self):
        times = [0.1, 0.5, 0.9]
        tenants = [0, 1, 0]
        one = list(fleet_request_trace(times, tenants, 3))
        two = list(fleet_request_trace(times, tenants, 3))
        assert one == two
        assert [r.request_id for r in one] == [0, 1, 2]
        assert all(0.5 <= r.work <= 2.0 for r in one)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            list(fleet_request_trace([0.0], [0, 1], 1))
        with pytest.raises(WorkloadError):
            list(fleet_request_trace([0.0], [0], 1, work_range=(0.0, 1.0)))
        with pytest.raises(WorkloadError):
            TenantRequest(0, -1, 0.0)
        with pytest.raises(WorkloadError):
            TenantRequest(0, 0, 0.0, work=0.0)

    def test_request_unit_is_pure(self):
        assert request_unit(3, 1) == request_unit(3, 1)
        assert 0.0 <= request_unit(3, 1) < 1.0
        assert request_unit(3, 1) != request_unit(4, 1)
        assert request_unit(3, 1, salt=1) != request_unit(3, 1)
