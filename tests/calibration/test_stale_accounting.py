"""Stale calibration through admission: accounted, never silent."""

import dataclasses

from repro.calibration import DriftProcess, DriftingCostModel
from repro.core.interface import EnergyInterface
from repro.core.policy import Policy
from repro.core.units import Energy
from repro.fleet import EnergyGatewayFleet, WorkCostModel, format_fleet_report
from repro.serving import (
    AdmitAllPolicy,
    EnergyAwareGateway,
    EnergyBudget,
    GatewayConfig,
    format_report,
)
from repro.serving.adapters import ServiceAdapter
from repro.sim.rng import RngFactory
from repro.workloads import (
    fleet_request_trace,
    poisson_arrivals,
    zipf_tenant_trace,
)


class _Ledger:
    def __init__(self):
        self.joules = 0.0

    def total_joules(self):
        return self.joules


class _FakeMachine:
    def __init__(self):
        self.now = 0.0
        self.ledger = _Ledger()

    def advance_to(self, t):
        self.now = max(self.now, t)


class _ConstInterface(EnergyInterface):
    def __init__(self, joules):
        super().__init__("const")
        self.joules = joules

    def E_op(self):
        return Energy(self.joules)


class MiscalibratedAdapter(ServiceAdapter):
    """Predicts 1 J/op but actually burns ``true_joules`` — the drifted
    hardware the calibration guard is there to catch."""

    def __init__(self, true_joules=1.3):
        super().__init__("miscal", _FakeMachine(), _ConstInterface(1.0))
        self.true_joules = true_joules

    def cost_call(self, request):
        return "E_op", ()

    def _run(self, request):
        self.machine.now += 0.01
        self.machine.ledger.joules += self.true_joules

    def degrade(self, request):
        return None


def arrivals(n, spacing=0.1):
    return [(spacing * (i + 1), f"req{i}") for i in range(n)]


def serve(policy, n=10):
    adapter = MiscalibratedAdapter()
    gateway = EnergyAwareGateway(adapter, EnergyBudget("b", 1000.0),
                                 AdmitAllPolicy(),
                                 config=GatewayConfig(policy=policy))
    return gateway.serve(arrivals(n))


class TestGatewayAccounting:
    def test_no_guard_by_default(self):
        report = serve(Policy())
        assert report.calibration_stale == 0
        assert report.calibration_rejected == 0

    def test_widen_serves_but_accounts(self):
        report = serve(Policy(calibration_tolerance=0.1,
                              calibration_min_observations=3))
        # Residual 0.3/1.3 per request: stale after 3 observations, so
        # every later request is decided under a stale guard.
        assert report.admitted == 10
        assert report.calibration_stale == 7
        assert report.calibration_rejected == 0
        assert "stale-calibration requests" in format_report(report)

    def test_reject_sheds_and_accounts(self):
        report = serve(Policy(calibration_tolerance=0.1,
                              calibration_min_observations=3,
                              calibration_action="reject"))
        # Rejected requests never run, so the guard sees no fresh
        # observations and the gateway stays closed.
        assert report.admitted == 3
        assert report.rejected == 7
        assert report.calibration_stale == 7
        assert report.calibration_rejected == 7

    def test_stale_requests_flagged_on_records(self):
        adapter = MiscalibratedAdapter()
        gateway = EnergyAwareGateway(
            adapter, EnergyBudget("b", 1000.0), AdmitAllPolicy(),
            config=GatewayConfig(policy=Policy(
                calibration_tolerance=0.1,
                calibration_min_observations=3)))
        gateway.serve(arrivals(10))
        flagged = [r for r in gateway.metrics.records if r.calibration_stale]
        assert len(flagged) == 7
        assert all(r.admitted for r in flagged)   # widen mode still serves


BUDGETS = {"t0": "5J+2W", "t1": "3J+1W", "t2": "2J+0.5W"}


def drifting_trace(seed=42, rate=200.0, horizon=30.0):
    rng = RngFactory(seed)
    times = poisson_arrivals(rate, horizon, rng.stream("arrivals"))
    ids = zipf_tenant_trace(len(times), 3, rng)
    return list(fleet_request_trace(times, ids, rng))


def run_drifting_fleet(action):
    # WorkCostModel's spread (0.25) alone gives a stationary mean
    # residual of ~0.125; tolerance 0.17 only trips once the drift ramp
    # (5e-3/s over 30 s -> x1.15 peak) stacks on top.
    model = DriftingCostModel(
        WorkCostModel(),
        DriftProcess("fleet:energy", entropy=7, rate_per_s=5e-3))
    fleet = EnergyGatewayFleet(
        BUDGETS,
        policy=Policy(replicas=2, calibration_tolerance=0.17,
                      calibration_action=action),
        cost_model=model)
    return fleet.serve(iter(drifting_trace()))


class TestFleetAccounting:
    def test_widen_accounts_and_keeps_serving(self):
        report = run_drifting_fleet("widen")
        assert report.calibration_stale > 0
        assert report.calibration_rejected == 0
        assert report.admitted > report.calibration_stale
        assert report.violations == {}
        # Per-replica counters sum to the fleet roll-up.
        assert sum(r.calibration_stale for r in report.replica_reports) \
            == report.calibration_stale
        assert "stale-calibration requests" in format_fleet_report(report)

    def test_reject_sheds_stale_requests(self):
        report = run_drifting_fleet("reject")
        assert report.calibration_rejected > 0
        assert report.calibration_rejected == report.calibration_stale
        # Shed requests are accounted under their own counter, so the
        # ledger of outcomes still balances.
        assert report.admitted + report.rejected + report.shed_crash \
            + report.shed_no_replica + report.calibration_rejected \
            == report.offered

    def test_drifting_fleet_replays_bitwise(self):
        a = run_drifting_fleet("widen")
        b = run_drifting_fleet("widen")
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
