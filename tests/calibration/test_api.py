"""The unified Calibrator API: registry, canonical entry point, shim."""

import warnings

import pytest

from repro.calibration import (
    CALIBRATORS,
    Calibrator,
    MicrobenchCalibrator,
    OracleCalibrator,
    calibrate,
    register_calibrator,
    resolve_calibrator,
)
from repro.core.errors import MeasurementError
from repro.hardware.profiles import SIM4090, build_gpu_workstation
from repro.measurement.calibration import METRICS


class TestRegistry:
    def test_default_is_microbench(self):
        assert isinstance(resolve_calibrator(None), MicrobenchCalibrator)

    def test_resolve_by_name(self):
        assert isinstance(resolve_calibrator("oracle"), OracleCalibrator)
        assert isinstance(resolve_calibrator("microbench"),
                          MicrobenchCalibrator)

    def test_resolve_passes_instances_through(self):
        strategy = OracleCalibrator()
        assert resolve_calibrator(strategy) is strategy

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(MeasurementError, match="microbench"):
            resolve_calibrator("voodoo")

    def test_register_custom_calibrator(self):
        class FixedCalibrator(Calibrator):
            name = "fixed-test"

            def calibrate_device(self, gpu, nvml=None, **knobs):
                from repro.measurement.calibration import CalibratedModel
                return CalibratedModel(gpu.spec.name,
                                       {m: 1.0 for m in METRICS}, 0.0, 0)

        try:
            register_calibrator(FixedCalibrator())
            assert isinstance(resolve_calibrator("fixed-test"),
                              FixedCalibrator)
        finally:
            CALIBRATORS.pop("fixed-test", None)


class TestCanonicalCalibrate:
    def test_machine_and_bare_gpu_agree(self):
        machine = build_gpu_workstation(SIM4090)
        via_machine = calibrate(machine, source="gpu0", seed=3,
                                calibrator="oracle")
        machine2 = build_gpu_workstation(SIM4090)
        via_gpu = calibrate(machine2.component("gpu0"), seed=3,
                            calibrator="oracle")
        assert via_machine.model.unit_energies \
            == via_gpu.model.unit_energies
        assert via_machine.source == via_gpu.source == "gpu0"

    def test_epoch_provenance(self):
        machine = build_gpu_workstation(SIM4090)
        epoch = calibrate(machine, source="gpu0", seed=3,
                          calibrator="oracle")
        assert epoch.epoch == 0
        assert epoch.calibrator == "oracle"
        assert epoch.calibrated_at == pytest.approx(machine.now)

    def test_oracle_matches_spec_exactly(self):
        machine = build_gpu_workstation(SIM4090)
        model = calibrate(machine, source="gpu0",
                          calibrator="oracle").model
        assert model.unit_energies["instructions"] == SIM4090.e_instruction
        assert model.static_power_w == SIM4090.p_static_w
        assert model.residual_rms == 0.0

    def test_microbench_defaults_close_to_spec(self):
        machine = build_gpu_workstation(SIM4090)
        epoch = calibrate(machine, source="gpu0", seed=1)
        assert epoch.calibrator == "microbench"
        assert epoch.model.static_power_w == pytest.approx(
            SIM4090.p_static_w, rel=0.05)

    def test_seed_determinism(self):
        models = [calibrate(build_gpu_workstation(SIM4090),
                            source="gpu0", seed=11).model
                  for _ in range(2)]
        assert models[0].unit_energies == models[1].unit_energies

    def test_microbench_requires_nvml(self):
        machine = build_gpu_workstation(SIM4090)
        with pytest.raises(MeasurementError, match="NVML"):
            MicrobenchCalibrator().calibrate_device(
                machine.component("gpu0"), None)


def snap_to_bin_centers(epoch):
    """Move each unit energy to its quantisation-bin center, so a jitter
    smaller than half a quantum provably cannot flip any rounded print."""
    import math
    from dataclasses import replace

    from repro.calibration.api import DEFAULT_UNIT_QUANTUM as q
    units = {m: math.exp(round(math.log(v) / q) * q)
             for m, v in epoch.model.unit_energies.items()}
    return replace(epoch, model=replace(epoch.model, unit_energies=units))


class TestEpochFingerprint:
    def test_sub_quantum_change_shares_fingerprint(self):
        from dataclasses import replace
        machine = build_gpu_workstation(SIM4090)
        epoch = snap_to_bin_centers(
            calibrate(machine, source="gpu0", calibrator="oracle"))
        jittered = {m: v * 1.001
                    for m, v in epoch.model.unit_energies.items()}
        bumped = epoch.advanced(replace(epoch.model,
                                        unit_energies=jittered),
                                at=machine.now)
        assert bumped.fingerprint() == epoch.fingerprint()
        assert bumped.epoch == epoch.epoch + 1

    def test_super_quantum_change_mints_new_fingerprint(self):
        from dataclasses import replace
        machine = build_gpu_workstation(SIM4090)
        epoch = calibrate(machine, source="gpu0", calibrator="oracle")
        drifted = {m: v * 1.10
                   for m, v in epoch.model.unit_energies.items()}
        bumped = epoch.advanced(replace(epoch.model,
                                        unit_energies=drifted),
                                at=machine.now)
        assert bumped.fingerprint() != epoch.fingerprint()


class TestDeprecatedShim:
    def test_calibrate_gpu_warns_and_points_at_caller(self):
        from repro.measurement.calibration import calibrate_gpu

        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        from repro.measurement.nvml import NVMLSim
        nvml = NVMLSim(gpu, seed=1)
        with warnings.catch_warnings(record=True) as records:
            warnings.simplefilter("always")
            model = calibrate_gpu(gpu, nvml)
        deprecations = [r for r in records
                        if issubclass(r.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert deprecations[0].filename == __file__
        assert "repro.calibration.calibrate" in str(deprecations[0].message)
        assert model.static_power_w > 0

    def test_shim_matches_canonical_result(self):
        from repro.measurement.calibration import calibrate_gpu
        from repro.measurement.nvml import NVMLSim

        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = calibrate_gpu(gpu, NVMLSim(gpu, seed=4))
        canonical = calibrate(build_gpu_workstation(SIM4090),
                              source="gpu0", seed=4).model
        assert shimmed.unit_energies == canonical.unit_energies

    def test_canonical_path_is_warning_clean(self):
        machine = build_gpu_workstation(SIM4090)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            calibrate(machine, source="gpu0", seed=2)
