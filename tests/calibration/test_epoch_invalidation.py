"""The calibration seam: epoch fingerprints gate the compile cache."""

import math
from dataclasses import replace

import pytest

from repro.calibration import calibrate
from repro.compile import CompileCache
from repro.core.ecv import BernoulliECV, ECVEnvironment
from repro.core.interface import EnergyInterface
from repro.core.units import Energy
from repro.hardware.profiles import SIM4090, build_gpu_workstation


class EpochIface(EnergyInterface):
    def __init__(self, name="epochtest"):
        super().__init__(name)
        self.declare_ecv(BernoulliECV("hit", p=0.5, description="hit"))

    def E_op(self, n):
        return Energy(1e-9 * n if self.ecv("hit") else 20e-9 * n)


def fill(cache, iface, n_entries=3):
    for n in range(1, n_entries + 1):
        cache.get(iface("E_op", 100 * n), ECVEnvironment.EMPTY)


class TestBindEpoch:
    def test_first_bind_invalidates_nothing(self):
        cache = CompileCache()
        iface = EpochIface()
        fill(cache, iface)
        assert cache.bind_epoch("epochtest", ("fp", 1)) == 0
        assert len(cache) == 3

    def test_rebinding_the_same_fingerprint_is_a_noop(self):
        cache = CompileCache()
        iface = EpochIface()
        fill(cache, iface)
        cache.bind_epoch("epochtest", ("fp", 1))
        assert cache.bind_epoch("epochtest", ("fp", 1)) == 0
        assert len(cache) == 3
        assert cache.stats["invalidations"] == 0

    def test_fingerprint_change_drops_only_that_interface(self):
        cache = CompileCache()
        mine = EpochIface("epochtest")
        other = EpochIface("bystander")
        fill(cache, mine, 3)
        fill(cache, other, 2)
        cache.bind_epoch("epochtest", ("fp", 1))
        dropped = cache.bind_epoch("epochtest", ("fp", 2))
        assert dropped == 3
        assert len(cache) == 2     # the bystander's entries survive
        assert cache.stats["invalidations"] == 3
        # The bystander still hits.
        cache.get(other("E_op", 100), ECVEnvironment.EMPTY)
        assert cache.stats["hits"] >= 1

    def test_dropped_entries_recompile_on_next_lookup(self):
        cache = CompileCache()
        iface = EpochIface()
        first = cache.get(iface("E_op", 100), ECVEnvironment.EMPTY)
        cache.bind_epoch("epochtest", ("fp", 1))
        cache.bind_epoch("epochtest", ("fp", 2))
        second = cache.get(iface("E_op", 100), ECVEnvironment.EMPTY)
        assert second is not first
        assert second.dist.mean() == pytest.approx(first.dist.mean())


class TestEpochDrivenInvalidation:
    """End to end with real CalibrationEpoch fingerprints."""

    def setup_method(self):
        from repro.calibration.api import DEFAULT_UNIT_QUANTUM as q
        machine = build_gpu_workstation(SIM4090)
        self.machine = machine
        epoch = calibrate(machine, source="gpu0", calibrator="oracle")
        # Snap the units to quantisation-bin centers: the x1.001 jitter
        # below is then provably inside one bin (no boundary flakiness).
        units = {m: math.exp(round(math.log(v) / q) * q)
                 for m, v in epoch.model.unit_energies.items()}
        self.epoch = replace(epoch,
                             model=replace(epoch.model, unit_energies=units))

    def _advanced(self, scale):
        units = {m: v * scale
                 for m, v in self.epoch.model.unit_energies.items()}
        return self.epoch.advanced(
            replace(self.epoch.model, unit_energies=units),
            at=self.machine.now)

    def test_sub_quantum_recalibration_keeps_the_cache_warm(self):
        cache = CompileCache()
        iface = EpochIface()
        fill(cache, iface)
        cache.bind_epoch(iface.name, self.epoch.fingerprint())
        jittered = self._advanced(1.001)
        assert cache.bind_epoch(iface.name, jittered.fingerprint()) == 0
        assert len(cache) == 3

    def test_super_quantum_recalibration_flushes(self):
        cache = CompileCache()
        iface = EpochIface()
        fill(cache, iface)
        cache.bind_epoch(iface.name, self.epoch.fingerprint())
        drifted = self._advanced(1.10)
        assert cache.bind_epoch(iface.name, drifted.fingerprint()) == 3
        assert len(cache) == 0
