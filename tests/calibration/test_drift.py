"""Drift processes: replay identity, partition independence, install."""

import numpy as np
import pytest

from repro.calibration import ComponentDrift, DriftPlan, DriftProcess
from repro.core.errors import HardwareError
from repro.hardware.profiles import SIM4090, build_gpu_workstation


class TestDriftProcess:
    def test_factor_is_one_before_t0(self):
        p = DriftProcess("k", entropy=1, rate_per_s=0.01, sigma=0.1, t0=5.0)
        assert p.factor(0.0) == 1.0
        assert p.factor(5.0) == 1.0

    def test_replay_identity(self):
        a = DriftProcess("k", entropy=42, rate_per_s=1e-3, sigma=0.05)
        b = DriftProcess("k", entropy=42, rate_per_s=1e-3, sigma=0.05)
        ts = np.linspace(0.0, 120.0, 241)
        assert [a.factor(t) for t in ts] == [b.factor(t) for t in ts]

    def test_partition_independence(self):
        """Querying at a coarse grid then fine must not change the path."""
        a = DriftProcess("k", entropy=7, sigma=0.05)
        b = DriftProcess("k", entropy=7, sigma=0.05)
        a.factor(100.0)                       # jump straight to the end
        fine = [b.factor(t) for t in np.linspace(0.0, 100.0, 500)]
        assert a.factor(100.0) == fine[-1]

    def test_different_keys_different_paths(self):
        a = DriftProcess("energy", entropy=7, sigma=0.1)
        b = DriftProcess("static", entropy=7, sigma=0.1)
        assert a.factor(60.0) != b.factor(60.0)

    def test_different_entropy_different_paths(self):
        a = DriftProcess("k", entropy=1, sigma=0.1)
        b = DriftProcess("k", entropy=2, sigma=0.1)
        assert a.factor(60.0) != b.factor(60.0)

    def test_deterministic_ramp_without_sigma(self):
        p = DriftProcess("k", entropy=3, rate_per_s=0.01)
        assert p.factor(10.0) == pytest.approx(1.1)

    def test_factor_stays_positive(self):
        p = DriftProcess("k", entropy=9, rate_per_s=-1.0, sigma=0.2)
        assert p.factor(1000.0) >= 0.0

    def test_rebased_shifts_origin(self):
        p = DriftProcess("k", entropy=3, rate_per_s=0.01)
        q = p.rebased(50.0)
        assert q.factor(50.0) == 1.0
        assert q.factor(60.0) == pytest.approx(p.factor(10.0))

    def test_validation(self):
        with pytest.raises(HardwareError):
            DriftProcess("k", tau_s=0.0)
        with pytest.raises(HardwareError):
            DriftProcess("k", sigma=-0.1)


class TestDriftPlan:
    def test_unknown_preset_rejected(self):
        with pytest.raises(HardwareError):
            DriftPlan.preset_for(("gpu0",), preset="cataclysmic")

    def test_install_rebases_to_machine_clock(self):
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        gpu.idle(3.0)
        plan = DriftPlan.preset_for(("gpu0",), preset="gentle", entropy=7)
        plan.install(machine)
        assert gpu.drift is not None
        assert gpu.drift.energy_factor(machine.now) == 1.0

    def test_install_rejects_component_without_drift_support(self):
        machine = build_gpu_workstation(SIM4090)
        plan = DriftPlan({"dram0": ComponentDrift()}, entropy=7)
        with pytest.raises(HardwareError, match="drift"):
            plan.install(machine)

    def test_remove_detaches(self):
        machine = build_gpu_workstation(SIM4090)
        plan = DriftPlan.preset_for(("gpu0",), preset="gentle", entropy=7)
        plan.install(machine)
        plan.remove(machine)
        assert machine.component("gpu0").drift is None

    def test_drift_moves_measured_energy(self):
        """The same workload costs more once an aging drift is installed."""
        def run(with_drift):
            machine = build_gpu_workstation(SIM4090)
            gpu = machine.component("gpu0")
            if with_drift:
                plan = DriftPlan(
                    {"gpu0": ComponentDrift(
                        energy=DriftProcess("gpu0:energy", entropy=7,
                                            rate_per_s=5e-3),
                        static=DriftProcess("gpu0:static", entropy=7,
                                            rate_per_s=5e-3))},
                    entropy=7)
                plan.install(machine)
            t0 = machine.now
            for _ in range(20):
                gpu.idle(1.0)
            return machine.ledger.energy_between(t0, machine.now)

        assert run(True) > 1.02 * run(False)

    def test_ambient_wander_moves_thermal_node(self):
        machine = build_gpu_workstation(SIM4090)
        gpu = machine.component("gpu0")
        base = gpu.thermal.t_ambient
        plan = DriftPlan(
            {"gpu0": ComponentDrift(
                ambient=DriftProcess("gpu0:ambient", entropy=7, sigma=0.05),
                ambient_scale_c=40.0)},
            entropy=7)
        plan.install(machine)
        # Stepped idles: drift is sampled at each advance's start time,
        # so the wander needs the clock past t0 before it shows.
        for _ in range(30):
            gpu.idle(1.0)
        assert gpu.thermal.t_ambient != base
