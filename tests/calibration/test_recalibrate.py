"""Streaming recalibration: convergence, staleness, epoch minting."""

import numpy as np
import pytest

from repro.calibration import (
    CalibrationGuard,
    StreamingRecalibrator,
    calibrate,
)
from repro.core.errors import CalibrationStale, MeasurementError
from repro.hardware.profiles import SIM4090, build_gpu_workstation
from repro.measurement.calibration import METRICS


def oracle_epoch():
    machine = build_gpu_workstation(SIM4090)
    return calibrate(machine, source="gpu0", calibrator="oracle")


def workload_counters(rng):
    """A plausibly-shaped counter vector (decode-dominated)."""
    scale = float(rng.uniform(0.5, 2.0))
    return {
        "instructions": 2e9 * scale,
        "l1_wavefronts": 5e7 * scale,
        "l2_sectors": 3e7 * scale,
        "vram_sectors": 4e8 * scale,
        "kernel_launches": 4e3 * scale,
        "busy_seconds": 0.4 * scale,
    }


class TestConvergence:
    def test_tracks_a_uniform_drift_ramp(self):
        """Measured energy ramps +0.4%/observation; the Kalman fit must
        keep relative error well under the frozen model's."""
        epoch = oracle_epoch()
        recal = StreamingRecalibrator(epoch, tolerance=0.05)
        rng = np.random.default_rng(0)
        frozen_errors, recal_errors = [], []
        for k in range(60):
            counters = workload_counters(rng)
            factor = 1.0 + 0.004 * k
            measured = epoch.model.predict_joules(counters) * factor
            frozen_errors.append(
                abs(epoch.model.predict_joules(counters) - measured)
                / measured)
            recal_errors.append(
                abs(recal.predict_joules(counters) - measured) / measured)
            recal.observe(counters, measured)
        # Skip the first few observations (the filter is still warming).
        assert float(np.mean(recal_errors[10:])) \
            < 0.25 * float(np.mean(frozen_errors[10:]))
        assert not recal.stale

    def test_frozen_leg_goes_stale_on_the_same_ramp(self):
        epoch = oracle_epoch()
        frozen = StreamingRecalibrator(epoch, tolerance=0.05, freeze=True)
        rng = np.random.default_rng(0)
        for k in range(60):
            counters = workload_counters(rng)
            measured = epoch.model.predict_joules(counters) * (1 + 0.004 * k)
            frozen.observe(counters, measured)
        assert frozen.stale
        assert frozen.epochs_minted == 0
        assert frozen.model is epoch.model

    def test_noise_only_observations_stay_fresh(self):
        epoch = oracle_epoch()
        recal = StreamingRecalibrator(epoch, tolerance=0.05)
        rng = np.random.default_rng(1)
        for _ in range(40):
            counters = workload_counters(rng)
            measured = epoch.model.predict_joules(counters) \
                * float(rng.normal(1.0, 0.005))
            recal.observe(counters, measured)
        assert not recal.stale
        assert recal.residual < 0.03


class TestStaleness:
    def test_stale_exactly_when_tolerance_crossed(self):
        """Stale iff the EWMA *exceeds* (not merely reaches) tolerance.

        Exact binary fractions keep the boundary comparison float-safe:
        with predicted 1.0625 and measured 1.0 the relative residual is
        exactly 0.0625.
        """
        at_tolerance = CalibrationGuard(0.0625, min_observations=1)
        at_tolerance.observe(1.0625, 1.0)
        assert at_tolerance.residual == 0.0625
        assert not at_tolerance.stale
        at_tolerance.check()   # must NOT raise at the boundary

        over_tolerance = CalibrationGuard(0.0625, min_observations=1)
        over_tolerance.observe(1.0635, 1.0)
        assert over_tolerance.stale
        with pytest.raises(CalibrationStale):
            over_tolerance.check()

    def test_recalibrator_staleness_direction(self):
        epoch = oracle_epoch()
        rng = np.random.default_rng(2)
        counters = workload_counters(rng)
        for rel, expect_stale in ((0.02, False), (0.20, True)):
            recal = StreamingRecalibrator(epoch, tolerance=0.05,
                                          min_observations=1, freeze=True)
            measured = epoch.model.predict_joules(counters) * (1.0 + rel)
            recal.observe(counters, measured)
            assert recal.stale is expect_stale

    def test_min_observations_gate(self):
        epoch = oracle_epoch()
        recal = StreamingRecalibrator(epoch, tolerance=0.01,
                                      min_observations=5, freeze=True)
        rng = np.random.default_rng(3)
        counters = workload_counters(rng)
        measured = epoch.model.predict_joules(counters) * 1.5
        for n in range(4):
            recal.observe(counters, measured)
            assert not recal.stale        # gated by min_observations
        recal.observe(counters, measured)
        assert recal.stale

    def test_check_raises_typed_error_with_fields(self):
        epoch = oracle_epoch()
        recal = StreamingRecalibrator(epoch, tolerance=0.02,
                                      min_observations=1, freeze=True)
        rng = np.random.default_rng(4)
        counters = workload_counters(rng)
        recal.observe(counters,
                      epoch.model.predict_joules(counters) * 1.2)
        with pytest.raises(CalibrationStale) as excinfo:
            recal.check()
        err = excinfo.value
        assert err.code == "calibration-stale"
        assert err.residual > err.tolerance == 0.02
        assert err.epoch == epoch.epoch
        payload = err.to_dict()
        assert payload["residual"] == pytest.approx(err.residual)

    def test_rejects_nonpositive_measurement(self):
        epoch = oracle_epoch()
        recal = StreamingRecalibrator(epoch)
        rng = np.random.default_rng(5)
        with pytest.raises(MeasurementError):
            recal.observe(workload_counters(rng), 0.0)

    def test_knob_validation(self):
        epoch = oracle_epoch()
        with pytest.raises(MeasurementError):
            StreamingRecalibrator(epoch, process_noise=0.0)
        with pytest.raises(MeasurementError):
            StreamingRecalibrator(epoch, ewma_alpha=1.5)
        with pytest.raises(MeasurementError):
            StreamingRecalibrator(epoch, tolerance=-1.0)


def bin_centered_epoch():
    """An oracle epoch with units snapped to fingerprint-bin centers, so
    sub-quantum wobble in the fit provably cannot flip a rounded print."""
    import math
    from dataclasses import replace

    from repro.calibration.api import DEFAULT_UNIT_QUANTUM as q
    epoch = oracle_epoch()
    units = {m: math.exp(round(math.log(v) / q) * q)
             for m, v in epoch.model.unit_energies.items()}
    return replace(epoch, model=replace(epoch.model, unit_energies=units))


class TestEpochMinting:
    def test_large_drift_mints_epochs_small_jitter_does_not(self):
        epoch = bin_centered_epoch()
        recal = StreamingRecalibrator(epoch, tolerance=0.5)
        rng = np.random.default_rng(6)
        # Tiny jitter: no epoch churn.
        for _ in range(20):
            counters = workload_counters(rng)
            measured = epoch.model.predict_joules(counters) \
                * float(rng.normal(1.0, 0.001))
            recal.observe(counters, measured)
        assert recal.epochs_minted == 0
        assert recal.epoch.epoch == epoch.epoch
        # A 30% jump: the fit crosses quantum boundaries and mints.
        minted = None
        for _ in range(20):
            counters = workload_counters(rng)
            measured = epoch.model.predict_joules(counters) * 1.3
            result = recal.observe(counters, measured)
            minted = result or minted
        assert recal.epochs_minted >= 1
        assert minted is not None
        assert minted.epoch > epoch.epoch
        assert minted.fingerprint() != epoch.fingerprint()

    def test_minted_epoch_never_mutates_the_original(self):
        epoch = oracle_epoch()
        original_units = dict(epoch.model.unit_energies)
        recal = StreamingRecalibrator(epoch, tolerance=0.5)
        rng = np.random.default_rng(7)
        for _ in range(30):
            counters = workload_counters(rng)
            recal.observe(counters,
                          epoch.model.predict_joules(counters) * 1.4)
        assert epoch.model.unit_energies == original_units


class TestGuard:
    def test_guard_mirrors_recalibrator_ewma(self):
        guard = CalibrationGuard(0.05, min_observations=1)
        guard.observe(110.0, 100.0)
        assert guard.residual == pytest.approx(0.1)
        assert guard.stale
        with pytest.raises(CalibrationStale):
            guard.check()
        assert guard.stale_checks == 1

    def test_guard_ignores_nonpositive_measurements(self):
        guard = CalibrationGuard(0.05)
        guard.observe(1.0, 0.0)
        assert guard.observations == 0

    def test_reset_clears_state(self):
        guard = CalibrationGuard(0.05, min_observations=1)
        guard.observe(2.0, 1.0)
        guard.reset()
        assert not guard.stale
        assert guard.residual == 0.0

    def test_ewma_weighting(self):
        guard = CalibrationGuard(0.5, alpha=0.25, min_observations=1)
        guard.observe(1.2, 1.0)   # rel 0.2
        guard.observe(1.0, 1.0)   # rel 0.0
        assert guard.residual == pytest.approx(0.75 * 0.2)


class TestModelShape:
    def test_recalibrated_units_cover_all_metrics(self):
        epoch = oracle_epoch()
        recal = StreamingRecalibrator(epoch)
        rng = np.random.default_rng(8)
        counters = workload_counters(rng)
        recal.observe(counters, epoch.model.predict_joules(counters) * 1.1)
        assert set(recal.model.unit_energies) == set(METRICS)
        assert all(v >= 0.0 for v in recal.model.unit_energies.values())
