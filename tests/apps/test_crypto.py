"""Tests for the constant-energy crypto example (§4.1's side channel)."""

import pytest

from repro.core.interface import evaluate
from repro.apps.crypto import (
    WORK_PER_BYTE,
    ConstantTimeInterface,
    ConstantTimeVerifier,
    EarlyExitInterface,
    EarlyExitVerifier,
)
from repro.core.contracts import ConstantEnergyContract
from repro.core.errors import WorkloadError
from repro.hardware.cpu import Core, Package
from repro.hardware.machine import Machine
from repro.hardware.profiles import BIG_CORE

MAC_BYTES = 16
SECRET = bytes(range(MAC_BYTES))


def build_core():
    machine = Machine("hsm")
    package = machine.add(Package("pkg", static_active_w=1.0,
                                  static_idle_w=0.1))
    core = machine.add(Core("cpu0", BIG_CORE, package))
    return machine, core


def measure(machine, fn):
    t0 = machine.now
    fn()
    return machine.ledger.energy_between(t0, machine.now)


class TestImplementations:
    def test_both_accept_correct_mac(self):
        machine, core = build_core()
        assert ConstantTimeVerifier(core, MAC_BYTES).verify(SECRET, SECRET)
        assert EarlyExitVerifier(core, MAC_BYTES).verify(SECRET, SECRET)

    def test_both_reject_wrong_mac(self):
        machine, core = build_core()
        wrong = bytes([255] * MAC_BYTES)
        assert not ConstantTimeVerifier(core, MAC_BYTES).verify(wrong,
                                                                SECRET)
        assert not EarlyExitVerifier(core, MAC_BYTES).verify(wrong, SECRET)

    def test_length_validation(self):
        machine, core = build_core()
        with pytest.raises(WorkloadError):
            ConstantTimeVerifier(core, MAC_BYTES).verify(b"short", SECRET)
        with pytest.raises(WorkloadError):
            EarlyExitVerifier(core, 0)

    def test_constant_time_energy_is_input_independent(self):
        machine, core = build_core()
        verifier = ConstantTimeVerifier(core, MAC_BYTES)
        wrong_early = bytes([255]) + SECRET[1:]
        wrong_late = SECRET[:-1] + bytes([255])
        e1 = measure(machine, lambda: verifier.verify(wrong_early, SECRET))
        e2 = measure(machine, lambda: verifier.verify(wrong_late, SECRET))
        # rel=1e-6 absorbs the package's (negligible) thermal drift
        # between the two runs; a real side channel is orders louder.
        assert e1 == pytest.approx(e2, rel=1e-6)

    def test_early_exit_leaks_matching_prefix(self):
        """The side channel, measured: more correct prefix -> more energy."""
        machine, core = build_core()
        verifier = EarlyExitVerifier(core, MAC_BYTES)
        energies = []
        for prefix in (0, 4, 12):
            guess = SECRET[:prefix] + bytes([255] * (MAC_BYTES - prefix))
            energies.append(
                measure(machine, lambda g=guess: verifier.verify(g,
                                                                 SECRET)))
        assert energies[0] < energies[1] < energies[2]


class TestInterfacesAndContract:
    def test_constant_time_interface_passes_contract(self):
        interface = ConstantTimeInterface(joules_per_byte=1e-3,
                                          mac_bytes=MAC_BYTES)
        report = ConstantEnergyContract(rel_tol=1e-6).check(
            interface.E_verify, inputs=[()])
        assert report.ok

    def test_early_exit_interface_fails_contract(self):
        """§4.1: 'a mere upper bound is not sufficient' — the constant-
        energy contract rejects the leaky design before implementation."""
        interface = EarlyExitInterface(joules_per_byte=1e-3,
                                       mac_bytes=MAC_BYTES)
        report = ConstantEnergyContract(rel_tol=1e-6).check(
            interface.E_verify, inputs=[()])
        assert not report.ok

    def test_early_exit_interface_worst_case_still_bounded(self):
        """...even though an upper-bound contract happily accepts it."""
        from repro.core.contracts import BudgetContract
        from repro.core.units import Energy
        interface = EarlyExitInterface(joules_per_byte=1e-3,
                                       mac_bytes=MAC_BYTES)
        budget = BudgetContract(Energy(1e-3 * MAC_BYTES))
        assert budget.check(interface.E_verify, inputs=[()]).ok

    def test_interface_matches_measured_energy(self):
        machine, core = build_core()
        verifier = EarlyExitVerifier(core, MAC_BYTES)
        joules_per_byte = core.energy_of(WORK_PER_BYTE)
        interface = EarlyExitInterface(joules_per_byte, MAC_BYTES)
        prefix = 7
        guess = SECRET[:prefix] + bytes([255] * (MAC_BYTES - prefix))
        t0 = machine.now
        verifier.verify(guess, SECRET)
        measured = machine.ledger.energy_between(t0, machine.now,
                                                 component="cpu0")
        predicted = evaluate(interface("E_verify"), env={"matching_prefix": prefix}).as_joules
        # Activity energy only (static/package accounted separately).
        activity = sum(r.joules for r in machine.ledger.records("cpu0")
                       if r.tag == "ee-compare")
        assert predicted == pytest.approx(activity, rel=1e-9)
