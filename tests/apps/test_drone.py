"""Tests for the battery-powered drone mission planner."""

import pytest

from repro.core.interface import evaluate
from repro.apps.drone import (
    DroneSpec,
    MissionEnergyInterface,
    MissionLeg,
    MissionPlanner,
)
from repro.core.errors import WorkloadError
from repro.hardware.battery import Battery, BatterySpec


def planner(capacity_wh=60.0, max_headwind=8.0):
    drone = DroneSpec()
    interface = MissionEnergyInterface(drone, max_headwind_mps=max_headwind)
    battery = Battery(BatterySpec(capacity_wh=capacity_wh))
    return MissionPlanner(interface, battery), drone, interface


class TestAirframeModel:
    def test_hover_power_scales_with_payload(self):
        drone = DroneSpec()
        assert drone.hover_power(1.0) > drone.hover_power(0.0)

    def test_cruise_has_interior_optimum_speed(self):
        """Induced power falls, drag rises: J/m has a sweet spot."""
        drone = DroneSpec()
        per_meter = {speed: drone.cruise_power(speed, 0.0) / speed
                     for speed in (4, 10, 16, 24)}
        best_speed = min(per_meter, key=per_meter.get)
        assert best_speed not in (4, 24)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            DroneSpec(empty_mass_kg=0.0)
        with pytest.raises(WorkloadError):
            DroneSpec().hover_power(-1.0)
        with pytest.raises(WorkloadError):
            DroneSpec().cruise_power(-1.0, 0.0)


class TestMissionInterface:
    def test_energy_scales_with_distance(self):
        _, _, interface = planner()
        short = evaluate(interface("E_leg", 1000.0, 0.0, 0.0, 10.0), env={"headwind_mps": 0.0}).as_joules
        long = evaluate(interface("E_leg", 3000.0, 0.0, 0.0, 10.0), env={"headwind_mps": 0.0}).as_joules
        assert long == pytest.approx(3 * short)

    def test_headwind_costs_energy(self):
        _, _, interface = planner()
        calm = evaluate(interface("E_leg", 1000.0, 0.0, 0.0, 12.0), env={"headwind_mps": 0.0}).as_joules
        windy = evaluate(interface("E_leg", 1000.0, 0.0, 0.0, 12.0), env={"headwind_mps": 8.0}).as_joules
        assert windy > calm

    def test_worst_case_uses_wind_envelope(self):
        _, _, interface = planner()
        legs = [MissionLeg(2000.0, hover_seconds=30.0)]
        worst = interface.worst_case("E_mission", legs, 0.5, 12.0)
        expected = interface.expected("E_mission", legs, 0.5, 12.0)
        assert worst.as_joules > expected.as_joules

    def test_hover_work_added(self):
        _, _, interface = planner()
        without = evaluate(interface("E_mission", [MissionLeg(1000.0)], 0.0, 10.0), env={"headwind_mps": 0.0}).as_joules
        with_hover = evaluate(interface("E_mission", [MissionLeg(1000.0, hover_seconds=60.0)], 0.0, 10.0), env={"headwind_mps": 0.0}).as_joules
        assert with_hover > without

    def test_bad_inputs_rejected(self):
        _, _, interface = planner()
        with pytest.raises(WorkloadError):
            MissionLeg(-1.0)
        with pytest.raises(WorkloadError):
            evaluate(interface("E_leg", 100.0, 0.0, 0.0, 0.0), env={"headwind_mps": 0.0})


class TestPlanner:
    def test_feasible_mission_is_go(self):
        plan, _, _ = planner(capacity_wh=80.0)
        report = plan.check([MissionLeg(2000.0, 30.0)], payload_kg=0.3,
                            ground_speed_mps=12.0)
        assert report.feasible_worst_case
        assert report.margin > 0
        assert "GO" in str(report)

    def test_infeasible_mission_is_no_go(self):
        plan, _, _ = planner(capacity_wh=5.0)
        report = plan.check([MissionLeg(20000.0, 0.0)], payload_kg=1.0,
                            ground_speed_mps=12.0)
        assert not report.feasible_expected
        assert "NO-GO" in str(report)

    def test_fair_weather_band_exists(self):
        """A mission can fit the expected wind but not the worst case —
        the distinction a point estimate cannot make."""
        plan, _, interface = planner(capacity_wh=60.0, max_headwind=10.0)
        legs = [MissionLeg(d, 0.0) for d in (1000.0,) * 8]
        # Find a payload where expected fits but worst case does not.
        found = False
        for payload in (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0):
            report = plan.check(legs, payload, 12.0)
            if report.feasible_expected and not report.feasible_worst_case:
                found = True
                assert "fair weather" in str(report)
                break
        assert found, "no fair-weather band found across payload sweep"

    def test_best_speed_interior(self):
        plan, _, _ = planner()
        speed = plan.best_speed(payload_kg=0.5)
        assert 4.0 < speed < 24.0

    def test_heavier_payload_does_not_increase_range(self):
        plan, _, _ = planner()
        light = plan.max_range_m(0.0, 12.0)
        heavy = plan.max_range_m(2.0, 12.0)
        assert heavy < light

    def test_worst_case_range_shorter(self):
        plan, _, _ = planner()
        assert plan.max_range_m(0.5, 12.0, worst_case=True) < \
            plan.max_range_m(0.5, 12.0, worst_case=False)

    def test_best_speed_needs_candidates(self):
        plan, _, _ = planner()
        with pytest.raises(WorkloadError):
            plan.best_speed(0.0, candidates=())
