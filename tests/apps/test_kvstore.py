"""Tests for the KV store over flash and its lumpy-write interface."""

import pytest

from repro.apps.kvstore import KVStore, KVStoreEnergyInterface, \
    StorageManager
from repro.core.errors import WorkloadError
from repro.core.stack import Resource
from repro.hardware.machine import Machine
from repro.hardware.storage import SSD, SSDSpec


def build(value_bytes=16 * 1024, capacity_blocks=64):
    machine = Machine("storage-node")
    ssd = machine.add(SSD("ssd0", SSDSpec(capacity_blocks=capacity_blocks,
                                          pages_per_block=64,
                                          gc_dirty_threshold=0.5,
                                          p_idle_w=0.0)))
    store = KVStore(ssd, value_bytes)
    interface = KVStoreEnergyInterface(ssd, value_bytes)
    manager = StorageManager("storaged", ssd, value_bytes)
    return machine, ssd, store, interface, manager


class TestStore:
    def test_put_get_account_energy(self):
        machine, ssd, store, _, _ = build()
        store.put(1)
        store.get(1)
        assert ssd.pages_written > 0
        assert ssd.pages_read > 0
        assert machine.total_joules() > 0

    def test_value_size_validation(self):
        _, ssd, _, _, _ = build()
        with pytest.raises(WorkloadError):
            KVStore(ssd, 0)


class TestInterfaceAccuracy:
    def test_expected_put_cost_matches_long_run_average(self):
        """The manager-bound interface's expected E_put equals the
        measured long-run average within a few percent, despite the
        lumpy GC bursts."""
        machine, ssd, store, interface, manager = build()
        manager.register(Resource("kvstore", interface))
        exported = manager.export_interface("kvstore")
        predicted = exported.expected("E_put").as_joules

        # Enough puts to amortise several GC cycles (one every ~410 puts
        # at this geometry), so the long-run average is meaningful.
        n_puts = 3000
        t0 = machine.now
        for key in range(n_puts):
            store.put(key)
        assert ssd.gc_runs >= 5
        measured = machine.ledger.energy_between(t0, machine.now)
        assert predicted == pytest.approx(measured / n_puts, rel=0.10)

    def test_worst_case_covers_gc_burst(self):
        machine, ssd, store, interface, manager = build()
        manager.register(Resource("kvstore", interface))
        exported = manager.export_interface("kvstore")
        worst = exported.worst_case("E_put").as_joules

        worst_observed = 0.0
        for key in range(500):
            t0 = machine.now
            store.put(key)
            worst_observed = max(
                worst_observed,
                machine.ledger.energy_between(t0, machine.now))
        assert worst >= worst_observed * 0.99

    def test_without_binding_expected_is_wrong(self):
        """The declared default (p=0.1) is far from this device's truth —
        the manager's knowledge is what makes the interface accurate."""
        machine, ssd, store, interface, manager = build()
        unbound = interface.expected("E_put").as_joules
        manager.register(Resource("kvstore", interface))
        bound_value = manager.export_interface("kvstore").expected(
            "E_put").as_joules
        n_puts = 3000
        t0 = machine.now
        for key in range(n_puts):
            store.put(key)
        truth = machine.ledger.energy_between(t0, machine.now) / n_puts
        assert abs(bound_value - truth) < abs(unbound - truth)

    def test_get_energy(self):
        _, ssd, _, interface, _ = build()
        pages = -(-(16 * 1024 + 4096) // 4096)
        assert interface.expected("E_get").as_joules == pytest.approx(
            pages * ssd.spec.e_read_page)


class TestManagerKnowledge:
    def test_gc_probability_reasonable(self):
        _, ssd, _, _, manager = build()
        p = manager.gc_probability()
        # 5 pages per put / 2048 reclaimed pages
        assert p == pytest.approx(5 / 2048, rel=1e-6)

    def test_bindings_have_description(self):
        _, _, _, _, manager = build()
        ecv = manager.known_bindings()["gc_triggered"]
        assert "storaged" in ecv.description
