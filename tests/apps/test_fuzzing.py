"""Tests for the ClusterFuzz capacity planner (§1's M2)."""

import pytest

from repro.apps.fuzzing import (
    CapacityPlanner,
    FuzzingCampaignModel,
    FuzzingEnergyInterface,
)
from repro.core.errors import WorkloadError


def model():
    return FuzzingCampaignModel()


def interface():
    return FuzzingEnergyInterface(model())


class TestCoverageLaw:
    def test_coverage_monotone_and_saturating(self):
        campaign = model()
        values = [campaign.coverage(x) for x in (0, 1e9, 1e10, 1e12)]
        assert values == sorted(values)
        assert values[0] == 0.0
        assert values[-1] < campaign.max_coverage

    def test_inverse_round_trips(self):
        campaign = model()
        for coverage in (0.5, 0.9, 0.95, 0.99):
            executions = campaign.executions_for(coverage)
            assert campaign.coverage(executions) == pytest.approx(coverage)

    def test_tail_is_heavy(self):
        """90 -> 95 costs far more than 85 -> 90 (geometric blowup)."""
        campaign = model()
        step1 = campaign.executions_for(0.90) - campaign.executions_for(0.85)
        step2 = campaign.executions_for(0.95) - campaign.executions_for(0.90)
        assert step2 > 2.0 * step1

    def test_unreachable_coverage_rejected(self):
        with pytest.raises(WorkloadError):
            model().executions_for(1.0)

    def test_fleet_rate_diminishing_returns(self):
        campaign = model()
        rate1 = campaign.fleet_rate(1)
        rate50 = campaign.fleet_rate(50)
        assert rate50 > rate1
        assert rate50 < 50 * rate1

    def test_time_decreases_with_fleet_size(self):
        campaign = model()
        assert campaign.time_to_coverage(0.9, 50) < \
            campaign.time_to_coverage(0.9, 5)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            FuzzingCampaignModel(max_coverage=0.0)
        with pytest.raises(WorkloadError):
            FuzzingCampaignModel(coordination_overhead=1.0)
        with pytest.raises(WorkloadError):
            model().fleet_rate(0)
        with pytest.raises(WorkloadError):
            model().coverage(-1.0)


class TestEnergyInterface:
    def test_campaign_energy_positive_and_monotone_in_coverage(self):
        iface = interface()
        e90 = iface.E_campaign(0.90, 20).as_joules
        e95 = iface.E_campaign(0.95, 20).as_joules
        assert 0 < e90 < e95

    def test_marginal_energy_definition(self):
        iface = interface()
        marginal = iface.E_marginal(0.90, 0.95, 20).as_joules
        assert marginal == pytest.approx(
            iface.E_campaign(0.95, 20).as_joules
            - iface.E_campaign(0.90, 20).as_joules)

    def test_marginal_rejects_backwards_range(self):
        with pytest.raises(WorkloadError):
            interface().E_marginal(0.95, 0.90, 20)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            FuzzingEnergyInterface(model(), machine_fuzzing_power_w=0.0)
        with pytest.raises(WorkloadError):
            FuzzingEnergyInterface(model(), infra_power_w=-1.0)


class TestPlanner:
    def test_question_1_interior_optimum(self):
        """Shared infra power penalises tiny fleets; coordination
        overhead penalises huge ones — the optimum is interior."""
        planner = CapacityPlanner(interface(), max_machines=150)
        answer = planner.optimal_fleet(0.95)
        assert 2 < answer.optimal_machines < 150
        energies = answer.energy_by_fleet_size
        assert energies[1] > answer.energy.as_joules
        assert energies[150] > answer.energy.as_joules

    def test_deadline_excludes_slow_fleets(self):
        no_deadline = CapacityPlanner(interface(), max_machines=150)
        tight = CapacityPlanner(interface(), max_machines=150,
                                deadline_seconds=2 * 86_400.0)
        slow_best = no_deadline.optimal_fleet(0.95)
        fast_best = tight.optimal_fleet(0.95)
        assert fast_best.campaign_seconds <= 2 * 86_400.0
        assert fast_best.optimal_machines >= slow_best.optimal_machines

    def test_impossible_deadline_rejected(self):
        planner = CapacityPlanner(interface(), max_machines=3,
                                  deadline_seconds=10.0)
        with pytest.raises(WorkloadError):
            planner.optimal_fleet(0.95)

    def test_question_2_marginal_energy_blows_up(self):
        """The paper's second question has a dramatic answer: the last
        5 points of coverage cost multiples of the previous 5."""
        planner = CapacityPlanner(interface(), max_machines=100)
        n = planner.optimal_fleet(0.95).optimal_machines
        up_to_90 = planner.marginal_coverage_energy(0.85, 0.90, n).as_joules
        up_to_95 = planner.marginal_coverage_energy(0.90, 0.95, n).as_joules
        assert up_to_95 > 2.0 * up_to_90

    def test_cost_curve_monotone(self):
        planner = CapacityPlanner(interface(), max_machines=50)
        curve = planner.coverage_cost_curve(20, [0.5, 0.8, 0.9, 0.95])
        values = list(curve.values())
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            CapacityPlanner(interface(), max_machines=0)
