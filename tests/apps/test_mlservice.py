"""Tests for the Fig. 1 ML web service (implementation + interfaces)."""

import numpy as np
import pytest

from repro.core.interface import evaluate
from repro.apps.mlservice import (
    RESPONSE_BYTES,
    CNNModel,
    MLWebService,
    build_service_machine,
    build_service_stack,
)
from repro.calibration import calibrate
from repro.workloads.traces import ImageRequest, image_request_trace


def build_service():
    machine = build_service_machine()
    return machine, MLWebService(machine)


def calibrated(machine, seed=5):
    return calibrate(machine, source="gpu0", seed=seed).model


class TestCNNModel:
    def test_forward_kernel_mix_matches_fig1(self):
        cnn = CNNModel()
        kernels = cnn.forward_kernels(10000, 1000)
        names = [k.name for k in kernels]
        assert names.count("conv2d") == 8
        assert names.count("relu") == 8
        assert names.count("mlp") == 16

    def test_zero_skipping_reduces_conv_cost(self):
        """§1's claim: zeros in the input reduce MAC energy."""
        cnn = CNNModel()
        dense = cnn.conv_kernel_profile(10000)
        sparse = cnn.conv_kernel_profile(5000)
        assert sparse.instructions < dense.instructions
        assert sparse.vram_sectors < dense.vram_sectors

    def test_all_zero_image_costs_almost_nothing_in_conv(self):
        cnn = CNNModel()
        kernel = cnn.conv_kernel_profile(0)
        assert kernel.instructions == 0.0


class TestServicePaths:
    def test_first_request_infers(self):
        _, service = build_service()
        request = ImageRequest(1, 50000, 10000)
        assert service.handle(request) == "infer"

    def test_repeat_request_hits_locally(self):
        _, service = build_service()
        request = ImageRequest(1, 50000, 10000)
        service.handle(request)
        assert service.handle(request) == "local"

    def test_evicted_from_local_but_in_cluster_is_remote(self):
        machine = build_service_machine()
        service = MLWebService(machine, local_cache_entries=2,
                               cluster_cache_entries=1000)
        service.handle(ImageRequest(1, 50000, 0))
        service.handle(ImageRequest(2, 50000, 0))
        service.handle(ImageRequest(3, 50000, 0))  # evicts 1 locally
        assert service.handle(ImageRequest(1, 50000, 0)) == "remote"

    def test_energy_ordering_of_paths(self):
        """local < remote < infer, as Fig. 1's numbers imply."""
        machine, service = build_service()
        request = ImageRequest(1, 50000, 10000)

        def measure(fn):
            t0 = machine.now
            fn()
            return machine.ledger.energy_between(t0, machine.now)

        infer = measure(lambda: service.handle(request))
        local = measure(lambda: service.handle(request))
        machine2 = build_service_machine()
        service2 = MLWebService(machine2, local_cache_entries=1)
        service2.handle(ImageRequest(1, 50000, 10000))
        service2.handle(ImageRequest(2, 50000, 10000))  # evict 1 locally
        t0 = machine2.now
        service2.handle(ImageRequest(1, 50000, 10000))
        remote = machine2.ledger.energy_between(t0, machine2.now)
        assert local < remote < infer

    def test_observed_bindings_need_volume(self):
        _, service = build_service()
        service.handle(ImageRequest(1, 50000, 0))
        assert service.observed_bindings() == {}

    def test_observed_bindings_conditional_probability(self):
        _, service = build_service()
        rng = np.random.default_rng(0)
        for request in image_request_trace(300, rng, n_objects=100):
            service.handle(request)
        bindings = service.observed_bindings()
        assert 0.0 < bindings["request_hit"].p <= 1.0
        assert 0.0 < bindings["local_cache_hit"].p <= 1.0


class TestStack:
    def test_stack_layers(self):
        machine, service = build_service()
        model = calibrated(machine)
        stack = build_service_stack(service, model)
        assert [layer.name for layer in stack.layers] == \
            ["hardware", "os", "runtime"]

    def test_exported_interface_prediction_accuracy(self):
        """The F1 acceptance test: service-level prediction within 10%."""
        machine, service = build_service()
        model = calibrated(machine)
        rng = np.random.default_rng(11)
        for request in image_request_trace(500, rng):
            service.handle(request)
        stack = build_service_stack(service, model)
        iface = stack.exported_interface("runtime/ml_webservice")

        trace = image_request_trace(300, rng)
        t0 = machine.now
        for request in trace:
            service.handle(request)
        measured = machine.ledger.energy_between(t0, machine.now)
        predicted = sum(
            evaluate(iface("E_handle", r.image_pixels, r.zero_pixels)).as_joules
            for r in trace)
        assert predicted == pytest.approx(measured, rel=0.10)

    def test_interface_reads_like_fig1(self):
        """The exported interface's source contains the Fig. 1 structure."""
        from repro.core.report import describe_interface
        machine, service = build_service()
        model = calibrated(machine)
        stack = build_service_stack(service, model)
        resource = stack.resource("runtime/ml_webservice")
        text = describe_interface(resource.energy_interface)
        assert "request_hit" in text
        assert "E_handle" in text

    def test_per_path_predictions_close(self):
        machine, service = build_service()
        model = calibrated(machine)
        stack = build_service_stack(service, model)
        iface = stack.exported_interface("runtime/ml_webservice")
        request = ImageRequest(1, 49000, 5000)

        t0 = machine.now
        service.handle(request)
        infer_actual = machine.ledger.energy_between(t0, machine.now)
        infer_predicted = evaluate(iface("E_handle", request.image_pixels, request.zero_pixels), env={"request_hit": False}).as_joules
        assert infer_predicted == pytest.approx(infer_actual, rel=0.08)

        t0 = machine.now
        service.handle(request)  # now cached locally
        local_actual = machine.ledger.energy_between(t0, machine.now)
        local_predicted = evaluate(iface("E_handle", request.image_pixels, request.zero_pixels), env={"request_hit": True, "local_cache_hit": True}).as_joules
        assert local_predicted == pytest.approx(local_actual, rel=0.08)
