"""Tests for the PoW/PoS consensus energy interfaces (§1's M4)."""

import pytest

from repro.apps.consensus import (
    PoSEnergyInterface,
    PoSNetworkSpec,
    PoWEnergyInterface,
    PoWNetworkSpec,
    merge_savings,
)
from repro.core.errors import WorkloadError


class TestPoW:
    def test_daily_energy_scale(self):
        """Pre-merge Ethereum burned on the order of tens of GWh/day."""
        iface = PoWEnergyInterface(PoWNetworkSpec())
        daily_gwh = iface.E_secure_day().as_kilowatt_hours / 1e6
        assert 20 < daily_gwh < 200

    def test_energy_scales_with_hash_rate(self):
        small = PoWEnergyInterface(PoWNetworkSpec(hash_rate_mh_per_s=1e6))
        large = PoWEnergyInterface(PoWNetworkSpec(hash_rate_mh_per_s=2e6))
        assert large.E_secure_day().as_joules == pytest.approx(
            2 * small.E_secure_day().as_joules)

    def test_per_block(self):
        iface = PoWEnergyInterface(PoWNetworkSpec())
        per_block = iface.E_per_block(blocks_per_day=6500)
        assert per_block.as_joules == pytest.approx(
            iface.E_secure_day().as_joules / 6500)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PoWNetworkSpec(hash_rate_mh_per_s=0.0)
        with pytest.raises(WorkloadError):
            PoWNetworkSpec(overhead_fraction=1.0)
        with pytest.raises(WorkloadError):
            PoWEnergyInterface(PoWNetworkSpec()).E_per_block(0.0)


class TestPoS:
    def test_daily_energy_scale(self):
        """Post-merge: a few MWh/day across all validators."""
        iface = PoSEnergyInterface(PoSNetworkSpec())
        daily_mwh = iface.E_secure_day().as_kilowatt_hours / 1e3
        assert 1 < daily_mwh < 50

    def test_idle_dominates_duties(self):
        spec = PoSNetworkSpec()
        iface = PoSEnergyInterface(spec)
        duties = (spec.n_nodes * spec.attestations_per_node_per_day
                  * spec.joules_per_attestation)
        assert duties < 0.01 * iface.E_secure_day().as_joules

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PoSNetworkSpec(n_nodes=0)


class TestMergeClaim:
    def test_savings_match_papers_headline(self):
        """'Reduced its energy consumption by an impressive 99.95%'."""
        savings = merge_savings()
        assert savings == pytest.approx(0.9995, abs=0.0008)

    def test_custom_specs(self):
        savings = merge_savings(
            PoWNetworkSpec(hash_rate_mh_per_s=1e6, joules_per_mh=1.0),
            PoSNetworkSpec(n_nodes=10, node_power_w=10.0))
        assert 0.0 < savings < 1.0
