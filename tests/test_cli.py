"""Tests for the command-line front end."""

import pytest

from repro.cli import main


class TestCLI:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_consensus_command(self, capsys):
        assert main(["consensus"]) == 0
        out = capsys.readouterr().out
        assert "PoW" in out and "PoS" in out
        assert "99.95" in out

    def test_fuzzing_command(self, capsys):
        assert main(["fuzzing", "--coverage", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "optimal fleet" in out
        assert "marginal energy" in out

    def test_fuzzing_custom_deadline(self, capsys):
        assert main(["fuzzing", "--coverage", "0.9",
                     "--deadline-days", "10"]) == 0

    def test_calibrate_command(self, capsys):
        assert main(["calibrate", "--gpu", "sim3070"]) == 0
        out = capsys.readouterr().out
        assert "sim3070" in out
        assert "vram_sectors" in out

    def test_schedulers_command(self, capsys):
        assert main(["schedulers", "--quanta", "30"]) == 0
        out = capsys.readouterr().out
        assert "eas" in out and "interface" in out

    def test_table1_command_small(self, capsys):
        assert main(["table1", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "sim4090" in out and "sim3070" in out
        assert "paper" in out

    def test_mlservice_command(self, capsys):
        assert main(["mlservice", "--requests", "60"]) == 0
        out = capsys.readouterr().out
        assert "predicted" in out and "measured" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["warp-drive"])


class TestTraceCommand:
    def test_prints_tree_and_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "--requests", "6",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        # The span tree spans the stack's layers.
        assert "[runtime]" in out
        assert "[hardware]" in out
        assert "[os]" in out
        assert "session memo" in out
        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"]
        for event in payload["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0

    def test_out_can_be_skipped(self, capsys):
        assert main(["trace", "--requests", "4", "--out", ""]) == 0
        assert "chrome trace written" not in capsys.readouterr().out

    def test_rejects_nonpositive_requests(self, capsys):
        assert main(["trace", "--requests", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err


class TestServeCommand:
    def test_smoke_run_kvstore(self, capsys):
        assert main(["serve", "--app", "kvstore", "--rate", "50",
                     "--horizon", "1", "--budget", "0.2J+0.1W"]) == 0
        out = capsys.readouterr().out
        assert "serving report" in out
        assert "offered requests" in out
        assert "eval-cache hit rate" in out

    def test_attribution_flag(self, capsys):
        assert main(["serve", "--app", "kvstore", "--rate", "50",
                     "--horizon", "1", "--attribution"]) == 0
        out = capsys.readouterr().out
        assert "Attribution[proportional]" in out

    def test_policy_choices_parse(self, capsys):
        assert main(["serve", "--app", "kvstore", "--rate", "30",
                     "--horizon", "1", "--policy", "prob"]) == 0
        assert main(["serve", "--app", "kvstore", "--rate", "30",
                     "--horizon", "1", "--policy", "slo",
                     "--slo", "0.2"]) == 0

    def test_bad_budget_spec_exits_nonzero(self, capsys):
        assert main(["serve", "--budget", "banana"]) == 2
        err = capsys.readouterr().err
        assert "budget spec" in err

    def test_empty_budget_spec_exits_nonzero(self, capsys):
        assert main(["serve", "--budget", ""]) == 2

    def test_bad_slo_exits_nonzero(self, capsys):
        assert main(["serve", "--policy", "slo", "--slo", "-1"]) == 2
        err = capsys.readouterr().err
        assert "--slo" in err

    def test_bad_rate_exits_nonzero(self, capsys):
        assert main(["serve", "--rate", "0"]) == 2
        assert "--rate" in capsys.readouterr().err

    def test_bad_horizon_exits_nonzero(self, capsys):
        assert main(["serve", "--horizon", "-3"]) == 2
        assert "--horizon" in capsys.readouterr().err

    def test_unknown_app_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["serve", "--app", "warp-drive"])

    def test_seed_changes_the_workload(self, capsys):
        assert main(["--seed", "1", "serve", "--app", "kvstore",
                     "--rate", "50", "--horizon", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["--seed", "2", "serve", "--app", "kvstore",
                     "--rate", "50", "--horizon", "1"]) == 0
        second = capsys.readouterr().out
        assert first != second
