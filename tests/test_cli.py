"""Tests for the command-line front end."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "analysis" / "fixtures"
APPS = Path(__file__).parents[1] / "src" / "repro" / "apps"


class TestCLI:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_consensus_command(self, capsys):
        assert main(["consensus"]) == 0
        out = capsys.readouterr().out
        assert "PoW" in out and "PoS" in out
        assert "99.95" in out

    def test_fuzzing_command(self, capsys):
        assert main(["fuzzing", "--coverage", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "optimal fleet" in out
        assert "marginal energy" in out

    def test_fuzzing_custom_deadline(self, capsys):
        assert main(["fuzzing", "--coverage", "0.9",
                     "--deadline-days", "10"]) == 0

    def test_calibrate_command(self, capsys):
        assert main(["calibrate", "--gpu", "sim3070"]) == 0
        out = capsys.readouterr().out
        assert "sim3070" in out
        assert "vram_sectors" in out

    def test_schedulers_command(self, capsys):
        assert main(["schedulers", "--quanta", "30"]) == 0
        out = capsys.readouterr().out
        assert "eas" in out and "interface" in out

    def test_table1_command_small(self, capsys):
        assert main(["table1", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "sim4090" in out and "sim3070" in out
        assert "paper" in out

    def test_mlservice_command(self, capsys):
        assert main(["mlservice", "--requests", "60"]) == 0
        out = capsys.readouterr().out
        assert "predicted" in out and "measured" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["warp-drive"])


class TestTraceCommand:
    def test_prints_tree_and_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "--requests", "6",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        # The span tree spans the stack's layers.
        assert "[runtime]" in out
        assert "[hardware]" in out
        assert "[os]" in out
        assert "session memo" in out
        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"]
        for event in payload["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0

    def test_out_can_be_skipped(self, capsys):
        assert main(["trace", "--requests", "4", "--out", ""]) == 0
        assert "chrome trace written" not in capsys.readouterr().out

    def test_rejects_nonpositive_requests(self, capsys):
        assert main(["trace", "--requests", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_rejects_nonpositive_max_error(self, capsys):
        assert main(["trace", "--max-error", "-1"]) == 2
        assert "--max-error" in capsys.readouterr().err

    def test_max_error_turns_divergence_into_exit_one(self, capsys):
        # An absurdly strict threshold: any nonzero per-layer error fails.
        assert main(["trace", "--requests", "4", "--out", "",
                     "--max-error", "1e-9"]) == 1
        assert "exceeds --max-error" in capsys.readouterr().err

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "--help"])
        out = capsys.readouterr().out
        assert "0 = clean" in out and "2 = usage" in out


class TestLintCommand:
    def test_clean_apps_exit_zero(self, capsys):
        assert main(["lint", str(APPS)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(FIXTURES / "buggy_radio.py"),
                     "--baseline", "/nonexistent"]) == 1
        assert "EB103" in capsys.readouterr().out

    def test_dotted_module_target(self, capsys):
        assert main(["lint", "repro.apps.crypto"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", str(APPS), "--select", "EB999"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err
        # the error lists the full shared vocabulary: EB1xx and EB2xx
        assert "EB101" in err and "EB201" in err and "EB206" in err

    def test_missing_target_exits_two(self, capsys):
        assert main(["lint", "definitely/not/here.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_select_and_ignore_filter_rules(self, capsys):
        target = str(FIXTURES / "buggy_crypto.py")
        assert main(["lint", target, "--baseline", "/nonexistent",
                     "--select", "EB101"]) == 0
        assert main(["lint", target, "--baseline", "/nonexistent",
                     "--ignore", "EB102,EB106"]) == 0
        assert main(["lint", target, "--baseline", "/nonexistent",
                     "--select", "EB102"]) == 1

    def test_json_output(self, capsys):
        assert main(["lint", str(FIXTURES / "buggy_loop.py"),
                     "--baseline", "/nonexistent",
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-energy lint"
        assert payload["findings"][0]["rule"] == "EB101"

    def test_sarif_output_to_file(self, capsys, tmp_path):
        out_path = tmp_path / "report.sarif"
        assert main(["lint", str(FIXTURES / "buggy_dead.py"),
                     "--baseline", "/nonexistent",
                     "--format", "sarif", "--output", str(out_path)]) == 1
        out = capsys.readouterr().out
        assert "written to" in out
        sarif = json.loads(out_path.read_text())
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["results"][0]["ruleId"] == "EB106"

    def test_baseline_roundtrip_suppresses(self, capsys, tmp_path):
        target = str(FIXTURES / "buggy_refinement.py")
        baseline = tmp_path / "baseline.txt"
        assert main(["lint", target, "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert main(["lint", target, "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "suppressed by baseline" in out

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        out = capsys.readouterr().out
        assert "0 = clean" in out and "1 = findings" in out

    def test_main_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "exit codes" in capsys.readouterr().out


class TestRegressCommand:
    REGRESS = FIXTURES / "regress"

    def test_head_matches_committed_baseline(self, capsys, monkeypatch):
        monkeypatch.chdir(Path(__file__).parents[1])
        assert main(["regress", "src/repro/apps"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_write_then_diff_is_clean(self, capsys, tmp_path):
        target = str(self.REGRESS / "before" / "eb201.py")
        baseline = tmp_path / "fp.json"
        assert main(["regress", target, "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        assert "written to" in capsys.readouterr().out
        assert main(["regress", target, "--baseline", str(baseline)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_regression_exits_one(self, capsys, tmp_path):
        baseline = tmp_path / "fp.json"
        assert main(["regress", str(self.REGRESS / "before" / "eb201.py"),
                     "--write-baseline", "--baseline", str(baseline)]) == 0
        assert main(["regress", str(self.REGRESS / "after" / "eb201.py"),
                     "--baseline", str(baseline)]) == 1
        assert "EB201" in capsys.readouterr().out

    def test_sarif_output_to_file(self, capsys, tmp_path):
        baseline = tmp_path / "fp.json"
        out_path = tmp_path / "report.sarif"
        assert main(["regress", str(self.REGRESS / "before" / "eb204.py"),
                     "--write-baseline", "--baseline", str(baseline)]) == 0
        assert main(["regress", str(self.REGRESS / "after" / "eb204.py"),
                     "--baseline", str(baseline),
                     "--format", "sarif", "--output", str(out_path)]) == 1
        assert "written to" in capsys.readouterr().out
        sarif = json.loads(out_path.read_text())
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-energy regress"
        assert run["results"][0]["ruleId"] == "EB204"

    def test_json_output_names_the_tool(self, capsys, tmp_path):
        baseline = tmp_path / "fp.json"
        assert main(["regress", str(self.REGRESS / "before" / "eb203.py"),
                     "--write-baseline", "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["regress", str(self.REGRESS / "after" / "eb203.py"),
                     "--baseline", str(baseline), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-energy regress"
        assert payload["findings"][0]["rule"] == "EB203"

    def test_select_and_ignore_filter_rules(self, capsys, tmp_path):
        baseline = tmp_path / "fp.json"
        before = str(self.REGRESS / "before" / "eb201.py")
        after = str(self.REGRESS / "after" / "eb201.py")
        assert main(["regress", before, "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        assert main(["regress", after, "--baseline", str(baseline),
                     "--select", "EB203"]) == 0
        assert main(["regress", after, "--baseline", str(baseline),
                     "--ignore", "EB201"]) == 0

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["regress", str(APPS), "--select", "EB999"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err
        assert "EB101" in err and "EB201" in err

    def test_negative_tolerance_exits_two(self, capsys):
        assert main(["regress", str(APPS), "--tolerance", "-1"]) == 2
        assert "--tolerance" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, capsys, tmp_path):
        assert main(["regress", str(self.REGRESS / "before" / "eb201.py"),
                     "--baseline", str(tmp_path / "absent.json")]) == 2
        assert "--write-baseline" in capsys.readouterr().err

    def test_malformed_bisect_range_exits_two(self, capsys):
        assert main(["regress", "src/repro/apps",
                     "--bisect", "deadbeef"]) == 2
        assert "GOOD..BAD" in capsys.readouterr().err

    def test_bisect_pinpoints_commit(self, capsys, tmp_path, monkeypatch):
        import subprocess

        repo = tmp_path / "history"
        repo.mkdir()
        module = repo / "mod.py"
        subprocess.run(["git", "init", "-q"], cwd=repo, check=True)

        def commit(source, message):
            module.write_text(source, encoding="utf-8")
            subprocess.run(["git", "add", "mod.py"], cwd=repo, check=True)
            subprocess.run(["git", "-c", "user.name=t",
                            "-c", "user.email=t@example.invalid",
                            "commit", "-q", "-m", message], cwd=repo,
                           check=True)
            return subprocess.run(["git", "rev-parse", "HEAD"], cwd=repo,
                                  check=True, capture_output=True,
                                  text=True).stdout.strip()

        good_src = (self.REGRESS / "before" / "eb201.py").read_text()
        bad_src = (self.REGRESS / "after" / "eb201.py").read_text()
        commits = [commit(good_src, "seed"),
                   commit(good_src + "\n# tweak\n", "benign"),
                   commit(bad_src, "double the cost"),
                   commit(bad_src + "\n# tweak\n", "benign 2")]
        monkeypatch.chdir(repo)
        assert main(["regress", "mod.py",
                     "--bisect", f"{commits[0]}..{commits[3]}"]) == 1
        out = capsys.readouterr().out
        assert f"first regressing commit: {commits[2]}" in out
        assert "EB201" in out


class TestServeCommand:
    def test_smoke_run_kvstore(self, capsys):
        assert main(["serve", "--app", "kvstore", "--rate", "50",
                     "--horizon", "1", "--budget", "0.2J+0.1W"]) == 0
        out = capsys.readouterr().out
        assert "serving report" in out
        assert "offered requests" in out
        assert "eval-cache hit rate" in out

    def test_attribution_flag(self, capsys):
        assert main(["serve", "--app", "kvstore", "--rate", "50",
                     "--horizon", "1", "--attribution"]) == 0
        out = capsys.readouterr().out
        assert "Attribution[proportional]" in out

    def test_policy_choices_parse(self, capsys):
        assert main(["serve", "--app", "kvstore", "--rate", "30",
                     "--horizon", "1", "--policy", "prob"]) == 0
        assert main(["serve", "--app", "kvstore", "--rate", "30",
                     "--horizon", "1", "--policy", "slo",
                     "--slo", "0.2"]) == 0

    def test_bad_budget_spec_exits_nonzero(self, capsys):
        assert main(["serve", "--budget", "banana"]) == 2
        err = capsys.readouterr().err
        assert "budget spec" in err

    def test_empty_budget_spec_exits_nonzero(self, capsys):
        assert main(["serve", "--budget", ""]) == 2

    def test_bad_slo_exits_nonzero(self, capsys):
        assert main(["serve", "--policy", "slo", "--slo", "-1"]) == 2
        err = capsys.readouterr().err
        assert "--slo" in err

    def test_bad_rate_exits_nonzero(self, capsys):
        assert main(["serve", "--rate", "0"]) == 2
        assert "--rate" in capsys.readouterr().err

    def test_bad_horizon_exits_nonzero(self, capsys):
        assert main(["serve", "--horizon", "-3"]) == 2
        assert "--horizon" in capsys.readouterr().err

    def test_unknown_app_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["serve", "--app", "warp-drive"])

    def test_seed_changes_the_workload(self, capsys):
        assert main(["--seed", "1", "serve", "--app", "kvstore",
                     "--rate", "50", "--horizon", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["--seed", "2", "serve", "--app", "kvstore",
                     "--rate", "50", "--horizon", "1"]) == 0
        second = capsys.readouterr().out
        assert first != second


class TestFleetCommand:
    def test_smoke_run(self, capsys):
        assert main(["fleet", "--rate", "100", "--horizon", "5"]) == 0
        out = capsys.readouterr().out
        assert "fleet report" in out
        assert "goodput / J" in out
        assert "budget violations" in out

    def test_balancer_and_replica_knobs(self, capsys):
        assert main(["fleet", "--rate", "100", "--horizon", "5",
                     "--replicas", "6", "--balancer", "power-of-two",
                     "--workload", "flash"]) == 0
        out = capsys.readouterr().out
        assert "power-of-two" in out
        assert out.count(",") >= 5  # six per-replica dispatch counts

    def test_json_output(self, capsys, tmp_path):
        target = tmp_path / "fleet.json"
        assert main(["fleet", "--rate", "50", "--horizon", "2",
                     "--json", str(target)]) == 0
        document = json.loads(target.read_text())
        assert document["n_replicas"] == 4
        assert document["violations"] == {}

    def test_fault_rate_run_is_clean_on_budget(self, capsys):
        assert main(["fleet", "--rate", "100", "--horizon", "5",
                     "--fault-rate", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "fleet report" in out

    def test_min_goodput_gate(self, capsys):
        # Starve the budget so requests are rejected, then demand 100%.
        assert main(["fleet", "--rate", "200", "--horizon", "5",
                     "--budget", "0.05J+0.01W",
                     "--min-goodput", "1.0"]) == 1
        err = capsys.readouterr().err
        assert "--min-goodput" in err

    def test_usage_errors_exit_2(self, capsys):
        assert main(["fleet", "--replicas", "0"]) == 2
        assert main(["fleet", "--tenants", "0"]) == 2
        assert main(["fleet", "--rate", "0"]) == 2
        assert main(["fleet", "--fault-rate", "1.5"]) == 2
        assert main(["fleet", "--min-goodput", "2"]) == 2
        assert main(["fleet", "--budget", "banana"]) == 2
        capsys.readouterr()

    def test_seed_replays_bitwise(self, capsys):
        args = ["--seed", "3", "fleet", "--rate", "100", "--horizon", "5",
                "--balancer", "power-of-two"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
