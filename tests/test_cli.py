"""Tests for the command-line front end."""

import pytest

from repro.cli import main


class TestCLI:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_consensus_command(self, capsys):
        assert main(["consensus"]) == 0
        out = capsys.readouterr().out
        assert "PoW" in out and "PoS" in out
        assert "99.95" in out

    def test_fuzzing_command(self, capsys):
        assert main(["fuzzing", "--coverage", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "optimal fleet" in out
        assert "marginal energy" in out

    def test_fuzzing_custom_deadline(self, capsys):
        assert main(["fuzzing", "--coverage", "0.9",
                     "--deadline-days", "10"]) == 0

    def test_calibrate_command(self, capsys):
        assert main(["calibrate", "--gpu", "sim3070"]) == 0
        out = capsys.readouterr().out
        assert "sim3070" in out
        assert "vram_sectors" in out

    def test_schedulers_command(self, capsys):
        assert main(["schedulers", "--quanta", "30"]) == 0
        out = capsys.readouterr().out
        assert "eas" in out and "interface" in out

    def test_table1_command_small(self, capsys):
        assert main(["table1", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "sim4090" in out and "sim3070" in out
        assert "paper" in out

    def test_mlservice_command(self, capsys):
        assert main(["mlservice", "--requests", "60"]) == 0
        out = capsys.readouterr().out
        assert "predicted" in out and "measured" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["warp-drive"])
