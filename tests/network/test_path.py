"""Tests for the multi-hop network energy model (§6's asymmetry)."""

import pytest

from repro.core.errors import WorkloadError
from repro.network.path import (
    MTU_BYTES,
    Hop,
    LinkSpec,
    NetworkPath,
    PathEnergyInterface,
    RouterSpec,
)


def simple_path(n_hops=3):
    hops = []
    for index in range(n_hops):
        hops.append(Hop(
            router=RouterSpec(f"r{index}", joules_per_packet=20e-6,
                              static_power_w=3000.0, utilization=0.3,
                              capacity_pps=1e8),
            link=LinkSpec(f"l{index}", length_km=1000.0,
                          joules_per_bit=2.5e-9),
        ))
    return NetworkPath("test-path", hops)


class TestSpecs:
    def test_link_transmission_energy(self):
        link = LinkSpec("l", length_km=100.0, joules_per_bit=1e-9)
        assert link.transmission_energy(1000) == pytest.approx(8e-6)

    def test_link_propagation(self):
        link = LinkSpec("l", length_km=200.0,
                        propagation_km_per_s=2.0e5)
        assert link.propagation_seconds() == pytest.approx(1e-3)

    def test_router_static_share(self):
        router = RouterSpec("r", static_power_w=3000.0, utilization=0.3,
                            capacity_pps=1e8)
        # 3000 W / 3e7 pps = 100 uJ per packet of share
        assert router.static_share(1) == pytest.approx(100e-6)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            LinkSpec("l", length_km=0.0)
        with pytest.raises(WorkloadError):
            RouterSpec("r", utilization=0.0)
        with pytest.raises(WorkloadError):
            NetworkPath("p", [])


class TestPath:
    def test_length_and_latency_sum(self):
        path = simple_path(3)
        assert path.length_km == 3000.0
        assert path.one_way_latency() == pytest.approx(3000.0 / 2.0e5)

    def test_packetisation(self):
        path = simple_path(1)
        assert path.packets_for(100) == 1
        assert path.packets_for(MTU_BYTES) == 1
        assert path.packets_for(MTU_BYTES + 1) == 2
        with pytest.raises(WorkloadError):
            path.packets_for(-1)


class TestPathEnergyInterface:
    def test_request_energy_sums_hops(self):
        path = simple_path(4)
        interface = PathEnergyInterface(path)
        per_hop = interface.E_hop(0, 10_000).as_joules
        total = interface.E_request(10_000).as_joules
        assert total == pytest.approx(4 * per_hop)

    def test_round_trip_adds_response(self):
        interface = PathEnergyInterface(simple_path(2))
        rt = interface.E_round_trip(1000, 50_000).as_joules
        assert rt == pytest.approx(
            interface.E_request(1000).as_joules
            + interface.E_request(50_000).as_joules)

    def test_static_share_dominates_small_requests(self):
        """For a single packet the chassis share exceeds the switching
        energy — why idle networks still burn."""
        interface_full = PathEnergyInterface(simple_path(1))
        interface_dynamic = PathEnergyInterface(simple_path(1),
                                                include_static_share=False)
        full = interface_full.E_request(200).as_joules
        dynamic = interface_dynamic.E_request(200).as_joules
        assert full > 3 * dynamic

    def test_energy_grows_with_hops_latency_separately(self):
        """The §6 asymmetry in one assertion: both grow with hops, but
        energy needs every hop's interface while latency is one number."""
        short = PathEnergyInterface(simple_path(2))
        long = PathEnergyInterface(simple_path(8))
        assert long.E_request(10_000).as_joules > \
            short.E_request(10_000).as_joules
        assert long.T_one_way() > short.T_one_way()

    def test_unknown_hop_rejected(self):
        interface = PathEnergyInterface(simple_path(2))
        with pytest.raises(WorkloadError):
            interface.E_hop(5, 100)
