"""End-to-end tests for the multi-replica gateway fleet."""

import dataclasses

import pytest

from repro.core.errors import BudgetError, ServingError
from repro.core.policy import Policy
from repro.faults import FaultPlan, FaultSpec
from repro.fleet import (
    EnergyGatewayFleet,
    FleetReport,
    LatencyHistogram,
    WorkCostModel,
    format_fleet_report,
)
from repro.sim.rng import RngFactory
from repro.workloads import (
    fleet_request_trace,
    poisson_arrivals,
    zipf_tenant_trace,
)

BUDGETS = {"t0": "5J+2W", "t1": "3J+1W", "t2": "2J+0.5W"}


def make_trace(seed=42, rate=200.0, horizon=20.0, tenants=3):
    rng = RngFactory(seed)
    times = poisson_arrivals(rate, horizon, rng.stream("arrivals"))
    ids = zipf_tenant_trace(len(times), tenants, rng)
    return list(fleet_request_trace(times, ids, rng))


def run_fleet(requests, policy=None, plan=None, budgets=BUDGETS, **kwargs):
    fleet = EnergyGatewayFleet(budgets, policy=policy, **kwargs)
    if plan is not None:
        fleet.inject_faults(plan)
    return fleet.serve(iter(requests))


class TestServe:
    def test_every_request_lands_somewhere(self):
        requests = make_trace()
        report = run_fleet(requests, Policy(replicas=4))
        assert report.offered == len(requests)
        assert (report.admitted + report.rejected + report.shed_crash
                + report.shed_no_replica == report.offered)
        assert report.violations == {}
        assert report.goodput_per_j > 0
        assert sum(report.dispatch_counts) \
            == report.offered - report.shed_no_replica

    def test_policy_knobs_are_honoured(self):
        report = run_fleet(make_trace(),
                           Policy(replicas=6, balancer="round-robin",
                                  lease_ttl_s=2.5))
        assert report.n_replicas == 6
        assert report.balancer == "round-robin"
        assert len(report.replica_reports) == 6
        # Round-robin spreads the load almost perfectly evenly.
        counts = report.dispatch_counts
        assert max(counts) - min(counts) <= 1

    def test_per_replica_reports_sum_to_fleet(self):
        report = run_fleet(make_trace(), Policy(replicas=4))
        assert sum(r.admitted for r in report.replica_reports) \
            == report.admitted
        assert sum(r.ledger_joules for r in report.replica_reports) \
            == pytest.approx(report.measured_joules)

    def test_starved_budget_rejects_but_never_violates(self):
        tight = {"t0": "0.1J+0.02W", "t1": "0.1J+0.02W",
                 "t2": "0.1J+0.02W"}
        report = run_fleet(make_trace(), Policy(replicas=4), budgets=tight)
        assert report.rejected > 0
        assert report.violations == {}
        assert report.measured_joules <= report.allowance_joules + 1e-9

    def test_backpressure_engages_on_tiny_queues(self):
        report = run_fleet(make_trace(rate=500.0, horizon=5.0),
                           Policy(replicas=2), queue_limit=4)
        assert report.backpressure_waits > 0
        assert report.offered == report.admitted + report.rejected

    def test_unknown_tenant_index_raises(self):
        requests = make_trace(tenants=3)
        with pytest.raises(BudgetError):
            run_fleet(requests, budgets={"only": "5J+2W"})

    def test_invalid_policy_knobs(self):
        with pytest.raises(ServingError):
            Policy(replicas=0)
        with pytest.raises(ServingError):
            Policy(lease_ttl_s=0.0)
        with pytest.raises(ServingError):
            EnergyGatewayFleet(BUDGETS, policy=Policy(balancer="nope"))
        with pytest.raises(BudgetError):
            EnergyGatewayFleet({})

    def test_report_renders_and_serialises(self):
        report = run_fleet(make_trace(rate=50.0, horizon=5.0))
        text = format_fleet_report(report)
        assert "goodput / J" in text
        rebuilt = report.to_dict()
        assert rebuilt["offered"] == report.offered
        assert isinstance(report.to_json(), str)


class TestDeterminism:
    def test_same_seed_same_report(self):
        requests = make_trace(seed=11)
        policy = Policy(replicas=4, balancer="power-of-two")
        first = run_fleet(requests, policy, entropy=11)
        second = run_fleet(requests, policy, entropy=11)
        assert first == second
        assert first.digest() == second.digest()

    def test_different_entropy_differs(self):
        requests = make_trace(seed=11)
        policy = Policy(replicas=4, balancer="power-of-two")
        first = run_fleet(requests, policy, entropy=11)
        second = run_fleet(requests, policy, entropy=12)
        # Different balancer sampling must show up somewhere.
        assert first.dispatch_counts != second.dispatch_counts

    def test_identical_under_fault_plan(self):
        requests = make_trace(seed=5, rate=400.0, horizon=15.0)
        policy = Policy(replicas=4, lease_ttl_s=1.0)

        def run():
            plan = FaultPlan((FaultSpec("fleet.replica", 0.3),
                              FaultSpec("fleet.lease", 0.2)), entropy=5)
            return run_fleet(requests, policy, plan=plan,
                             crash_check_every=256)

        first, second = run(), run()
        assert first.replica_crashes > 0
        assert first.lease_renewal_faults > 0
        assert first.shed_crash > 0
        assert first.digest() == second.digest()
        # The invariant holds even while replicas crash and leases fail.
        assert first.violations == {}

    def test_all_balancers_replay(self):
        requests = make_trace(seed=3, rate=100.0, horizon=10.0)
        for name in ("round-robin", "least-energy", "power-of-two"):
            policy = Policy(replicas=3, balancer=name)
            assert run_fleet(requests, policy).digest() \
                == run_fleet(requests, policy).digest()


class TestFaults:
    def test_crashes_drain_to_other_replicas(self):
        requests = make_trace(seed=8, rate=300.0, horizon=10.0)
        plan = FaultPlan((FaultSpec("fleet.replica", 0.2),), entropy=8)
        report = run_fleet(requests, Policy(replicas=4), plan=plan,
                           crash_check_every=128, crash_downtime_s=0.5)
        assert report.replica_crashes > 0
        assert report.shed_crash > 0
        # The fleet keeps serving: crashes shed queues, not the run.
        assert report.admitted > 0.5 * report.offered
        assert (report.admitted + report.rejected + report.shed_crash
                + report.shed_no_replica == report.offered)
        assert report.violations == {}

    def test_lease_faults_only_reject(self):
        requests = make_trace(seed=9, rate=300.0, horizon=10.0)
        plan = FaultPlan((FaultSpec("fleet.lease", 0.5),), entropy=9)
        report = run_fleet(requests, Policy(replicas=4, lease_ttl_s=0.5),
                           plan=plan)
        assert report.lease_renewal_faults > 0
        assert report.replica_crashes == 0
        assert report.violations == {}

    def test_uniform_plan_excludes_fleet_sites(self):
        # FaultPlan.uniform keeps its historical meaning ("evaluations
        # fail"): the fleet control-plane sites must be opted into.
        plan = FaultPlan.uniform(0.5)
        sites = {spec.site for spec in plan.specs}
        assert "fleet.replica" not in sites
        assert "fleet.lease" not in sites


class TestCostModel:
    def test_measured_never_exceeds_worst(self):
        model = WorkCostModel(base_j=0.01, worst_factor=1.5, spread=0.25)
        for request in make_trace(rate=50.0, horizon=5.0):
            expected, worst = model.predict(request)
            measured = model.measure(request)
            assert 0.0 < measured <= worst
            assert expected <= worst

    def test_spread_must_fit_inside_worst(self):
        with pytest.raises(ServingError):
            WorkCostModel(worst_factor=1.2, spread=0.5)
        with pytest.raises(ServingError):
            WorkCostModel(base_j=0.0)


class TestLatencyHistogram:
    def test_percentiles_track_samples(self):
        hist = LatencyHistogram()
        for ms in range(1, 101):
            hist.add(ms / 1000.0)
        p50 = hist.percentile(50.0)
        p99 = hist.percentile(99.0)
        assert 0.03 <= p50 <= 0.07
        assert p99 >= 0.08
        assert hist.percentile(50.0) == p50  # read-out is pure

    def test_empty_is_none_and_merge_adds(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        assert a.percentile(50.0) is None
        b.add(0.01)
        a.merge(b)
        assert a.n == 1
        assert a.percentile(50.0) == pytest.approx(0.01, rel=0.2)


def test_fleet_report_is_frozen():
    report = FleetReport(
        horizon_s=1.0, n_replicas=1, balancer="round-robin", offered=0,
        admitted=0, rejected=0, shed_crash=0, shed_no_replica=0,
        backpressure_waits=0, measured_joules=0.0, predicted_joules=0.0,
        allowance_joules=1.0, p50_latency_s=None, p99_latency_s=None)
    with pytest.raises(dataclasses.FrozenInstanceError):
        report.offered = 1
    assert report.goodput == 1.0
    assert report.within_budget
