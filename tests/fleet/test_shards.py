"""Tests for the lease coordinator and budget shards."""

import pytest

from repro.core.errors import BudgetError
from repro.fleet.shards import BudgetShard, Lease, LeaseCoordinator
from repro.serving.budget import BudgetSpec


def make_coordinator(capacity=10.0, refill=1.0, tenant="t"):
    return LeaseCoordinator({tenant: BudgetSpec(capacity, refill)})


class TestLeaseCoordinator:
    def test_allowance_integrates_refill(self):
        coord = make_coordinator(10.0, 2.0)
        assert coord.allowance("t", 0.0) == 10.0
        assert coord.allowance("t", 5.0) == 20.0

    def test_grants_never_exceed_allowance(self):
        coord = make_coordinator(10.0, 0.0)
        first = coord.request_lease("t", 8.0, ttl_s=5.0, now=0.0)
        assert first is not None and first.granted_j == 8.0
        second = coord.request_lease("t", 8.0, ttl_s=5.0, now=0.0)
        assert second is not None and second.granted_j == pytest.approx(2.0)
        third = coord.request_lease("t", 8.0, ttl_s=5.0, now=0.0)
        assert third is None
        assert coord.denials == 1

    def test_refill_reopens_headroom(self):
        coord = make_coordinator(10.0, 1.0)
        assert coord.request_lease("t", 10.0, 5.0, now=0.0) is not None
        assert coord.request_lease("t", 10.0, 5.0, now=0.0) is None
        later = coord.request_lease("t", 10.0, 5.0, now=4.0)
        assert later is not None
        assert later.granted_j == pytest.approx(4.0)

    def test_returns_reclaim_grants(self):
        coord = make_coordinator(10.0, 0.0)
        lease = coord.request_lease("t", 10.0, 5.0, now=0.0)
        assert lease is not None
        assert coord.request_lease("t", 1.0, 5.0, now=0.0) is None
        renewed = coord.request_lease("t", 6.0, 5.0, now=0.0,
                                      returned_j=10.0, drawn_j=0.0)
        assert renewed is not None and renewed.granted_j == 6.0

    def test_clock_is_monotone(self):
        coord = make_coordinator(5.0, 1.0)
        coord.request_lease("t", 1.0, 5.0, now=10.0)
        # Gossip arriving "from the past" cannot rewind the integral.
        assert coord.allowance("t", 0.0) == 5.0
        coord._sync(0.0)
        assert coord._now == 10.0

    def test_violations_detect_overdraw(self):
        coord = make_coordinator(5.0, 0.0)
        coord.settle("t", returned_j=0.0, drawn_j=7.0, now=0.0)
        violations = coord.violations(0.0)
        assert violations == {"t": pytest.approx(2.0)}

    def test_unknown_tenant_and_bad_args(self):
        coord = make_coordinator()
        with pytest.raises(BudgetError):
            coord.spec_for("nobody")
        with pytest.raises(BudgetError):
            coord.request_lease("t", 0.0, 5.0, now=0.0)
        with pytest.raises(BudgetError):
            coord.settle("t", returned_j=-1.0, drawn_j=0.0, now=0.0)
        with pytest.raises(BudgetError):
            coord.add_tenant("t", BudgetSpec(1.0, 0.0))


class TestBudgetShard:
    def test_local_admission_within_lease(self):
        coord = make_coordinator(10.0, 0.0)
        shard = BudgetShard("t", coord, chunk_j=4.0, ttl_s=100.0)
        assert shard.ensure_lease(1.0, now=0.0)
        grants_after_first = coord.grants
        # Admissions inside the lease touch no coordinator state.
        assert shard.can_admit(1.0, now=0.0)
        shard.draw(0.5, now=0.0)
        assert shard.can_admit(1.0, now=1.0)
        shard.draw(0.5, now=1.0)
        assert coord.grants == grants_after_first

    def test_expired_lease_triggers_renewal(self):
        coord = make_coordinator(10.0, 0.0)
        shard = BudgetShard("t", coord, chunk_j=4.0, ttl_s=2.0)
        assert shard.ensure_lease(1.0, now=0.0)
        assert not shard.can_admit(1.0, now=3.0)   # lease died at t=2
        assert shard.needs_renewal(1.0, now=3.0)
        assert shard.ensure_lease(1.0, now=3.0)
        assert shard.expiries == 1
        assert shard.can_admit(1.0, now=3.0)

    def test_renewal_fault_is_conservative(self):
        coord = make_coordinator(10.0, 0.0)
        shard = BudgetShard("t", coord, chunk_j=2.0, ttl_s=100.0)
        assert shard.ensure_lease(1.0, now=0.0)
        shard.draw(1.5, now=0.0)
        # The lease (0.5 J left) cannot cover 1 J and the renewal round
        # is lost: the shard must reject, not overdraw.
        assert not shard.ensure_lease(1.0, now=1.0, renewal_allowed=False)
        assert shard.renewal_failures == 1
        # But the live remainder is still spendable for smaller work.
        assert shard.can_admit(0.4, now=1.0)

    def test_draw_without_lease_raises(self):
        coord = make_coordinator()
        shard = BudgetShard("t", coord, chunk_j=1.0, ttl_s=1.0)
        with pytest.raises(BudgetError):
            shard.draw(0.1, now=0.0)

    def test_flush_returns_unused_and_reports_draws(self):
        coord = make_coordinator(10.0, 0.0)
        shard = BudgetShard("t", coord, chunk_j=6.0, ttl_s=100.0)
        assert shard.ensure_lease(1.0, now=0.0)
        shard.draw(2.0, now=0.0)
        shard.flush(now=1.0)
        assert coord.drawn("t") == pytest.approx(2.0)
        assert coord.granted("t") == pytest.approx(2.0)
        assert coord.returns_j == pytest.approx(4.0)
        assert coord.violations(1.0) == {}

    def test_invariant_under_many_shards(self):
        # Several shards hammering one tenant can never overdraw it.
        coord = make_coordinator(capacity=5.0, refill=0.5)
        shards = [BudgetShard("t", coord, chunk_j=1.0, ttl_s=2.0)
                  for _ in range(4)]
        drawn = 0.0
        for step in range(200):
            now = step * 0.1
            shard = shards[step % 4]
            worst = 0.3
            if shard.needs_renewal(worst, now):
                shard.ensure_lease(worst, now)
            if shard.can_admit(worst, now):
                shard.draw(worst, now)
                drawn += worst
        for shard in shards:
            shard.flush(now=20.0)
        assert coord.violations(20.0) == {}
        assert drawn <= coord.allowance("t", 20.0) + 1e-9
        assert coord.drawn("t") == pytest.approx(drawn)

    def test_lease_dataclass(self):
        lease = Lease(granted_j=2.0, expires_s=5.0)
        assert lease.remaining_j == 2.0
        assert lease.live(4.9) and not lease.live(5.0)
