"""Tests for the fleet load balancers."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.errors import ServingError
from repro.fleet.balancer import (
    BALANCERS,
    LeastEnergyBalancer,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
    build_balancer,
)


@dataclass
class FakeReplica:
    index: int
    inflight: float = 0.0
    depth: int = 0
    up: bool = True

    def accepting(self, now: float) -> bool:
        return self.up

    @property
    def queue_depth(self) -> int:
        return self.depth

    @property
    def inflight_j(self) -> float:
        return self.inflight


def make_replicas(*inflight):
    return [FakeReplica(i, j) for i, j in enumerate(inflight)]


class TestRoundRobin:
    def test_rotates(self):
        replicas = make_replicas(0, 0, 0)
        balancer = RoundRobinBalancer()
        firsts = [balancer.prefer(replicas, 0.0)[0].index for _ in range(6)]
        assert firsts == [0, 1, 2, 0, 1, 2]

    def test_skips_down_replicas(self):
        replicas = make_replicas(0, 0, 0)
        replicas[1].up = False
        balancer = RoundRobinBalancer()
        firsts = {balancer.prefer(replicas, 0.0)[0].index for _ in range(4)}
        assert 1 not in firsts

    def test_returns_full_preference_order(self):
        replicas = make_replicas(0, 0, 0)
        order = RoundRobinBalancer().prefer(replicas, 0.0)
        assert [r.index for r in order] == [0, 1, 2]


class TestLeastEnergy:
    def test_prefers_least_inflight(self):
        replicas = make_replicas(5.0, 1.0, 3.0)
        order = LeastEnergyBalancer().prefer(replicas, 0.0)
        assert [r.index for r in order] == [1, 2, 0]

    def test_ties_break_on_depth_then_index(self):
        replicas = make_replicas(1.0, 1.0, 1.0)
        replicas[0].depth = 7
        order = LeastEnergyBalancer().prefer(replicas, 0.0)
        assert [r.index for r in order] == [1, 2, 0]

    def test_empty_when_all_down(self):
        replicas = make_replicas(0, 0)
        for r in replicas:
            r.up = False
        assert LeastEnergyBalancer().prefer(replicas, 0.0) == []


class TestPowerOfTwo:
    def test_picks_lighter_of_two_probes(self):
        replicas = make_replicas(0.0, 10.0, 20.0, 30.0)
        balancer = PowerOfTwoBalancer(np.random.default_rng(0))
        for _ in range(50):
            order = balancer.prefer(replicas, 0.0)
            assert order[0].inflight_j <= order[1].inflight_j
            assert len(order) == 4

    def test_seeded_stream_replays(self):
        replicas = make_replicas(1.0, 2.0, 3.0, 4.0, 5.0)
        a = PowerOfTwoBalancer(np.random.default_rng(3))
        b = PowerOfTwoBalancer(np.random.default_rng(3))
        for _ in range(20):
            assert [r.index for r in a.prefer(replicas, 0.0)] \
                == [r.index for r in b.prefer(replicas, 0.0)]

    def test_two_or_fewer_replicas_skip_sampling(self):
        replicas = make_replicas(4.0, 2.0)
        order = PowerOfTwoBalancer(np.random.default_rng(1)) \
            .prefer(replicas, 0.0)
        assert [r.index for r in order] == [1, 0]


class TestRegistry:
    def test_known_names(self):
        assert set(BALANCERS) == {"round-robin", "least-energy",
                                  "power-of-two"}
        for name in BALANCERS:
            assert build_balancer(name, 0).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ServingError):
            build_balancer("random", 0)
