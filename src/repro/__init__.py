"""repro — energy interfaces for energy clarity.

A comprehensive reproduction of *The Case for Energy Clarity* (Chung, Kuo,
Candea — HotOS 2025).  The package implements the paper's proposal —
**energy interfaces**: executable programs that predict a module's energy
consumption, composed across the layers of a system stack — together with
every substrate the paper's argument and evaluation rely on, simulated in
pure Python:

* :mod:`repro.core` — the energy-interface framework (units, random
  ECVs, evaluation modes, composition, contracts).
* :mod:`repro.sim` — a discrete-event simulation kernel.
* :mod:`repro.hardware` — simulated CPUs (big.LITTLE + DVFS), GPUs
  (counter-level, two device profiles), DRAM, NIC and thermals.
* :mod:`repro.measurement` — NVML-like and RAPL-like measurement
  channels plus microbenchmark calibration.
* :mod:`repro.llm` — a kernel-level GPT-2 inference simulator (the §5
  experiment workload).
* :mod:`repro.analysis` — the implementation→interface toolchain
  (symbolic execution, extraction, side effects, energy-bug detection).
* :mod:`repro.managers` — resource managers: EAS-like and
  interface-driven schedulers, a cluster scheduler, a cache manager.
* :mod:`repro.apps` / :mod:`repro.workloads` — the applications and
  workloads used by the paper's motivation and our benchmarks.

Quickstart::

    from repro.core import EnergyInterface, BernoulliECV, Energy

    class CacheInterface(EnergyInterface):
        def __init__(self):
            super().__init__("cache")
            self.declare_ecv(BernoulliECV("hit", p=0.9))

        def E_lookup(self, response_len):
            per_byte = 5 if self.ecv("hit") else 100
            return Energy.millijoules(per_byte * response_len)

    iface = CacheInterface()
    print(iface.expected("E_lookup", 1024))      # mean over ECVs
    print(iface.worst_case("E_lookup", 1024))    # contract bound
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
