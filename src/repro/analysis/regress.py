"""``repro-energy regress``: differential energy lint over fingerprints.

"Systematic Detection of Energy Regression and Corresponding Code
Patterns in Java Projects" shows that most energy regressions are
*differential* phenomena — a change makes an interface more expensive
without tripping any point-in-time rule — and that they map to a small
catalog of code patterns.  This module is that catalog, statically, at
design time (EnCoDe's argument): it diffs two
:class:`~repro.analysis.fingerprint.FingerprintSet` snapshots and
classifies every semantic change against six regression-pattern rules:

========  ========================================================
``EB201``  worst-case energy grew beyond a configurable tolerance
           (function-level, or on a condition-matched path)
``EB202``  new path with unbounded energy, or the energy is no
           longer statically summarisable at all
``EB203``  a branch or trip count newly depends on a secret
``EB204``  a device newly ends in different states on different
           paths (the radio-left-on bug, introduced by the diff)
``EB205``  a new branch on a resource result the interface does
           not expose as an ECV
``EB206``  the spec was loosened (slack raised, bound rewritten,
           input box changed) in the same change that grew the
           worst case — a contract weakened to mask a regression
========  ========================================================

Findings are ordinary :class:`~repro.analysis.lint.Finding` values, so
the text/JSON/SARIF renderers and the 0/1/2 exit convention are shared
with ``repro-energy lint``.

:func:`bisect_range` closes the loop with history: given ``GOOD..BAD``,
it re-derives fingerprints per commit in a detached git worktree (a
subprocess per checkout, so the analysed code is exactly that commit's)
and binary-searches for the first commit whose fingerprints regress
against ``GOOD``'s.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.fingerprint import (
    FingerprintSet,
    InterfaceFingerprint,
)
from repro.analysis.lint import RULES, Finding, render_text
from repro.core.errors import RegressError

__all__ = ["DEFAULT_TOLERANCE", "diff_fingerprints", "render_regress_text",
           "BisectStep", "BisectResult", "fingerprint_at_commit",
           "bisect_range"]

#: Fractional worst-case growth tolerated before EB201 fires.
DEFAULT_TOLERANCE = 0.05

_INF = float("inf")

#: Relative growth below which two worst cases count as equal (guards
#: float noise in re-derived fingerprints, not a policy knob).
_GROWTH_EPSILON = 1e-9


def _finding(rule: str, message: str,
             fingerprint: InterfaceFingerprint) -> Finding:
    return Finding(rule=rule, severity=RULES[rule].severity, message=message,
                   module=fingerprint.module, function=fingerprint.function,
                   file=fingerprint.file, line=fingerprint.line)


def _grew(old: float, new: float, tolerance: float) -> bool:
    """Did ``new`` exceed ``old`` by more than the tolerance?"""
    if not (old < _INF and new < _INF):
        return False
    return new > old * (1.0 + tolerance) + _GROWTH_EPSILON * max(old, 1.0)


def _growth_pct(old: float, new: float) -> str:
    if old <= 0.0:
        return "from zero"
    return f"+{100.0 * (new / old - 1.0):.1f}%"


def _worst_growth(old: InterfaceFingerprint, new: InterfaceFingerprint,
                  profiles: Iterable[str],
                  tolerance: float) -> tuple[str, float, float] | None:
    """The profile with the largest over-tolerance worst-case growth."""
    worst: tuple[str, float, float] | None = None
    for profile in profiles:
        old_wc, new_wc = old.worst_case(profile), new.worst_case(profile)
        if not _grew(old_wc, new_wc, tolerance):
            continue
        if worst is None or new_wc - old_wc > worst[2] - worst[1]:
            worst = (profile, old_wc, new_wc)
    return worst


def _check_worst_case(old: InterfaceFingerprint, new: InterfaceFingerprint,
                      profiles: Sequence[str], tolerance: float,
                      emit) -> None:
    """EB201: function-level first, condition-matched paths otherwise."""
    growth = _worst_growth(old, new, profiles, tolerance)
    if growth is not None:
        profile, old_wc, new_wc = growth
        emit("EB201", new,
             f"worst-case energy grew {old_wc:.6g} J -> {new_wc:.6g} J "
             f"({_growth_pct(old_wc, new_wc)}) on device profile "
             f"{profile!r}, beyond the {100.0 * tolerance:g}% tolerance")
        return
    # A path can regress while a costlier sibling still dominates the
    # function-level worst case; match paths by their condition text.
    old_by_condition: dict[str, float] = {}
    for path in old.paths:
        hi = path.worst_case[profiles[0]][1]
        old_by_condition[path.condition] = max(
            old_by_condition.get(path.condition, 0.0), hi)
    for path in new.paths:
        old_hi = old_by_condition.get(path.condition)
        new_hi = path.worst_case[profiles[0]][1]
        if old_hi is not None and _grew(old_hi, new_hi, tolerance):
            emit("EB201", new,
                 f"energy of path [{path.condition}] grew {old_hi:.6g} J "
                 f"-> {new_hi:.6g} J ({_growth_pct(old_hi, new_hi)}) on "
                 f"device profile {profiles[0]!r}, beyond the "
                 f"{100.0 * tolerance:g}% tolerance")
            return


def _check_unbounded(old: InterfaceFingerprint | None,
                     new: InterfaceFingerprint, emit) -> None:
    """EB202: unbounded paths or summarisation failures the diff added."""
    if new.error is not None:
        if old is None or old.error is None:
            emit("EB202", new,
                 f"energy is no longer statically summarisable "
                 f"({new.error}); the regression gate cannot bound what "
                 f"the analysis cannot summarise")
        return
    old_unbounded = 0 if old is None or old.error is not None \
        else old.unbounded_paths
    if new.unbounded_paths > old_unbounded:
        emit("EB202", new,
             f"{new.unbounded_paths - old_unbounded} new path(s) with "
             f"unbounded worst-case energy and no covering bound "
             f"contract (was {old_unbounded}, now {new.unbounded_paths})")


def _check_taint(old: InterfaceFingerprint, new: InterfaceFingerprint,
                 emit) -> None:
    """EB203: control flow newly steered by secrets."""
    if new.tainted_branches > old.tainted_branches:
        emit("EB203", new,
             f"{new.tainted_branches - old.tainted_branches} branch(es) or "
             f"trip count(s) newly depend on secret parameter(s) "
             f"{', '.join(new.secret_params)} (was "
             f"{old.tainted_branches}, now {new.tainted_branches})")


def _check_state_leaks(old: InterfaceFingerprint, new: InterfaceFingerprint,
                       emit) -> None:
    """EB204: devices that started leaking state across paths."""
    newly = sorted(set(new.leaky_states) - set(old.leaky_states))
    if newly:
        detail = "; ".join(
            f"{resource!r} now ends in "
            f"{', '.join(repr(s) for s in new.leaky_states[resource])}"
            for resource in newly)
        emit("EB204", new,
             f"device state newly leaked on some but not all paths: "
             f"{detail} — callers after this change are charged "
             f"inconsistently")


def _check_undeclared_ecvs(old: InterfaceFingerprint,
                           new: InterfaceFingerprint, emit) -> None:
    """EB205: fresh dependence on resource results not exposed as ECVs."""
    newly = sorted(set(new.undeclared_ecvs) - set(old.undeclared_ecvs))
    if newly:
        emit("EB205", new,
             f"the implementation newly branches on {', '.join(newly)} "
             f"without exposing the result as an ECV; the extracted and "
             f"handwritten interfaces can no longer agree")


def _spec_loosened(old: InterfaceFingerprint,
                   new: InterfaceFingerprint) -> list[str]:
    """Human-readable list of contract-weakening spec edits."""
    loosened: list[str] = []
    if new.slack > old.slack:
        loosened.append(f"slack raised {old.slack:g} -> {new.slack:g}")
    if old.bound is not None and new.bound != old.bound:
        loosened.append(f"bound contract rewritten from {old.bound} to "
                        f"{new.bound if new.bound is not None else 'none'}")
    for name, bounds in new.input_bounds.items():
        old_bounds = old.input_bounds.get(name)
        if old_bounds is not None and bounds != old_bounds:
            loosened.append(
                f"input bounds of {name!r} changed "
                f"{list(old_bounds)} -> {list(bounds)}")
    return loosened


def _check_masking(old: InterfaceFingerprint, new: InterfaceFingerprint,
                   profiles: Sequence[str], emit) -> None:
    """EB206: the spec moved and the worst case grew in the same diff."""
    loosened = _spec_loosened(old, new)
    if not loosened:
        return
    for profile in profiles:
        old_wc, new_wc = old.worst_case(profile), new.worst_case(profile)
        if _grew(old_wc, new_wc, 0.0):
            emit("EB206", new,
                 f"spec loosened ({'; '.join(loosened)}) in the same "
                 f"change that grew worst-case energy {old_wc:.6g} J -> "
                 f"{new_wc:.6g} J on device profile {profile!r} — review "
                 f"whether the contract was weakened to mask a regression")
            return


def diff_fingerprints(old: FingerprintSet, new: FingerprintSet, *,
                      tolerance: float = DEFAULT_TOLERANCE) -> list[Finding]:
    """Classify every semantic change from ``old`` to ``new``.

    Returns findings sorted by (module tail, function, rule) so two runs
    over the same sets render byte-identically.  Interfaces present only
    in ``old`` (deleted code) are not regressions; interfaces present
    only in ``new`` are checked for unbounded energy (EB202) but are
    otherwise the point-in-time linter's job.
    """
    if tolerance < 0:
        raise RegressError(f"tolerance must be >= 0, got {tolerance}")
    profiles = sorted(set(old.profiles) & set(new.profiles))
    if not profiles:
        raise RegressError(
            "the two fingerprint sets share no device profile; regenerate "
            "the baseline with repro-energy regress --write-baseline")
    findings: list[Finding] = []

    def emit(rule: str, fingerprint: InterfaceFingerprint,
             message: str) -> None:
        findings.append(_finding(rule, message, fingerprint))

    for key in sorted(new.interfaces):
        new_fp = new.interfaces[key]
        old_fp = old.interfaces.get(key)
        if old_fp is None:
            _check_unbounded(None, new_fp, emit)
            continue
        _check_unbounded(old_fp, new_fp, emit)
        if old_fp.error is None and new_fp.error is None:
            _check_worst_case(old_fp, new_fp, profiles, tolerance, emit)
            _check_masking(old_fp, new_fp, profiles, emit)
        _check_taint(old_fp, new_fp, emit)
        _check_state_leaks(old_fp, new_fp, emit)
        _check_undeclared_ecvs(old_fp, new_fp, emit)

    findings.sort(key=lambda f: (f.fingerprint(), f.message))
    return findings


def render_regress_text(findings: Sequence[Finding], compared: int,
                        suppressed: int = 0) -> str:
    """Text report on the shared lint format, regress-labelled."""
    return render_text(findings, compared, suppressed,
                       tool="repro-energy regress",
                       noun="interface(s) compared")


# -- commit bisection -------------------------------------------------------

@dataclass(frozen=True)
class BisectStep:
    """One probe of the binary search."""

    commit: str
    bad: bool
    findings: int


@dataclass
class BisectResult:
    """Outcome of :func:`bisect_range`."""

    first_bad: str | None
    steps: list[BisectStep] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.first_bad is None


def _git(repo: Path, *args: str) -> str:
    result = subprocess.run(["git", "-C", str(repo), *args],
                            capture_output=True, text=True)
    if result.returncode != 0:
        raise RegressError(
            f"git {' '.join(args)} failed: {result.stderr.strip()}")
    return result.stdout


def _child_env() -> dict[str, str]:
    """Subprocess env with the *running* repro package importable.

    The analysed worktree contains only the target modules of that
    commit; the toolchain itself always comes from the current checkout,
    so every commit in the range is judged by the same rules.
    """
    import repro

    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_dir if not existing
                         else os.pathsep.join([src_dir, existing]))
    return env


def fingerprint_at_commit(repo: Path, commit: str, targets: Sequence[str],
                          python: str = sys.executable) -> FingerprintSet:
    """Re-derive fingerprints for ``targets`` as of ``commit``.

    Checks the commit out into a temporary detached git worktree and
    runs ``repro-energy regress --write-baseline`` there in a
    subprocess, so the analysed source is exactly that commit's.
    ``targets`` are repo-relative lint targets (files or directories).
    """
    repo = Path(repo)
    with tempfile.TemporaryDirectory(prefix="repro-regress-") as scratch:
        worktree = Path(scratch) / "worktree"
        _git(repo, "worktree", "add", "--detach", "--force",
             str(worktree), commit)
        try:
            resolved = []
            for target in targets:
                candidate = worktree / target
                if not candidate.exists():
                    raise RegressError(
                        f"target {target!r} does not exist at commit "
                        f"{commit[:12]}")
                resolved.append(str(candidate))
            out = Path(scratch) / "fingerprints.json"
            command = [python, "-m", "repro.cli", "regress", *resolved,
                       "--write-baseline", "--baseline", str(out)]
            result = subprocess.run(command, capture_output=True, text=True,
                                    env=_child_env(), cwd=str(worktree))
            if result.returncode != 0:
                raise RegressError(
                    f"fingerprinting commit {commit[:12]} failed "
                    f"(exit {result.returncode}): "
                    f"{result.stderr.strip() or result.stdout.strip()}")
            return FingerprintSet.from_json(out.read_text(encoding="utf-8"))
        finally:
            subprocess.run(["git", "-C", str(repo), "worktree", "remove",
                            "--force", str(worktree)],
                           capture_output=True, text=True)


def bisect_range(repo: Path, range_spec: str, targets: Sequence[str], *,
                 tolerance: float = DEFAULT_TOLERANCE,
                 select: Iterable[str] | None = None,
                 ignore: Iterable[str] | None = None,
                 python: str = sys.executable,
                 log=None) -> BisectResult:
    """Binary-search ``GOOD..BAD`` for the first regressing commit.

    A commit is *bad* when diffing its fingerprints against ``GOOD``'s
    yields any finding (after ``select``/``ignore`` filtering).  Assumes
    the usual bisection monotonicity: once the regression is in, it
    stays in.  Returns the first bad commit hash, the probes taken, and
    the findings at that commit.
    """
    repo = Path(repo)
    if ".." not in range_spec:
        raise RegressError(
            f"--bisect expects a GOOD..BAD commit range, got {range_spec!r}")
    good, bad = range_spec.split("..", 1)
    good, bad = good.strip(), bad.strip()
    if not good or not bad:
        raise RegressError(
            f"--bisect expects a GOOD..BAD commit range, got {range_spec!r}")
    commits = _git(repo, "rev-list", "--reverse", "--first-parent",
                   f"{good}..{bad}").split()
    if not commits:
        raise RegressError(
            f"no commits in range {range_spec!r}; is GOOD an ancestor "
            f"of BAD?")

    select_set = set(select or [])
    ignore_set = set(ignore or [])
    baseline = fingerprint_at_commit(repo, good, targets, python=python)
    result = BisectResult(first_bad=None)
    cache: dict[str, list[Finding]] = {}

    def findings_at(commit: str) -> list[Finding]:
        if commit not in cache:
            current = fingerprint_at_commit(repo, commit, targets,
                                            python=python)
            found = diff_fingerprints(baseline, current,
                                      tolerance=tolerance)
            if select_set:
                found = [f for f in found if f.rule in select_set]
            if ignore_set:
                found = [f for f in found if f.rule not in ignore_set]
            cache[commit] = found
            result.steps.append(BisectStep(commit, bool(found), len(found)))
            if log is not None:
                status = (f"bad ({len(found)} finding(s))" if found
                          else "good")
                log(f"  {commit[:12]} {status}")
        return cache[commit]

    if not findings_at(commits[-1]):
        return result  # the whole range is clean
    low, high = 0, len(commits) - 1
    while low < high:
        mid = (low + high) // 2
        if findings_at(commits[mid]):
            high = mid
        else:
            low = mid + 1
    result.first_bad = commits[low]
    result.findings = findings_at(commits[low])
    return result
