"""Per-interface energy fingerprints — the regression checker's baseline.

``repro-energy lint`` (:mod:`repro.analysis.lint`) answers "is this
snapshot of the code buggy?"; the §4 divergence-as-energy-bug workflow
also needs the *differential* question: "did this change make an
interface more expensive than the one we shipped?"  Most energy
regressions trip no point-in-time rule — a put that got 3x costlier in
its worst case is still bounded, still leak-free, still covered by a
(loosened) contract.  Catching them requires remembering what the code
used to cost.

A **fingerprint** is that memory: for one ``@energy_spec``-annotated
implementation function, the canonical summary of everything the static
toolchain can prove about its energy —

* per-path worst-case energy, as both the symbolic expression and its
  interval bound under the declared input box, evaluated per **device
  profile** (hardware-relative energy scales derived from
  :mod:`repro.hardware.profiles`);
* the ECV dependencies each path's control flow reads, split into
  declared (``exposed_ecvs``) and undeclared;
* declared side effects and which resources leak state across paths;
* the count of secret-tainted control decisions;
* the proven margin between the worst case and the handwritten bound
  contract (negative margin = statically proven within bound).

Fingerprints serialise to a canonical JSON document
(``.energy-fingerprints.json``): keys sorted, paths sorted by their
rendered condition/energy, byte-identical across runs and machines —
so the baseline can be committed next to ``.energy-lint.baseline`` and
diffed by :mod:`repro.analysis.regress` on every PR.
"""

from __future__ import annotations

import inspect
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.analysis.lint import (
    _bound_expression,
    _interval_env,
    _path_energy,
    _resolve_target,
    undeclared_ecv_calls,
)
from repro.analysis.symbex import ResourceModel, symbolic_execute
from repro.analysis.taint import analyze_taint
from repro.core.contracts import EnergySpec
from repro.analysis.expr import BinOp, Const
from repro.analysis.intervals import bound_expr
from repro.core.errors import LintError, RegressError, SymbolicExecutionError

__all__ = ["FINGERPRINT_SCHEMA_VERSION", "DEVICE_PROFILES",
           "PathFingerprint", "InterfaceFingerprint", "FingerprintSet",
           "fingerprint_function", "fingerprint_paths",
           "load_fingerprints"]

#: Version tag of the ``.energy-fingerprints.json`` schema.
FINGERPRINT_SCHEMA_VERSION = "1"

_INF = float("inf")


def _device_profiles() -> dict[str, float]:
    """Energy scale per device profile, relative to the calibration GPU.

    The per-call costs an :class:`~repro.core.contracts.EnergySpec`
    declares are calibrated against the SIM4090 workstation (Table 1's
    reference device); older silicon pays more Joules per event.  The
    scale is the per-instruction energy ratio from the committed
    hardware profiles, so the fingerprint shows each interface's worst
    case on every device class CI cares about.
    """
    from repro.hardware.profiles import SIM3070, SIM4090

    return {
        "sim4090": 1.0,
        "sim3070": SIM3070.e_instruction / SIM4090.e_instruction,
    }


#: Profile name -> energy scale applied to worst-case intervals.
DEVICE_PROFILES: dict[str, float] = _device_profiles()


def _scale(value: float, factor: float) -> float:
    if math.isinf(value):
        return value
    return value * factor


@dataclass(frozen=True)
class PathFingerprint:
    """Canonical summary of one symbolic path."""

    condition: str
    energy: str
    worst_case: Mapping[str, tuple[float, float]]  # profile -> (lo, hi) J
    ecv_deps: tuple[str, ...]
    final_states: Mapping[str, str]

    def to_dict(self) -> dict[str, Any]:
        return {
            "condition": self.condition,
            "energy": self.energy,
            "worst_case": {profile: list(bounds)
                           for profile, bounds in self.worst_case.items()},
            "ecv_deps": list(self.ecv_deps),
            "final_states": dict(self.final_states),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PathFingerprint":
        return cls(
            condition=data["condition"],
            energy=data["energy"],
            worst_case={profile: (float(lo), float(hi))
                        for profile, (lo, hi)
                        in data["worst_case"].items()},
            ecv_deps=tuple(data["ecv_deps"]),
            final_states=dict(data["final_states"]),
        )


@dataclass(frozen=True)
class InterfaceFingerprint:
    """Everything the regression checker needs to know about one
    interface method at one commit."""

    key: str
    module: str
    function: str
    file: str
    line: int
    paths: tuple[PathFingerprint, ...] = ()
    tainted_branches: int = 0
    constant_energy: bool = False
    secret_params: tuple[str, ...] = ()
    exposed_ecvs: tuple[str, ...] = ()
    undeclared_ecvs: tuple[str, ...] = ()
    declared_states: tuple[str, ...] = ()
    leaky_states: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    input_bounds: Mapping[str, tuple[float, float]] = field(
        default_factory=dict)
    bound: str | None = None
    slack: float = 0.0
    bound_margin: Mapping[str, float] | None = None
    unbounded_paths: int = 0
    error: str | None = None

    def worst_case(self, profile: str) -> float:
        """The interface's worst-case Joules on ``profile`` (may be inf)."""
        if not self.paths:
            return 0.0
        return max(path.worst_case[profile][1] for path in self.paths)

    def to_dict(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "function": self.function,
            "file": self.file,
            "line": self.line,
            "paths": [path.to_dict() for path in self.paths],
            "tainted_branches": self.tainted_branches,
            "constant_energy": self.constant_energy,
            "secret_params": list(self.secret_params),
            "exposed_ecvs": list(self.exposed_ecvs),
            "undeclared_ecvs": list(self.undeclared_ecvs),
            "declared_states": list(self.declared_states),
            "leaky_states": {resource: list(states)
                             for resource, states
                             in self.leaky_states.items()},
            "input_bounds": {name: list(bounds)
                             for name, bounds in self.input_bounds.items()},
            "bound": self.bound,
            "slack": self.slack,
            "bound_margin": (None if self.bound_margin is None
                             else dict(self.bound_margin)),
            "unbounded_paths": self.unbounded_paths,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, key: str,
                  data: Mapping[str, Any]) -> "InterfaceFingerprint":
        return cls(
            key=key,
            module=data["module"],
            function=data["function"],
            file=data["file"],
            line=int(data["line"]),
            paths=tuple(PathFingerprint.from_dict(path)
                        for path in data["paths"]),
            tainted_branches=int(data["tainted_branches"]),
            constant_energy=bool(data["constant_energy"]),
            secret_params=tuple(data["secret_params"]),
            exposed_ecvs=tuple(data["exposed_ecvs"]),
            undeclared_ecvs=tuple(data["undeclared_ecvs"]),
            declared_states=tuple(data["declared_states"]),
            leaky_states={resource: tuple(states)
                          for resource, states
                          in data["leaky_states"].items()},
            input_bounds={name: (float(lo), float(hi))
                          for name, (lo, hi)
                          in data["input_bounds"].items()},
            bound=data["bound"],
            slack=float(data["slack"]),
            bound_margin=(None if data["bound_margin"] is None
                          else {profile: float(margin)
                                for profile, margin
                                in data["bound_margin"].items()}),
            unbounded_paths=int(data["unbounded_paths"]),
            error=data["error"],
        )


@dataclass
class FingerprintSet:
    """All fingerprints of one lint-target set at one commit."""

    interfaces: dict[str, InterfaceFingerprint] = field(default_factory=dict)
    profiles: Mapping[str, float] = field(
        default_factory=lambda: dict(DEVICE_PROFILES))

    def to_json(self) -> str:
        """Canonical serialisation: sorted keys, byte-stable."""
        payload = {
            "tool": "repro-energy regress",
            "schema_version": FINGERPRINT_SCHEMA_VERSION,
            "profiles": dict(self.profiles),
            "interfaces": {key: self.interfaces[key].to_dict()
                           for key in sorted(self.interfaces)},
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, document: str) -> "FingerprintSet":
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise RegressError(f"fingerprint baseline is not valid JSON: "
                               f"{exc}") from exc
        version = payload.get("schema_version")
        if version != FINGERPRINT_SCHEMA_VERSION:
            raise RegressError(
                f"fingerprint baseline has schema version {version!r}, "
                f"this tool reads {FINGERPRINT_SCHEMA_VERSION!r}; "
                f"regenerate with repro-energy regress --write-baseline")
        try:
            interfaces = {
                key: InterfaceFingerprint.from_dict(key, data)
                for key, data in payload["interfaces"].items()}
            profiles = {name: float(scale)
                        for name, scale in payload["profiles"].items()}
        except (KeyError, TypeError, ValueError) as exc:
            raise RegressError(f"malformed fingerprint baseline: "
                               f"{exc!r}") from exc
        return cls(interfaces=interfaces, profiles=profiles)

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")


def load_fingerprints(path: str | Path) -> FingerprintSet:
    """Read a committed ``.energy-fingerprints.json`` baseline."""
    target = Path(path)
    if not target.is_file():
        raise RegressError(
            f"no fingerprint baseline at {target}; create one with "
            f"repro-energy regress <targets> --write-baseline")
    return FingerprintSet.from_json(target.read_text(encoding="utf-8"))


def _normalised_key(module: str, function: str) -> str:
    """``module_tail:function`` — stable across file/dotted targets.

    Mirrors :meth:`repro.analysis.lint.Finding.fingerprint` so the same
    implementation fingerprints identically whether linted as a file
    (loaded under a synthetic ``_energy_lint_*`` name) or as a dotted
    module.
    """
    tail = module.rpartition(".")[2]
    return f"{tail.removeprefix('_energy_lint_')}:{function}"


def _stable_file(fn: Callable) -> tuple[str, int]:
    """Source location with a checkout-independent path when possible."""
    try:
        file = inspect.getsourcefile(fn) or "<unknown>"
        line = inspect.getsourcelines(fn)[1]
    except (OSError, TypeError):
        return "<unknown>", 0
    path = Path(file)
    if path.is_absolute():
        try:
            file = path.relative_to(Path.cwd()).as_posix()
        except ValueError:
            file = path.name
    else:
        file = path.as_posix()
    return file, line


def _path_ecv_deps(path) -> tuple[str, ...]:
    """Sorted origins of the resource results this path branches on."""
    deps: set[str] = set()
    for clause in path.condition:
        for name in clause.free_variables() & set(path.ecvs):
            deps.add(path.ecvs[name][1])
    return tuple(sorted(deps))


def fingerprint_function(fn: Callable, spec: EnergySpec | None = None,
                         module: str | None = None,
                         profiles: Mapping[str, float] | None = None
                         ) -> InterfaceFingerprint:
    """Derive the canonical fingerprint of one annotated implementation."""
    if spec is None:
        spec = getattr(fn, "__energy_spec__", None)
    if spec is None:
        raise LintError(
            f"{fn.__qualname__} carries no EnergySpec; decorate it with "
            f"@energy_spec(...)")
    profiles = dict(profiles or DEVICE_PROFILES)
    module_name = module or fn.__module__
    key = _normalised_key(module_name, fn.__name__)
    file, line = _stable_file(fn)
    declared = {
        "constant_energy": spec.constant_energy,
        "secret_params": tuple(sorted(spec.secret_params)),
        "exposed_ecvs": tuple(sorted(spec.exposed_ecvs)),
        "declared_states": tuple(sorted(
            model.resource for model in spec.state_models)),
        "input_bounds": {name: (float(low), float(high))
                         for name, (low, high)
                         in sorted(spec.input_bounds.items())},
        "slack": float(spec.slack),
    }

    resources = [ResourceModel(name, dict(returning))
                 for name, returning in spec.resources.items()]
    state_models = {model.resource: model for model in spec.state_models}
    try:
        paths = symbolic_execute(fn, resources, helpers=dict(spec.helpers),
                                 state_models=state_models or None)
    except SymbolicExecutionError as exc:
        return InterfaceFingerprint(
            key=key, module=module_name, function=fn.__name__,
            file=file, line=line, error=str(exc), **declared)

    env = _interval_env(spec)
    input_names = [p for p in inspect.signature(fn).parameters][1:]
    bound = None
    bound_render = None
    if spec.bound is not None:
        try:
            bound = _bound_expression(spec, input_names)
            bound_render = bound.render()
        except LintError as exc:
            bound_render = f"<not statically evaluable: {exc}>"

    path_prints: list[PathFingerprint] = []
    unbounded = 0
    margin_hi: float | None = None
    for path in paths:
        energy = _path_energy(path, spec)
        interval = bound_expr(energy, env)
        if interval.hi == _INF and bound is None:
            unbounded += 1
        if bound is not None:
            allowance = BinOp("*", bound, Const(1.0 + spec.slack))
            path_margin = bound_expr(BinOp("-", energy, allowance), env).hi
            margin_hi = (path_margin if margin_hi is None
                         else max(margin_hi, path_margin))
        path_prints.append(PathFingerprint(
            condition=path.condition_text(),
            energy=energy.render(),
            worst_case={profile: (_scale(interval.lo, factor),
                                  _scale(interval.hi, factor))
                        for profile, factor in profiles.items()},
            ecv_deps=_path_ecv_deps(path),
            final_states=dict(sorted(path.final_states.items())),
        ))
    path_prints.sort(key=lambda p: (p.condition, p.energy))

    tainted = (len(analyze_taint(paths, spec.secret_params))
               if spec.secret_params else 0)

    leaky: dict[str, tuple[str, ...]] = {}
    for resource in declared["declared_states"]:
        states = {path.final_states.get(resource, "?") for path in paths}
        if len(states) > 1:
            leaky[resource] = tuple(sorted(states))

    return InterfaceFingerprint(
        key=key, module=module_name, function=fn.__name__,
        file=file, line=line,
        paths=tuple(path_prints),
        tainted_branches=tainted,
        undeclared_ecvs=tuple(undeclared_ecv_calls(paths, spec)),
        leaky_states=leaky,
        bound=bound_render,
        bound_margin=(None if margin_hi is None
                      else {profile: _scale(margin_hi, factor)
                            for profile, factor in profiles.items()}),
        unbounded_paths=unbounded,
        **declared,
    )


def fingerprint_paths(targets: Iterable[str],
                      profiles: Mapping[str, float] | None = None
                      ) -> FingerprintSet:
    """Fingerprint every annotated function under the given targets.

    Targets resolve exactly like ``repro-energy lint``'s: files,
    directories of modules, or dotted module names.
    """
    result = FingerprintSet(profiles=dict(profiles or DEVICE_PROFILES))
    for target in targets:
        for module in _resolve_target(str(target)):
            for name in sorted(vars(module)):
                member = vars(module)[name]
                if (callable(member)
                        and getattr(member, "__energy_spec__", None)
                        is not None
                        and getattr(member, "__module__", None)
                        == module.__name__):
                    print_ = fingerprint_function(
                        member, module=module.__name__,
                        profiles=result.profiles)
                    result.interfaces[print_.key] = print_
    return result
