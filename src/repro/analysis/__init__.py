"""The implementation→interface toolchain: symbolic execution, extraction,
side-effect analysis and energy-bug detection (§4.2) — dynamic
(divergence testing), static (the ``repro-energy lint`` rule engine
over interval, taint and side-effect analyses), and differential (the
``repro-energy regress`` fingerprint baseline, diff rules EB201–EB206
and commit bisection)."""

from repro.analysis.expr import (
    BinOp,
    Compare,
    Const,
    EnergyTerm,
    Expr,
    FreshSymbol,
    UnaryOp,
    Var,
    as_expr,
    evaluate_expr,
)
from repro.analysis.extract import ExtractedInterface, extract_interface
from repro.analysis.fingerprint import (
    DEVICE_PROFILES,
    FingerprintSet,
    InterfaceFingerprint,
    PathFingerprint,
    fingerprint_function,
    fingerprint_paths,
    load_fingerprints,
)
from repro.analysis.intervals import (
    AffineForm,
    Interval,
    bound_expr,
    condition_status,
    linearize,
)
from repro.analysis.lint import (
    LINT_RULE_IDS,
    REGRESS_RULE_IDS,
    RULES,
    Finding,
    Rule,
    lint_function,
    lint_module,
    lint_paths,
)
from repro.analysis.regress import (
    BisectResult,
    BisectStep,
    bisect_range,
    diff_fingerprints,
    fingerprint_at_commit,
)
from repro.analysis.sideeffects import (
    RADIO_MODEL,
    DeviceStateModel,
    ModuleAnalysis,
    analyze_module,
    analyze_sequence,
)
from repro.analysis.symbex import PathSummary, ResourceModel, symbolic_execute
from repro.analysis.taint import TaintedUse, analyze_taint, tainted_symbols
from repro.analysis.verify import DivergenceReport, EnergyBug, divergence_test

__all__ = [
    "Expr", "Const", "Var", "FreshSymbol", "BinOp", "Compare", "UnaryOp",
    "EnergyTerm", "as_expr", "evaluate_expr",
    "ResourceModel", "PathSummary", "symbolic_execute",
    "ExtractedInterface", "extract_interface",
    "DeviceStateModel", "ModuleAnalysis", "analyze_module",
    "analyze_sequence", "RADIO_MODEL",
    "EnergyBug", "DivergenceReport", "divergence_test",
    "Interval", "AffineForm", "bound_expr", "condition_status", "linearize",
    "TaintedUse", "analyze_taint", "tainted_symbols",
    "Rule", "RULES", "LINT_RULE_IDS", "REGRESS_RULE_IDS", "Finding",
    "lint_function", "lint_module", "lint_paths",
    "DEVICE_PROFILES", "PathFingerprint", "InterfaceFingerprint",
    "FingerprintSet", "fingerprint_function", "fingerprint_paths",
    "load_fingerprints",
    "BisectStep", "BisectResult", "diff_fingerprints",
    "fingerprint_at_commit", "bisect_range",
]
