"""The implementation→interface toolchain: symbolic execution, extraction,
side-effect analysis and energy-bug detection (§4.2)."""

from repro.analysis.expr import (
    BinOp,
    Compare,
    Const,
    EnergyTerm,
    Expr,
    FreshSymbol,
    UnaryOp,
    Var,
    as_expr,
    evaluate_expr,
)
from repro.analysis.extract import ExtractedInterface, extract_interface
from repro.analysis.sideeffects import (
    RADIO_MODEL,
    DeviceStateModel,
    ModuleAnalysis,
    analyze_module,
    analyze_sequence,
)
from repro.analysis.symbex import PathSummary, ResourceModel, symbolic_execute
from repro.analysis.verify import DivergenceReport, EnergyBug, divergence_test

__all__ = [
    "Expr", "Const", "Var", "FreshSymbol", "BinOp", "Compare", "UnaryOp",
    "EnergyTerm", "as_expr", "evaluate_expr",
    "ResourceModel", "PathSummary", "symbolic_execute",
    "ExtractedInterface", "extract_interface",
    "DeviceStateModel", "ModuleAnalysis", "analyze_module",
    "analyze_sequence", "RADIO_MODEL",
    "EnergyBug", "DivergenceReport", "divergence_test",
]
