"""Turning symbolic-execution paths into executable energy interfaces.

The output of :func:`repro.analysis.symbex.symbolic_execute` is a list of
paths; :class:`ExtractedInterface` packages them as a *bona fide*
:class:`~repro.core.interface.EnergyInterface`:

* it evaluates against concrete inputs by selecting the matching path and
  summing its energy terms, resolving each term through the energy
  interfaces of the resources the implementation called — composition
  exactly as §3 prescribes;
* fresh symbols (unknown resource-call results) become declared ECVs, so
  the extracted interface plugs into the probabilistic evaluator, the
  contract checkers, and everything else in :mod:`repro.core`;
* :meth:`ExtractedInterface.emit_python` renders the interface back to
  Fig.-1-style Python source for humans.

:func:`extract_interface` is the one-call front end: implementation in,
energy interface out.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.analysis.expr import EnergyTerm, evaluate_expr
from repro.analysis.symbex import PathSummary, ResourceModel, symbolic_execute
from repro.core.ecv import BernoulliECV, ContinuousECV, UniformIntECV
from repro.core.errors import ExtractionError
from repro.core.interface import EnergyInterface
from repro.core.units import Energy, as_joules

__all__ = ["ExtractedInterface", "extract_interface"]


class ExtractedInterface(EnergyInterface):
    """An energy interface recovered from an implementation.

    ``subinterfaces`` maps resource names to the energy interfaces of the
    resources the implementation calls; term ``cache.lookup(n)`` resolves
    to ``subinterfaces["cache"].E_lookup(n)``.

    ECVs discovered during extraction are declared with permissive
    defaults (``Bernoulli(0.5)`` for booleans); callers — typically the
    resource manager, which knows the real distributions — bind them via
    the usual environment mechanism.
    """

    def __init__(self, name: str, input_names: Sequence[str],
                 paths: Sequence[PathSummary],
                 subinterfaces: Mapping[str, EnergyInterface]) -> None:
        super().__init__(name)
        if not paths:
            raise ExtractionError(f"interface {name!r} extracted zero paths")
        self.input_names = list(input_names)
        self.paths = list(paths)
        self.subinterfaces = dict(subinterfaces)
        self._declare_discovered_ecvs()
        self._check_resources_covered()

    # -- construction helpers ------------------------------------------------
    def _declare_discovered_ecvs(self) -> None:
        for path in self.paths:
            for symbol, (kind, origin) in path.ecvs.items():
                if self.declared_ecv(symbol) is not None:
                    continue
                if kind == "bool":
                    self.declare_ecv(BernoulliECV(symbol, p=0.5,
                                                  description=origin))
                elif kind == "int":
                    self.declare_ecv(UniformIntECV(symbol, 0, 1,
                                                   description=origin))
                else:
                    self.declare_ecv(ContinuousECV(symbol, 0.0, 1.0,
                                                   description=origin))

    def _check_resources_covered(self) -> None:
        used = {term.resource for path in self.paths
                for term in path.energy_terms}
        missing = used - set(self.subinterfaces)
        if missing:
            raise ExtractionError(
                f"extracted interface {self.name!r} calls resources with no "
                f"energy interface: {sorted(missing)}")

    # -- evaluation -------------------------------------------------------------
    def _symbol_environment(self, inputs: Mapping[str, Any]) -> dict[str, Any]:
        """Bind inputs plus one ECV read per discovered symbol."""
        env: dict[str, Any] = dict(inputs)
        for path in self.paths:
            for symbol in path.ecvs:
                if symbol not in env:
                    env[symbol] = self.ecv(symbol)
        return env

    def _term_energy(self, term: EnergyTerm, env: Mapping[str, Any]) -> float:
        interface = self.subinterfaces[term.resource]
        method = getattr(interface, f"E_{term.method}", None)
        if method is None:
            raise ExtractionError(
                f"energy interface for resource {term.resource!r} has no "
                f"method E_{term.method}")
        args = [evaluate_expr(argument, env) for argument in term.args]
        multiplier = evaluate_expr(term.multiplier, env)
        return multiplier * as_joules(method(*args))

    def E_call(self, *args: Any, **kwargs: Any) -> Energy:
        """The extracted interface: energy of one call on these inputs."""
        inputs = dict(zip(self.input_names, args))
        inputs.update(kwargs)
        missing = [name for name in self.input_names if name not in inputs]
        if missing:
            raise ExtractionError(f"missing inputs {missing} for {self.name!r}")
        env = self._symbol_environment(inputs)
        for path in self.paths:
            if all(evaluate_expr(clause, env) for clause in path.condition):
                total = sum(self._term_energy(term, env)
                            for term in path.energy_terms)
                return Energy(total)
        raise ExtractionError(
            f"no extracted path matches inputs {inputs!r}; paths should "
            f"partition the input space — this is an extraction bug")

    # -- rendering ----------------------------------------------------------------
    def emit_python(self) -> str:
        """Render the interface as Fig.-1-style Python source."""
        lines = [f"def E_{self.name}({', '.join(self.input_names)}):"]
        declarations = self.ecv_declarations
        for symbol in sorted(declarations):
            description = declarations[symbol].description or "unknown state"
            lines.append(f"    # ECV: {symbol} - {description}")
        for index, path in enumerate(self.paths):
            keyword = "if" if index == 0 else "elif"
            condition = path.condition_text()
            lines.append(f"    {keyword} {condition}:")
            if path.energy_terms:
                body = " + ".join(term.render() for term in path.energy_terms)
            else:
                body = "0  # this path consumes no modelled energy"
            lines.append(f"        return {body}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"ExtractedInterface(name={self.name!r}, "
                f"paths={len(self.paths)}, inputs={self.input_names})")


def extract_interface(fn: Callable,
                      resources: Sequence[ResourceModel],
                      subinterfaces: Mapping[str, EnergyInterface],
                      name: str | None = None,
                      helpers: Mapping[str, Callable] | None = None,
                      max_paths: int = 512) -> ExtractedInterface:
    """The §4.2 front end: implementation in, energy interface out.

    ``fn(res, x, y, ...)`` is symbolically executed against the declared
    resource models; the resulting paths become an
    :class:`ExtractedInterface` whose terms resolve through
    ``subinterfaces``.
    """
    import inspect

    paths = symbolic_execute(fn, resources, helpers=helpers,
                             max_paths=max_paths)
    signature = inspect.signature(fn)
    parameter_names = list(signature.parameters)[1:]
    interface_name = name if name is not None else fn.__name__
    return ExtractedInterface(interface_name, parameter_names, paths,
                              subinterfaces)
