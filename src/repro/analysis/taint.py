"""Secret-taint analysis over symbolic execution paths.

§4.1's constant-energy requirement ("explicitly disallow energy
side-channels") has a *static* half: if no branch condition and no loop
trip count depends on a secret, the implementation's energy is
control-flow-independent of the secret by construction.  This module
checks exactly that over the path summaries produced by
:mod:`repro.analysis.symbex`:

* secret-marked parameters are taint sources;
* taint propagates through expressions (an
  :class:`~repro.analysis.expr.Expr` is tainted iff a tainted name is
  among its free variables) and through *resource results*: a fresh
  symbol produced by ``res.cpu.compare(secret_chunk)`` is itself
  tainted, since the device observed the secret;
* sinks are path-condition clauses (secret-dependent branching) and
  energy-term multipliers (secret-dependent trip counts).

The result feeds rule EB102 of the linter — the static counterpart of
:class:`~repro.core.contracts.ConstantEnergyContract`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.expr import Compare, Const, Expr, UnaryOp
from repro.analysis.symbex import PathSummary

__all__ = ["TaintedUse", "tainted_symbols", "analyze_taint"]

_ORIGIN_PREFIX = "result of "


@dataclass(frozen=True)
class TaintedUse:
    """One secret-dependent control decision found on some path."""

    kind: str        # "branch" or "trip-count"
    expr: Expr       # the tainted clause / multiplier
    secrets: tuple[str, ...]  # tainted names it mentions

    def describe(self) -> str:
        what = ("branch condition" if self.kind == "branch"
                else "loop trip count")
        return (f"{what} {self.expr.render()} depends on secret "
                f"{', '.join(self.secrets)}")


def tainted_symbols(paths: Sequence[PathSummary],
                    secrets: Iterable[str]) -> set[str]:
    """All tainted names: the secrets plus transitively-tainted ECVs.

    A fresh symbol is tainted when *any* call to its originating
    ``resource.method`` (on any path) takes a tainted argument —
    conservative, since the executor does not pair individual calls with
    the symbols they produced.
    """
    tainted = set(secrets)
    while True:
        # Which resource calls were fed tainted data anywhere?
        dirty_calls = {
            f"{term.resource}.{term.method}"
            for path in paths for term in path.energy_terms
            if any(arg.free_variables() & tainted for arg in term.args)
        }
        grown = set(tainted)
        for path in paths:
            for symbol, (_, origin) in path.ecvs.items():
                if origin.startswith(_ORIGIN_PREFIX) \
                        and origin[len(_ORIGIN_PREFIX):] in dirty_calls:
                    grown.add(symbol)
        if grown == tainted:
            return tainted
        tainted = grown


def _branch_key(clause: Expr) -> str:
    """One key per *decision*: a clause and its negation coincide."""
    renderings = {clause.render()}
    if isinstance(clause, (Compare, UnaryOp)):
        try:
            renderings.add(clause.negated().render())
        except Exception:
            pass
    return min(renderings)


def analyze_taint(paths: Sequence[PathSummary],
                  secret_params: Iterable[str]) -> list[TaintedUse]:
    """Find secret-dependent branches and trip counts, deduplicated.

    The two arms of one ``if`` contribute a clause and its negation;
    they count as a single tainted decision.
    """
    tainted = tainted_symbols(paths, secret_params)
    if not tainted:
        return []
    uses: dict[str, TaintedUse] = {}
    for path in paths:
        for clause in path.condition:
            hit = clause.free_variables() & tainted
            if hit:
                use = TaintedUse("branch", clause, tuple(sorted(hit)))
                uses.setdefault(f"branch:{_branch_key(clause)}", use)
        for term in path.energy_terms:
            if isinstance(term.multiplier, Const):
                continue
            hit = term.multiplier.free_variables() & tainted
            if hit:
                use = TaintedUse("trip-count", term.multiplier,
                                 tuple(sorted(hit)))
                uses.setdefault(f"trip-count:{term.multiplier.render()}", use)
    return list(uses.values())
