"""``repro-energy lint``: a static energy-bug checker (§4 workflows).

The paper treats energy interfaces as *checkable contracts* — worst-case
bounds, constant-energy requirements for crypto, compatibility checks
"before implementation".  Divergence testing
(:mod:`repro.analysis.verify`) closes that loop dynamically, with a
meter and chosen inputs; this module closes it statically, over **all**
paths, with no meter at all.

Three analyses feed a rule engine:

1. a worst-case abstract evaluator over the symbolic-execution IR
   (:mod:`repro.analysis.intervals` — interval + affine domains);
2. a taint analysis tracking secret parameters into branch conditions
   and loop bounds (:mod:`repro.analysis.taint`);
3. a path-exhaustive side-effect checker diffing device state
   (:class:`~repro.analysis.sideeffects.DeviceStateModel` final states)
   across all return paths.

The rules, with stable IDs:

========  ========================================================
``EB101``  unbounded/unsummarisable path energy with no covering
           bound contract
``EB102``  secret-dependent branching or trip counts in a module
           declaring constant-energy intent (static side-channel)
``EB103``  device state leaked on some-but-not-all paths (the
           paper's "radio left on" bug, caught without running)
``EB104``  implementation's worst case exceeds the handwritten
           interface's bound (static refinement, EB-level
           ``check_refinement``)
``EB105``  branch on a resource result not exposed as an ECV
``EB106``  energy-dead path: guard statically unsatisfiable under
           the declared input bounds
========  ========================================================

Targets are implementation functions carrying an
:class:`~repro.core.contracts.EnergySpec` (attached with
:func:`~repro.core.contracts.energy_spec`).  ``lint_module`` checks one
imported module; ``lint_paths`` resolves files, directories and dotted
module names — the ``repro-energy lint`` CLI front end.

:data:`RULES` is the shared vocabulary for *both* static checkers: the
point-in-time rules above (EB1xx, fired by this module) and the
differential regression rules EB201–EB206 fired by
:mod:`repro.analysis.regress` over fingerprint baselines
(:mod:`repro.analysis.fingerprint`).  Keeping one registry means one
``Finding`` type, one SARIF driver and one ``--select``/``--ignore``
namespace across ``repro-energy lint`` and ``repro-energy regress``.
"""

from __future__ import annotations

import importlib
import importlib.util
import inspect
import json
import sys
from dataclasses import dataclass
from functools import reduce
from pathlib import Path
from types import ModuleType
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.analysis.expr import BinOp, Const, Expr, as_expr
from repro.analysis.intervals import (
    Interval,
    NONNEGATIVE,
    bound_expr,
    condition_status,
)
from repro.analysis.symbex import (
    PathSummary,
    ResourceModel,
    symbolic_execute,
)
from repro.analysis.taint import analyze_taint
from repro.core.contracts import EnergySpec
from repro.core.errors import EnergyError, LintError, SymbolicExecutionError

__all__ = ["Rule", "RULES", "LINT_RULE_IDS", "REGRESS_RULE_IDS", "Finding",
           "lint_function", "lint_module", "lint_paths",
           "undeclared_ecv_calls", "load_baseline", "format_baseline",
           "render_text", "to_json", "to_sarif", "LINT_SCHEMA_VERSION"]

#: Version tag shared by the lint JSON schema and
#: :meth:`repro.analysis.verify.DivergenceReport.to_dict`.
LINT_SCHEMA_VERSION = "1"

_ORIGIN_PREFIX = "result of "
_SLACK_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Rule:
    """One energy-bug rule: stable ID, summary, default severity."""

    id: str
    summary: str
    severity: str


RULES: dict[str, Rule] = {rule.id: rule for rule in (
    # Point-in-time rules (repro-energy lint).
    Rule("EB101", "unbounded or unsummarisable path energy with no "
                  "covering bound contract", "error"),
    Rule("EB102", "secret-dependent branching or trip count under a "
                  "constant-energy requirement", "error"),
    Rule("EB103", "device state leaked on some but not all paths", "error"),
    Rule("EB104", "worst-case path energy exceeds the handwritten "
                  "interface's bound", "error"),
    Rule("EB105", "branch on a resource result not exposed as an ECV",
         "warning"),
    Rule("EB106", "energy-dead path: guard unsatisfiable under the "
                  "declared input bounds", "warning"),
    # Differential regression rules (repro-energy regress), fired by
    # repro.analysis.regress over two fingerprint sets.
    Rule("EB201", "worst-case energy grew beyond the regression "
                  "tolerance", "error"),
    Rule("EB202", "new path with unbounded or unsummarisable energy",
         "error"),
    Rule("EB203", "newly secret-tainted branch or trip count", "error"),
    Rule("EB204", "device state newly leaked on some but not all paths",
         "error"),
    Rule("EB205", "new branch on a resource result not exposed as an ECV",
         "error"),
    Rule("EB206", "spec loosened in the same change that grew worst-case "
                  "energy", "warning"),
)}

#: Rules the point-in-time linter can fire.
LINT_RULE_IDS = frozenset(rule_id for rule_id in RULES
                          if rule_id.startswith("EB1"))

#: Rules the differential regression checker can fire.
REGRESS_RULE_IDS = frozenset(rule_id for rule_id in RULES
                             if rule_id.startswith("EB2"))


@dataclass(frozen=True)
class Finding:
    """One static energy-bug finding."""

    rule: str
    severity: str
    message: str
    module: str
    function: str
    file: str
    line: int

    def fingerprint(self) -> str:
        """Stable suppression key: rule, module tail, function.

        The module tail is normalised so a target linted as a file
        (loaded under a synthetic ``_energy_lint_*`` name) and as a
        dotted module fingerprint identically.
        """
        tail = self.module.rpartition(".")[2]
        tail = tail.removeprefix("_energy_lint_")
        return f"{self.rule}:{tail}:{self.function}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "module": self.module,
            "function": self.function,
            "file": self.file,
            "line": self.line,
        }

    def __str__(self) -> str:
        return (f"{self.file}:{self.line}: {self.rule} [{self.severity}] "
                f"{self.function}: {self.message}")


def _finding(rule: str, message: str, *, module: str, function: str,
             file: str, line: int) -> Finding:
    return Finding(rule=rule, severity=RULES[rule].severity, message=message,
                   module=module, function=function, file=file, line=line)


# -- the three analyses feeding the rules ---------------------------------

def _interval_env(spec: EnergySpec) -> dict[str, Interval]:
    return {name: Interval(float(low), float(high))
            for name, (low, high) in spec.input_bounds.items()}


def _term_cost(term, spec: EnergySpec) -> Expr:
    """Worst-case Joules of one energy term, as an expression."""
    key = f"{term.resource}.{term.method}"
    cost = spec.costs.get(key, 1.0)
    if isinstance(cost, (int, float)):
        per_call: Expr = Const(float(cost))
    elif isinstance(cost, tuple) and len(cost) == 2 and cost[0] == "per_unit":
        if not term.args:
            raise LintError(
                f"cost of {key!r} is per_unit but the call has no argument")
        per_call = BinOp("*", Const(float(cost[1])), term.args[0])
    else:
        raise LintError(
            f"unsupported cost declaration for {key!r}: {cost!r} (use a "
            f"float or ('per_unit', joules))")
    return BinOp("*", term.multiplier, per_call)


def _path_energy(path: PathSummary, spec: EnergySpec) -> Expr:
    terms = [_term_cost(term, spec) for term in path.energy_terms]
    if not terms:
        return Const(0.0)
    return reduce(lambda a, b: BinOp("+", a, b), terms)


def _bound_expression(spec: EnergySpec, input_names: Sequence[str]) -> Expr:
    """Evaluate the handwritten bound symbolically (branch-free subset)."""
    from repro.analysis.expr import Var

    try:
        result = spec.bound(*[Var(name) for name in input_names])
    except TypeError as exc:
        raise LintError(
            f"bound contract does not accept the implementation's inputs "
            f"{list(input_names)}: {exc}") from exc
    except EnergyError as exc:
        raise LintError(
            f"bound contract is not statically evaluable (it must be "
            f"branch-free arithmetic over the inputs): {exc}") from exc
    return as_expr(result)


def _check_energy_bounds(paths: Sequence[PathSummary], spec: EnergySpec,
                         input_names: Sequence[str],
                         emit: Callable[..., None]) -> None:
    """EB101 (unbounded, uncovered) and EB104 (bound exceeded)."""
    env = _interval_env(spec)
    bound = (None if spec.bound is None
             else _bound_expression(spec, input_names))
    for path in paths:
        energy = _path_energy(path, spec)
        if bound is None:
            interval = bound_expr(energy, env)
            if interval.hi == float("inf"):
                emit("EB101",
                     f"worst-case energy {energy.render()} on path "
                     f"[{path.condition_text()}] is unbounded over the "
                     f"declared input bounds and no bound contract covers "
                     f"it; declare input_bounds or a bound= contract")
            continue
        allowance = BinOp("*", bound, Const(1.0 + spec.slack))
        margin = bound_expr(BinOp("-", energy, allowance), env)
        if margin.hi > _SLACK_TOLERANCE:
            emit("EB104",
                 f"worst-case energy {energy.render()} on path "
                 f"[{path.condition_text()}] exceeds the interface bound "
                 f"{bound.render()} by up to {margin.hi:g} J")


def _check_constant_energy(paths: Sequence[PathSummary], spec: EnergySpec,
                           emit: Callable[..., None]) -> None:
    """EB102: the static side-channel check."""
    if not spec.constant_energy:
        return
    for use in analyze_taint(paths, spec.secret_params):
        emit("EB102",
             f"{use.describe()} — constant-energy modules must not let "
             f"secrets steer control flow")


def _check_state_leaks(paths: Sequence[PathSummary], spec: EnergySpec,
                       emit: Callable[..., None]) -> None:
    """EB103: the path-exhaustive side-effect diff."""
    if not spec.state_models:
        return
    resources = {model.resource for model in spec.state_models}
    for resource in sorted(resources):
        by_state: dict[str, PathSummary] = {}
        for path in paths:
            by_state.setdefault(path.final_states.get(resource, "?"), path)
        if len(by_state) > 1:
            detail = "; ".join(
                f"{state!r} on path [{path.condition_text()}]"
                for state, path in sorted(by_state.items()))
            emit("EB103",
                 f"device {resource!r} ends in different states depending "
                 f"on the path taken: {detail} — a caller cannot be "
                 f"charged consistently for the transition")


def undeclared_ecv_calls(paths: Sequence[PathSummary],
                         spec: EnergySpec) -> list[str]:
    """``resource.method`` calls branched on but not in ``exposed_ecvs``.

    Sorted and de-duplicated; shared by rule EB105 here and the
    differential rule EB205 in :mod:`repro.analysis.regress`.
    """
    seen: set[str] = set()
    for path in paths:
        for clause in path.condition:
            for name in clause.free_variables() & set(path.ecvs):
                _, origin = path.ecvs[name]
                if not origin.startswith(_ORIGIN_PREFIX):
                    continue
                call = origin[len(_ORIGIN_PREFIX):]
                if call not in spec.exposed_ecvs:
                    seen.add(call)
    return sorted(seen)


def _check_undeclared_ecvs(paths: Sequence[PathSummary], spec: EnergySpec,
                           emit: Callable[..., None]) -> None:
    """EB105: branches on resource results the interface does not expose."""
    for call in undeclared_ecv_calls(paths, spec):
        emit("EB105",
             f"the implementation branches on the result of "
             f"{call} but the interface does not expose it as an "
             f"ECV; the extracted and handwritten interfaces "
             f"cannot agree")


def _check_dead_paths(paths: Sequence[PathSummary], spec: EnergySpec,
                      emit: Callable[..., None]) -> None:
    """EB106: guards unsatisfiable under the input box."""
    if not spec.input_bounds:
        return
    env = _interval_env(spec)
    seen: set[str] = set()
    for path in paths:
        for clause in path.condition:
            rendered = clause.render()
            if rendered in seen:
                continue
            if condition_status(clause, env) == "never":
                seen.add(rendered)
                emit("EB106",
                     f"guard {rendered} can never hold for inputs within "
                     f"{dict(spec.input_bounds)}; the path it protects is "
                     f"energy-dead")


# -- target discovery and the engine --------------------------------------

def lint_function(fn: Callable, spec: EnergySpec | None = None,
                  module: str | None = None) -> list[Finding]:
    """Run every rule against one implementation function."""
    if spec is None:
        spec = getattr(fn, "__energy_spec__", None)
    if spec is None:
        raise LintError(
            f"{fn.__qualname__} carries no EnergySpec; decorate it with "
            f"@energy_spec(...)")
    module_name = module or fn.__module__
    try:
        file = inspect.getsourcefile(fn) or "<unknown>"
        line = inspect.getsourcelines(fn)[1]
    except (OSError, TypeError):
        file, line = "<unknown>", 0
    findings: list[Finding] = []

    def emit(rule: str, message: str) -> None:
        findings.append(_finding(rule, message, module=module_name,
                                 function=fn.__name__, file=file, line=line))

    resources = [ResourceModel(name, dict(returning))
                 for name, returning in spec.resources.items()]
    state_models = {model.resource: model for model in spec.state_models}
    try:
        paths = symbolic_execute(fn, resources, helpers=dict(spec.helpers),
                                 state_models=state_models or None)
    except SymbolicExecutionError as exc:
        emit("EB101",
             f"energy cannot be summarised statically ({exc}); no "
             f"contract can cover what the analysis cannot bound")
        return findings

    input_names = [p for p in inspect.signature(fn).parameters][1:]
    _check_energy_bounds(paths, spec, input_names, emit)
    _check_constant_energy(paths, spec, emit)
    _check_state_leaks(paths, spec, emit)
    _check_undeclared_ecvs(paths, spec, emit)
    _check_dead_paths(paths, spec, emit)
    return findings


def lint_module(module: ModuleType) -> list[Finding]:
    """Lint every spec-carrying function defined in ``module``."""
    findings: list[Finding] = []
    for name in sorted(vars(module)):
        member = vars(module)[name]
        if (callable(member)
                and getattr(member, "__energy_spec__", None) is not None
                and getattr(member, "__module__", None) == module.__name__):
            findings.extend(lint_function(member, module=module.__name__))
    return findings


def _load_file(path: Path) -> ModuleType:
    name = f"_energy_lint_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise LintError(f"cannot load {path} as a Python module")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        del sys.modules[name]
        raise LintError(f"importing {path} failed: {exc}") from exc
    return module


def _resolve_target(target: str) -> list[ModuleType]:
    path = Path(target)
    if path.is_dir():
        files = sorted(p for p in path.glob("*.py") if p.name != "__init__.py")
        if not files:
            raise LintError(f"no Python modules under {path}")
        return [_load_file(p) for p in files]
    if path.suffix == ".py" and path.is_file():
        return [_load_file(path)]
    if path.suffix == ".py":
        raise LintError(f"no such file: {target}")
    try:
        return [importlib.import_module(target)]
    except ImportError as exc:
        raise LintError(
            f"cannot resolve target {target!r} (not a file, directory or "
            f"importable module): {exc}") from exc


def lint_paths(targets: Iterable[str]) -> tuple[list[Finding], int]:
    """Lint files / directories / dotted modules.

    Returns the findings plus the number of functions checked.
    """
    findings: list[Finding] = []
    checked = 0
    for target in targets:
        for module in _resolve_target(target):
            for name in sorted(vars(module)):
                member = vars(module)[name]
                if (callable(member)
                        and getattr(member, "__energy_spec__", None)
                        is not None
                        and getattr(member, "__module__", None)
                        == module.__name__):
                    checked += 1
                    findings.extend(lint_function(member,
                                                  module=module.__name__))
    return findings, checked


# -- baselines -------------------------------------------------------------

def load_baseline(path: str | Path) -> set[str]:
    """Read a baseline file: one fingerprint per line, ``#`` comments."""
    suppressions: set[str] = set()
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            suppressions.add(line)
    return suppressions


def format_baseline(findings: Sequence[Finding]) -> str:
    """Render current findings as a baseline file body."""
    lines = ["# repro-energy lint baseline — one accepted finding per line.",
             "# Regenerate with: repro-energy lint <targets> --write-baseline"]
    for fingerprint in sorted({f.fingerprint() for f in findings}):
        lines.append(fingerprint)
    return "\n".join(lines) + "\n"


# -- output formats --------------------------------------------------------

def render_text(findings: Sequence[Finding], checked: int,
                suppressed: int = 0, *, tool: str = "repro-energy lint",
                noun: str = "function(s) checked") -> str:
    lines = [str(finding) for finding in findings]
    tail = f", {suppressed} suppressed by baseline" if suppressed else ""
    status = (f"{len(findings)} finding(s)" if findings else "clean")
    lines.append(f"{tool}: {checked} {noun}, {status}{tail}")
    return "\n".join(lines)


def to_json(findings: Sequence[Finding], checked: int,
            suppressed: int = 0, *, tool: str = "repro-energy lint") -> str:
    payload = {
        "tool": tool,
        "schema_version": LINT_SCHEMA_VERSION,
        "summary": {
            "checked": checked,
            "findings": len(findings),
            "suppressed": suppressed,
            "ok": not findings,
        },
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def to_sarif(findings: Sequence[Finding], *,
             tool: str = "repro-energy lint") -> str:
    """Render findings as SARIF 2.1.0 (one run, one result per finding).

    Byte-stable: the driver's rule table is sorted by rule ID, all keys
    are emitted sorted, and results appear in the order given (callers
    sort findings before rendering).
    """
    results = [{
        "ruleId": finding.rule,
        "level": _SARIF_LEVELS.get(finding.severity, "note"),
        "message": {"text": f"{finding.function}: {finding.message}"},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.file},
                "region": {"startLine": max(finding.line, 1)},
            },
        }],
    } for finding in findings]
    sarif = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool,
                "informationUri":
                    "https://github.com/energy-clarity/repro",
                "rules": [{
                    "id": RULES[rule_id].id,
                    "shortDescription": {"text": RULES[rule_id].summary},
                    "defaultConfiguration": {
                        "level": _SARIF_LEVELS.get(RULES[rule_id].severity,
                                                   "note")},
                } for rule_id in sorted(RULES)],
            }},
            "results": results,
        }],
    }
    return json.dumps(sarif, indent=2, sort_keys=True)
