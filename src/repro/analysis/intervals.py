"""Worst-case abstract evaluation of symbolic expressions.

The static linter (:mod:`repro.analysis.lint`) needs to compare path
energies and decide conditions *for all inputs at once*, without
enumerating them.  Two abstract domains over the
:class:`~repro.analysis.expr.Expr` IR do that:

* an **interval domain** — each variable ranges over ``[lo, hi]``
  (possibly infinite); expressions evaluate to the interval of values
  they can take.  Sound for arbitrary expressions but subject to the
  classic dependency problem (``n - n`` evaluates to a wide interval);
* an **affine domain** — expressions that are linear in their variables
  normalise to ``const + Σ coef·var``, whose extrema over a box are
  exact.  Every loop-summarised energy expression in this repository is
  affine, so the common case loses nothing.

:func:`bound_expr` tries the affine domain first and falls back to
intervals; :func:`condition_status` classifies a path-condition clause
as ``"always"`` / ``"never"`` / ``"unknown"`` under the input box —
``"never"`` is rule EB106's energy-dead path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.expr import (
    BinOp,
    Compare,
    Const,
    Expr,
    FreshSymbol,
    UnaryOp,
    Var,
)
from repro.core.errors import IntervalError

__all__ = ["Interval", "TOP", "NONNEGATIVE", "interval_of", "linearize",
           "AffineForm", "bound_expr", "condition_status"]

_INF = float("inf")


def _mul(a: float, b: float) -> float:
    """Endpoint product with the convention 0 * inf = 0."""
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


@dataclass(frozen=True)
class Interval:
    """A closed interval over the extended reals."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise IntervalError(f"empty interval [{self.lo}, {self.hi}]")

    @staticmethod
    def point(value: float) -> "Interval":
        return Interval(float(value), float(value))

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        products = [_mul(self.lo, other.lo), _mul(self.lo, other.hi),
                    _mul(self.hi, other.lo), _mul(self.hi, other.hi)]
        return Interval(min(products), max(products))

    def __str__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


#: Everything: the abstraction of a value nothing is known about.
TOP = Interval(-_INF, _INF)

#: Default abstraction for inputs and resource results: sizes, counts
#: and energies are non-negative.
NONNEGATIVE = Interval(0.0, _INF)


def interval_of(expr: Expr, env: Mapping[str, Interval],
                default: Interval = NONNEGATIVE) -> Interval:
    """Sound interval evaluation of ``expr`` over the variable box."""
    if isinstance(expr, Const):
        if isinstance(expr.value, bool) or not isinstance(
                expr.value, (int, float)):
            return TOP
        return Interval.point(expr.value)
    if isinstance(expr, (Var, FreshSymbol)):
        return env.get(expr.render(), default)
    if isinstance(expr, UnaryOp):
        if expr.op == "-":
            return -interval_of(expr.operand, env, default)
        return TOP  # "not": boolean, not numeric
    if isinstance(expr, BinOp):
        left = interval_of(expr.left, env, default)
        right = interval_of(expr.right, env, default)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op in ("/", "//") and right.is_point and right.lo != 0:
            scaled = left * Interval.point(1.0 / right.lo)
            if expr.op == "//":
                return Interval(math.floor(scaled.lo)
                                if math.isfinite(scaled.lo) else scaled.lo,
                                math.floor(scaled.hi)
                                if math.isfinite(scaled.hi) else scaled.hi)
            return scaled
        if expr.op == "%" and right.is_point and right.lo > 0:
            return Interval(0.0, right.lo)
        if (expr.op == "**" and right.is_point
                and float(right.lo).is_integer() and right.lo >= 0
                and left.lo >= 0):
            exponent = int(right.lo)
            return Interval(left.lo ** exponent, left.hi ** exponent)
        return TOP
    return TOP


@dataclass(frozen=True)
class AffineForm:
    """``const + Σ coeffs[name] * name`` — exact extrema over a box."""

    const: float
    coeffs: Mapping[str, float]

    def bounds(self, env: Mapping[str, Interval],
               default: Interval = NONNEGATIVE) -> Interval:
        """Exact range over the box (each variable varies independently)."""
        lo = hi = self.const
        for name, coef in self.coeffs.items():
            if coef == 0.0:
                continue
            interval = env.get(name, default)
            lo += min(_mul(coef, interval.lo), _mul(coef, interval.hi))
            hi += max(_mul(coef, interval.lo), _mul(coef, interval.hi))
        return Interval(lo, hi)


def _combine(left: AffineForm, right: AffineForm, sign: float) -> AffineForm:
    coeffs = dict(left.coeffs)
    for name, coef in right.coeffs.items():
        coeffs[name] = coeffs.get(name, 0.0) + sign * coef
    return AffineForm(left.const + sign * right.const, coeffs)


def _scale(form: AffineForm, factor: float) -> AffineForm:
    return AffineForm(form.const * factor,
                      {name: coef * factor
                       for name, coef in form.coeffs.items()})


def linearize(expr: Expr) -> AffineForm | None:
    """Normalise ``expr`` to an affine form, or ``None`` if non-linear."""
    if isinstance(expr, Const):
        if isinstance(expr.value, bool) or not isinstance(
                expr.value, (int, float)):
            return None
        return AffineForm(float(expr.value), {})
    if isinstance(expr, (Var, FreshSymbol)):
        return AffineForm(0.0, {expr.render(): 1.0})
    if isinstance(expr, UnaryOp):
        if expr.op != "-":
            return None
        operand = linearize(expr.operand)
        return None if operand is None else _scale(operand, -1.0)
    if isinstance(expr, BinOp):
        left = linearize(expr.left)
        right = linearize(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return _combine(left, right, 1.0)
        if expr.op == "-":
            return _combine(left, right, -1.0)
        if expr.op == "*":
            if not right.coeffs:
                return _scale(left, right.const)
            if not left.coeffs:
                return _scale(right, left.const)
            return None
        if expr.op == "/" and not right.coeffs and right.const != 0:
            return _scale(left, 1.0 / right.const)
        return None
    return None


def bound_expr(expr: Expr, env: Mapping[str, Interval],
               default: Interval = NONNEGATIVE) -> Interval:
    """Best available bounds: affine (exact) first, intervals second."""
    form = linearize(expr)
    if form is not None:
        return form.bounds(env, default)
    return interval_of(expr, env, default)


def _compare_status(op: str, difference: Interval) -> str:
    """Status of ``left <op> right`` given bounds on ``left - right``."""
    lo, hi = difference.lo, difference.hi
    if op == "<":
        return "always" if hi < 0 else "never" if lo >= 0 else "unknown"
    if op == "<=":
        return "always" if hi <= 0 else "never" if lo > 0 else "unknown"
    if op == ">":
        return "always" if lo > 0 else "never" if hi <= 0 else "unknown"
    if op == ">=":
        return "always" if lo >= 0 else "never" if hi < 0 else "unknown"
    if op == "==":
        if lo == hi == 0:
            return "always"
        return "never" if lo > 0 or hi < 0 else "unknown"
    if op == "!=":
        if lo == hi == 0:
            return "never"
        return "always" if lo > 0 or hi < 0 else "unknown"
    return "unknown"


_NEGATED = {"always": "never", "never": "always", "unknown": "unknown"}


def condition_status(clause: Expr, env: Mapping[str, Interval],
                     default: Interval = NONNEGATIVE) -> str:
    """Classify a path-condition clause over the input box.

    ``"never"`` means the clause — hence the whole path carrying it —
    is unsatisfiable under the declared input bounds (rule EB106).
    """
    if isinstance(clause, Compare):
        difference = bound_expr(BinOp("-", clause.left, clause.right),
                                env, default)
        return _compare_status(clause.op, difference)
    if isinstance(clause, UnaryOp) and clause.op == "not":
        return _NEGATED[condition_status(clause.operand, env, default)]
    return "unknown"
