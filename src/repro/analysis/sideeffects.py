"""Side-effect analysis: energy consequences of device-state mutations.

§4.2's motivating example: "if an app causes a smartphone's WiFi radio to
turn on, subsequent apps using WiFi will consume less energy than if it
had been them turning the radio on — this is a side effect."  An energy
interface that ignores state mutations mis-charges whole call sequences.

:class:`DeviceStateModel` declares a resource's power-state machine:
which methods transition which states, and what *extra* energy a
transition costs (resolved through the resource's energy interface, e.g.
``E_wake``).  The symbolic executor threads this state through each path,
so extraction charges the wake energy to the first caller only.

:func:`analyze_sequence` composes the analysis across a *sequence of
modules* sharing devices — each module analysed under the states its
predecessors left behind — quantifying exactly the cross-module effect
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.symbex import (
    PathSummary,
    ResourceModel,
    symbolic_execute,
)
from repro.core.errors import ExtractionError

__all__ = ["DeviceStateModel", "ModuleAnalysis", "analyze_module",
           "analyze_sequence", "RADIO_MODEL"]


@dataclass(frozen=True)
class DeviceStateModel:
    """A resource's power-state machine for side-effect analysis.

    ``transitions[method][pre_state] = (post_state, extra_method)`` —
    calling ``method`` while the device is in ``pre_state`` moves it to
    ``post_state``, additionally charging the resource interface's
    ``E_<extra_method>`` (``None`` for no extra energy).  States absent
    from a method's table are left unchanged.
    """

    resource: str
    initial_state: str
    transitions: Mapping[str, Mapping[str, tuple[str, str | None]]]

    def __post_init__(self) -> None:
        if not self.resource:
            raise ExtractionError("a device state model needs a resource name")


#: The paper's radio example: sending while off wakes the radio (paying
#: ``E_wake``) and leaves it on for whoever comes next.
RADIO_MODEL = DeviceStateModel(
    resource="nic",
    initial_state="off",
    transitions={
        "send": {"off": ("on", "wake"), "on": ("on", None)},
        "receive": {"off": ("on", "wake"), "on": ("on", None)},
        "sleep": {"on": ("off", None), "off": ("off", None)},
    },
)


@dataclass
class ModuleAnalysis:
    """Per-module result of a side-effect-aware extraction."""

    module: str
    initial_states: dict[str, str]
    paths: list[PathSummary] = field(default_factory=list)

    def possible_final_states(self, resource: str) -> set[str]:
        """All states ``resource`` can be left in, across paths."""
        return {path.final_states.get(resource, "?") for path in self.paths}


def analyze_module(fn: Callable, resources: Sequence[ResourceModel],
                   state_models: Sequence[DeviceStateModel],
                   initial_states: Mapping[str, str] | None = None,
                   helpers: Mapping[str, Callable] | None = None
                   ) -> ModuleAnalysis:
    """Symbolically execute one module with device-state tracking."""
    models = {model.resource: model for model in state_models}
    start = {name: model.initial_state for name, model in models.items()}
    start.update(initial_states or {})
    paths = symbolic_execute(fn, resources, helpers=helpers,
                             state_models=models, initial_states=start)
    return ModuleAnalysis(module=fn.__name__, initial_states=start,
                          paths=paths)


def analyze_sequence(modules: Sequence[Callable],
                     resources: Sequence[ResourceModel],
                     state_models: Sequence[DeviceStateModel],
                     helpers: Mapping[str, Callable] | None = None
                     ) -> list[ModuleAnalysis]:
    """Analyse a module sequence, threading device state between modules.

    Each module is analysed under the state its predecessor leaves behind.
    When a predecessor's paths disagree on a final state, the successor is
    analysed under each distinct possibility and the *worst-case* charging
    is kept (conservative composition); for the state machines in this
    repository disagreements are rare, so the common case stays exact.
    """
    results: list[ModuleAnalysis] = []
    current_states: dict[str, set[str]] = {
        model.resource: {model.initial_state} for model in state_models}
    for fn in modules:
        variants: list[ModuleAnalysis] = []
        for combination in _state_combinations(current_states):
            variants.append(analyze_module(fn, resources, state_models,
                                           initial_states=combination,
                                           helpers=helpers))
        chosen = max(variants,
                     key=lambda analysis: _max_term_count(analysis))
        results.append(chosen)
        next_states: dict[str, set[str]] = {name: set()
                                            for name in current_states}
        for variant in variants:
            for path in variant.paths:
                for name in next_states:
                    next_states[name].add(
                        path.final_states.get(name,
                                              variant.initial_states[name]))
        current_states = next_states
    return results


def _state_combinations(states: Mapping[str, set[str]]
                        ) -> list[dict[str, str]]:
    combinations: list[dict[str, str]] = [{}]
    for name, options in states.items():
        combinations = [dict(existing, **{name: option})
                        for existing in combinations
                        for option in sorted(options)]
    return combinations


def _max_term_count(analysis: ModuleAnalysis) -> int:
    return max((len(path.energy_terms) for path in analysis.paths), default=0)
