"""Symbolic expressions for the implementation→interface toolchain (§4.2).

The symbolic executor (:mod:`repro.analysis.symbex`) runs module
implementations over *symbolic* inputs; the values flowing through the
program are the expression trees defined here.  An extracted energy
interface is then a list of paths, each a (condition, energy-terms) pair
over these expressions, which can be

* **evaluated** against concrete inputs (making the extracted interface an
  executable energy interface, like every other one in this repository),
* **rendered** back to Python source, Fig.-1 style, for humans to read.

Fresh symbols introduced for unknown resource-call results play the role
of ECVs: state the input does not determine.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Mapping

from repro.core.errors import ExtractionError

__all__ = ["Expr", "Const", "Var", "FreshSymbol", "ECVLeaf", "BinOp",
           "Compare", "UnaryOp", "EnergyTerm", "as_expr", "evaluate_expr"]

_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "**": lambda a, b: a ** b,
}

_COMPARES: dict[str, Callable[[Any, Any], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_UNARY: dict[str, Callable[[Any], Any]] = {
    "-": lambda a: -a,
    "not": lambda a: not a,
}

_fresh_counter = itertools.count()


class Expr:
    """Base class for symbolic expressions.

    Expressions are immutable trees.  Python operators build larger
    expressions, so implementation code under symbolic execution composes
    them without knowing it.
    """

    # -- operator overloading builds trees --------------------------------
    def __add__(self, other):
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other):
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other):
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other):
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other):
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other):
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other):
        return BinOp("/", as_expr(other), self)

    def __floordiv__(self, other):
        return BinOp("//", self, as_expr(other))

    def __rfloordiv__(self, other):
        return BinOp("//", as_expr(other), self)

    def __mod__(self, other):
        return BinOp("%", self, as_expr(other))

    def __rmod__(self, other):
        return BinOp("%", as_expr(other), self)

    def __pow__(self, other):
        return BinOp("**", self, as_expr(other))

    def __neg__(self):
        return UnaryOp("-", self)

    # Comparisons return symbolic booleans (the executor forks on them).
    def __lt__(self, other):
        return Compare("<", self, as_expr(other))

    def __le__(self, other):
        return Compare("<=", self, as_expr(other))

    def __gt__(self, other):
        return Compare(">", self, as_expr(other))

    def __ge__(self, other):
        return Compare(">=", self, as_expr(other))

    def sym_eq(self, other):
        """Symbolic equality (``==`` must stay Python equality for dicts)."""
        return Compare("==", self, as_expr(other))

    def sym_ne(self, other):
        """Symbolic inequality."""
        return Compare("!=", self, as_expr(other))

    def __bool__(self):
        raise ExtractionError(
            f"symbolic value {self!r} used in a concrete boolean context; "
            f"the symbolic executor must intercept this branch")

    def __hash__(self):
        return hash(repr(self))

    def __eq__(self, other):
        return type(self) is type(other) and repr(self) == repr(other)

    # -- interface ----------------------------------------------------------
    def free_variables(self) -> set[str]:
        """Names of :class:`Var` and :class:`FreshSymbol` leaves."""
        raise NotImplementedError

    def render(self) -> str:
        """Python-source rendering."""
        raise NotImplementedError

    def __repr__(self):
        return self.render()


class Const(Expr):
    """A literal constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def free_variables(self) -> set[str]:
        return set()

    def render(self) -> str:
        return repr(self.value)


class Var(Expr):
    """A named input variable of the analysed function."""

    def __init__(self, name: str) -> None:
        self.name = name

    def free_variables(self) -> set[str]:
        return {self.name}

    def render(self) -> str:
        return self.name


class FreshSymbol(Expr):
    """An unknown introduced for a resource-call result — an ECV.

    ``origin`` records which call produced it, so the extracted interface
    can document the ECV ("return value of cache.lookup").
    """

    def __init__(self, hint: str, origin: str = "") -> None:
        self.name = f"{hint}_{next(_fresh_counter)}"
        self.origin = origin

    def free_variables(self) -> set[str]:
        return {self.name}

    def render(self) -> str:
        return self.name


class ECVLeaf(Var):
    """A symbolic ECV read: one ``(qualified name, occurrence)`` draw.

    The leaf the interface compiler (:mod:`repro.compile`) substitutes
    for ``self.ecv(name)`` reads while partially evaluating an energy
    method.  It subclasses :class:`Var` so the whole abstract toolchain
    — :func:`evaluate_expr`, :func:`repro.analysis.intervals.linearize`,
    :func:`repro.analysis.intervals.interval_of` — treats it as an
    ordinary named variable, while keeping hold of the resolved
    :class:`~repro.core.ecv.ECV` (its distribution) and the owning
    interface (for cache revalidation).

    The name encodes the occurrence index (``"cpu.f_ghz@0"``) because
    the Monte Carlo column store draws one independent column per
    ``(qualified, occurrence)`` pair — a method reading the same ECV
    twice reads two independent draws, and the compiled form must too.
    """

    def __init__(self, qualified: str, occurrence: int, ecv: Any,
                 owner: Any = None) -> None:
        super().__init__(f"{qualified}@{int(occurrence)}")
        self.qualified = qualified
        self.occurrence = int(occurrence)
        self.ecv = ecv
        self.owner = owner

    def __eq__(self, other):
        # Plain ``==`` on a symbolic draw would silently answer False
        # (``Expr.__eq__`` is structural equality) and miscompile bodies
        # that compare an ECV value — e.g. ``state == "boost"``.  Raising
        # here sends the tracer to its concrete-enumeration pass, which
        # handles the comparison exactly.
        raise ExtractionError(
            f"symbolic ECV draw {self.name!r} compared with ==; the "
            f"compile tracer must enumerate this read concretely")

    def __hash__(self):
        return hash(repr(self))


class BinOp(Expr):
    """A binary arithmetic operation."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _BINOPS:
            raise ExtractionError(f"unsupported binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def free_variables(self) -> set[str]:
        return self.left.free_variables() | self.right.free_variables()

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


class Compare(Expr):
    """A comparison producing a symbolic boolean."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARES:
            raise ExtractionError(f"unsupported comparison {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def negated(self) -> "Compare":
        """The complementary comparison."""
        complement = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
                      "==": "!=", "!=": "=="}
        return Compare(complement[self.op], self.left, self.right)

    def free_variables(self) -> set[str]:
        return self.left.free_variables() | self.right.free_variables()

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


class UnaryOp(Expr):
    """Negation or logical not."""

    def __init__(self, op: str, operand: Expr) -> None:
        if op not in _UNARY:
            raise ExtractionError(f"unsupported unary operator {op!r}")
        self.op = op
        self.operand = operand

    def negated(self) -> Expr:
        if self.op == "not":
            return self.operand
        raise ExtractionError("only boolean expressions can be negated")

    def free_variables(self) -> set[str]:
        return self.operand.free_variables()

    def render(self) -> str:
        spacer = " " if self.op == "not" else ""
        return f"({self.op}{spacer}{self.operand.render()})"


class EnergyTerm:
    """One resource call's energy contribution on a path.

    ``multiplier`` scales the call (loop summarisation); arguments are
    expressions over the inputs.
    """

    def __init__(self, resource: str, method: str, args: tuple,
                 multiplier: Expr | None = None) -> None:
        self.resource = resource
        self.method = method
        self.args = tuple(as_expr(a) for a in args)
        self.multiplier = multiplier if multiplier is not None else Const(1)

    def scaled(self, factor: Expr) -> "EnergyTerm":
        """The same term with its multiplier scaled by ``factor``."""
        return EnergyTerm(self.resource, self.method, self.args,
                          BinOp("*", self.multiplier, factor))

    def free_variables(self) -> set[str]:
        names = self.multiplier.free_variables()
        for arg in self.args:
            names |= arg.free_variables()
        return names

    def render(self) -> str:
        call = (f"E_{self.resource}.{self.method}"
                f"({', '.join(arg.render() for arg in self.args)})")
        if isinstance(self.multiplier, Const) and self.multiplier.value == 1:
            return call
        return f"{self.multiplier.render()} * {call}"

    def __repr__(self) -> str:
        return f"EnergyTerm({self.render()})"


def as_expr(value: Any) -> Expr:
    """Coerce concrete Python values to :class:`Const` leaves."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (bool, int, float, str)) or value is None:
        return Const(value)
    raise ExtractionError(
        f"cannot use {type(value).__name__} values symbolically")


def evaluate_expr(expr: Expr, env: Mapping[str, Any]) -> Any:
    """Evaluate an expression against concrete variable bindings."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, (Var, FreshSymbol)):
        if expr.render() not in env and isinstance(expr, Var):
            raise ExtractionError(f"no binding for input variable {expr.name!r}")
        try:
            return env[expr.render()]
        except KeyError:
            raise ExtractionError(
                f"no binding for symbol {expr.render()!r} (an ECV from "
                f"{getattr(expr, 'origin', '?')})") from None
    if isinstance(expr, BinOp):
        return _BINOPS[expr.op](evaluate_expr(expr.left, env),
                                evaluate_expr(expr.right, env))
    if isinstance(expr, Compare):
        return _COMPARES[expr.op](evaluate_expr(expr.left, env),
                                  evaluate_expr(expr.right, env))
    if isinstance(expr, UnaryOp):
        return _UNARY[expr.op](evaluate_expr(expr.operand, env))
    raise ExtractionError(f"cannot evaluate expression {expr!r}")
