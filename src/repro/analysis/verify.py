"""Testing and verification with energy interfaces (§4.2).

Two mechanisms close the loop between interfaces and implementations:

* **Divergence testing** — run the real implementation on the simulated
  hardware with a measurement channel (RAPL/NVML), compare against the
  interface's prediction, and flag divergences as *energy bugs*: "running
  the layer with well chosen inputs, measuring the consumed energy, and
  comparing it to the interface's prediction; divergences would then be
  flagged as energy bugs."
* **Worst-case verification** — check every path of an (extracted or
  handwritten) interface against an upper-bound contract, via
  :mod:`repro.core.contracts`.

Benchmark A4 injects real bugs (cache disabled, radio left on, DVFS
stuck) and shows divergence testing catching them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.core.ecv import ECVEnvironment
from repro.core.errors import EnergyError
from repro.core.interface import evaluate
from repro.core.units import Energy, as_joules
from repro.measurement.meter import EnergyMeter

__all__ = ["EnergyBug", "DivergenceReport", "divergence_test"]


#: Rule ID for dynamic divergences, alongside the static linter's
#: EB101–EB106 (see :mod:`repro.analysis.lint`).
DIVERGENCE_RULE = "EB001"


@dataclass(frozen=True)
class EnergyBug:
    """One flagged divergence between prediction and measurement."""

    inputs: tuple
    predicted: Energy
    measured: Energy
    relative_error: float
    severity: str = "error"

    @property
    def message(self) -> str:
        """The human-readable description (without the rule prefix)."""
        direction = ("implementation uses MORE energy than its interface "
                     "promises" if self.measured > self.predicted else
                     "implementation uses LESS energy than its interface "
                     "claims (stale interface?)")
        return (f"inputs={self.inputs!r}: predicted {self.predicted}, "
                f"measured {self.measured} "
                f"({100 * self.relative_error:.1f}% off) — {direction}")

    def to_dict(self) -> dict:
        """The lint JSON finding shape, plus the measured quantities."""
        return {
            "rule": DIVERGENCE_RULE,
            "severity": self.severity,
            "message": self.message,
            "inputs": list(self.inputs),
            "predicted_joules": self.predicted.as_joules,
            "measured_joules": self.measured.as_joules,
            "relative_error": self.relative_error,
        }

    def __str__(self) -> str:
        return f"{DIVERGENCE_RULE} [{self.severity}] {self.message}"


@dataclass
class DivergenceReport:
    """Result of a divergence-testing campaign."""

    checked: int = 0
    threshold: float = 0.1
    bugs: list[EnergyBug] = field(default_factory=list)
    worst_error: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no input diverged beyond the threshold."""
        return not self.bugs

    def to_dict(self) -> dict:
        """Same shape as the static linter's JSON output.

        ``{"tool", "schema_version", "summary", "findings"}`` — dynamic
        (divergence) and static (lint) findings render uniformly.
        """
        from repro.analysis.lint import LINT_SCHEMA_VERSION

        return {
            "tool": "repro-energy divergence-test",
            "schema_version": LINT_SCHEMA_VERSION,
            "summary": {
                "checked": self.checked,
                "findings": len(self.bugs),
                "threshold": self.threshold,
                "worst_error": self.worst_error,
                "ok": self.ok,
            },
            "findings": [bug.to_dict() for bug in self.bugs],
        }

    def __str__(self) -> str:
        status = ("no energy bugs" if self.ok
                  else f"{len(self.bugs)} energy bug(s)")
        return (f"divergence test: {self.checked} inputs, threshold "
                f"{self.threshold:.0%}, worst error "
                f"{self.worst_error:.1%} — {status}")


def divergence_test(predict: Callable[..., Any],
                    run: Callable[..., None],
                    meter: EnergyMeter,
                    inputs: Iterable,
                    threshold: float = 0.10,
                    env: ECVEnvironment | Mapping[str, Any] | None = None
                    ) -> DivergenceReport:
    """Compare interface predictions against metered executions.

    ``predict(*args)`` is an energy-interface method (evaluated in
    expected mode under ``env``); ``run(*args)`` executes the real
    implementation on the simulated machine; ``meter`` measures it.
    Inputs whose relative divergence exceeds ``threshold`` are flagged.
    """
    if threshold <= 0:
        raise EnergyError(f"divergence threshold must be positive, got "
                          f"{threshold}")
    report = DivergenceReport(threshold=threshold)
    for args in inputs:
        if not isinstance(args, tuple):
            args = (args,)
        predicted_joules = as_joules(
            evaluate(lambda a=args: predict(*a), mode="expected", env=env))
        measurement = meter.run(lambda a=args: run(*a))
        measured_joules = measurement.joules
        report.checked += 1
        if measured_joules <= 0:
            relative = float("inf") if predicted_joules > 0 else 0.0
        else:
            relative = abs(predicted_joules - measured_joules) / measured_joules
        report.worst_error = max(report.worst_error, relative)
        if relative > threshold:
            report.bugs.append(EnergyBug(
                inputs=args,
                predicted=Energy(predicted_joules),
                measured=Energy(measured_joules),
                relative_error=relative,
            ))
    return report
