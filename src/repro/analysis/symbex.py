"""A restricted symbolic executor over Python ASTs (§4.2's analysis tool).

The implementation→interface workflow needs "a program analysis tool
[that] derives an intermediate representation that captures how that
module combines lower-level resources to implement its own logic ...
a combination of per-path analysis (e.g., using symbolic execution) with
side-effects analysis".  This module is that tool, scoped to the
implementation style used throughout this repository:

* the analysed function's first parameter is a *resource namespace* —
  ``impl(res, request_len)`` calls ``res.cache.lookup(...)``,
  ``res.gpu.infer(...)`` etc.;
* remaining parameters are integers/floats/booleans (or abstractions of
  the real input, per §3);
* supported constructs: arithmetic, comparisons, boolean logic, ``if`` /
  ``elif`` / ``else``, ``for`` over ``range`` (concrete bounds unroll,
  symbolic bounds are *summarised*), ``while`` with concrete conditions,
  tuple assignment, ``min`` / ``max`` / ``abs``, calls to helper
  functions (inlined).

Execution enumerates paths lazily by re-execution with forced branch
choices — the same mechanism the ECV evaluator uses.  Calls into
resources record :class:`~repro.analysis.expr.EnergyTerm` entries; a call
whose *result* the program branches on yields a deterministic fresh
symbol, which the extracted interface exposes as an ECV (state not
determined by the input — precisely the paper's definition).

Loop summarisation: a ``for`` over a symbolic ``range`` runs its body
once; if the body neither branches nor writes variables that survive the
loop, its energy terms are multiplied by the (symbolic) trip count.  This
covers the ubiquitous "for each token / request / block, pay E" pattern
while refusing (loudly) anything it cannot prove.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.expr import (
    BinOp,
    Compare,
    Const,
    EnergyTerm,
    Expr,
    FreshSymbol,
    UnaryOp,
    Var,
    as_expr,
)
from repro.core.errors import SymbolicExecutionError

__all__ = ["ResourceModel", "PathSummary", "symbolic_execute"]

#: Guard rails.
MAX_PATHS = 512
MAX_UNROLL = 4096
MAX_WHILE = 4096


@dataclass(frozen=True)
class ResourceModel:
    """How the executor models one resource during analysis.

    ``returning`` maps method names to the kind of value the call returns:
    ``"bool"`` / ``"int"`` / ``"float"`` produce a fresh symbol (an ECV);
    methods not listed return ``None`` (pure energy consumers).
    """

    name: str
    returning: Mapping[str, str] = field(default_factory=dict)


@dataclass
class PathSummary:
    """One enumerated path through the implementation."""

    condition: list[Expr]
    energy_terms: list[EnergyTerm]
    returns: Any
    ecvs: dict[str, tuple[str, str]]  # fresh-symbol name -> (kind, origin)
    final_states: dict[str, str] = field(default_factory=dict)

    def condition_text(self) -> str:
        """The path condition as readable Python."""
        if not self.condition:
            return "True"
        return " and ".join(clause.render() for clause in self.condition)


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


def _negate(expr: Expr) -> Expr:
    if isinstance(expr, (Compare, UnaryOp)):
        try:
            return expr.negated()
        except SymbolicExecutionError:
            pass
    return UnaryOp("not", expr)


class _Recorder:
    """Per-execution state: branch choices, path condition, energy terms."""

    def __init__(self, forced: list[bool],
                 state_models: Mapping[str, "DeviceStateModel"] | None = None,
                 initial_states: Mapping[str, str] | None = None) -> None:
        self.forced = forced
        self.taken: list[bool] = []
        self.condition: list[Expr] = []
        self.energy: list[EnergyTerm] = []
        self.pending: list[list[bool]] = []
        self.ecvs: dict[str, str] = {}
        self._symbol_counter = 0
        self.frozen_branching = False  # set during loop summarisation
        self.state_models = dict(state_models or {})
        self.device_states = {name: model.initial_state
                              for name, model in self.state_models.items()}
        self.device_states.update(initial_states or {})

    def decide(self, expr: Expr) -> bool:
        """Resolve a symbolic branch, forking lazily."""
        if self.frozen_branching:
            raise SymbolicExecutionError(
                "branch on a symbolic condition inside a summarised loop "
                "body; use concrete loop bounds instead")
        position = len(self.taken)
        if position < len(self.forced):
            choice = self.forced[position]
        else:
            choice = True
            self.pending.append(self.taken + [False])
        self.taken.append(choice)
        self.condition.append(expr if choice else _negate(expr))
        return choice

    def truth(self, value: Any) -> bool:
        """Concrete or symbolic truthiness."""
        if isinstance(value, Expr):
            return self.decide(value)
        return bool(value)

    def fresh(self, hint: str, origin: str, kind: str = "int") -> FreshSymbol:
        """A fresh symbol with a name stable across re-executions."""
        symbol = FreshSymbol.__new__(FreshSymbol)
        symbol.name = f"{hint}_{self._symbol_counter}"
        symbol.origin = origin
        self._symbol_counter += 1
        self.ecvs[symbol.name] = (kind, origin)
        return symbol

    def record_call(self, resource: str, method: str, args: tuple,
                    returning: str | None) -> Any:
        model = self.state_models.get(resource)
        if model is not None and method in model.transitions:
            if self.frozen_branching:
                raise SymbolicExecutionError(
                    "stateful resource call inside a summarised loop; state "
                    "transitions need concrete loop bounds")
            pre_state = self.device_states[resource]
            post_state, extra_method = model.transitions[method].get(
                pre_state, (pre_state, None))
            if extra_method is not None:
                self.energy.append(EnergyTerm(resource, extra_method, ()))
            self.device_states[resource] = post_state
        self.energy.append(EnergyTerm(resource, method, args))
        if returning is None:
            return None
        return self.fresh(f"{resource}_{method}",
                          f"result of {resource}.{method}", returning)


class _ResourceProxy:
    """Stands in for one resource during symbolic execution."""

    def __init__(self, model: ResourceModel, recorder: _Recorder) -> None:
        self._model = model
        self._recorder = recorder

    def __getattr__(self, method: str) -> Callable:
        model = object.__getattribute__(self, "_model")
        recorder = object.__getattribute__(self, "_recorder")

        def call(*args: Any) -> Any:
            return recorder.record_call(model.name, method,
                                        tuple(as_expr(a) for a in args),
                                        model.returning.get(method))

        return call


class _Namespace:
    """The ``res`` argument: attribute access to resource proxies."""

    def __init__(self, proxies: Mapping[str, _ResourceProxy]) -> None:
        self._proxies = dict(proxies)

    def __getattr__(self, name: str) -> _ResourceProxy:
        proxies = object.__getattribute__(self, "_proxies")
        if name not in proxies:
            raise SymbolicExecutionError(
                f"implementation used undeclared resource {name!r}; declare "
                f"a ResourceModel for it")
        return proxies[name]


def _loop_control_statements(statements: Sequence[ast.stmt]) -> list[ast.stmt]:
    """``break``/``continue`` nodes bound to the *enclosing* loop.

    Nested ``for``/``while`` bodies are skipped: their loop-control
    statements bind to the inner loop and are harmless to summarisation.
    """
    found: list[ast.stmt] = []
    for statement in statements:
        if isinstance(statement, (ast.Break, ast.Continue)):
            found.append(statement)
        elif isinstance(statement, ast.If):
            found.extend(_loop_control_statements(statement.body))
            found.extend(_loop_control_statements(statement.orelse))
    return found


def _function_ast(fn: Callable) -> ast.FunctionDef:
    source = textwrap.dedent(inspect.getsource(fn))
    module = ast.parse(source)
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise SymbolicExecutionError(f"could not find a function definition in "
                                 f"{fn!r}")


class _Interpreter:
    """One symbolic execution of the function body."""

    def __init__(self, recorder: _Recorder,
                 helpers: Mapping[str, Callable]) -> None:
        self.recorder = recorder
        self.helpers = dict(helpers)

    # -- statements ----------------------------------------------------------
    def exec_block(self, statements: Sequence[ast.stmt],
                   env: dict[str, Any]) -> None:
        for statement in statements:
            self.exec_stmt(statement, env)

    def exec_stmt(self, node: ast.stmt, env: dict[str, Any]) -> None:
        if isinstance(node, ast.Return):
            raise _ReturnSignal(self.eval(node.value, env)
                                if node.value else None)
        if isinstance(node, ast.Assign):
            value = self.eval(node.value, env)
            for target in node.targets:
                self._assign(target, value, env)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, self.eval(node.value, env), env)
            return
        if isinstance(node, ast.AugAssign):
            if not isinstance(node.target, ast.Name):
                raise SymbolicExecutionError(
                    "augmented assignment only supported on plain names")
            current = env.get(node.target.id)
            if current is None and node.target.id not in env:
                raise SymbolicExecutionError(
                    f"augmented assignment to unbound name {node.target.id!r}")
            operand = self.eval(node.value, env)
            env[node.target.id] = self._binop(node.op, current, operand)
            return
        if isinstance(node, ast.If):
            if self.recorder.truth(self.eval(node.test, env)):
                self.exec_block(node.body, env)
            else:
                self.exec_block(node.orelse, env)
            return
        if isinstance(node, ast.For):
            self._exec_for(node, env)
            return
        if isinstance(node, ast.While):
            self._exec_while(node, env)
            return
        if isinstance(node, ast.Expr):
            self.eval(node.value, env)
            return
        if isinstance(node, ast.Pass):
            return
        if isinstance(node, ast.Break):
            raise _BreakSignal()
        if isinstance(node, ast.Continue):
            raise _ContinueSignal()
        if isinstance(node, ast.Assert):
            if not self.recorder.truth(self.eval(node.test, env)):
                raise SymbolicExecutionError(
                    "assertion can fail on this path; energy interfaces must "
                    "cover all inputs")
            return
        raise SymbolicExecutionError(
            f"unsupported statement {type(node).__name__} at line "
            f"{node.lineno}")

    def _assign(self, target: ast.expr, value: Any, env: dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, ast.Tuple):
            values = list(value)
            if len(values) != len(target.elts):
                raise SymbolicExecutionError("tuple unpacking arity mismatch")
            for element, item in zip(target.elts, values):
                self._assign(element, item, env)
            return
        raise SymbolicExecutionError(
            f"unsupported assignment target {type(target).__name__}")

    # -- loops ------------------------------------------------------------------
    def _exec_for(self, node: ast.For, env: dict[str, Any]) -> None:
        if node.orelse:
            raise SymbolicExecutionError("for/else is not supported")
        iterable = node.iter
        if (isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Name)
                and iterable.func.id == "range"):
            bounds = [self.eval(argument, env) for argument in iterable.args]
            if any(isinstance(bound, Expr) for bound in bounds):
                self._summarise_loop(node, bounds, env)
                return
            iterations = list(range(*[int(b) for b in bounds]))
            if len(iterations) > MAX_UNROLL:
                raise SymbolicExecutionError(
                    f"loop unrolls to {len(iterations)} iterations "
                    f"(cap {MAX_UNROLL})")
            for value in iterations:
                self._assign(node.target, value, env)
                try:
                    self.exec_block(node.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return
        concrete = self.eval(iterable, env)
        if isinstance(concrete, Expr):
            raise SymbolicExecutionError(
                "can only iterate range() or concrete sequences")
        for value in list(concrete):
            self._assign(node.target, value, env)
            try:
                self.exec_block(node.body, env)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _summarise_loop(self, node: ast.For, bounds: list[Any],
                        env: dict[str, Any]) -> None:
        """Symbolic trip count: run the body once, scale its energy."""
        # Refuse loop-control statements up front: a break/continue that
        # happens to be skipped during the single summarisation run (e.g.
        # guarded by a concrete condition) would otherwise silently
        # mis-summarise the trip count.
        controls = _loop_control_statements(node.body)
        if controls:
            kind = ("break" if isinstance(controls[0], ast.Break)
                    else "continue")
            raise SymbolicExecutionError(
                f"unsupported construct: {kind!r} at line "
                f"{controls[0].lineno} inside a for over a symbolic "
                f"range(); the trip count cannot be summarised — rewrite "
                f"with concrete bounds")
        if len(bounds) == 1:
            start, stop = Const(0), as_expr(bounds[0])
        elif len(bounds) == 2:
            start, stop = as_expr(bounds[0]), as_expr(bounds[1])
        else:
            raise SymbolicExecutionError(
                "symbolic range() with a step cannot be summarised")
        count = BinOp("-", stop, start)
        before_env = dict(env)
        before_terms = len(self.recorder.energy)
        loop_var = self.recorder.fresh("loop_index", "summarised loop index")
        self._assign(node.target, loop_var, env)
        self.recorder.ecvs.pop(loop_var.name, None)  # not a real ECV
        self.recorder.frozen_branching = True
        try:
            self.exec_block(node.body, env)
        except (_BreakSignal, _ContinueSignal):
            raise SymbolicExecutionError(
                "break/continue inside a summarised loop")
        finally:
            self.recorder.frozen_branching = False
        body_terms = self.recorder.energy[before_terms:]
        del self.recorder.energy[before_terms:]
        loop_name = loop_var.name
        for term in body_terms:
            if loop_name in term.free_variables():
                raise SymbolicExecutionError(
                    "summarised loop body's energy depends on the loop "
                    "index; rewrite with concrete bounds or hoist the "
                    "dependence")
            self.recorder.energy.append(term.scaled(count))
        # The body must not leak state: restore and verify.
        target_names = {n.id for n in ast.walk(node.target)
                        if isinstance(n, ast.Name)}
        for name, value in env.items():
            if name in target_names:
                continue
            if name not in before_env:
                raise SymbolicExecutionError(
                    f"summarised loop defines {name!r} used after the loop")
            if repr(before_env[name]) != repr(value):
                raise SymbolicExecutionError(
                    f"summarised loop mutates {name!r}; accumulators over "
                    f"symbolic trip counts are not supported")
        for name in target_names:
            env.pop(name, None)
            if name in before_env:
                env[name] = before_env[name]

    def _exec_while(self, node: ast.While, env: dict[str, Any]) -> None:
        if node.orelse:
            raise SymbolicExecutionError("while/else is not supported")
        iterations = 0
        while True:
            test = self.eval(node.test, env)
            if isinstance(test, Expr):
                raise SymbolicExecutionError(
                    "while conditions must stay concrete; bound the loop "
                    "with range() over the symbolic count instead")
            if not test:
                return
            iterations += 1
            if iterations > MAX_WHILE:
                raise SymbolicExecutionError(
                    f"while loop exceeded {MAX_WHILE} iterations")
            try:
                self.exec_block(node.body, env)
            except _BreakSignal:
                return
            except _ContinueSignal:
                continue

    # -- expressions ---------------------------------------------------------
    def eval(self, node: ast.expr, env: dict[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.helpers:
                return self.helpers[node.id]
            raise SymbolicExecutionError(f"unbound name {node.id!r}")
        if isinstance(node, ast.BinOp):
            return self._binop(node.op, self.eval(node.left, env),
                               self.eval(node.right, env))
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                return -operand if not isinstance(operand, Expr) \
                    else UnaryOp("-", operand)
            if isinstance(node.op, ast.Not):
                if isinstance(operand, Expr):
                    return _negate(operand)
                return not operand
            raise SymbolicExecutionError(
                f"unsupported unary operator {type(node.op).__name__}")
        if isinstance(node, ast.Compare):
            return self._compare(node, env)
        if isinstance(node, ast.BoolOp):
            return self._boolop(node, env)
        if isinstance(node, ast.IfExp):
            if self.recorder.truth(self.eval(node.test, env)):
                return self.eval(node.body, env)
            return self.eval(node.orelse, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.Attribute):
            value = self.eval(node.value, env)
            return getattr(value, node.attr)
        if isinstance(node, ast.Tuple):
            return tuple(self.eval(element, env) for element in node.elts)
        if isinstance(node, ast.List):
            return [self.eval(element, env) for element in node.elts]
        raise SymbolicExecutionError(
            f"unsupported expression {type(node).__name__} at line "
            f"{node.lineno}")

    def _binop(self, op: ast.operator, left: Any, right: Any) -> Any:
        symbolic = isinstance(left, Expr) or isinstance(right, Expr)
        table = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
                 ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**"}
        op_name = table.get(type(op))
        if op_name is None:
            raise SymbolicExecutionError(
                f"unsupported operator {type(op).__name__}")
        if not symbolic:
            import operator as op_module
            concrete = {"+": op_module.add, "-": op_module.sub,
                        "*": op_module.mul, "/": op_module.truediv,
                        "//": op_module.floordiv, "%": op_module.mod,
                        "**": op_module.pow}
            return concrete[op_name](left, right)
        return BinOp(op_name, as_expr(left), as_expr(right))

    def _compare(self, node: ast.Compare, env: dict[str, Any]) -> Any:
        if len(node.ops) != 1:
            raise SymbolicExecutionError("chained comparisons not supported")
        left = self.eval(node.left, env)
        right = self.eval(node.comparators[0], env)
        table = {ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
                 ast.Eq: "==", ast.NotEq: "!="}
        op_name = table.get(type(node.ops[0]))
        if op_name is None:
            raise SymbolicExecutionError(
                f"unsupported comparison {type(node.ops[0]).__name__}")
        if isinstance(left, Expr) or isinstance(right, Expr):
            return Compare(op_name, as_expr(left), as_expr(right))
        import operator as op_module
        concrete = {"<": op_module.lt, "<=": op_module.le, ">": op_module.gt,
                    ">=": op_module.ge, "==": op_module.eq,
                    "!=": op_module.ne}
        return concrete[op_name](left, right)

    def _boolop(self, node: ast.BoolOp, env: dict[str, Any]) -> Any:
        is_and = isinstance(node.op, ast.And)
        result: Any = is_and
        for value_node in node.values:
            value = self.eval(value_node, env)
            truth = self.recorder.truth(value)
            if is_and and not truth:
                return False
            if not is_and and truth:
                return True
            result = truth
        return result

    def _call(self, node: ast.Call, env: dict[str, Any]) -> Any:
        if node.keywords:
            raise SymbolicExecutionError(
                "keyword arguments are not supported under analysis")
        args = [self.eval(argument, env) for argument in node.args]
        # Resource calls: res.<resource>.<method>(...)
        if isinstance(node.func, ast.Attribute):
            owner = self.eval(node.func.value, env)
            if isinstance(owner, _ResourceProxy):
                return getattr(owner, node.func.attr)(*args)
            raise SymbolicExecutionError(
                f"method call on non-resource object at line {node.lineno}")
        if not isinstance(node.func, ast.Name):
            raise SymbolicExecutionError("only simple calls are supported")
        name = node.func.id
        if name in ("min", "max"):
            return self._minmax(name, args)
        if name == "abs":
            (value,) = args
            if isinstance(value, Expr):
                if self.recorder.truth(Compare(">=", value, Const(0))):
                    return value
                return UnaryOp("-", value)
            return abs(value)
        if name in ("int", "float", "len", "round") and not any(
                isinstance(a, Expr) for a in args):
            return {"int": int, "float": float, "len": len,
                    "round": round}[name](*args)
        if name in self.helpers:
            return self._inline(self.helpers[name], args)
        if name in env:
            return self._inline(env[name], args)
        raise SymbolicExecutionError(f"call to unsupported function {name!r}")

    def _minmax(self, which: str, args: list[Any]) -> Any:
        if len(args) == 1:
            args = list(args[0])
        if not any(isinstance(a, Expr) for a in args):
            return (min if which == "min" else max)(args)
        result = args[0]
        for candidate in args[1:]:
            comparison = Compare("<=" if which == "min" else ">=",
                                 as_expr(result), as_expr(candidate))
            result = result if self.recorder.truth(comparison) else candidate
        return result

    def _inline(self, fn: Callable, args: list[Any]) -> Any:
        """Inline a helper function (it must follow the same subset)."""
        tree = _function_ast(fn)
        params = [argument.arg for argument in tree.args.args]
        if len(params) != len(args):
            raise SymbolicExecutionError(
                f"helper {tree.name!r} called with {len(args)} args, "
                f"expected {len(params)}")
        local_env = dict(zip(params, args))
        try:
            self.exec_block(tree.body, local_env)
        except _ReturnSignal as signal:
            return signal.value
        return None


def symbolic_execute(fn: Callable, resources: Sequence[ResourceModel],
                     helpers: Mapping[str, Callable] | None = None,
                     max_paths: int = MAX_PATHS,
                     state_models: Mapping[str, "DeviceStateModel"] | None = None,
                     initial_states: Mapping[str, str] | None = None
                     ) -> list[PathSummary]:
    """Enumerate all paths of ``fn`` symbolically.

    ``fn``'s first parameter is the resource namespace; the rest become
    symbolic input variables named after the parameters.  ``state_models``
    adds side-effect tracking (see :mod:`repro.analysis.sideeffects`):
    stateful resource calls pay state-dependent extra energy and mutate
    device state, and each path records its ``final_states``.
    """
    tree = _function_ast(fn)
    params = [argument.arg for argument in tree.args.args]
    if not params:
        raise SymbolicExecutionError(
            "the analysed function needs a resource-namespace parameter")
    input_names = params[1:]
    summaries: list[PathSummary] = []
    pending: list[list[bool]] = [[]]
    while pending:
        forced = pending.pop()
        recorder = _Recorder(forced, state_models, initial_states)
        proxies = {model.name: _ResourceProxy(model, recorder)
                   for model in resources}
        env: dict[str, Any] = {params[0]: _Namespace(proxies)}
        for name in input_names:
            env[name] = Var(name)
        interpreter = _Interpreter(recorder, helpers or {})
        returns: Any = None
        try:
            interpreter.exec_block(tree.body, env)
        except _ReturnSignal as signal:
            returns = signal.value
        summaries.append(PathSummary(
            condition=list(recorder.condition),
            energy_terms=list(recorder.energy),
            returns=returns,
            ecvs=dict(recorder.ecvs),
            final_states=dict(recorder.device_states),
        ))
        pending.extend(recorder.pending)
        if len(summaries) + len(pending) > max_paths:
            raise SymbolicExecutionError(
                f"path explosion: more than {max_paths} paths")
    return summaries
