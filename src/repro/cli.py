"""Command-line front end: run the reproduction's experiments.

``repro-energy <command>`` (installed by the package) or
``python -m repro.cli <command>``:

* ``table1``      — the §5 experiment (GPT-2 prediction error, Table 1);
* ``mlservice``   — Fig. 1's web service, prediction vs measurement;
* ``schedulers``  — the §1 EAS comparison on bimodal transcoding;
* ``fuzzing``     — the §1 ClusterFuzz capacity-planning questions;
* ``consensus``   — the §1 Ethereum PoW/PoS comparison;
* ``calibrate``   — show a GPU profile's calibrated hardware interface;
* ``serve``       — the energy-aware gateway: admission control against
  an energy budget (``--budget "3J+0.25W"``) on a Poisson stream;
* ``bench``       — time the Monte Carlo evaluation engines (serial,
  vectorized, multi-process) on a composed stack and check that they
  produce bitwise-identical draws at a fixed seed;
* ``trace``       — evaluate Fig. 1's service through an
  :class:`~repro.core.session.EvalSession`, print the cross-layer span
  tree and write a Chrome-trace JSON (open in ``chrome://tracing``);
* ``lint``        — the static energy-bug checker: run rules
  EB101–EB106 over implementation functions carrying an
  :class:`~repro.core.contracts.EnergySpec`, with text/JSON/SARIF
  output and a baseline file for accepted findings;
* ``regress``     — the differential energy checker: fingerprint the
  same annotated implementations, diff against the committed
  ``.energy-fingerprints.json`` baseline under regression rules
  EB201–EB206, and (``--bisect GOOD..BAD``) binary-search git history
  for the first regressing commit;
* ``chaos``       — the fault-injection drill: serve a workload while a
  seeded :class:`~repro.faults.FaultPlan` breaks evaluations underneath
  the gateway, and check that graceful degradation keeps goodput above
  ``--min-goodput``;
* ``fleet``       — the multi-replica serving fleet: a trace-driven
  multi-tenant workload through N gateway replicas behind an
  energy-aware balancer, with per-tenant budgets enforced fleet-wide by
  sharded leases (optionally under replica-crash and lease faults);
* ``drift``       — the calibration-drift drill: calibrate a GPU, let
  its unit energies drift under a seeded plan, and compare a frozen
  calibration against online streaming recalibration.

``lint``, ``regress``, ``trace``, ``chaos``, ``fleet`` and ``drift``
share an exit-code convention: **0** clean, **1** findings (energy bugs
or regressions, divergence beyond ``--max-error``, goodput below
``--min-goodput``, a fleet budget violation, or a stale calibration),
**2** usage or configuration error.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.report import format_table

__all__ = ["main"]


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.calibration import calibrate
    from repro.hardware.profiles import SIM3070, SIM4090, \
        build_gpu_workstation
    from repro.llm.config import GPT2_SMALL
    from repro.llm.interface import GPT2EnergyInterface
    from repro.llm.runtime import GPT2Runtime
    from repro.measurement.nvml import NVMLSim

    rows = []
    for spec in (SIM4090, SIM3070):
        machine = build_gpu_workstation(spec)
        gpu = machine.component("gpu0")
        nvml = NVMLSim(gpu, seed=args.seed)
        model = calibrate(machine, source="gpu0", nvml=nvml,
                          seed=args.seed).model
        runtime = GPT2Runtime(gpu, GPT2_SMALL)
        interface = GPT2EnergyInterface(GPT2_SMALL, model, spec)
        rng = np.random.default_rng(3)
        errors = []
        for _ in range(args.trials):
            n_tokens = int(rng.integers(50, 201))
            prompt_len = int(rng.integers(8, 65))
            gpu.idle(0.05)
            stats = runtime.generate(prompt_len, n_tokens)
            measured = nvml.measure_interval(stats.t_start, stats.t_end)
            predicted = interface.E_generate(prompt_len,
                                             n_tokens).as_joules
            errors.append(abs(predicted - measured) / measured)
        rows.append([spec.name, f"{100 * np.mean(errors):.2f}%",
                     f"{100 * np.max(errors):.2f}%"])
    print(format_table(["GPU", "Average error", "Max error"], rows,
                       title="Table 1 (reproduced on simulated GPUs)"))
    print("paper: RTX4090 0.70% / 0.93%; RTX3070 6.06% / 8.11%")
    return 0


def _cmd_mlservice(args: argparse.Namespace) -> int:
    from repro.apps.mlservice import MLWebService, build_service_machine, \
        build_service_stack
    from repro.calibration import calibrate
    from repro.core.interface import evaluate
    from repro.workloads.traces import image_request_trace

    machine = build_service_machine()
    service = MLWebService(machine)
    model = calibrate(machine, source="gpu0", seed=args.seed).model
    rng = np.random.default_rng(11)
    for request in image_request_trace(500, rng):
        service.handle(request)
    stack = build_service_stack(service, model)
    interface = stack.exported_interface("runtime/ml_webservice")
    trace = image_request_trace(args.requests, rng)
    t_start = machine.now
    for request in trace:
        service.handle(request)
    measured = machine.ledger.energy_between(t_start, machine.now)
    predicted = sum(
        evaluate(interface("E_handle", r.image_pixels,
                           r.zero_pixels)).as_joules for r in trace)
    error = abs(predicted - measured) / measured
    print(f"{args.requests} requests: predicted {predicted:.2f} J, "
          f"measured {measured:.2f} J, error {100 * error:.1f}%")
    return 0


def _cmd_schedulers(args: argparse.Namespace) -> int:
    from repro.apps.transcode import bimodal_transcoder, steady_task
    from repro.hardware.profiles import build_big_little
    from repro.managers.base import SchedulerSim
    from repro.managers.eas import EASScheduler, PeakEASScheduler
    from repro.managers.interface_scheduler import (
        InterfaceScheduler,
        OracleScheduler,
    )

    core_names = ("little0", "little1", "little2", "little3",
                  "big0", "big1", "big2", "big3")
    tasks = ([bimodal_transcoder(f"tc{i}", burst_util=780, trough_util=40,
                                 burst_quanta=1, trough_quanta=5,
                                 phase_offset=i) for i in range(4)]
             + [steady_task("bg", 100)])
    rows = []
    for scheduler in (EASScheduler(), PeakEASScheduler(),
                      InterfaceScheduler(), OracleScheduler()):
        machine = build_big_little()
        cores = [machine.component(name) for name in core_names]
        sim = SchedulerSim(machine, cores, quantum_seconds=0.05)
        result = sim.run(scheduler, tasks, args.quanta)
        rows.append([scheduler.name, f"{result.energy_joules:.2f} J",
                     f"{result.miss_ratio:.1%}"])
    print(format_table(["scheduler", "energy", "late work"], rows,
                       title="bimodal transcoding on big.LITTLE"))
    return 0


def _cmd_fuzzing(args: argparse.Namespace) -> int:
    from repro.apps.fuzzing import (
        CapacityPlanner,
        FuzzingCampaignModel,
        FuzzingEnergyInterface,
    )

    interface = FuzzingEnergyInterface(FuzzingCampaignModel())
    planner = CapacityPlanner(interface, max_machines=150,
                              deadline_seconds=args.deadline_days * 86400)
    answer = planner.optimal_fleet(args.coverage)
    print(f"optimal fleet for {args.coverage:.0%} coverage: "
          f"{answer.optimal_machines} machines "
          f"({answer.energy}, {answer.campaign_seconds / 86400:.2f} days)")
    marginal = planner.marginal_coverage_energy(
        args.coverage - 0.05, args.coverage, answer.optimal_machines)
    print(f"marginal energy {args.coverage - 0.05:.0%} -> "
          f"{args.coverage:.0%}: {marginal}")
    return 0


def _cmd_consensus(args: argparse.Namespace) -> int:
    from repro.apps.consensus import (
        PoSEnergyInterface,
        PoSNetworkSpec,
        PoWEnergyInterface,
        PoWNetworkSpec,
        merge_savings,
    )

    pow_iface = PoWEnergyInterface(PoWNetworkSpec())
    pos_iface = PoSEnergyInterface(PoSNetworkSpec())
    print(f"PoW: {pow_iface.E_secure_day()} per day")
    print(f"PoS: {pos_iface.E_secure_day()} per day")
    print(f"reduction: {merge_savings():.4%} (paper: 99.95%)")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.calibration import calibrate
    from repro.hardware.profiles import SIM3070, SIM4090, \
        build_gpu_workstation

    spec = {"sim4090": SIM4090, "sim3070": SIM3070}[args.gpu]
    machine = build_gpu_workstation(spec)
    epoch = calibrate(machine, source="gpu0", seed=args.seed)
    print(epoch.model.describe())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.errors import ServingError
    from repro.serving import (
        EnergyAwareGateway,
        EnergyBudget,
        GatewayConfig,
        HardBudgetPolicy,
        ProbabilisticPolicy,
        QuantileBudgetPolicy,
        SLOAwarePolicy,
        attribution_report,
        build_adapter,
        format_report,
        parse_budget_spec,
        zip_arrivals,
    )
    from repro.sim.rng import RngFactory
    from repro.workloads import (
        generation_trace,
        kv_request_trace,
        poisson_arrivals,
        repeated_image_trace,
    )

    try:
        spec = parse_budget_spec(args.budget)
    except ServingError as exc:
        print(f"repro-energy serve: {exc}", file=sys.stderr)
        return 2
    if args.slo is not None and args.slo <= 0:
        print("repro-energy serve: --slo must be positive", file=sys.stderr)
        return 2
    if args.rate <= 0:
        print("repro-energy serve: --rate must be positive", file=sys.stderr)
        return 2
    if args.horizon <= 0:
        print("repro-energy serve: --horizon must be positive", file=sys.stderr)
        return 2

    rng_factory = RngFactory(args.seed)
    try:
        adapter = build_adapter(args.app, seed=args.seed)
    except ServingError as exc:
        print(f"repro-energy serve: {exc}", file=sys.stderr)
        return 2
    budget = EnergyBudget("node", capacity_joules=spec.capacity_joules,
                          refill_watts=spec.refill_watts)
    if args.policy == "hard":
        policy = HardBudgetPolicy()
    elif args.policy == "prob":
        policy = ProbabilisticPolicy(rng_factory.stream("admission"))
    elif args.policy == "quantile":
        policy = QuantileBudgetPolicy()
    else:
        policy = SLOAwarePolicy(args.slo if args.slo is not None else 0.5)

    times = poisson_arrivals(args.rate, args.horizon, rng_factory)
    trace_rng = rng_factory.stream("trace")
    if args.app == "mlservice":
        requests = repeated_image_trace(len(times), trace_rng)
    elif args.app == "kvstore":
        requests = kv_request_trace(len(times), trace_rng, put_fraction=0.7)
    else:
        requests = generation_trace(len(times), trace_rng)

    quantile = args.quantile if args.policy == "quantile" else None
    from repro.core.policy import Policy
    gateway = EnergyAwareGateway(
        adapter, budget, policy,
        config=GatewayConfig(max_queue=args.queue,
                             policy=Policy(mc_engine=args.engine,
                                           admission_quantile=quantile)))
    report = gateway.serve(zip_arrivals(times, requests),
                           horizon=args.horizon)
    print(format_report(report, title=f"serving report ({args.app}, "
                                      f"{policy.name})"))
    if args.attribution:
        print()
        print(attribution_report(adapter.machine.ledger, gateway.metrics))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.core.errors import ServingError
    from repro.core.policy import (
        DeadlinePolicy,
        DegradePolicy,
        Policy,
        RetryPolicy,
    )
    from repro.faults import FaultPlan
    from repro.serving import (
        EnergyAwareGateway,
        EnergyBudget,
        GatewayConfig,
        QuantileBudgetPolicy,
        build_adapter,
        format_report,
        parse_budget_spec,
        zip_arrivals,
    )
    from repro.sim.rng import RngFactory
    from repro.workloads import (
        generation_trace,
        kv_request_trace,
        poisson_arrivals,
        repeated_image_trace,
    )

    if not 0.0 <= args.fault_rate < 1.0:
        print("repro-energy chaos: --fault-rate must be in [0, 1)",
              file=sys.stderr)
        return 2
    if not 0.0 <= args.min_goodput <= 1.0:
        print("repro-energy chaos: --min-goodput must be in [0, 1]",
              file=sys.stderr)
        return 2
    if args.rate <= 0 or args.horizon <= 0:
        print("repro-energy chaos: --rate and --horizon must be positive",
              file=sys.stderr)
        return 2
    try:
        spec = parse_budget_spec(args.budget)
        adapter = build_adapter(args.app, seed=args.seed)
    except ServingError as exc:
        print(f"repro-energy chaos: {exc}", file=sys.stderr)
        return 2

    rng_factory = RngFactory(args.seed)
    budget = EnergyBudget("node", capacity_joules=spec.capacity_joules,
                          refill_watts=spec.refill_watts)
    policy = Policy(
        mc_engine=args.engine,
        retry=RetryPolicy(max_attempts=args.retries),
        deadline=DeadlinePolicy(timeout_s=args.deadline),
        degrade=DegradePolicy(),
    )
    gateway = EnergyAwareGateway(
        adapter, budget, QuantileBudgetPolicy(),
        config=GatewayConfig(max_queue=args.queue, policy=policy))
    plan = FaultPlan.uniform(args.fault_rate, entropy=args.seed)
    gateway.inject_faults(plan)

    times = poisson_arrivals(args.rate, args.horizon, rng_factory)
    trace_rng = rng_factory.stream("trace")
    if args.app == "mlservice":
        requests = repeated_image_trace(len(times), trace_rng)
    elif args.app == "kvstore":
        requests = kv_request_trace(len(times), trace_rng, put_fraction=0.7)
    else:
        requests = generation_trace(len(times), trace_rng)

    report = gateway.serve(zip_arrivals(times, requests),
                           horizon=args.horizon)
    print(format_report(
        report, title=f"chaos report ({args.app}, "
                      f"{100 * args.fault_rate:.0f}% fault plan, "
                      f"seed {args.seed})"))
    if report.goodput < args.min_goodput:
        print(f"repro-energy chaos: goodput {report.goodput:.1%} below "
              f"--min-goodput {args.min_goodput:.1%} — degradation did "
              f"not hold the line", file=sys.stderr)
        return 1
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.core.errors import BudgetError, ServingError
    from repro.core.policy import Policy
    from repro.faults import FaultPlan, FaultSpec
    from repro.fleet import EnergyGatewayFleet, format_fleet_report
    from repro.serving import parse_budget_spec
    from repro.sim.rng import RngFactory
    from repro.workloads import (
        diurnal_arrivals,
        flash_crowd_arrivals,
        fleet_request_trace,
        poisson_arrivals,
        zipf_tenant_trace,
    )

    if args.replicas < 1:
        print("repro-energy fleet: --replicas must be >= 1", file=sys.stderr)
        return 2
    if args.tenants < 1:
        print("repro-energy fleet: --tenants must be >= 1", file=sys.stderr)
        return 2
    if args.rate <= 0 or args.horizon <= 0:
        print("repro-energy fleet: --rate and --horizon must be positive",
              file=sys.stderr)
        return 2
    if not 0.0 <= args.fault_rate < 1.0:
        print("repro-energy fleet: --fault-rate must be in [0, 1)",
              file=sys.stderr)
        return 2
    if not 0.0 <= args.min_goodput <= 1.0:
        print("repro-energy fleet: --min-goodput must be in [0, 1]",
              file=sys.stderr)
        return 2

    rng = RngFactory(args.seed)
    if args.workload == "poisson":
        times = poisson_arrivals(args.rate, args.horizon,
                                 rng.stream("arrivals"))
    elif args.workload == "flash":
        crowd = (0.4 * args.horizon, 0.2 * args.horizon)
        times = flash_crowd_arrivals(args.rate, 4.0 * args.rate, [crowd],
                                     args.horizon, rng.stream("arrivals"))
    else:
        times = diurnal_arrivals(args.rate, args.horizon,
                                 rng.stream("arrivals"),
                                 period_seconds=args.horizon)
    tenants = zipf_tenant_trace(len(times), args.tenants, rng)
    requests = fleet_request_trace(times, tenants, rng)

    try:
        budgets = {f"tenant{i}": parse_budget_spec(args.budget)
                   for i in range(args.tenants)}
        policy = Policy(replicas=args.replicas, balancer=args.balancer,
                        lease_ttl_s=args.lease_ttl)
        fleet = EnergyGatewayFleet(budgets, policy=policy,
                                   entropy=args.seed)
    except (BudgetError, ServingError) as exc:
        print(f"repro-energy fleet: {exc}", file=sys.stderr)
        return 2
    if args.fault_rate > 0:
        fleet.inject_faults(FaultPlan(
            (FaultSpec("fleet.replica", args.fault_rate),
             FaultSpec("fleet.lease", args.fault_rate)),
            entropy=args.seed))

    report = fleet.serve(requests, horizon_s=args.horizon)
    print(format_fleet_report(
        report, title=f"fleet report ({args.workload} workload, "
                      f"{args.tenants} tenants, seed {args.seed})"))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json(indent=2) + "\n")
        print(f"fleet report JSON written to {args.json}")
    failed = False
    if report.violations:
        print(f"repro-energy fleet: {len(report.violations)} tenant(s) "
              f"overdrew their fleet-wide allowance — the budget "
              f"invariant broke", file=sys.stderr)
        failed = True
    if report.goodput < args.min_goodput:
        print(f"repro-energy fleet: goodput {report.goodput:.1%} below "
              f"--min-goodput {args.min_goodput:.1%}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def _cmd_drift(args: argparse.Namespace) -> int:
    from repro.calibration import format_drift_report, run_drift_scenario
    from repro.core.errors import MeasurementError
    from repro.hardware.profiles import SIM3070, SIM4090

    if args.windows < 1:
        print("repro-energy drift: --windows must be >= 1", file=sys.stderr)
        return 2
    if args.tolerance <= 0:
        print("repro-energy drift: --tolerance must be positive",
              file=sys.stderr)
        return 2

    spec = {"sim4090": SIM4090, "sim3070": SIM3070}[args.gpu]
    try:
        report = run_drift_scenario(
            spec, windows=args.windows, preset=args.preset,
            seed=args.seed, tolerance=args.tolerance,
            recalibrate=not args.freeze)
    except MeasurementError as exc:
        print(f"repro-energy drift: {exc}", file=sys.stderr)
        return 2
    print(format_drift_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"drift report JSON written to {args.json}")
    # The serving leg is the recalibrated one by default; --freeze turns
    # recalibration off, so staleness there means the batch calibration
    # did not survive the drift.
    if report.recal_stale:
        leg = "frozen" if args.freeze else "recalibrated"
        print(f"repro-energy drift: the {leg} calibration went stale "
              f"(residual {report.recal_residual:.3f} > tolerance "
              f"{report.tolerance:.3f})", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import numpy as _np

    from repro.workloads.mcbench import run_engine_bench

    if args.samples <= 0:
        print("repro-energy bench: --samples must be positive",
              file=sys.stderr)
        return 2

    engines = ([args.engine] if args.engine != "all"
               else ["serial", "vector", "parallel"])
    results = [run_engine_bench(name, n_samples=args.samples,
                                seed=args.seed) for name in engines]

    rows = []
    baseline = results[0]
    for result in results:
        speedup = baseline["seconds"] / result["seconds"] \
            if result["seconds"] else float("inf")
        identical = _np.array_equal(baseline["draws"], result["draws"])
        rows.append([
            result["engine"],
            f"{result['seconds'] * 1e3:.1f} ms",
            f"{result['n_samples'] / result['seconds']:,.0f}/s",
            f"{result['mean_joules']:.6g} J",
            f"{result['p99_joules']:.6g} J",
            (f"{speedup:.1f}x" if result is not baseline else "-"),
            "yes" if identical else "NO",
        ])
    print(format_table(
        ["engine", "wall time", "samples/s", "mean", "p99",
         f"vs {baseline['engine']}", "bitwise=="],
        rows,
        title=f"Monte Carlo engines, n_samples={args.samples}, "
              f"seed={args.seed}"))
    if any(row[-1] == "NO" for row in rows):
        print("repro-energy bench: engines disagree at a fixed seed — "
              "the replay contract is broken", file=sys.stderr)
        return 1
    return 0


def _compile_targets() -> dict:
    """Representative energy queries per compile target.

    Maps target name → zero-arg builder returning
    ``(interface_or_list, [(method, args), ...])``; builders are lazy so
    ``repro-energy compile bench`` does not pay for the ML stack.
    """
    def bench():
        from repro.workloads.mcbench import BENCH_OPS, build_bench_interface
        iface = build_bench_interface()
        return [(iface, [("E_handle", (BENCH_OPS,)), ("E_wait", (1.0,))])]

    def consensus():
        from repro.apps.consensus import (PoSEnergyInterface, PoSNetworkSpec,
                                          PoWEnergyInterface, PoWNetworkSpec)
        return [(PoWEnergyInterface(PoWNetworkSpec()),
                 [("E_secure_day", ()), ("E_per_block", ())]),
                (PoSEnergyInterface(PoSNetworkSpec()),
                 [("E_secure_day", ()), ("E_per_block", ())])]

    def crypto():
        from repro.apps.crypto import ConstantTimeInterface, EarlyExitInterface
        return [(ConstantTimeInterface(2e-9), [("E_verify", ())]),
                (EarlyExitInterface(2e-9), [("E_verify", ())])]

    def drone():
        from repro.apps.drone import DroneSpec, MissionEnergyInterface
        return [(MissionEnergyInterface(DroneSpec()),
                 [("E_leg", (3000.0, 60.0, 0.5, 12.0))])]

    def fuzzing():
        from repro.apps.fuzzing import (FuzzingCampaignModel,
                                        FuzzingEnergyInterface)
        return [(FuzzingEnergyInterface(FuzzingCampaignModel()),
                 [("E_campaign", (0.8, 32))])]

    def kvstore():
        from repro.apps.kvstore import KVStoreEnergyInterface
        from repro.hardware.storage import SSD
        iface = KVStoreEnergyInterface(SSD("ssd0"))
        return [(iface, [("E_put", ()), ("E_get", ())])]

    def mlservice():
        from repro.apps.mlservice import (MLWebService, build_service_machine,
                                          build_service_stack)
        from repro.calibration import calibrate
        machine = build_service_machine()
        service = MLWebService(machine)
        stack = build_service_stack(
            service, calibrate(machine, source="gpu0", seed=5).model)
        targets = []
        for layer in stack.layers:
            for resource in layer.resources():
                iface = resource.energy_interface
                if iface.name == "redis_cache":
                    targets.append((iface, [("E_lookup", (16384,))]))
                elif iface.name == "ml_webservice":
                    targets.append((iface, [("E_handle", (240000, 60000))]))
        return targets

    return {"bench": bench, "consensus": consensus, "crypto": crypto,
            "drone": drone, "fuzzing": fuzzing, "kvstore": kvstore,
            "mlservice": mlservice}


def _cmd_compile(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.compile import CompileCache, CompiledInterface

    builders = _compile_targets()
    names = args.targets or sorted(builders)
    unknown = [name for name in names if name not in builders]
    if unknown:
        print(f"repro-energy compile: unknown target(s) "
              f"{', '.join(sorted(unknown))} "
              f"(known: {', '.join(sorted(builders))})", file=sys.stderr)
        return 2

    cache = CompileCache()
    rows: list[dict] = []
    for name in names:
        for interface, queries in builders[name]():
            compiled = CompiledInterface(interface, cache=cache)
            for method, call_args in queries:
                compiled.compiled(method, *call_args)
            for row in compiled.report():
                row["target"] = name
                rows.append(row)

    fallbacks = [row for row in rows if row["tier"] == "sampled"]
    if args.format == "json":
        document = json.dumps({
            "targets": names,
            "queries": rows,
            "tiers": {tier: sum(1 for r in rows if r["tier"] == tier)
                      for tier in ("analytic", "kernel", "sampled")},
        }, indent=2)
    else:
        table = []
        for row in rows:
            if row["tier"] == "sampled":
                detail = row["reason"]
            elif row["tier"] == "analytic":
                detail = f"mean {row['mean_j']:.6g} J"
            else:
                detail = row.get("kernel", "")
            if len(detail) > 60:
                detail = detail[:57] + "..."
            table.append([row["target"], row["interface"], row["method"],
                          row["tier"], detail])
        document = format_table(
            ["target", "interface", "method", "tier", "detail"], table,
            title=f"compiled {len(rows)} quer"
                  f"{'y' if len(rows) == 1 else 'ies'}: "
                  f"{sum(1 for r in rows if r['tier'] == 'analytic')} "
                  f"analytic, "
                  f"{sum(1 for r in rows if r['tier'] == 'kernel')} kernel, "
                  f"{len(fallbacks)} sampled fallback(s)")
    if args.output:
        Path(args.output).write_text(document + "\n", encoding="utf-8")
        print(f"{args.format} report written to {args.output}")
    else:
        print(document)
    return 1 if fallbacks else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.lint import (
        format_baseline,
        lint_paths,
        load_baseline,
        render_text,
        to_json,
        to_sarif,
    )
    from repro.core.errors import LintError

    select = _rule_ids(args.select)
    ignore = _rule_ids(args.ignore)
    if _reject_unknown_rules("repro-energy lint", select, ignore):
        return 2

    try:
        findings, checked = lint_paths(args.targets)
    except LintError as exc:
        print(f"repro-energy lint: {exc}", file=sys.stderr)
        return 2

    if select:
        findings = [f for f in findings if f.rule in set(select)]
    if ignore:
        findings = [f for f in findings if f.rule not in set(ignore)]

    if args.write_baseline:
        Path(args.baseline).write_text(format_baseline(findings),
                                       encoding="utf-8")
        print(f"baseline with {len(findings)} finding(s) written to "
              f"{args.baseline}")
        return 0

    suppressed = 0
    baseline_path = Path(args.baseline)
    if baseline_path.is_file():
        suppressions = load_baseline(baseline_path)
        kept = [f for f in findings if f.fingerprint() not in suppressions]
        suppressed = len(findings) - len(kept)
        findings = kept

    if args.format == "json":
        document = to_json(findings, checked, suppressed)
    elif args.format == "sarif":
        document = to_sarif(findings)
    else:
        document = render_text(findings, checked, suppressed)
    if args.output:
        Path(args.output).write_text(document + "\n", encoding="utf-8")
        summary = render_text(findings, checked, suppressed).splitlines()[-1]
        print(summary)
        print(f"{args.format} report written to {args.output}")
    else:
        print(document)
    return 1 if findings else 0


def _rule_ids(values: list[str] | None) -> list[str]:
    """Flatten repeated/comma-separated rule-ID options."""
    ids: list[str] = []
    for value in values or []:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def _reject_unknown_rules(tool: str, select: list[str],
                          ignore: list[str]) -> bool:
    """Usage-error (True) on rule IDs outside the shared EB registry.

    Both ``lint`` (EB1xx) and ``regress`` (EB2xx) draw from the same
    :data:`repro.analysis.lint.RULES` vocabulary, so the error lists
    every valid code.
    """
    from repro.analysis.lint import RULES

    for option, rule_ids in (("--select", select), ("--ignore", ignore)):
        for rule_id in rule_ids:
            if rule_id not in RULES:
                print(f"{tool}: unknown rule {rule_id!r} for {option} "
                      f"(known: {', '.join(sorted(RULES))})",
                      file=sys.stderr)
                return True
    return False


def _cmd_regress(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.fingerprint import (
        fingerprint_paths,
        load_fingerprints,
    )
    from repro.analysis.lint import to_json, to_sarif
    from repro.analysis.regress import (
        bisect_range,
        diff_fingerprints,
        render_regress_text,
    )
    from repro.core.errors import LintError, RegressError

    select = _rule_ids(args.select)
    ignore = _rule_ids(args.ignore)
    if _reject_unknown_rules("repro-energy regress", select, ignore):
        return 2
    if args.tolerance < 0:
        print("repro-energy regress: --tolerance must be >= 0",
              file=sys.stderr)
        return 2

    if args.bisect:
        try:
            result = bisect_range(Path.cwd(), args.bisect, args.targets,
                                  tolerance=args.tolerance,
                                  select=select, ignore=ignore, log=print)
        except RegressError as exc:
            print(f"repro-energy regress: {exc}", file=sys.stderr)
            return 2
        if result.ok:
            print(f"range {args.bisect} is clean "
                  f"({len(result.steps)} probe(s))")
            return 0
        print(f"first regressing commit: {result.first_bad} "
              f"({len(result.steps)} probe(s))")
        print(render_regress_text(result.findings,
                                  len({f.fingerprint()
                                       for f in result.findings})))
        return 1

    try:
        current = fingerprint_paths(args.targets)
    except LintError as exc:
        print(f"repro-energy regress: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        current.write(args.baseline)
        print(f"fingerprint baseline with {len(current.interfaces)} "
              f"interface(s) written to {args.baseline}")
        return 0

    try:
        baseline = load_fingerprints(args.baseline)
        findings = diff_fingerprints(baseline, current,
                                     tolerance=args.tolerance)
    except RegressError as exc:
        print(f"repro-energy regress: {exc}", file=sys.stderr)
        return 2

    if select:
        findings = [f for f in findings if f.rule in set(select)]
    if ignore:
        findings = [f for f in findings if f.rule not in set(ignore)]

    compared = len(current.interfaces)
    if args.format == "json":
        document = to_json(findings, compared,
                           tool="repro-energy regress")
    elif args.format == "sarif":
        document = to_sarif(findings, tool="repro-energy regress")
    else:
        document = render_regress_text(findings, compared)
    if args.output:
        Path(args.output).write_text(document + "\n", encoding="utf-8")
        print(render_regress_text(findings, compared).splitlines()[-1])
        print(f"{args.format} report written to {args.output}")
    else:
        print(document)
    return 1 if findings else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    if args.requests <= 0:
        print("repro-energy trace: --requests must be positive",
              file=sys.stderr)
        return 2
    if args.max_error is not None and args.max_error <= 0:
        print("repro-energy trace: --max-error must be positive",
              file=sys.stderr)
        return 2

    from repro.apps.mlservice import MLWebService, build_service_machine, \
        build_service_stack
    from repro.calibration import calibrate
    from repro.core.interface import evaluate
    from repro.core.session import MemoHook, SpanRecorder, chrome_trace, \
        layer_breakdown, render_span_tree
    from repro.core.units import as_joules
    from repro.workloads.traces import image_request_trace, \
        repeated_image_trace

    machine = build_service_machine()
    service = MLWebService(machine)
    model = calibrate(machine, source="gpu0", seed=args.seed).model
    rng = np.random.default_rng(11)
    for request in image_request_trace(500, rng):
        service.handle(request)

    stack = build_service_stack(service, model)
    interface = stack.exported_interface("runtime/ml_webservice")
    memo = MemoHook()
    recorder = SpanRecorder()
    session = stack.session(mode="expected", hooks=[memo, recorder])

    trace = repeated_image_trace(args.requests, rng)
    t_start = machine.now
    for request in trace:
        service.handle(request)
    t_end = machine.now
    predicted = sum(
        as_joules(evaluate(interface("E_handle", r.image_pixels,
                                     r.zero_pixels), session=session))
        for r in trace)

    print("one request through the stack "
          "(service evaluation, layers in brackets):")
    full = next((root for root in recorder.roots if root.children),
                recorder.last_root)
    print(render_span_tree(full))
    print()

    # Per-layer divergence: map ledger channels onto the stack's layers.
    ledger = machine.ledger
    measured_gpu = ledger.energy_between(t_start, t_end, component="gpu0")
    measured_os = (ledger.energy_between(t_start, t_end, component="dram0")
                   + ledger.energy_between(t_start, t_end, component="nic0"))
    measured_total = ledger.energy_between(t_start, t_end)
    layers = layer_breakdown(recorder.roots)
    rows = []
    worst_error = 0.0
    for layer, measured in (("hardware", measured_gpu),
                            ("os", measured_os),
                            ("runtime", measured_total - measured_gpu
                             - measured_os)):
        layer_predicted = layers.get(layer, 0.0)
        error = (abs(layer_predicted - measured) / measured
                 if measured else 0.0)
        worst_error = max(worst_error, error)
        rows.append([layer, f"{layer_predicted:.2f} J",
                     f"{measured:.2f} J", f"{100 * error:.1f}%"])
    print(format_table(
        ["layer", "predicted", "measured", "error"], rows,
        title=f"per-layer energy over {args.requests} requests "
              f"(predicted {predicted:.2f} J, measured "
              f"{measured_total:.2f} J)"))
    print("note: the interface charges all static power at the service "
          "level (runtime row), while the ledger meters static draw on "
          "each device — per-layer attribution diverges even where the "
          "totals agree.")
    print(f"session memo: {memo.hits}/{memo.lookups} hits "
          f"({memo.hit_rate:.0%})")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(recorder.roots), fh)
        print(f"chrome trace written to {args.out} "
              f"(open in chrome://tracing)")
    if args.max_error is not None and 100 * worst_error > args.max_error:
        print(f"repro-energy trace: worst per-layer error "
              f"{100 * worst_error:.1f}% exceeds --max-error "
              f"{args.max_error:g}%", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-energy`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-energy",
        description="Experiments from 'The Case for Energy Clarity' "
                    "(HotOS 2025), reproduced on simulated hardware.",
        epilog="exit codes (lint, regress, trace): 0 = clean, "
               "1 = findings (energy bugs, regressions, or divergence "
               "beyond --max-error), 2 = usage or configuration error.")
    parser.add_argument("--seed", type=int, default=7)
    commands = parser.add_subparsers(dest="command", required=True)

    table1 = commands.add_parser("table1", help="the §5 experiment")
    table1.add_argument("--trials", type=int, default=6)
    table1.set_defaults(handler=_cmd_table1)

    mlservice = commands.add_parser("mlservice", help="Fig. 1's service")
    mlservice.add_argument("--requests", type=int, default=300)
    mlservice.set_defaults(handler=_cmd_mlservice)

    schedulers = commands.add_parser("schedulers",
                                     help="the §1 EAS comparison")
    schedulers.add_argument("--quanta", type=int, default=240)
    schedulers.set_defaults(handler=_cmd_schedulers)

    fuzzing = commands.add_parser("fuzzing",
                                  help="the §1 ClusterFuzz questions")
    fuzzing.add_argument("--coverage", type=float, default=0.95)
    fuzzing.add_argument("--deadline-days", type=float, default=3.0)
    fuzzing.set_defaults(handler=_cmd_fuzzing)

    consensus = commands.add_parser("consensus",
                                    help="the §1 Ethereum claim")
    consensus.set_defaults(handler=_cmd_consensus)

    calibrate = commands.add_parser("calibrate",
                                    help="calibrate a GPU profile")
    calibrate.add_argument("--gpu", choices=("sim4090", "sim3070"),
                           default="sim4090")
    calibrate.set_defaults(handler=_cmd_calibrate)

    serve = commands.add_parser(
        "serve", help="energy-aware admission control")
    serve.add_argument("--app", choices=("mlservice", "kvstore", "llm"),
                       default="kvstore")
    serve.add_argument("--budget", default="0.5J+0.25W",
                       help='budget spec, e.g. "3J+0.5W", "100J" or "2W"')
    serve.add_argument("--rate", type=float, default=300.0,
                       help="Poisson arrival rate (requests/s)")
    serve.add_argument("--horizon", type=float, default=10.0,
                       help="simulated seconds of traffic")
    serve.add_argument("--policy",
                       choices=("hard", "prob", "slo", "quantile"),
                       default="hard")
    serve.add_argument("--queue", type=int, default=64,
                       help="queue bound before shedding")
    serve.add_argument("--slo", type=float, default=None,
                       help="latency SLO in seconds (slo policy)")
    serve.add_argument("--engine",
                       choices=("serial", "vector", "parallel"),
                       default="vector",
                       help="Monte Carlo engine for admission predictions")
    serve.add_argument("--quantile", type=float, default=0.95,
                       help="tail level for the quantile policy")
    serve.add_argument("--attribution", action="store_true",
                       help="also print the per-tag attribution report")
    serve.set_defaults(handler=_cmd_serve)

    trace = commands.add_parser(
        "trace", help="cross-layer span trace of Fig. 1's service",
        epilog="exit codes: 0 = clean, 1 = per-layer divergence beyond "
               "--max-error, 2 = usage error.")
    trace.add_argument("--requests", type=int, default=40)
    trace.add_argument("--out", default="mlservice_trace.json",
                       help="Chrome-trace JSON output path ('' to skip)")
    trace.add_argument("--max-error", type=float, default=None,
                       help="fail (exit 1) when any layer's prediction "
                            "error exceeds this percentage")
    trace.set_defaults(handler=_cmd_trace)

    chaos = commands.add_parser(
        "chaos", help="fault-injection drill on the serving gateway",
        epilog="exit codes: 0 = clean, 1 = goodput below --min-goodput, "
               "2 = usage or configuration error.")
    chaos.add_argument("--app", choices=("mlservice", "kvstore", "llm"),
                       default="kvstore")
    chaos.add_argument("--budget", default="0.5J+0.25W",
                       help='budget spec, e.g. "3J+0.5W", "100J" or "2W"')
    chaos.add_argument("--rate", type=float, default=300.0,
                       help="Poisson arrival rate (requests/s)")
    chaos.add_argument("--horizon", type=float, default=10.0,
                       help="simulated seconds of traffic")
    chaos.add_argument("--queue", type=int, default=64,
                       help="queue bound before shedding")
    chaos.add_argument("--engine",
                       choices=("serial", "vector", "parallel"),
                       default="vector",
                       help="Monte Carlo engine for admission predictions")
    chaos.add_argument("--fault-rate", type=float, default=0.05,
                       help="per-site injection probability (default 5%%)")
    chaos.add_argument("--retries", type=int, default=3,
                       help="retry budget per evaluation")
    chaos.add_argument("--deadline", type=float, default=0.5,
                       help="simulated per-evaluation deadline in seconds")
    chaos.add_argument("--min-goodput", type=float, default=0.9,
                       help="fail (exit 1) below this served fraction")
    chaos.set_defaults(handler=_cmd_chaos)

    fleet = commands.add_parser(
        "fleet", help="multi-replica serving fleet under trace-driven load",
        epilog="exit codes: 0 = clean, 1 = budget-invariant violation or "
               "goodput below --min-goodput, 2 = usage or configuration "
               "error.")
    fleet.add_argument("--replicas", type=int, default=4,
                       help="gateway replica count (default: %(default)s)")
    fleet.add_argument("--balancer",
                       choices=("round-robin", "least-energy",
                                "power-of-two"),
                       default="least-energy",
                       help="load-balancing strategy")
    fleet.add_argument("--tenants", type=int, default=3,
                       help="tenant count (Zipf-skewed traffic)")
    fleet.add_argument("--budget", default="5J+2W",
                       help='per-tenant budget spec, e.g. "5J+2W"')
    fleet.add_argument("--rate", type=float, default=500.0,
                       help="mean arrival rate (requests/s)")
    fleet.add_argument("--horizon", type=float, default=60.0,
                       help="simulated seconds of traffic")
    fleet.add_argument("--workload",
                       choices=("diurnal", "poisson", "flash"),
                       default="diurnal",
                       help="arrival shape (default: %(default)s)")
    fleet.add_argument("--lease-ttl", type=float, default=None,
                       help="budget-shard lease TTL in simulated seconds")
    fleet.add_argument("--fault-rate", type=float, default=0.0,
                       help="replica-crash / lease-fault probability")
    fleet.add_argument("--min-goodput", type=float, default=0.0,
                       help="fail (exit 1) below this served fraction")
    fleet.add_argument("--json", default=None,
                       help="also write the report JSON here")
    fleet.set_defaults(handler=_cmd_fleet)

    drift = commands.add_parser(
        "drift", help="calibration drift vs streaming recalibration",
        epilog="exit codes: 0 = the serving calibration stayed fresh, "
               "1 = it went stale under drift, 2 = usage or "
               "configuration error.")
    drift.add_argument("--gpu", choices=("sim4090", "sim3070"),
                       default="sim4090")
    drift.add_argument("--preset", choices=("none", "gentle", "harsh"),
                       default="gentle",
                       help="drift severity (default: %(default)s)")
    drift.add_argument("--windows", type=int, default=8,
                       help="serving windows to simulate "
                            "(default: %(default)s)")
    drift.add_argument("--tolerance", type=float, default=0.05,
                       help="EWMA residual tolerance before the "
                            "calibration counts as stale "
                            "(default: %(default)s)")
    drift.add_argument("--freeze", action="store_true",
                       help="disable recalibration: serve the whole run "
                            "on the batch calibration")
    drift.add_argument("--json", default=None,
                       help="also write the drift report JSON here")
    drift.set_defaults(handler=_cmd_drift)

    bench = commands.add_parser(
        "bench", help="compare the Monte Carlo evaluation engines",
        epilog="exit codes: 0 = clean, 1 = engines disagree at a fixed "
               "seed, 2 = usage error.")
    bench.add_argument("--engine",
                       choices=("serial", "vector", "parallel", "all"),
                       default="all",
                       help="which engine to time (default: all three)")
    bench.add_argument("--samples", type=int, default=20000,
                       help="Monte Carlo samples per evaluation")
    bench.set_defaults(handler=_cmd_bench)

    compile_cmd = commands.add_parser(
        "compile", help="compile energy interfaces to analytic/kernel form",
        epilog="exit codes: 0 = every query compiled (analytic or "
               "kernel), 1 = at least one query fell back to Monte Carlo "
               "sampling, 2 = usage error.")
    compile_cmd.add_argument("targets", nargs="*",
                             help="interface sets to compile (default: "
                                  "all of bench, consensus, crypto, "
                                  "drone, fuzzing, kvstore, mlservice)")
    compile_cmd.add_argument("--format", choices=("text", "json"),
                             default="text")
    compile_cmd.add_argument("--output", default=None,
                             help="write the report here instead of stdout")
    compile_cmd.set_defaults(handler=_cmd_compile)

    lint = commands.add_parser(
        "lint", help="static energy-bug checker (rules EB101-EB106)",
        epilog="exit codes: 0 = clean, 1 = findings, 2 = usage or "
               "configuration error.")
    lint.add_argument("targets", nargs="+",
                      help="files, directories or dotted module names of "
                           "implementations carrying @energy_spec")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text")
    lint.add_argument("--output", default=None,
                      help="write the report here instead of stdout")
    lint.add_argument("--select", action="append", metavar="RULES",
                      help="only these rule IDs (repeatable, "
                           "comma-separable)")
    lint.add_argument("--ignore", action="append", metavar="RULES",
                      help="drop these rule IDs (repeatable, "
                           "comma-separable)")
    lint.add_argument("--baseline", default=".energy-lint.baseline",
                      help="baseline file of accepted findings "
                           "(default: %(default)s)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write the current findings to --baseline and "
                           "exit 0")
    lint.set_defaults(handler=_cmd_lint)

    regress = commands.add_parser(
        "regress",
        help="differential energy checker (rules EB201-EB206)",
        epilog="exit codes: 0 = no regression, 1 = regressions found, "
               "2 = usage or configuration error.")
    regress.add_argument("targets", nargs="*", default=["src/repro/apps"],
                         help="files, directories or dotted module names "
                              "of implementations carrying @energy_spec "
                              "(default: src/repro/apps)")
    regress.add_argument("--format", choices=("text", "json", "sarif"),
                         default="text")
    regress.add_argument("--output", default=None,
                         help="write the report here instead of stdout")
    regress.add_argument("--select", action="append", metavar="RULES",
                         help="only these rule IDs (repeatable, "
                              "comma-separable)")
    regress.add_argument("--ignore", action="append", metavar="RULES",
                         help="drop these rule IDs (repeatable, "
                              "comma-separable)")
    regress.add_argument("--baseline",
                         default=".energy-fingerprints.json",
                         help="committed fingerprint baseline "
                              "(default: %(default)s)")
    regress.add_argument("--write-baseline", action="store_true",
                         help="fingerprint the targets, write the "
                              "baseline and exit 0")
    regress.add_argument("--tolerance", type=float, default=0.05,
                         help="fractional worst-case growth tolerated "
                              "before EB201 fires (default: %(default)s)")
    regress.add_argument("--bisect", metavar="GOOD..BAD", default=None,
                         help="binary-search this commit range for the "
                              "first regression against GOOD")
    regress.set_defaults(handler=_cmd_regress)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
