"""The session hook that turns a :class:`FaultPlan` into live failures.

Injection happens at the *keyed-evaluation boundary* — inside
:meth:`EvalSession._evaluate_call`'s hook loop, in the parent process,
before any engine runs.  That placement is what keeps injection
replayable across engines: serial, vector and parallel runs make exactly
the same sequence of keyed evaluations, so they consult the plan exactly
the same number of times.  (Evaluations nested *inside* a running
evaluation are engine-dependent — the vector engine runs the body once
where the serial engine runs it per sample — so the hook deliberately
skips them.)

The hook should sit *first* in the chain (``FaultHook.install`` inserts
it at position 0) so injections fire whether or not a later
:class:`~repro.core.session.MemoHook` would have answered from cache —
a fault at the boundary models the evaluation substrate failing, and the
cache is then explicitly a *degradation* tier, not an accident of
ordering.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.errors import FaultInjected
from repro.core.interface import _ACTIVE_SESSION
from repro.core.session import EvalHook, EvalRequest
from repro.core.units import Energy
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:
    from repro.core.session import EvalSession

__all__ = ["FaultHook"]


class FaultHook(EvalHook):
    """Injects a plan's failures into a session's keyed evaluations.

    Per top-level keyed evaluation the hook consults the plan's sites in
    a fixed order: ``latency`` (accumulates simulated seconds for the
    deadline account), then ``ecv`` and ``interface`` (raise
    :class:`~repro.core.errors.FaultInjected`), then ``hardware``
    (short-circuits the evaluation with a NaN reading, poisoning the
    result the way a garbage meter sample would).  Engine-level sites
    (``mcengine.shard``) are consulted by the engines through
    :meth:`shard_dies`.
    """

    #: Duck-typed marker ``EvalSession._index_hooks`` looks for.
    is_fault_hook = True

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._session: "EvalSession | None" = None
        self._suspended = 0
        #: Injection counts per site (what actually fired, not visits).
        self.injected: dict[str, int] = {}
        #: Simulated latency accumulated since the last drain.
        self.pending_latency_s = 0.0

    # -- wiring ---------------------------------------------------------------
    def install(self, session: "EvalSession") -> "FaultHook":
        """Insert at the head of ``session``'s hook chain and bind to it."""
        session.hooks.insert(0, self)
        session._index_hooks()
        self._session = session
        return self

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """No injections inside the block (degraded-bound evaluations)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    def _skip(self) -> bool:
        if self._suspended:
            return True
        # Inside a running evaluation of the bound session the active-
        # session contextvar points at it (set by _run, reset in its
        # finally) — those nested keyed evaluations are engine-dependent
        # and must not consume plan decisions.
        return (self._session is not None
                and _ACTIVE_SESSION.get() is self._session)

    def _fired(self, site: str) -> None:
        self.injected[site] = self.injected.get(site, 0) + 1

    # -- hook protocol --------------------------------------------------------
    def before_evaluate(self, request: EvalRequest) -> tuple[bool, Any]:
        if self._skip():
            return (False, None)
        where = f"{request.interface_name}.{request.method}"
        spec = self.plan.decide("latency")
        if spec is not None:
            self._fired("latency")
            self.pending_latency_s += spec.latency_s
        spec = self.plan.decide("ecv")
        if spec is not None:
            self._fired("ecv")
            raise FaultInjected(
                spec.message or f"injected ECV sampling error in {where}",
                site="ecv")
        spec = self.plan.decide("interface")
        if spec is not None:
            self._fired("interface")
            raise FaultInjected(
                spec.message or f"injected interface exception in {where}",
                site="interface")
        spec = self.plan.decide("hardware")
        if spec is not None:
            self._fired("hardware")
            if spec.effective_kind == "error":
                raise FaultInjected(
                    spec.message or f"injected hardware fault in {where}",
                    site="hardware")
            # A garbage reading: short-circuit the evaluation with NaN —
            # downstream code that does not guard (see ResilientEvaluator
            # and EnergyLedger.quarantine) propagates it like real life.
            return (True, Energy(float("nan")))
        return (False, None)

    # -- engine-facing sites --------------------------------------------------
    def shard_dies(self, shard: int) -> bool:
        """Consulted by :class:`~repro.core.mcengine.ParallelEngine`."""
        if self._suspended:
            return False
        spec = self.plan.decide("mcengine.shard")
        if spec is not None:
            self._fired("mcengine.shard")
            return True
        return False

    # -- consumption-side accounting ------------------------------------------
    def drain_latency(self) -> float:
        """Take (and clear) the simulated latency accumulated so far."""
        latency, self.pending_latency_s = self.pending_latency_s, 0.0
        return latency

    def stats(self) -> dict[str, Any]:
        return {
            "injected": dict(self.injected),
            "total_injected": sum(self.injected.values()),
            "visits": self.plan.visits,
        }

    def __repr__(self) -> str:
        return (f"FaultHook(injected={sum(self.injected.values())}, "
                f"plan={self.plan!r})")
