"""Retry / deadline / degrade: the consumption side of fault tolerance.

:class:`ResilientEvaluator` wraps the canonical
:func:`repro.core.interface.evaluate` with the resilience sub-policies of
a :class:`~repro.core.policy.Policy` and always returns an
:class:`EvalOutcome` instead of raising — the caller (serving gateway,
resource manager, chaos CLI) decides what a rejection means.

Time is *simulated* throughout, matching the rest of the repository:
injected latency comes from the fault hook's account, retry backoff is
charged against the same account, and the deadline compares against it.
Nothing sleeps, so a million-request chaos run finishes in seconds and
replays bit-for-bit.

The degradation ladder (:class:`~repro.core.policy.DegradePolicy`):

``cache``
    The last known-good value this evaluator produced for the same
    query (and, failing that, the session's memo hook) — the §3 story
    that an ECV regime rarely shifts between adjacent requests.
``bound``
    A worst-mode evaluation with injection suspended — the closed-form
    §4 contract bound.  Pessimistic but *sound*: admission control that
    degrades to it sheds load it might have served, never the reverse.
``reject``
    A typed :class:`~repro.core.errors.FaultInjected` /
    :class:`~repro.core.errors.DeadlineExceeded` rejection carrying the
    original fault chain.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

from repro.core.distributions import EnergyDistribution
from repro.core.errors import (
    DeadlineExceeded,
    EvaluationError,
    FaultInjected,
    ReproError,
)
from repro.core.interface import EnergyCall, evaluate
from repro.core.policy import Policy
from repro.core.session import EvalSession
from repro.core.units import AbstractEnergy, Energy

__all__ = ["EvalOutcome", "ResilientEvaluator"]

#: Statuses an outcome can carry (``accepted`` = not rejected).
STATUSES = ("ok", "degraded-cache", "degraded-bound", "rejected")


def _joules_or_none(value: Any) -> float | None:
    if isinstance(value, AbstractEnergy):
        return None
    if isinstance(value, Energy):
        return float(value.as_joules)
    if isinstance(value, EnergyDistribution):
        return float(value.mean())
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _poisoned(value: Any) -> bool:
    """True when a result carries NaN — a garbage hardware reading."""
    joules = _joules_or_none(value)
    return joules is not None and math.isnan(joules)


@dataclass
class EvalOutcome:
    """What one resilient evaluation produced, and how.

    ``status`` is one of ``"ok"`` (clean), ``"degraded-cache"`` /
    ``"degraded-bound"`` (a fallback answered), ``"rejected"`` (the
    ladder ran out).  ``faults`` holds the error codes met along the
    way; ``latency_s`` the simulated injected latency plus backoff.
    """

    value: Any
    status: str
    attempts: int = 1
    faults: tuple[str, ...] = ()
    latency_s: float = 0.0
    error: ReproError | None = None
    #: The degradation tier that answered, when status is degraded.
    tier: str | None = field(default=None)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def degraded(self) -> bool:
        return self.status in ("degraded-cache", "degraded-bound")

    @property
    def accepted(self) -> bool:
        """A usable value came back (clean or degraded)."""
        return self.status != "rejected"

    def raise_for_status(self) -> Any:
        """Return the value, raising the typed error on rejection."""
        if self.status == "rejected":
            raise (self.error if self.error is not None
                   else FaultInjected("evaluation rejected"))
        return self.value


class ResilientEvaluator:
    """Evaluate through a session under retry/deadline/degrade policies.

    One evaluator serves many queries; it remembers the last known-good
    value per query key for the ``cache`` degradation tier.  Retry
    jitter draws come from the session's fault plan (site
    ``"retry.jitter"``), so a replayed plan backs off identically.
    """

    def __init__(self, session: EvalSession,
                 policy: Policy | None = None) -> None:
        self.session = session
        self.policy = (policy if policy is not None
                       else session.policy if session.policy is not None
                       else Policy())
        self._last_good: dict[Hashable, Any] = {}

    # -- plumbing -------------------------------------------------------------
    @property
    def _hook(self):
        return self.session.fault_hook

    def _jitter_unit(self) -> float:
        hook = self._hook
        if hook is None:
            return 0.5  # neutral: no plan, no jitter
        return hook.plan.peek_uniform("retry.jitter")

    @staticmethod
    def _key(call: Any, mode: str | None,
             fingerprint: Hashable | None) -> Hashable:
        if isinstance(call, EnergyCall):
            name = getattr(call.interface, "name",
                           type(call.interface).__name__)
            args = call.args if not call.kwargs else call.args + call.kwargs
            return (name, call.method_name, args, mode, fingerprint)
        return (getattr(call, "__name__", repr(call)), mode, fingerprint)

    # -- the resilient pipeline ----------------------------------------------
    def evaluate_call(self, call: Callable[[], Any], *,
                      mode: str | None = None,
                      env: Mapping[str, Any] | None = None,
                      fingerprint: Hashable | None = None,
                      bound: Callable[[], Any] | None = None) -> EvalOutcome:
        """Evaluate ``call``; never raises for injected/typed failures.

        ``bound`` optionally supplies a caller-known closed-form bound
        (e.g. a manager's raw ``E_run``) used by the ``bound`` tier
        instead of a worst-mode re-evaluation.
        """
        retry = self.policy.retry
        deadline = self.policy.deadline
        allowed = retry.max_attempts if retry is not None else 1
        hook = self._hook
        key = self._key(call, mode, fingerprint)
        faults: list[str] = []
        latency = 0.0
        error: ReproError | None = None
        attempt = 0
        while attempt < allowed:
            attempt += 1
            try:
                value = evaluate(call, session=self.session, mode=mode,
                                 env=env, fingerprint=fingerprint)
                if hook is not None:
                    latency += hook.drain_latency()
                if _poisoned(value):
                    raise FaultInjected(
                        "hardware layer returned NaN", site="hardware")
                if (deadline is not None
                        and latency > deadline.timeout_s):
                    raise DeadlineExceeded(
                        f"evaluation took {latency:.3g} s simulated "
                        f"(deadline {deadline.timeout_s:.3g} s)",
                        deadline_s=deadline.timeout_s, elapsed_s=latency)
                self._last_good[key] = value
                return EvalOutcome(value, "ok", attempts=attempt,
                                   faults=tuple(faults), latency_s=latency)
            except ReproError as exc:
                if hook is not None:
                    latency += hook.drain_latency()
                faults.append(exc.code)
                error = exc
                if isinstance(exc, DeadlineExceeded):
                    break  # retrying cannot un-spend the deadline
                if retry is not None and attempt < allowed:
                    latency += retry.backoff_s(attempt, self._jitter_unit())
                    if (deadline is not None
                            and latency > deadline.timeout_s):
                        error = DeadlineExceeded(
                            f"retry backoff exhausted the deadline "
                            f"({latency:.3g} s > {deadline.timeout_s:.3g} s)",
                            deadline_s=deadline.timeout_s, elapsed_s=latency)
                        error.__cause__ = exc
                        faults.append(error.code)
                        break
        return self._degrade(call, key, mode=mode, env=env,
                             fingerprint=fingerprint, bound=bound,
                             attempts=attempt, faults=faults,
                             latency=latency, error=error)

    def _degrade(self, call: Callable[[], Any], key: Hashable, *,
                 mode: str | None, env: Mapping[str, Any] | None,
                 fingerprint: Hashable | None,
                 bound: Callable[[], Any] | None,
                 attempts: int, faults: list[str], latency: float,
                 error: ReproError | None) -> EvalOutcome:
        """Walk the degradation ladder once attempts are exhausted."""
        for tier in self.policy.degrade.ladder:
            if tier == "cache":
                hit, value = self._cached(key)
                if hit:
                    return EvalOutcome(value, "degraded-cache",
                                       attempts=attempts,
                                       faults=tuple(faults),
                                       latency_s=latency, error=error,
                                       tier="cache")
            elif tier == "bound":
                try:
                    value = self._bound_value(call, env=env,
                                              fingerprint=fingerprint,
                                              bound=bound)
                except ReproError:
                    continue
                if not _poisoned(value):
                    return EvalOutcome(value, "degraded-bound",
                                       attempts=attempts,
                                       faults=tuple(faults),
                                       latency_s=latency, error=error,
                                       tier="bound")
            elif tier == "reject":
                break
        if error is None:
            error = FaultInjected("evaluation failed and every "
                                  "degradation tier declined")
        return EvalOutcome(None, "rejected", attempts=attempts,
                           faults=tuple(faults), latency_s=latency,
                           error=error)

    # -- ladder tiers ---------------------------------------------------------
    def _cached(self, key: Hashable) -> tuple[bool, Any]:
        if key in self._last_good:
            return True, self._last_good[key]
        memo = self.session.memo
        if memo is not None:
            # The memo keys on the same (name, method, args, mode,
            # fingerprint) shape; a hit there is as good as ours.
            hit, value = memo.lookup(key)
            if hit and not _poisoned(value):
                return True, value
        return False, None

    def _bound_value(self, call: Callable[[], Any], *,
                     env: Mapping[str, Any] | None,
                     fingerprint: Hashable | None,
                     bound: Callable[[], Any] | None) -> Any:
        if bound is not None:
            return bound()
        hook = self._hook
        guard = hook.suspended() if hook is not None else nullcontext()
        with guard:
            value = evaluate(call, session=self.session, mode="worst",
                             env=env, fingerprint=fingerprint)
        if isinstance(value, AbstractEnergy):
            raise _AbstractBound()
        return value

    def __repr__(self) -> str:
        return (f"ResilientEvaluator(policy={self.policy!r}, "
                f"known_good={len(self._last_good)})")


class _AbstractBound(EvaluationError):
    """Internal: the bound tier produced an unusable abstract energy."""

    code = "abstract-bound"
