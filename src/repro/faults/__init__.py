"""Fault injection and graceful degradation for the evaluation stack.

The paper's interfaces must stay valid *for all inputs* — including the
inputs where the underlying resource misbehaves: radio retries, cache
misses and thermal throttling are all ECVs in §3, and a serving stack
built on "asking is free" falls over the moment asking starts failing.
This package makes failure a first-class, replayable input:

* :class:`FaultPlan` / :class:`FaultSpec` — a seeded, declarative plan
  of *which* named sites fail *how often*.  Decisions follow the same
  ``SeedSequence`` spawn-key discipline as :mod:`repro.core.mcengine`,
  so a plan replays bit-for-bit: same seed, same faults, any engine.
* :class:`FaultHook` — an :class:`~repro.core.session.EvalHook` that
  injects the plan's failures at keyed-evaluation boundaries (interface
  exceptions, ECV sampling errors, hardware NaN readings, simulated
  latency) and at engine-level sites (``ParallelEngine`` shard death).
* :class:`ResilientEvaluator` / :class:`EvalOutcome` — the consumption
  side: retries with capped exponential backoff
  (:class:`~repro.core.policy.RetryPolicy`), per-request deadlines
  (:class:`~repro.core.policy.DeadlinePolicy`) and the degradation
  ladder (:class:`~repro.core.policy.DegradePolicy`): cached estimate →
  closed-form/worst-mode bound → typed rejection.
"""

from repro.faults.hook import FaultHook
from repro.faults.plan import FAULT_SITES, FaultPlan, FaultSpec
from repro.faults.resilient import EvalOutcome, ResilientEvaluator

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FAULT_SITES",
    "FaultHook",
    "EvalOutcome",
    "ResilientEvaluator",
]
