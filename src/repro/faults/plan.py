"""Seeded, replayable fault plans.

A :class:`FaultPlan` answers one question — "does the ``k``-th visit to
fault site ``s`` fail, and how?" — as a pure function of ``(entropy,
site, visit index)``.  The derivation copies the replay discipline of
:class:`repro.core.mcengine.ColumnStore`: a ``numpy.random.SeedSequence``
spawned from the plan's entropy with a spawn key of ``(tag,
crc32(site), visit)``.  Because the decision depends on nothing else —
not wall-clock, not process identity, not engine — the same plan against
the same workload injects the same faults under the serial, vector and
parallel engines, which is what makes degraded paths testable at all.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ServingError
from repro.core.mcengine import DEFAULT_ENTROPY

__all__ = ["FaultSpec", "FaultPlan", "FAULT_SITES", "FAULT_KINDS"]

#: Spawn-key tag separating fault draws from the Monte Carlo column
#: (0xC0) and outcome (0x0D) generator families.
_FAULT_TAG = 0xFA

#: The named injection sites the stack consults, and what fails there.
FAULT_SITES = {
    "interface": "keyed interface evaluation raises",
    "ecv": "ECV sampling inside an evaluation raises",
    "hardware": "hardware layer reports a NaN/garbage reading",
    "latency": "evaluation overruns: simulated latency is added",
    "mcengine.shard": "a ParallelEngine worker shard dies",
    "fleet.replica": "a gateway replica crashes (queue lost, drained)",
    "fleet.lease": "a budget-shard lease renewal fails at the coordinator",
}

#: Sites consulted outside the per-evaluation path (engine internals and
#: fleet control plane); :meth:`FaultPlan.uniform` leaves them out so the
#: chaos-benchmark shape keeps meaning "evaluations fail".
NON_EVAL_SITES = ("mcengine.shard", "fleet.replica", "fleet.lease")

#: How a firing spec manifests at its site.
FAULT_KINDS = ("error", "nan", "latency")

#: The manifestation each site uses unless the spec overrides it.
_DEFAULT_KIND = {
    "interface": "error",
    "ecv": "error",
    "hardware": "nan",
    "latency": "latency",
    "mcengine.shard": "error",
    "fleet.replica": "error",
    "fleet.lease": "error",
}


@dataclass(frozen=True)
class FaultSpec:
    """One line of a fault plan: *this site fails this often, this way*."""

    site: str
    probability: float
    kind: str | None = None      # None: the site's natural kind
    latency_s: float = 0.05      # added simulated seconds (kind "latency")
    message: str | None = None   # override for the injected error text

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ServingError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{sorted(FAULT_SITES)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ServingError(
                f"fault probability must be in [0, 1], "
                f"got {self.probability}")
        if self.kind is not None and self.kind not in FAULT_KINDS:
            raise ServingError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{list(FAULT_KINDS)}")

    @property
    def effective_kind(self) -> str:
        return self.kind if self.kind is not None else _DEFAULT_KIND[self.site]


class FaultPlan:
    """A seeded schedule of injected failures over named sites.

    The plan keeps one visit counter per site; :meth:`decide` advances it
    and returns the spec that fires on this visit (or ``None``).  Visit
    counters are the only mutable state — :meth:`reset` (or
    :meth:`clone`) rewinds them for an exact replay.
    """

    def __init__(self, specs: tuple[FaultSpec, ...] | list[FaultSpec] = (),
                 entropy: int | None = None) -> None:
        self.specs = tuple(specs)
        self.entropy = int(DEFAULT_ENTROPY if entropy is None else entropy)
        self._by_site: dict[str, list[FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._visits: dict[str, int] = {}

    @classmethod
    def uniform(cls, probability: float,
                sites: tuple[str, ...] | list[str] | None = None,
                entropy: int | None = None) -> "FaultPlan":
        """The chaos-benchmark shape: one probability across sites."""
        chosen = tuple(sites) if sites is not None else tuple(
            site for site in FAULT_SITES if site not in NON_EVAL_SITES)
        return cls(tuple(FaultSpec(site, probability) for site in chosen),
                   entropy=entropy)

    # -- the decision function ------------------------------------------------
    def _draws(self, site: str, visit: int, n: int) -> np.ndarray:
        seq = np.random.SeedSequence(
            self.entropy,
            spawn_key=(_FAULT_TAG, zlib.crc32(site.encode("utf-8")),
                       int(visit)))
        return np.random.default_rng(seq).random(n)

    def decide(self, site: str) -> FaultSpec | None:
        """The spec firing on this visit to ``site``, advancing its counter.

        Each spec targeting the site gets an independent uniform draw (in
        declaration order, from one per-visit generator); the first that
        fires wins.  Sites with no specs never fire but still count
        visits, so adding a spec later does not shift other sites.
        """
        visit = self._visits.get(site, 0)
        self._visits[site] = visit + 1
        specs = self._by_site.get(site)
        if not specs:
            return None
        draws = self._draws(site, visit, len(specs))
        for spec, draw in zip(specs, draws):
            if draw < spec.probability:
                return spec
        return None

    def peek_uniform(self, site: str) -> float:
        """One deterministic uniform draw tied to this visit of ``site``.

        Advances the site's counter like :meth:`decide`; used for
        derived randomness that must replay (retry jitter).
        """
        visit = self._visits.get(site, 0)
        self._visits[site] = visit + 1
        return float(self._draws(site, visit, 1)[0])

    # -- replay ---------------------------------------------------------------
    def reset(self) -> None:
        """Rewind every visit counter: the next run replays exactly."""
        self._visits.clear()

    def clone(self) -> "FaultPlan":
        """A fresh-counter copy (same specs, same entropy)."""
        return FaultPlan(self.specs, entropy=self.entropy)

    @property
    def visits(self) -> dict[str, int]:
        """Visit counts per site so far (a copy)."""
        return dict(self._visits)

    def __repr__(self) -> str:
        sites = sorted({spec.site for spec in self.specs})
        return (f"FaultPlan(sites={sites}, entropy={self.entropy:#x}, "
                f"visits={sum(self._visits.values())})")
