"""Kernel-level GPT-2 inference simulation and its energy interface (§5)."""

from repro.llm.batching import (
    BatchedGPT2Interface,
    BatchedGPT2Runtime,
    batched_decode_kernels,
)
from repro.llm.config import (
    GPT2_LARGE,
    GPT2_MEDIUM,
    GPT2_SMALL,
    GPT2_XL,
    GPT2Config,
)
from repro.llm.interface import GPT2EnergyInterface
from repro.llm.kernels import (
    attention_kernel,
    decode_step_kernels,
    embedding_kernel,
    gemv_kernel,
    layernorm_kernel,
    prefill_kernels,
)
from repro.llm.runtime import GenerationStats, GPT2Runtime

__all__ = [
    "GPT2Config", "GPT2_SMALL", "GPT2_MEDIUM", "GPT2_LARGE", "GPT2_XL",
    "GPT2Runtime", "GenerationStats", "GPT2EnergyInterface",
    "gemv_kernel", "attention_kernel", "layernorm_kernel",
    "embedding_kernel", "decode_step_kernels", "prefill_kernels",
    "BatchedGPT2Interface", "BatchedGPT2Runtime", "batched_decode_kernels",
]
