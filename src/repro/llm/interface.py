"""The manually-derived energy interface for GPT-2 inference (§5).

This is the reproduction's version of the paper's high-level interface:
it "computes energy consumed in terms of static power, VRAM sector
reads/writes, L2 sector reads/writes, L1 wavefront reads/writes, and
instruction executions".  Counter counts per token are derived from the
model architecture (shapes are public); the per-metric unit energies come
from microbenchmark calibration
(:class:`~repro.measurement.calibration.CalibratedModel`); durations are
predicted from the device's datasheet throughput rates.

What the interface deliberately does *not* know — DRAM row-activation
costs, thermal leakage drift, sensor noise — is exactly what separates its
predictions from NVML measurements in benchmark T1.

The interface is valid for **all** inputs (any prompt length and token
count within the context window), unlike a profiled model: it is a
program over the workload's abstraction (two integers), not a fit to
observed runs.
"""

from __future__ import annotations

from repro.core.interface import EnergyInterface
from repro.core.units import AbstractEnergy, Energy
from repro.hardware.gpu import GPUSpec, KernelProfile
from repro.llm.config import GPT2Config
from repro.llm.kernels import decode_step_kernels, prefill_kernels
from repro.measurement.calibration import METRICS, CalibratedModel

__all__ = ["GPT2EnergyInterface"]


class GPT2EnergyInterface(EnergyInterface):
    """Predicts GPT-2 generation energy from counts x calibrated units.

    ``rates`` supplies only *throughput* information (instruction rate,
    cache and VRAM bandwidths, launch latency) — the datasheet numbers a
    vendor publishes — never the per-event energies, which the interface
    must obtain by calibration.
    """

    def __init__(self, config: GPT2Config, calibrated: CalibratedModel,
                 rates: GPUSpec) -> None:
        super().__init__(f"E_{config.name}@{calibrated.gpu_name}")
        self.config = config
        self.calibrated = calibrated
        self.rates = rates

    # -- counter prediction -------------------------------------------------
    def _kernel_duration(self, kernel: KernelProfile) -> float:
        """Roofline duration from datasheet rates (mirrors the device)."""
        rates = self.rates
        return max(
            kernel.instructions / rates.instr_rate,
            kernel.l1_wavefronts / rates.l1_rate,
            kernel.l2_sectors / rates.l2_rate,
            kernel.vram_sectors / rates.vram_rate,
        ) + rates.kernel_launch_latency

    def _accumulate(self, totals: dict[str, float],
                    kernel: KernelProfile) -> None:
        totals["instructions"] += kernel.instructions
        totals["l1_wavefronts"] += kernel.l1_wavefronts
        totals["l2_sectors"] += kernel.l2_sectors
        totals["vram_sectors"] += kernel.vram_sectors
        totals["kernel_launches"] += 1.0
        totals["busy_seconds"] += self._kernel_duration(kernel)

    def _counters_prefill(self, prompt_len: int) -> dict[str, float]:
        """Counter footprint of ingesting a prompt."""
        totals = {metric: 0.0 for metric in METRICS}
        for kernel in prefill_kernels(self.config, prompt_len):
            self._accumulate(totals, kernel)
        return totals

    def _counters_decode(self, prompt_len: int, n_tokens: int,
                         kv_start: int = 0) -> dict[str, float]:
        """Counter footprint of the decode phase (KV grows per step)."""
        totals = {metric: 0.0 for metric in METRICS}
        kv_len = kv_start + prompt_len
        for step in range(n_tokens):
            for kernel in decode_step_kernels(self.config, kv_len + step):
                self._accumulate(totals, kernel)
        return totals

    def predicted_counters(self, prompt_len: int, n_tokens: int,
                           kv_start: int = 0) -> dict[str, float]:
        """The profiler-counter footprint of one generation, predicted.

        Derived from the architecture: per decode step, every weight
        matrix streams once and the KV cache (which grows by one token per
        step) streams once.
        """
        totals = self._counters_prefill(prompt_len)
        decode = self._counters_decode(prompt_len, n_tokens, kv_start)
        for metric in METRICS:
            totals[metric] += decode[metric]
        return totals

    # -- the energy interface proper --------------------------------------
    def E_generate(self, prompt_len: int, n_tokens: int) -> Energy:
        """Energy to prefill ``prompt_len`` tokens and generate ``n_tokens``.

        Composed from the phase interfaces, so a span trace shows the
        prefill/decode split; the sum is exact because the calibrated
        model is linear in the counters (no intercept).
        """
        return self.E_prefill(prompt_len) \
            + self.E_decode(prompt_len, n_tokens)

    def E_decode(self, prompt_len: int, n_tokens: int,
                 kv_start: int = 0) -> Energy:
        """Energy of the decode phase alone (``n_tokens`` steps)."""
        counters = self._counters_decode(prompt_len, n_tokens, kv_start)
        return Energy(self.calibrated.predict_joules(counters))

    def E_decode_token(self, kv_len: int) -> Energy:
        """Energy to generate one token with ``kv_len`` tokens of context."""
        counters = {metric: 0.0 for metric in METRICS}
        for kernel in decode_step_kernels(self.config, kv_len):
            self._accumulate(counters, kernel)
        return Energy(self.calibrated.predict_joules(counters))

    def E_prefill(self, prompt_len: int) -> Energy:
        """Energy to ingest a prompt."""
        counters = self._counters_prefill(prompt_len)
        return Energy(self.calibrated.predict_joules(counters))

    def E_idle(self, seconds: float) -> Energy:
        """§3's special idle-state input: energy of doing nothing.

        A loaded model still pins VRAM and keeps the device awake; the
        idle interface is static power over the duration.
        """
        return Energy(self.calibrated.static_power_w * seconds)

    def E_generate_abstract(self, prompt_len: int,
                            n_tokens: int) -> AbstractEnergy:
        """The same prediction in abstract units (§3): counts, not Joules.

        Ground it with any device's calibrated unit energies — this is how
        one interface retargets across machines.
        """
        counters = self.predicted_counters(prompt_len, n_tokens)
        return AbstractEnergy(counters)

    def predicted_duration(self, prompt_len: int, n_tokens: int) -> float:
        """Predicted wall seconds for a generation."""
        return self.predicted_counters(prompt_len, n_tokens)["busy_seconds"]
