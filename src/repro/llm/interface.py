"""The manually-derived energy interface for GPT-2 inference (§5).

This is the reproduction's version of the paper's high-level interface:
it "computes energy consumed in terms of static power, VRAM sector
reads/writes, L2 sector reads/writes, L1 wavefront reads/writes, and
instruction executions".  Counter counts per token are derived from the
model architecture (shapes are public); the per-metric unit energies come
from microbenchmark calibration
(:class:`~repro.measurement.calibration.CalibratedModel`); durations are
predicted from the device's datasheet throughput rates.

What the interface deliberately does *not* know — DRAM row-activation
costs, thermal leakage drift, sensor noise — is exactly what separates its
predictions from NVML measurements in benchmark T1.

The interface is valid for **all** inputs (any prompt length and token
count within the context window), unlike a profiled model: it is a
program over the workload's abstraction (two integers), not a fit to
observed runs.
"""

from __future__ import annotations

from repro.core.interface import EnergyInterface
from repro.core.units import AbstractEnergy, Energy
from repro.hardware.gpu import GPUSpec, KernelProfile
from repro.llm.config import GPT2Config
from repro.llm.kernels import decode_step_kernels, prefill_kernels
from repro.measurement.calibration import METRICS, CalibratedModel

__all__ = ["GPT2EnergyInterface"]


class GPT2EnergyInterface(EnergyInterface):
    """Predicts GPT-2 generation energy from counts x calibrated units.

    ``rates`` supplies only *throughput* information (instruction rate,
    cache and VRAM bandwidths, launch latency) — the datasheet numbers a
    vendor publishes — never the per-event energies, which the interface
    must obtain by calibration.
    """

    def __init__(self, config: GPT2Config, calibrated: CalibratedModel,
                 rates: GPUSpec) -> None:
        super().__init__(f"E_{config.name}@{calibrated.gpu_name}")
        self.config = config
        self.calibrated = calibrated
        self.rates = rates

    # -- counter prediction -------------------------------------------------
    def _kernel_duration(self, kernel: KernelProfile) -> float:
        """Roofline duration from datasheet rates (mirrors the device)."""
        rates = self.rates
        return max(
            kernel.instructions / rates.instr_rate,
            kernel.l1_wavefronts / rates.l1_rate,
            kernel.l2_sectors / rates.l2_rate,
            kernel.vram_sectors / rates.vram_rate,
        ) + rates.kernel_launch_latency

    def predicted_counters(self, prompt_len: int, n_tokens: int,
                           kv_start: int = 0) -> dict[str, float]:
        """The profiler-counter footprint of one generation, predicted.

        Derived from the architecture: per decode step, every weight
        matrix streams once and the KV cache (which grows by one token per
        step) streams once.
        """
        totals = {metric: 0.0 for metric in METRICS}

        def accumulate(kernel: KernelProfile) -> None:
            totals["instructions"] += kernel.instructions
            totals["l1_wavefronts"] += kernel.l1_wavefronts
            totals["l2_sectors"] += kernel.l2_sectors
            totals["vram_sectors"] += kernel.vram_sectors
            totals["kernel_launches"] += 1.0
            totals["busy_seconds"] += self._kernel_duration(kernel)

        for kernel in prefill_kernels(self.config, prompt_len):
            accumulate(kernel)
        kv_len = kv_start + prompt_len
        for step in range(n_tokens):
            for kernel in decode_step_kernels(self.config, kv_len + step):
                accumulate(kernel)
        return totals

    # -- the energy interface proper --------------------------------------
    def E_generate(self, prompt_len: int, n_tokens: int) -> Energy:
        """Energy to prefill ``prompt_len`` tokens and generate ``n_tokens``."""
        counters = self.predicted_counters(prompt_len, n_tokens)
        return Energy(self.calibrated.predict_joules(counters))

    def E_decode_token(self, kv_len: int) -> Energy:
        """Energy to generate one token with ``kv_len`` tokens of context."""
        counters = {metric: 0.0 for metric in METRICS}
        for kernel in decode_step_kernels(self.config, kv_len):
            counters["instructions"] += kernel.instructions
            counters["l1_wavefronts"] += kernel.l1_wavefronts
            counters["l2_sectors"] += kernel.l2_sectors
            counters["vram_sectors"] += kernel.vram_sectors
            counters["kernel_launches"] += 1.0
            counters["busy_seconds"] += self._kernel_duration(kernel)
        return Energy(self.calibrated.predict_joules(counters))

    def E_prefill(self, prompt_len: int) -> Energy:
        """Energy to ingest a prompt."""
        return self.E_generate(prompt_len, 0)

    def E_idle(self, seconds: float) -> Energy:
        """§3's special idle-state input: energy of doing nothing.

        A loaded model still pins VRAM and keeps the device awake; the
        idle interface is static power over the duration.
        """
        return Energy(self.calibrated.static_power_w * seconds)

    def E_generate_abstract(self, prompt_len: int,
                            n_tokens: int) -> AbstractEnergy:
        """The same prediction in abstract units (§3): counts, not Joules.

        Ground it with any device's calibrated unit energies — this is how
        one interface retargets across machines.
        """
        counters = self.predicted_counters(prompt_len, n_tokens)
        return AbstractEnergy(counters)

    def predicted_duration(self, prompt_len: int, n_tokens: int) -> float:
        """Predicted wall seconds for a generation."""
        return self.predicted_counters(prompt_len, n_tokens)["busy_seconds"]
