"""GPT-2 model configurations.

Shapes follow the public GPT-2 family (Radford et al., 2019; the
HuggingFace checkpoints the paper used).  Only shape information is needed
— the simulator models *energy*, not text, so there are no weights here,
just the dimensions that determine memory traffic and instruction counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import WorkloadError

__all__ = ["GPT2Config", "GPT2_SMALL", "GPT2_MEDIUM", "GPT2_LARGE", "GPT2_XL"]


@dataclass(frozen=True)
class GPT2Config:
    """Shape parameters of one GPT-2 variant."""

    name: str
    n_layer: int
    n_head: int
    d_model: int
    vocab_size: int = 50257
    n_ctx: int = 1024
    dtype_bytes: int = 2  # fp16 inference

    def __post_init__(self) -> None:
        if min(self.n_layer, self.n_head, self.d_model, self.vocab_size,
               self.n_ctx, self.dtype_bytes) <= 0:
            raise WorkloadError(f"GPT-2 config {self.name!r} has non-positive "
                                f"dimensions")
        if self.d_model % self.n_head != 0:
            raise WorkloadError(
                f"GPT-2 config {self.name!r}: d_model={self.d_model} not "
                f"divisible by n_head={self.n_head}")

    @property
    def d_ff(self) -> int:
        """The MLP hidden width (GPT-2 uses 4x)."""
        return 4 * self.d_model

    @property
    def d_head(self) -> int:
        """Per-head width."""
        return self.d_model // self.n_head

    @property
    def layer_param_count(self) -> int:
        """Parameters of one transformer block (weights + biases)."""
        d = self.d_model
        attention = 3 * d * d + 3 * d + d * d + d        # qkv + out proj
        mlp = d * self.d_ff + self.d_ff + self.d_ff * d + d
        layernorms = 4 * d
        return attention + mlp + layernorms

    @property
    def param_count(self) -> int:
        """Total parameters, embeddings included (tied LM head)."""
        embeddings = self.vocab_size * self.d_model + self.n_ctx * self.d_model
        final_ln = 2 * self.d_model
        return self.n_layer * self.layer_param_count + embeddings + final_ln

    @property
    def weight_bytes(self) -> int:
        """Bytes of weights at the configured dtype."""
        return self.param_count * self.dtype_bytes

    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes appended per generated token (all layers)."""
        return 2 * self.n_layer * self.d_model * self.dtype_bytes


GPT2_SMALL = GPT2Config("gpt2", n_layer=12, n_head=12, d_model=768)
GPT2_MEDIUM = GPT2Config("gpt2-medium", n_layer=24, n_head=16, d_model=1024)
GPT2_LARGE = GPT2Config("gpt2-large", n_layer=36, n_head=20, d_model=1280)
GPT2_XL = GPT2Config("gpt2-xl", n_layer=48, n_head=25, d_model=1600)
