"""Batched LLM serving: the energy-per-token lever the interface exposes.

§1 motivates energy clarity with ML serving; the single most effective
energy knob in LLM inference is **batching**: decode at batch 1 is
memory-bound (every token re-streams every weight), so serving B
requests together amortises the weight traffic B ways while the KV-cache
traffic still scales per-request.  The energy-per-token curve therefore
falls steeply and then flattens into the compute-bound regime — a shape
an operator wants *before* choosing a serving configuration.

This module extends the GPT-2 simulator with batched decode kernels and
provides :class:`BatchedGPT2Interface`, whose
``E_per_token(batch_size, kv_len)`` answers the configuration question
directly.  Benchmark T1c validates the interface against simulation
across the batch sweep and locates the memory→compute crossover.
"""

from __future__ import annotations

from repro.core.errors import WorkloadError
from repro.core.interface import EnergyInterface
from repro.core.units import Energy
from repro.hardware.gpu import GPU, GPUSpec, KernelProfile, SECTOR_BYTES, \
    WAVEFRONT_BYTES
from repro.llm.config import GPT2Config
from repro.llm.kernels import (
    INSTR_OVERHEAD,
    L2_AMPLIFICATION,
    ROW_MISS_KV,
    ROW_MISS_WEIGHTS,
    WARP_WIDTH,
    embedding_kernel,
    layernorm_kernel,
)
from repro.measurement.calibration import METRICS, CalibratedModel

__all__ = ["batched_decode_kernels", "BatchedGPT2Runtime",
           "BatchedGPT2Interface"]


def _batched_gemm(name: str, weight_bytes: float, macs_per_item: float,
                  batch: int, activation_bytes_per_item: float
                  ) -> KernelProfile:
    """A weight-stationary GEMM: weights stream once for the whole batch."""
    total_macs = macs_per_item * batch
    activations = activation_bytes_per_item * batch
    vram_sectors = weight_bytes / SECTOR_BYTES  # amortised across the batch
    return KernelProfile(
        name=name,
        instructions=total_macs / WARP_WIDTH * INSTR_OVERHEAD,
        l1_wavefronts=(weight_bytes + activations) / WAVEFRONT_BYTES,
        l2_sectors=vram_sectors * L2_AMPLIFICATION
        + activations / SECTOR_BYTES,
        vram_sectors=vram_sectors,
        row_miss_fraction=ROW_MISS_WEIGHTS,
    )


def batched_decode_kernels(config: GPT2Config, kv_len: int,
                           batch: int) -> list[KernelProfile]:
    """One decode step for ``batch`` concurrent sequences.

    Weights stream once per step (the amortisation); each sequence reads
    its own KV cache (no amortisation there) and runs its own softmax.
    """
    if batch <= 0:
        raise WorkloadError(f"batch must be positive, got {batch}")
    if kv_len < 0:
        raise WorkloadError(f"kv_len must be >= 0, got {kv_len}")
    d = config.d_model
    dtype = config.dtype_bytes
    act = d * dtype
    kernels: list[KernelProfile] = [embedding_kernel(config).scaled(batch)]
    kv_bytes = 2 * kv_len * d * dtype * batch
    kv_sectors = kv_bytes / SECTOR_BYTES
    attention = KernelProfile(
        name=f"batched_attention[b={batch},kv={kv_len}]",
        instructions=(2 * kv_len * d * batch / WARP_WIDTH * INSTR_OVERHEAD
                      + config.n_head * kv_len * batch / WARP_WIDTH * 2),
        l1_wavefronts=kv_bytes / WAVEFRONT_BYTES * 1.5,
        l2_sectors=kv_sectors * L2_AMPLIFICATION,
        vram_sectors=kv_sectors,
        row_miss_fraction=ROW_MISS_KV,
    )
    per_layer = [
        layernorm_kernel(config).scaled(batch),
        _batched_gemm("qkv_proj", 3 * d * d * dtype, 3 * d * d, batch, act),
        attention,
        _batched_gemm("attn_out", d * d * dtype, d * d, batch, act),
        layernorm_kernel(config).scaled(batch),
        _batched_gemm("mlp_up", d * config.d_ff * dtype, d * config.d_ff,
                      batch, act),
        _batched_gemm("mlp_down", config.d_ff * d * dtype,
                      config.d_ff * d, batch, config.d_ff * dtype),
    ]
    for _ in range(config.n_layer):
        kernels.extend(per_layer)
    kernels.append(layernorm_kernel(config).scaled(batch))
    kernels.append(_batched_gemm("lm_head", config.vocab_size * d * dtype,
                                 config.vocab_size * d, batch, act))
    return kernels


class BatchedGPT2Runtime:
    """Runs batched decode steps on the simulated GPU."""

    def __init__(self, gpu: GPU, config: GPT2Config) -> None:
        self._gpu = gpu
        self.config = config

    def decode_steps(self, batch: int, kv_len: int, n_steps: int) -> tuple:
        """Run ``n_steps`` batched steps at fixed context; returns
        ``(t_start, t_end, tokens_generated)``."""
        if n_steps <= 0:
            raise WorkloadError("n_steps must be positive")
        t_start = self._gpu.now
        for step in range(n_steps):
            for kernel in batched_decode_kernels(self.config,
                                                 kv_len + step, batch):
                self._gpu.launch(kernel,
                                 tag=f"{self.config.name}:batched")
        return t_start, self._gpu.now, batch * n_steps


class BatchedGPT2Interface(EnergyInterface):
    """Energy per generated token as a function of the serving config."""

    def __init__(self, config: GPT2Config, calibrated: CalibratedModel,
                 rates: GPUSpec) -> None:
        super().__init__(f"E_{config.name}_batched@{calibrated.gpu_name}")
        self.config = config
        self.calibrated = calibrated
        self.rates = rates

    def _kernel_duration(self, kernel: KernelProfile) -> float:
        rates = self.rates
        return max(
            kernel.instructions / rates.instr_rate,
            kernel.l1_wavefronts / rates.l1_rate,
            kernel.l2_sectors / rates.l2_rate,
            kernel.vram_sectors / rates.vram_rate,
        ) + rates.kernel_launch_latency

    def E_step(self, batch_size: int, kv_len: int) -> Energy:
        """Energy of one batched decode step (all sequences advance)."""
        counters = {metric: 0.0 for metric in METRICS}
        for kernel in batched_decode_kernels(self.config, kv_len,
                                             batch_size):
            counters["instructions"] += kernel.instructions
            counters["l1_wavefronts"] += kernel.l1_wavefronts
            counters["l2_sectors"] += kernel.l2_sectors
            counters["vram_sectors"] += kernel.vram_sectors
            counters["kernel_launches"] += 1.0
            counters["busy_seconds"] += self._kernel_duration(kernel)
        return Energy(self.calibrated.predict_joules(counters))

    def E_per_token(self, batch_size: int, kv_len: int) -> Energy:
        """The serving question: Joules per generated token."""
        return self.E_step(batch_size, kv_len) * (1.0 / batch_size)

    def tokens_per_second(self, batch_size: int, kv_len: int) -> float:
        """Aggregate decode throughput at this configuration."""
        step_seconds = sum(
            self._kernel_duration(kernel)
            for kernel in batched_decode_kernels(self.config, kv_len,
                                                 batch_size))
        return batch_size / step_seconds

    def crossover_batch(self, kv_len: int, max_batch: int = 256,
                        tolerance: float = 0.2) -> int:
        """The batch size where amortisation stops paying.

        The smallest batch whose per-token energy is within ``tolerance``
        of the ``max_batch`` asymptote — the knee an operator should
        serve at.
        """
        floor = self.E_per_token(max_batch, kv_len).as_joules
        batch = 1
        while batch < max_batch:
            if self.E_per_token(batch, kv_len).as_joules \
                    <= floor * (1.0 + tolerance):
                return batch
            batch *= 2
        return max_batch
