"""Autoregressive GPT-2 inference on the simulated GPU.

:class:`GPT2Runtime` plays the role of the PyTorch/CUDA stack in the §5
experiment: it launches the decode/prefill kernels on a
:class:`~repro.hardware.gpu.GPU`, maintains the KV-cache length, and
reports what actually happened (duration, counter deltas) so experiments
can compare interface predictions against NVML-measured energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import WorkloadError
from repro.hardware.gpu import GPU, GPUCounters
from repro.llm.config import GPT2Config
from repro.llm.kernels import decode_step_kernels, prefill_kernels
from repro.workloads.traces import GenerationRequest

__all__ = ["GenerationStats", "GPT2Runtime"]


@dataclass(frozen=True)
class GenerationStats:
    """What one generation run did on the GPU."""

    prompt_len: int
    generated_tokens: int
    t_start: float
    t_end: float
    counters: GPUCounters          # deltas over the run
    kernel_launches: int

    @property
    def duration(self) -> float:
        """Simulated seconds the generation took."""
        return self.t_end - self.t_start

    @property
    def tokens_per_second(self) -> float:
        """Decode throughput."""
        if self.duration == 0:
            return 0.0
        return self.generated_tokens / self.duration


class GPT2Runtime:
    """Runs GPT-2 inference workloads on a simulated GPU."""

    def __init__(self, gpu: GPU, config: GPT2Config) -> None:
        self._gpu = gpu
        self.config = config
        self.kv_len = 0

    @property
    def gpu(self) -> GPU:
        """The device this runtime drives."""
        return self._gpu

    def reset_cache(self) -> None:
        """Drop the KV cache (start a fresh sequence)."""
        self.kv_len = 0

    def prefill(self, prompt_len: int) -> None:
        """Ingest a prompt, filling the KV cache."""
        if self.kv_len + prompt_len > self.config.n_ctx:
            raise WorkloadError(
                f"prompt of {prompt_len} tokens overflows the context "
                f"({self.kv_len} cached, {self.config.n_ctx} max)")
        for kernel in prefill_kernels(self.config, prompt_len):
            self._gpu.launch(kernel, tag=f"{self.config.name}:prefill")
        self.kv_len += prompt_len

    def decode_token(self) -> None:
        """Generate one token, growing the KV cache."""
        if self.kv_len + 1 > self.config.n_ctx:
            raise WorkloadError(
                f"context overflow: {self.kv_len} tokens cached, "
                f"{self.config.n_ctx} max")
        for kernel in decode_step_kernels(self.config, self.kv_len):
            self._gpu.launch(kernel, tag=f"{self.config.name}:decode")
        self.kv_len += 1

    def generate(self, prompt_len: int, n_tokens: int,
                 reset: bool = True) -> GenerationStats:
        """Run a full generation: prefill then ``n_tokens`` decode steps."""
        if n_tokens < 0:
            raise WorkloadError(f"n_tokens must be >= 0, got {n_tokens}")
        if reset:
            self.reset_cache()
        before = self._gpu.counters.snapshot()
        t_start = self._gpu.now
        self.prefill(prompt_len)
        for _ in range(n_tokens):
            self.decode_token()
        t_end = self._gpu.now
        delta = self._gpu.counters.delta(before)
        return GenerationStats(
            prompt_len=prompt_len,
            generated_tokens=n_tokens,
            t_start=t_start,
            t_end=t_end,
            counters=delta,
            kernel_launches=delta.kernel_launches,
        )

    def serve(self, request: GenerationRequest) -> GenerationStats:
        """Serve one trace request (fresh sequence per request)."""
        return self.generate(request.prompt_tokens, request.output_tokens)
