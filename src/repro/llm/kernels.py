"""Kernel footprints for GPT-2 autoregressive inference.

Decode at batch 1 is memory-bound: every generated token streams every
weight matrix from VRAM once (GEMV), plus the growing KV cache.  The
functions here translate one decode step (or a prefill pass) into the
:class:`~repro.hardware.gpu.KernelProfile` launches the simulated GPU
executes — with counter footprints derived from the shapes:

* a GEMV over ``W`` weight bytes reads ``W / 32`` VRAM sectors (weights do
  not fit in cache across layers, so each step re-streams them), passes
  them through L2, and issues one L1 wavefront per 128 weight bytes;
* instruction counts follow the MACs: one warp instruction per 32 fused
  multiply-accumulates plus a fixed loop-overhead factor;
* attention reads the KV cache (``kv_len * d_model`` elements for K and
  again for V) with *poor row locality* (strided per head), which is where
  the hidden row-activation cost bites hardest.

These same formulas — minus anything the profiler cannot see — are what
the manually-derived energy interface in :mod:`repro.llm.interface`
computes, exactly as the paper's §5 interface did.
"""

from __future__ import annotations

from repro.core.errors import WorkloadError
from repro.hardware.gpu import KernelProfile, SECTOR_BYTES, WAVEFRONT_BYTES
from repro.llm.config import GPT2Config

__all__ = [
    "gemv_kernel",
    "attention_kernel",
    "layernorm_kernel",
    "embedding_kernel",
    "decode_step_kernels",
    "prefill_kernels",
    "ROW_MISS_WEIGHTS",
    "ROW_MISS_KV",
]

#: Row-activation miss fractions: streaming weight reads are friendly,
#: per-head strided KV reads are not.
ROW_MISS_WEIGHTS = 0.045
ROW_MISS_KV = 0.12

#: Warp width and instruction overhead for the instruction-count model.
WARP_WIDTH = 32
INSTR_OVERHEAD = 1.3

#: L2 sees the VRAM stream plus activation re-references.
L2_AMPLIFICATION = 1.15


def gemv_kernel(name: str, weight_bytes: float, macs: float,
                activation_bytes: float = 0.0,
                row_miss: float = ROW_MISS_WEIGHTS) -> KernelProfile:
    """A matrix-vector product streaming ``weight_bytes`` of parameters."""
    if weight_bytes < 0 or macs < 0:
        raise WorkloadError(f"kernel {name!r}: negative sizes")
    bytes_total = weight_bytes + activation_bytes
    vram_sectors = weight_bytes / SECTOR_BYTES
    return KernelProfile(
        name=name,
        instructions=macs / WARP_WIDTH * INSTR_OVERHEAD,
        l1_wavefronts=bytes_total / WAVEFRONT_BYTES,
        l2_sectors=vram_sectors * L2_AMPLIFICATION
        + activation_bytes / SECTOR_BYTES,
        vram_sectors=vram_sectors,
        row_miss_fraction=row_miss,
    )


def attention_kernel(config: GPT2Config, kv_len: int) -> KernelProfile:
    """Score + weighted-sum over the KV cache for one decode token."""
    if kv_len < 0:
        raise WorkloadError(f"kv_len must be >= 0, got {kv_len}")
    d = config.d_model
    kv_bytes = 2 * kv_len * d * config.dtype_bytes  # K and V
    macs = 2 * kv_len * d                            # scores + weighted sum
    vram_sectors = kv_bytes / SECTOR_BYTES
    return KernelProfile(
        name=f"attention[kv={kv_len}]",
        instructions=macs / WARP_WIDTH * INSTR_OVERHEAD
        + config.n_head * kv_len / WARP_WIDTH * 2,   # softmax
        l1_wavefronts=kv_bytes / WAVEFRONT_BYTES * 1.5,
        l2_sectors=vram_sectors * L2_AMPLIFICATION,
        vram_sectors=vram_sectors,
        row_miss_fraction=ROW_MISS_KV,
    )


def layernorm_kernel(config: GPT2Config) -> KernelProfile:
    """One LayerNorm over d_model activations (cache-resident)."""
    d_bytes = config.d_model * config.dtype_bytes
    return KernelProfile(
        name="layernorm",
        instructions=config.d_model / WARP_WIDTH * 6,
        l1_wavefronts=d_bytes / WAVEFRONT_BYTES * 3,
        l2_sectors=d_bytes / SECTOR_BYTES,
        vram_sectors=0.0,
        row_miss_fraction=0.0,
    )


def embedding_kernel(config: GPT2Config) -> KernelProfile:
    """Token + position embedding lookup for one token."""
    d_bytes = config.d_model * config.dtype_bytes
    return KernelProfile(
        name="embedding",
        instructions=config.d_model / WARP_WIDTH * 2,
        l1_wavefronts=2 * d_bytes / WAVEFRONT_BYTES,
        l2_sectors=2 * d_bytes / SECTOR_BYTES,
        vram_sectors=2 * d_bytes / SECTOR_BYTES,
        row_miss_fraction=0.5,  # two random rows of the embedding table
    )


def decode_step_kernels(config: GPT2Config, kv_len: int) -> list[KernelProfile]:
    """All kernel launches for generating one token with ``kv_len`` context."""
    d = config.d_model
    dtype = config.dtype_bytes
    kernels: list[KernelProfile] = [embedding_kernel(config)]
    per_layer = [
        layernorm_kernel(config),
        gemv_kernel("qkv_proj", weight_bytes=3 * d * d * dtype,
                    macs=3 * d * d, activation_bytes=d * dtype),
        attention_kernel(config, kv_len),
        gemv_kernel("attn_out", weight_bytes=d * d * dtype, macs=d * d,
                    activation_bytes=d * dtype),
        layernorm_kernel(config),
        gemv_kernel("mlp_up", weight_bytes=d * config.d_ff * dtype,
                    macs=d * config.d_ff, activation_bytes=d * dtype),
        gemv_kernel("mlp_down", weight_bytes=config.d_ff * d * dtype,
                    macs=config.d_ff * d,
                    activation_bytes=config.d_ff * dtype),
    ]
    for _ in range(config.n_layer):
        kernels.extend(per_layer)
    kernels.append(layernorm_kernel(config))
    kernels.append(gemv_kernel(
        "lm_head", weight_bytes=config.vocab_size * d * dtype,
        macs=config.vocab_size * d, activation_bytes=d * dtype))
    return kernels


def prefill_kernels(config: GPT2Config, prompt_len: int) -> list[KernelProfile]:
    """Kernel launches for ingesting a prompt of ``prompt_len`` tokens.

    Prefill is a batched pass: weights stream once while activations scale
    with the prompt length, and attention is quadratic in it.  No LM-head
    projection — only the hidden states and KV cache are needed.
    """
    if prompt_len < 0:
        raise WorkloadError(f"prompt_len must be >= 0, got {prompt_len}")
    if prompt_len == 0:
        return []
    d = config.d_model
    dtype = config.dtype_bytes
    activation = prompt_len * d * dtype
    kernels: list[KernelProfile] = [
        embedding_kernel(config).scaled(prompt_len)]
    per_layer = [
        layernorm_kernel(config).scaled(prompt_len),
        gemv_kernel("qkv_proj", weight_bytes=3 * d * d * dtype,
                    macs=3 * d * d * prompt_len, activation_bytes=activation),
        # Quadratic self-attention over the prompt.
        KernelProfile(
            name=f"prefill_attention[{prompt_len}]",
            instructions=2 * prompt_len * prompt_len * d
            / WARP_WIDTH * INSTR_OVERHEAD / 2,  # causal mask halves it
            l1_wavefronts=prompt_len * prompt_len * dtype / WAVEFRONT_BYTES,
            l2_sectors=prompt_len * d * dtype / SECTOR_BYTES * 2,
            vram_sectors=prompt_len * d * dtype / SECTOR_BYTES,
            row_miss_fraction=ROW_MISS_KV,
        ),
        gemv_kernel("attn_out", weight_bytes=d * d * dtype,
                    macs=d * d * prompt_len, activation_bytes=activation),
        layernorm_kernel(config).scaled(prompt_len),
        gemv_kernel("mlp_up", weight_bytes=d * config.d_ff * dtype,
                    macs=d * config.d_ff * prompt_len,
                    activation_bytes=activation),
        gemv_kernel("mlp_down", weight_bytes=config.d_ff * d * dtype,
                    macs=config.d_ff * d * prompt_len,
                    activation_bytes=prompt_len * config.d_ff * dtype),
    ]
    for _ in range(config.n_layer):
        kernels.extend(per_layer)
    return kernels
