"""The fleet: N gateway replicas behind a balancer, one global budget.

:class:`EnergyGatewayFleet` is the subsystem's front door.  It builds
the replicas, the balancer and the per-tenant budget shards from a
:class:`~repro.core.policy.Policy`'s fleet knobs, then drives a
trace of :class:`~repro.workloads.fleettrace.TenantRequest` through an
asyncio pipeline:

* the **dispatcher** coroutine walks the (lazy) trace in arrival order,
  asks the balancer for a preference order over live replicas, and
  enqueues fast (``put_nowait``); when every live queue is full it
  *awaits* the preferred queue — bounded-queue backpressure on the
  client, counted, never silent;
* each replica's **worker** coroutine admits against its budget shard
  and settles measured energy (see :mod:`repro.fleet.replica`);
* the :class:`~repro.fleet.shards.LeaseCoordinator` keeps the tenant
  budgets globally consistent, so the invariant holds fleet-wide.

Everything runs on one event loop with no wall-clock reads: the loop's
FIFO ready queue makes the interleaving a pure function of the trace,
so ``serve()`` at a fixed seed is bitwise-replayable — the property the
S4 benchmark asserts.

Faults (:meth:`EnergyGatewayFleet.inject_faults`) consult the PR-5
:class:`~repro.faults.FaultPlan` at two sites: ``"fleet.replica"``
(every ``crash_check_every`` requests, a live replica may crash — queue
shed, balancer drains it until it restarts) and ``"fleet.lease"`` (a
shard's coordinator round is lost; the shard admits conservatively from
whatever lease remains).
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Iterator

import numpy as np

from repro.core.errors import BudgetError
from repro.core.mcengine import DEFAULT_ENTROPY
from repro.core.policy import Policy
from repro.faults.plan import FaultPlan
from repro.fleet.balancer import build_balancer
from repro.fleet.costmodel import CostModel, WorkCostModel
from repro.fleet.replica import FleetReplica, LatencyHistogram
from repro.fleet.report import FleetReport
from repro.fleet.shards import BudgetShard, LeaseCoordinator
from repro.serving.budget import BudgetSpec, parse_budget_spec
from repro.workloads.fleettrace import TenantRequest

__all__ = ["EnergyGatewayFleet", "DEFAULT_REPLICAS", "DEFAULT_BALANCER",
           "DEFAULT_LEASE_TTL_S"]

DEFAULT_REPLICAS = 4
DEFAULT_BALANCER = "least-energy"
DEFAULT_LEASE_TTL_S = 5.0

#: Spawn-key tag for the balancer's sampling stream (distinct from the
#: Monte Carlo 0xC0/0x0D and fault 0xFA families).
_BALANCER_TAG = 0xB7

#: Dispatcher yields to the workers every this many requests, so queue
#: draining interleaves with arrivals instead of running in one burst.
_YIELD_EVERY = 64


class EnergyGatewayFleet:
    """N energy-aware gateway replicas serving one multi-tenant trace."""

    def __init__(self, budgets: dict[str, BudgetSpec | str],
                 policy: Policy | None = None,
                 cost_model: CostModel | None = None,
                 entropy: int | None = None,
                 power_watts: float = 50.0,
                 queue_limit: int = 256,
                 lease_chunk_j: float | None = None,
                 crash_check_every: int = 1024,
                 crash_downtime_s: float = 5.0) -> None:
        if not budgets:
            raise BudgetError("a fleet needs at least one tenant budget")
        policy = policy if policy is not None else Policy()
        self.policy = policy
        self.n_replicas = policy.replicas or DEFAULT_REPLICAS
        self.balancer_name = policy.balancer or DEFAULT_BALANCER
        self.lease_ttl_s = policy.lease_ttl_s or DEFAULT_LEASE_TTL_S
        self.entropy = int(DEFAULT_ENTROPY if entropy is None else entropy)
        self.cost_model = cost_model or WorkCostModel()
        self.crash_check_every = int(crash_check_every)
        self.crash_downtime_s = float(crash_downtime_s)
        self._plan: FaultPlan | None = None
        self._lease_faults = 0

        specs = {tenant: (parse_budget_spec(spec) if isinstance(spec, str)
                          else spec)
                 for tenant, spec in budgets.items()}
        #: Tenant index ``i`` in a trace maps to the ``i``-th configured
        #: tenant, in the order the budgets dict was given.
        self.tenant_names: tuple[str, ...] = tuple(specs)
        self.coordinator = LeaseCoordinator(specs)

        rng = np.random.default_rng(
            np.random.SeedSequence(self.entropy, spawn_key=(_BALANCER_TAG,)))
        self.balancer = build_balancer(self.balancer_name, rng)

        self.replicas: list[FleetReplica] = []
        for index in range(self.n_replicas):
            shards = {}
            for tenant, spec in specs.items():
                chunk = lease_chunk_j if lease_chunk_j is not None else (
                    (spec.capacity_joules
                     + spec.refill_watts * self.lease_ttl_s)
                    / (4.0 * self.n_replicas))
                shards[tenant] = BudgetShard(
                    tenant, self.coordinator, chunk, self.lease_ttl_s)
            guard = None
            if policy.calibration_tolerance is not None:
                # Lazy import: repro.calibration pulls in the hardware
                # stack, which the fleet otherwise never needs.
                from repro.calibration.guard import CalibrationGuard
                guard = CalibrationGuard(
                    policy.calibration_tolerance,
                    min_observations=policy.calibration_min_observations)
            self.replicas.append(FleetReplica(
                index, self.cost_model, shards,
                power_watts=power_watts, queue_limit=queue_limit,
                lease_gate=self._lease_gate,
                calibration_guard=guard,
                calibration_action=policy.calibration_action,
                calibration_widen_factor=policy.calibration_widen_factor))

    # -- fault wiring --------------------------------------------------------
    def inject_faults(self, plan: FaultPlan | None) -> None:
        """Install (or clear) the fault plan consulted while serving."""
        self._plan = plan

    def _lease_gate(self) -> bool:
        if self._plan is None:
            return True
        if self._plan.decide("fleet.lease") is not None:
            self._lease_faults += 1
            return False
        return True

    def _maybe_crash(self, now: float) -> None:
        if self._plan is None:
            return
        for replica in self.replicas:
            if not replica.accepting(now):
                continue
            if self._plan.decide("fleet.replica") is not None:
                replica.crash(now, self.crash_downtime_s)

    # -- serving -------------------------------------------------------------
    def serve(self, requests: Iterable[TenantRequest],
              horizon_s: float | None = None) -> FleetReport:
        """Run the trace through the fleet; returns the roll-up report."""
        return asyncio.run(self.aserve(requests, horizon_s))

    async def aserve(self, requests: Iterable[TenantRequest],
                     horizon_s: float | None = None) -> FleetReport:
        for replica in self.replicas:
            replica.open()
        workers = [asyncio.ensure_future(replica.run())
                   for replica in self.replicas]
        offered = 0
        shed_no_replica = 0
        backpressure_waits = 0
        dispatch_counts = [0] * self.n_replicas
        last_now = 0.0
        n_tenants = len(self.tenant_names)
        try:
            for request in self._as_iterator(requests):
                offered += 1
                now = request.arrival_s
                last_now = max(last_now, now)
                if offered % self.crash_check_every == 0:
                    self._maybe_crash(now)
                if request.tenant >= n_tenants:
                    raise BudgetError(
                        f"request tenant index {request.tenant} has no "
                        f"configured budget ({n_tenants} tenants)")
                tenant = self.tenant_names[request.tenant]
                expected, worst = self.cost_model.predict(request)
                prefs = self.balancer.prefer(self.replicas, now)
                if not prefs:
                    shed_no_replica += 1
                    continue
                target = None
                for replica in prefs:
                    if replica.try_enqueue(request, tenant, expected, worst):
                        target = replica
                        break
                if target is None:
                    backpressure_waits += 1
                    target = prefs[0]
                    await target.enqueue_wait(request, tenant,
                                              expected, worst)
                dispatch_counts[target.index] += 1
                if offered % _YIELD_EVERY == 0:
                    await asyncio.sleep(0)
        finally:
            for replica in self.replicas:
                await replica.stop()
            await asyncio.gather(*workers)
        horizon = float(horizon_s) if horizon_s is not None else last_now
        settle_now = max(horizon, last_now)
        for replica in self.replicas:
            replica.flush(settle_now)
        return self._report(horizon, offered, shed_no_replica,
                            backpressure_waits, tuple(dispatch_counts),
                            settle_now)

    @staticmethod
    def _as_iterator(requests: Iterable[TenantRequest]
                     ) -> Iterator[TenantRequest]:
        return iter(requests)

    # -- roll-up -------------------------------------------------------------
    def _report(self, horizon: float, offered: int, shed_no_replica: int,
                backpressure_waits: int, dispatch_counts: tuple[int, ...],
                settle_now: float) -> FleetReport:
        latency = LatencyHistogram()
        for replica in self.replicas:
            latency.merge(replica.latency)
        allowance = sum(self.coordinator.allowance(tenant, settle_now)
                        for tenant in self.tenant_names)
        return FleetReport(
            horizon_s=horizon,
            n_replicas=self.n_replicas,
            balancer=self.balancer_name,
            offered=offered,
            admitted=sum(r.admitted for r in self.replicas),
            rejected=sum(r.rejected_budget for r in self.replicas),
            shed_crash=sum(r.shed_crash for r in self.replicas),
            shed_no_replica=shed_no_replica,
            backpressure_waits=backpressure_waits,
            measured_joules=sum(r.measured_j for r in self.replicas),
            predicted_joules=sum(r.predicted_expected_j
                                 for r in self.replicas),
            allowance_joules=allowance,
            p50_latency_s=latency.percentile(50.0),
            p99_latency_s=latency.percentile(99.0),
            violations=self.coordinator.violations(settle_now),
            dispatch_counts=dispatch_counts,
            replica_crashes=sum(r.crashes for r in self.replicas),
            lease_renewal_faults=self._lease_faults,
            calibration_stale=sum(r.calibration_stale
                                  for r in self.replicas),
            calibration_rejected=sum(r.calibration_rejected
                                     for r in self.replicas),
            lease_stats=self.coordinator.stats(),
            replica_reports=tuple(r.report(horizon) for r in self.replicas),
        )

    def __repr__(self) -> str:
        return (f"EnergyGatewayFleet(replicas={self.n_replicas}, "
                f"balancer={self.balancer_name!r}, "
                f"tenants={len(self.tenant_names)})")
