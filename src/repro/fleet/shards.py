"""Sharded token-bucket budgets with lease-based global enforcement.

The paper's system-wide clarity argument (and EACOF's fleet-wide energy
accounting, PAPERS.md) demands that a per-tenant energy budget hold
across *all* replicas even though each replica only ever sees its own
traffic.  Centralising every draw would put a coordinator round-trip on
the admission hot path; instead the fleet shards each tenant's bucket:

* one :class:`LeaseCoordinator` per fleet owns the *global* token
  arithmetic — per tenant, ``allowance(t) = capacity + refill * t`` and
  the running total of joules ever granted out;
* each replica holds one :class:`BudgetShard` per tenant, which admits
  requests locally against a :class:`Lease` — a grant of joules valid
  until a TTL expires.  Admission is a local comparison; the
  coordinator is consulted only when the lease runs dry or times out
  (the "gossip" traffic).

The global invariant is then enforced by construction: the coordinator
never grants beyond the allowance, a shard never admits beyond its
grants, so the fleet-wide sum of drawn joules can never exceed the
tenant's allowance — whichever replica the balancer chose, whatever
order the requests arrived in.  Expired leases return their unused
joules at the next renewal, so a drained replica's tokens flow back to
the rest of the fleet instead of leaking.

Renewals can *fail* (fault site ``"fleet.lease"`` in
:mod:`repro.faults`): a shard whose renewal was denied holds no lease
and must reject admissions — conservative by design, mirroring the
degradation ladder's "shed load you might have served, never the
reverse".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import BudgetError
from repro.serving.budget import BudgetSpec

__all__ = ["Lease", "LeaseCoordinator", "BudgetShard"]

#: Float-comparison slack for token arithmetic (joule sums over millions
#: of requests accumulate rounding in the last few ulps).
_EPS = 1e-9


@dataclass
class Lease:
    """One grant of joules to one shard, valid until ``expires_s``."""

    granted_j: float
    expires_s: float
    remaining_j: float = field(init=False)

    def __post_init__(self) -> None:
        self.remaining_j = self.granted_j

    def live(self, now: float) -> bool:
        return now < self.expires_s


class LeaseCoordinator:
    """The global accountant: grants leases, never beyond the allowance.

    Tracks, per tenant, the configured :class:`BudgetSpec`, the joules
    granted out (net of returns) and the joules reported drawn.  All
    times are simulated seconds; clocks from different replicas are
    clamped monotone so out-of-order gossip cannot rewind the refill
    integral.
    """

    def __init__(self, specs: dict[str, BudgetSpec] | None = None) -> None:
        self._specs: dict[str, BudgetSpec] = {}
        self._granted: dict[str, float] = {}
        self._drawn: dict[str, float] = {}
        self._now = 0.0
        self.grants = 0
        self.denials = 0
        self.returns_j = 0.0
        for tenant, spec in (specs or {}).items():
            self.add_tenant(tenant, spec)

    def add_tenant(self, tenant: str, spec: BudgetSpec) -> None:
        if tenant in self._specs:
            raise BudgetError(f"tenant {tenant!r} already has a budget")
        self._specs[tenant] = spec
        self._granted[tenant] = 0.0
        self._drawn[tenant] = 0.0

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def spec_for(self, tenant: str) -> BudgetSpec:
        try:
            return self._specs[tenant]
        except KeyError:
            raise BudgetError(
                f"no budget for tenant {tenant!r}; known: "
                f"{sorted(self._specs)}") from None

    def _sync(self, now: float) -> float:
        # Monotone clamp: gossip from replica B may carry a timestamp a
        # hair behind replica A's last renewal; the allowance integral
        # only ever moves forward.
        self._now = max(self._now, now)
        return self._now

    def allowance(self, tenant: str, now: float) -> float:
        """Nominal joules released to ``tenant`` by simulated ``now``."""
        spec = self.spec_for(tenant)
        return spec.capacity_joules + spec.refill_watts * max(now, 0.0)

    def granted(self, tenant: str) -> float:
        """Joules currently granted out (net of returns)."""
        return self._granted[tenant]

    def drawn(self, tenant: str) -> float:
        """Joules the shards reported actually drawn."""
        return self._drawn[tenant]

    def request_lease(self, tenant: str, chunk_j: float, ttl_s: float,
                      now: float, returned_j: float = 0.0,
                      drawn_j: float = 0.0) -> Lease | None:
        """One gossip round: settle the old lease, grant a new one.

        ``returned_j`` is the unused remainder of the shard's previous
        lease (reclaimed before the new grant is sized) and ``drawn_j``
        the joules it drew since its last report.  Returns ``None`` when
        the tenant's allowance is exhausted at ``now`` — the shard then
        holds no lease and must reject admissions until a later renewal
        succeeds.
        """
        if chunk_j <= 0:
            raise BudgetError(f"lease chunk must be positive, got {chunk_j}")
        if returned_j < -_EPS or drawn_j < -_EPS:
            raise BudgetError("cannot return or report negative joules")
        now = self._sync(now)
        self._drawn[tenant] = self._drawn.get(tenant, 0.0) + drawn_j
        if returned_j > 0:
            self._granted[tenant] = max(
                self._granted[tenant] - returned_j, 0.0)
            self.returns_j += returned_j
        headroom = self.allowance(tenant, now) - self._granted[tenant]
        grant = min(chunk_j, headroom)
        if grant <= _EPS:
            self.denials += 1
            return None
        self._granted[tenant] += grant
        self.grants += 1
        return Lease(granted_j=grant, expires_s=now + ttl_s)

    def settle(self, tenant: str, returned_j: float, drawn_j: float,
               now: float) -> None:
        """Final gossip without a new grant (shard drain / end of run)."""
        if returned_j < -_EPS or drawn_j < -_EPS:
            raise BudgetError("cannot return or report negative joules")
        self._sync(now)
        self._drawn[tenant] = self._drawn.get(tenant, 0.0) + drawn_j
        if returned_j > 0:
            self._granted[tenant] = max(
                self._granted[tenant] - returned_j, 0.0)
            self.returns_j += returned_j

    def violations(self, now: float) -> dict[str, float]:
        """Per-tenant overdraw beyond the allowance at ``now`` (Joules).

        Empty when the invariant held — which it must, by construction,
        as long as every draw went through a shard's lease.  The check is
        still computed from the reported draws, not assumed, so a bug in
        the lease arithmetic shows up as a violation rather than
        silently passing.
        """
        now = self._sync(now)
        out: dict[str, float] = {}
        for tenant in self._specs:
            over = self._drawn[tenant] - self.allowance(tenant, now)
            if over > _EPS:
                out[tenant] = over
        return out

    def stats(self) -> dict[str, float]:
        return {
            "tenants": len(self._specs),
            "grants": self.grants,
            "denials": self.denials,
            "returned_j": self.returns_j,
            "granted_j": sum(self._granted.values()),
            "drawn_j": sum(self._drawn.values()),
        }

    def __repr__(self) -> str:
        return (f"LeaseCoordinator(tenants={len(self._specs)}, "
                f"grants={self.grants}, denials={self.denials})")


class BudgetShard:
    """One replica's local view of one tenant's budget.

    Admission (:meth:`can_admit` then :meth:`draw`) touches only local
    state; :meth:`ensure_lease` renews through the coordinator when the
    current lease is expired or too small, charging one gossip round.
    """

    def __init__(self, tenant: str, coordinator: LeaseCoordinator,
                 chunk_j: float, ttl_s: float) -> None:
        if chunk_j <= 0:
            raise BudgetError(f"lease chunk must be positive, got {chunk_j}")
        if ttl_s <= 0:
            raise BudgetError(f"lease TTL must be positive, got {ttl_s}")
        self.tenant = tenant
        self.coordinator = coordinator
        self.chunk_j = float(chunk_j)
        self.ttl_s = float(ttl_s)
        self._lease: Lease | None = None
        self._undrained = 0.0      # drawn joules not yet gossiped upstream
        self.drawn_j = 0.0         # lifetime draws through this shard
        self.granted_j = 0.0       # lifetime joules granted to this shard
        self.renewals = 0
        self.expiries = 0
        self.renewal_failures = 0

    # -- lease upkeep ---------------------------------------------------------
    def needs_renewal(self, worst_j: float, now: float) -> bool:
        """Would admitting ``worst_j`` at ``now`` require a gossip round?

        A pure read (no counters advance): callers use it to decide
        whether to charge a coordinator round — and whether to consult
        the ``"fleet.lease"`` fault site — before :meth:`ensure_lease`.
        """
        lease = self._lease
        return (lease is None or not lease.live(now)
                or lease.remaining_j + _EPS < worst_j)

    def _stale(self, worst_j: float, now: float) -> bool:
        lease = self._lease
        if lease is None:
            return True
        if not lease.live(now):
            self.expiries += 1
            return True
        return lease.remaining_j + _EPS < worst_j

    def ensure_lease(self, worst_j: float, now: float,
                     renewal_allowed: bool = True) -> bool:
        """Hold a live lease covering ``worst_j``; renew if needed.

        ``renewal_allowed`` is the fault-injection hook: when the
        ``"fleet.lease"`` site fired for this renewal, the coordinator
        round is treated as lost — any existing lease is kept as-is, so
        the shard can still admit from its remainder, but nothing is
        returned or granted.
        """
        if not self._stale(worst_j, now):
            return True
        if not renewal_allowed:
            self.renewal_failures += 1
            # A dead coordinator round: an *expired* lease is no longer
            # spendable (its unused joules will be returned on the next
            # successful renewal), so drop it now.
            if self._lease is not None and not self._lease.live(now):
                return False
            return self._lease is not None \
                and self._lease.remaining_j + _EPS >= worst_j
        returned = 0.0
        if self._lease is not None:
            returned = max(self._lease.remaining_j, 0.0)
        chunk = max(self.chunk_j, worst_j)
        lease = self.coordinator.request_lease(
            self.tenant, chunk, self.ttl_s, now,
            returned_j=returned, drawn_j=self._undrained)
        self._undrained = 0.0
        self._lease = lease
        if lease is None:
            return False
        self.renewals += 1
        self.granted_j += lease.granted_j
        return lease.remaining_j + _EPS >= worst_j

    # -- admission-path accounting ---------------------------------------------
    def can_admit(self, worst_j: float, now: float) -> bool:
        """Does the live lease cover a worst-case draw of ``worst_j``?"""
        lease = self._lease
        return (lease is not None and lease.live(now)
                and lease.remaining_j + _EPS >= worst_j)

    def draw(self, joules: float, now: float) -> None:
        """Consume ``joules`` from the lease (admitted work settling)."""
        if joules < 0:
            raise BudgetError(f"cannot draw {joules} J")
        lease = self._lease
        if lease is None:
            raise BudgetError(
                f"shard for tenant {self.tenant!r} drew without a lease")
        lease.remaining_j -= joules
        self._undrained += joules
        self.drawn_j += joules

    def flush(self, now: float) -> None:
        """Return the unused lease and report draws (drain / end of run)."""
        returned = 0.0
        if self._lease is not None:
            returned = max(self._lease.remaining_j, 0.0)
            self._lease = None
        if returned > 0 or self._undrained > 0:
            self.coordinator.settle(self.tenant, returned,
                                    self._undrained, now)
            self._undrained = 0.0

    def __repr__(self) -> str:
        return (f"BudgetShard(tenant={self.tenant!r}, "
                f"drawn={self.drawn_j:.4g} J, renewals={self.renewals})")
