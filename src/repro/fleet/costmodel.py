"""Cost models: how a replica prices and settles a request's energy.

The serving gateway evaluates a full energy interface per request; at
fleet scale (a million requests through several replicas) the pricing
path must stay O(1) while keeping the paper's structure — a *predicted*
(expected, worst) pair gates admission, a *measured* value settles the
budget.  Two models:

* :class:`WorkCostModel` — closed-form pricing linear in the request's
  abstract ``work`` units, with a deterministic per-request measured
  value derived from the request identity
  (:func:`~repro.workloads.fleettrace.request_unit`), always inside the
  predicted worst bound.  This is the S4 benchmark's model: the hot path
  is pure float arithmetic, the replay is bitwise.
* :class:`InterfaceCostModel` — prices through a real
  :class:`~repro.core.interface.EnergyInterface` via an
  :class:`~repro.core.session.EvalSession`, memoised on the quantised
  work abstraction so repeated inputs hit the session cache.  This is
  what the CLI uses for small, high-fidelity fleet runs.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import ServingError
from repro.workloads.fleettrace import TenantRequest, request_unit

__all__ = ["CostModel", "WorkCostModel", "InterfaceCostModel"]


class CostModel:
    """Base: predict (expected, worst) joules, then measure the truth."""

    name = "cost-model"

    def predict(self, request: TenantRequest) -> tuple[float, float]:
        """(expected, worst) joules for ``request``."""
        raise NotImplementedError

    def measure(self, request: TenantRequest) -> float:
        """Ground-truth joules the request actually cost."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class WorkCostModel(CostModel):
    """Closed-form pricing linear in abstract work units.

    ``expected = base_j * work``; ``worst = expected * worst_factor``;
    the measured value is ``expected`` scaled by a deterministic
    per-request factor in ``[1 - spread, 1 + spread]`` — inside the
    worst bound as long as ``spread <= worst_factor - 1``, which the
    constructor enforces so hard admission keeps the budget invariant
    airtight.
    """

    name = "work"

    def __init__(self, base_j: float = 0.001, worst_factor: float = 1.5,
                 spread: float = 0.25) -> None:
        if base_j <= 0:
            raise ServingError(f"base_j must be positive, got {base_j}")
        if worst_factor < 1.0:
            raise ServingError(
                f"worst_factor must be >= 1, got {worst_factor}")
        if not 0.0 <= spread <= worst_factor - 1.0:
            raise ServingError(
                f"spread must be in [0, worst_factor - 1] so measurements "
                f"stay inside the worst bound; got {spread}")
        self.base_j = float(base_j)
        self.worst_factor = float(worst_factor)
        self.spread = float(spread)

    def predict(self, request: TenantRequest) -> tuple[float, float]:
        expected = self.base_j * request.work
        return expected, expected * self.worst_factor

    def measure(self, request: TenantRequest) -> float:
        expected = self.base_j * request.work
        unit = request_unit(request.request_id, request.tenant)
        return expected * (1.0 + self.spread * (2.0 * unit - 1.0))


class InterfaceCostModel(CostModel):
    """Price requests through a real energy interface.

    ``method(*args(work))`` is evaluated in ``"expected"`` and
    ``"worst"`` mode through the supplied session; results are memoised
    on the work abstraction quantised to ``work_quantum``, so a Zipf
    workload's hot inputs pay the evaluation once.  Measurement reuses
    the expected evaluation scaled by the same deterministic per-request
    spread as :class:`WorkCostModel` (the simulated fleet has no
    physical ledger per replica to meter).
    """

    name = "interface"

    def __init__(self, interface: Any, method: str, session: Any,
                 work_quantum: float = 0.05, spread: float = 0.2,
                 worst_floor_factor: float = 1.0 + 0.25,
                 backend: Any = "compiled") -> None:
        from repro.core.predict import resolve_backend

        if work_quantum <= 0:
            raise ServingError(
                f"work_quantum must be positive, got {work_quantum}")
        if spread < 0:
            raise ServingError(f"spread must be >= 0, got {spread}")
        self.interface = interface
        self.method = method
        self.session = session
        self.work_quantum = float(work_quantum)
        self.spread = float(spread)
        self.worst_floor_factor = float(worst_floor_factor)
        # Fleet pricing is the highest-leverage consumer of compiled
        # prediction: the same few quantised work keys are priced over
        # and over, so the compiled backend's analytic/kernel answers
        # (with the sampled backend behind them as fallback) are the
        # default here.  Pass ``backend="sampled"`` for the historical
        # pure-Monte-Carlo pricing.
        self.backend = resolve_backend(backend)
        self._cache: dict[float, tuple[float, float]] = {}

    def args_for(self, work: float) -> tuple:
        """The interface arguments pricing ``work`` units (overridable)."""
        return (work,)

    def _quantised(self, work: float) -> float:
        return round(work / self.work_quantum) * self.work_quantum

    def predict(self, request: TenantRequest) -> tuple[float, float]:
        key = self._quantised(request.work)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        call = self.interface(self.method, *self.args_for(key))
        expected = self.backend.mean(call, session=self.session)
        worst = self.backend.worst(call, session=self.session)
        # A leaf with no stochastic ECVs prices worst == expected; keep a
        # floor over the measurement spread so hard admission still
        # covers every settled draw.
        worst = max(worst, expected * max(self.worst_floor_factor,
                                          1.0 + self.spread))
        self._cache[key] = (expected, worst)
        return expected, worst

    def measure(self, request: TenantRequest) -> float:
        expected, _ = self.predict(request)
        unit = request_unit(request.request_id, request.tenant)
        return expected * (1.0 + self.spread * (2.0 * unit - 1.0))
