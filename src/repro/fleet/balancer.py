"""Pluggable load balancers over the gateway replicas.

A balancer answers one question — *which live replica should this
request try first?* — and returns a preference order so the dispatcher
can fall back when the first choice's queue is full (bounded-queue
backpressure).  Balancers see the same replica view the fleet does:
queue depth, predicted energy in-flight, and up/down state; degraded or
crashed replicas are drained simply by never being offered.

The in-flight energy signal is deliberately the *predicted* (worst-mode)
cost of enqueued-but-unfinished requests: that is the quantity an energy
interface makes observable before a Joule is spent, which is exactly the
paper's pitch — balancing on energy clarity instead of on connection
counts.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.core.errors import ServingError

__all__ = [
    "ReplicaView",
    "LoadBalancer",
    "RoundRobinBalancer",
    "PowerOfTwoBalancer",
    "LeastEnergyBalancer",
    "BALANCERS",
    "build_balancer",
]


class ReplicaView(Protocol):
    """What a balancer may observe about a replica."""

    index: int

    def accepting(self, now: float) -> bool: ...

    @property
    def queue_depth(self) -> int: ...

    @property
    def inflight_j(self) -> float: ...


class LoadBalancer:
    """Base class; subclasses implement :meth:`prefer`."""

    name = "balancer"

    def prefer(self, replicas: Sequence[ReplicaView],
               now: float) -> list[ReplicaView]:
        """Live replicas in the order this request should try them."""
        raise NotImplementedError

    @staticmethod
    def _live(replicas: Sequence[ReplicaView],
              now: float) -> list[ReplicaView]:
        return [r for r in replicas if r.accepting(now)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RoundRobinBalancer(LoadBalancer):
    """The classic baseline: rotate through the live replicas."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def prefer(self, replicas: Sequence[ReplicaView],
               now: float) -> list[ReplicaView]:
        live = self._live(replicas, now)
        if not live:
            return []
        start = self._next % len(live)
        self._next += 1
        return live[start:] + live[:start]


class LeastEnergyBalancer(LoadBalancer):
    """Send each request to the replica with the least energy in-flight.

    The energy analogue of least-connections: the backlog that matters
    for an energy budget is Joules queued, not connections open.  Ties
    break on queue depth, then on replica index, so decisions replay
    deterministically.
    """

    name = "least-energy"

    def prefer(self, replicas: Sequence[ReplicaView],
               now: float) -> list[ReplicaView]:
        live = self._live(replicas, now)
        return sorted(live, key=lambda r: (r.inflight_j, r.queue_depth,
                                           r.index))


class PowerOfTwoBalancer(LoadBalancer):
    """Energy-weighted power-of-two-choices.

    Samples two distinct live replicas from a seeded stream and sends
    the request to the one with less predicted energy in-flight — the
    classic two-choices result (exponential improvement over random for
    the price of two probes) with Joules as the load measure.  The
    remaining replicas follow in least-energy order for backpressure
    fallback.
    """

    name = "power-of-two"

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(0 if rng is None else int(rng))
        self._rng = rng

    def prefer(self, replicas: Sequence[ReplicaView],
               now: float) -> list[ReplicaView]:
        live = self._live(replicas, now)
        if len(live) <= 2:
            return sorted(live, key=lambda r: (r.inflight_j, r.index))
        first, second = (int(i) for i in
                         self._rng.choice(len(live), size=2, replace=False))
        pair = sorted((live[first], live[second]),
                      key=lambda r: (r.inflight_j, r.queue_depth, r.index))
        rest = [r for i, r in enumerate(live) if i not in (first, second)]
        rest.sort(key=lambda r: (r.inflight_j, r.queue_depth, r.index))
        return pair + rest


#: Balancer names accepted by :class:`~repro.core.policy.Policy` and the
#: ``repro-energy fleet`` CLI, mapped to their constructors.
BALANCERS = {
    RoundRobinBalancer.name: RoundRobinBalancer,
    LeastEnergyBalancer.name: LeastEnergyBalancer,
    PowerOfTwoBalancer.name: PowerOfTwoBalancer,
}


def build_balancer(name: str,
                   rng: np.random.Generator | int | None = None
                   ) -> LoadBalancer:
    """Construct a balancer by policy name (seeding the ones that draw)."""
    try:
        cls = BALANCERS[name]
    except KeyError:
        raise ServingError(
            f"unknown balancer {name!r}; expected one of "
            f"{sorted(BALANCERS)}") from None
    if cls is PowerOfTwoBalancer:
        return PowerOfTwoBalancer(rng)
    return cls()
