"""repro.fleet — a multi-replica energy-aware serving fleet.

The paper's clarity argument is system-wide: an energy interface is most
valuable when *every* layer — and every node — can see and act on energy.
This package scales the single-node serving gateway (PR 3-5) out to a
fleet: N replicas behind a pluggable, energy-aware load balancer, with
per-tenant budgets enforced globally through sharded token buckets and a
lease/gossip coordinator.  The whole pipeline is virtual-time asyncio,
seeded end to end, so a million-request run replays bitwise — experiment
S4's claim.

Layers, bottom-up:

* :mod:`~repro.fleet.shards` — :class:`LeaseCoordinator` and
  :class:`BudgetShard`: global token arithmetic, local admission.
* :mod:`~repro.fleet.costmodel` — how a replica prices a request
  (closed-form work units, or a real energy interface).
* :mod:`~repro.fleet.replica` — :class:`FleetReplica`: bounded queue,
  async worker, counter-based metrics.
* :mod:`~repro.fleet.balancer` — round-robin, least-energy-in-flight and
  energy-weighted power-of-two-choices.
* :mod:`~repro.fleet.fleet` — :class:`EnergyGatewayFleet`, the front
  door; :mod:`~repro.fleet.report` — the :class:`FleetReport` roll-up.
"""

from repro.fleet.balancer import (
    BALANCERS,
    LeastEnergyBalancer,
    LoadBalancer,
    PowerOfTwoBalancer,
    ReplicaView,
    RoundRobinBalancer,
    build_balancer,
)
from repro.fleet.costmodel import CostModel, InterfaceCostModel, WorkCostModel
from repro.fleet.fleet import (
    DEFAULT_BALANCER,
    DEFAULT_LEASE_TTL_S,
    DEFAULT_REPLICAS,
    EnergyGatewayFleet,
)
from repro.fleet.replica import FleetReplica, LatencyHistogram
from repro.fleet.report import FleetReport, format_fleet_report
from repro.fleet.shards import BudgetShard, Lease, LeaseCoordinator

__all__ = [
    "BALANCERS",
    "BudgetShard",
    "CostModel",
    "DEFAULT_BALANCER",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_REPLICAS",
    "EnergyGatewayFleet",
    "FleetReplica",
    "FleetReport",
    "InterfaceCostModel",
    "LatencyHistogram",
    "Lease",
    "LeaseCoordinator",
    "LeastEnergyBalancer",
    "LoadBalancer",
    "PowerOfTwoBalancer",
    "ReplicaView",
    "RoundRobinBalancer",
    "WorkCostModel",
    "build_balancer",
    "format_fleet_report",
]
