"""One gateway replica: a bounded queue, a worker, and budget shards.

A :class:`FleetReplica` is the fleet's unit of scale — the single-node
:class:`~repro.serving.gateway.EnergyAwareGateway` re-shaped for a
million-request async pipeline:

* requests arrive through a **bounded** :class:`asyncio.Queue`; the
  dispatcher's ``try_enqueue`` fails fast when it is full so the
  balancer can fall back to another replica, and ``enqueue_wait`` blocks
  (backpressure on the slow client) only when the whole fleet is full;
* a worker coroutine drains the queue: hard admission against the
  tenant's :class:`~repro.fleet.shards.BudgetShard` (the request's
  *worst-case* joules must fit the live lease), then the cost model's
  measured energy settles the draw — so a replica can never spend a
  joule its lease did not cover;
* all bookkeeping is **counters and a log-binned latency histogram**,
  never per-request records: memory stays O(1) in the request count.

Time is virtual throughout.  A replica carries a busy clock
(``_free_at``): request service time is ``measured_j / power_watts``,
latency is queue wait plus service, and no wall-clock is ever read — two
runs at the same seed replay bitwise.
"""

from __future__ import annotations

import asyncio
import math
from typing import Callable

from repro.core.errors import CalibrationStale
from repro.fleet.costmodel import CostModel
from repro.fleet.shards import BudgetShard
from repro.serving.metrics import ServingReport
from repro.workloads.fleettrace import TenantRequest

__all__ = ["LatencyHistogram", "FleetReplica"]

#: Queue sentinel telling a worker its run is over.
_STOP = object()


class LatencyHistogram:
    """Log-binned latency counts: percentiles without storing samples.

    Bins span ``[1e-6, 1e4)`` seconds at ``bins_per_decade`` resolution
    (under/overflow clamp to the edge bins), so a million observations
    cost a few hundred ints and the p50/p99 read-out is deterministic —
    the quantile is the geometric midpoint of the bin holding it.
    """

    LO_EXP = -6.0
    HI_EXP = 4.0

    def __init__(self, bins_per_decade: int = 20) -> None:
        self.bins_per_decade = int(bins_per_decade)
        self._n_bins = int((self.HI_EXP - self.LO_EXP) * bins_per_decade)
        self._counts = [0] * self._n_bins
        self.n = 0

    def _bin(self, seconds: float) -> int:
        if seconds <= 10.0 ** self.LO_EXP:
            return 0
        idx = int((math.log10(seconds) - self.LO_EXP) * self.bins_per_decade)
        return min(max(idx, 0), self._n_bins - 1)

    def add(self, seconds: float) -> None:
        self._counts[self._bin(seconds)] += 1
        self.n += 1

    def merge(self, other: "LatencyHistogram") -> None:
        if other.bins_per_decade != self.bins_per_decade:
            raise ValueError("cannot merge histograms of differing resolution")
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self.n += other.n

    def percentile(self, pct: float) -> float | None:
        """The ``pct``-th percentile in seconds (None when empty)."""
        if self.n == 0:
            return None
        target = pct / 100.0 * self.n
        seen = 0
        for i, count in enumerate(self._counts):
            seen += count
            if seen >= target and count > 0:
                centre = self.LO_EXP + (i + 0.5) / self.bins_per_decade
                return 10.0 ** centre
        return 10.0 ** self.HI_EXP


class FleetReplica:
    """One async gateway replica with sharded budget admission."""

    def __init__(self, index: int, cost_model: CostModel,
                 shards: dict[str, BudgetShard],
                 power_watts: float = 50.0,
                 queue_limit: int = 256,
                 lease_gate: Callable[[], bool] | None = None,
                 calibration_guard=None,
                 calibration_action: str = "widen",
                 calibration_widen_factor: float = 1.5) -> None:
        self.index = int(index)
        self.cost_model = cost_model
        self.shards = shards
        self.power_watts = float(power_watts)
        self.queue_limit = int(queue_limit)
        #: Consulted once per coordinator renewal round; returns False
        #: when the ``"fleet.lease"`` fault site fired for that round.
        self._lease_gate = lease_gate or (lambda: True)
        #: Optional :class:`~repro.calibration.guard.CalibrationGuard`
        #: watching this replica's prediction-vs-measured residual; when
        #: it goes stale, admission widens the worst-case bound or sheds
        #: per ``calibration_action`` — never serves silently.
        self.calibration_guard = calibration_guard
        self.calibration_action = calibration_action
        self.calibration_widen_factor = float(calibration_widen_factor)
        self._queue: asyncio.Queue | None = None
        # -- balancer-visible load signal --------------------------------
        self._inflight_j = 0.0     # worst-mode joules enqueued, unfinished
        self._down_until = -math.inf
        # -- virtual clocks ----------------------------------------------
        self._free_at = 0.0        # busy clock: when the worker idles next
        self._last_now = 0.0
        # -- counters (never per-request records) ------------------------
        self.offered = 0           # requests enqueued to this replica
        self.admitted = 0
        self.rejected_budget = 0   # lease could not cover the worst case
        self.calibration_stale = 0     # decided while the guard was stale
        self.calibration_rejected = 0  # of which shed outright
        self.shed_crash = 0        # queued requests lost to a crash
        self.crashes = 0
        self.measured_j = 0.0
        self.predicted_expected_j = 0.0
        self._error_sum = 0.0      # sum of relative prediction errors
        self._error_n = 0
        self.latency = LatencyHistogram()

    # -- balancer view (ReplicaView protocol) ------------------------------
    def accepting(self, now: float) -> bool:
        """Up (not crashed) at simulated ``now``."""
        return now >= self._down_until

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def inflight_j(self) -> float:
        return self._inflight_j

    # -- lifecycle ----------------------------------------------------------
    def open(self) -> None:
        """Create the bounded queue (must run inside the event loop)."""
        self._queue = asyncio.Queue(maxsize=self.queue_limit)

    def try_enqueue(self, request: TenantRequest, tenant: str,
                    expected_j: float, worst_j: float) -> bool:
        """Non-blocking enqueue; False when the queue is full."""
        assert self._queue is not None
        try:
            self._queue.put_nowait((request, tenant, expected_j, worst_j))
        except asyncio.QueueFull:
            return False
        self.offered += 1
        self._inflight_j += worst_j
        return True

    async def enqueue_wait(self, request: TenantRequest, tenant: str,
                           expected_j: float, worst_j: float) -> None:
        """Blocking enqueue — the dispatcher absorbs the backpressure."""
        assert self._queue is not None
        await self._queue.put((request, tenant, expected_j, worst_j))
        self.offered += 1
        self._inflight_j += worst_j

    async def stop(self) -> None:
        assert self._queue is not None
        await self._queue.put(_STOP)

    def crash(self, now: float, downtime_s: float) -> int:
        """Kill the replica at ``now``: shed the queue, drop the leases.

        The in-memory queue is lost (those requests are shed), and the
        budget shards send one final gossip — the shard ledger is modeled
        as durable, so unused lease joules flow back to the coordinator
        instead of leaking.  The replica restarts, lease-less, at
        ``now + downtime_s``.  Returns the number of shed requests.
        """
        assert self._queue is not None
        shed = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _STOP:
                # Keep the shutdown signal: the worker must still exit.
                self._queue.put_nowait(item)
                break
            shed += 1
            self._inflight_j -= item[3]
        self.shed_crash += shed
        self.crashes += 1
        for shard in self.shards.values():
            shard.flush(now)
        self._down_until = now + float(downtime_s)
        self._free_at = max(self._free_at, self._down_until)
        return shed

    def flush(self, now: float) -> None:
        """End-of-run gossip: return unused leases, report draws."""
        for shard in self.shards.values():
            shard.flush(now)

    # -- the worker ---------------------------------------------------------
    async def run(self) -> None:
        """Drain the queue until the stop sentinel arrives."""
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            if item is _STOP:
                return
            self._process(*item)

    def _process(self, request: TenantRequest, tenant: str,
                 expected_j: float, worst_j: float) -> None:
        now = request.arrival_s
        self._last_now = max(self._last_now, now)
        self._inflight_j -= worst_j
        if self.calibration_guard is not None:
            try:
                self.calibration_guard.check()
            except CalibrationStale:
                self.calibration_stale += 1
                if self.calibration_action == "reject":
                    self.calibration_rejected += 1
                    return
                worst_j = worst_j * self.calibration_widen_factor
        shard = self.shards[tenant]
        if shard.needs_renewal(worst_j, now):
            covered = shard.ensure_lease(
                worst_j, now, renewal_allowed=self._lease_gate())
        else:
            covered = True
        if not covered or not shard.can_admit(worst_j, now):
            self.rejected_budget += 1
            return
        measured = self.cost_model.measure(request)
        if self.calibration_guard is not None:
            self.calibration_guard.observe(expected_j, measured)
        shard.draw(measured, now)
        start = max(now, self._free_at)
        service_s = measured / self.power_watts
        finish = start + service_s
        self._free_at = finish
        self.admitted += 1
        self.measured_j += measured
        self.predicted_expected_j += expected_j
        self.latency.add(finish - request.arrival_s)
        if measured > 0:
            self._error_sum += abs(expected_j - measured) / measured
            self._error_n += 1

    # -- roll-up ------------------------------------------------------------
    def report(self, horizon_s: float) -> ServingReport:
        """This replica's run as a standard :class:`ServingReport`.

        ``allowance_joules`` is the joules the coordinator granted to
        this replica's shards over the run, so ``budget_utilisation``
        reads as lease efficiency (drawn over granted, at most 1).
        """
        granted = sum(s.granted_j for s in self.shards.values())
        return ServingReport(
            horizon_s=horizon_s,
            offered=self.offered,
            admitted=self.admitted,
            degraded=0,
            rejected=self.rejected_budget,
            shed_queue_full=self.shed_crash,
            deferred_total=0,
            ledger_joules=self.measured_j,
            allowance_joules=granted,
            predicted_joules=self.predicted_expected_j,
            mean_prediction_error=(self._error_sum / self._error_n
                                   if self._error_n else None),
            p50_latency_s=self.latency.percentile(50.0),
            p99_latency_s=self.latency.percentile(99.0),
            fault_stats=({"replica_crashes": float(self.crashes)}
                         if self.crashes else {}),
            calibration_stale=self.calibration_stale,
            calibration_rejected=self.calibration_rejected,
        )

    def __repr__(self) -> str:
        return (f"FleetReplica(index={self.index}, offered={self.offered}, "
                f"admitted={self.admitted}, inflight={self._inflight_j:.4g} J)")
