"""The fleet-wide roll-up: one report over every replica's run.

A :class:`FleetReport` aggregates the per-replica
:class:`~repro.serving.metrics.ServingReport` objects plus everything
only the fleet can see: balancer dispatch counts, lease/gossip traffic,
crash and backpressure totals, and — the headline numbers — fleet
goodput per Joule and the per-tenant budget-invariant check.  The report
is a frozen value object with a canonical JSON form, so two runs compare
by :meth:`digest` — the S4 benchmark's bitwise-replay assertion is one
string equality.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.core.report import format_table
from repro.serving.metrics import ServingReport

__all__ = ["FleetReport", "format_fleet_report"]


@dataclass(frozen=True)
class FleetReport:
    """The roll-up of one fleet serving run."""

    horizon_s: float
    n_replicas: int
    balancer: str
    offered: int
    admitted: int
    #: Requests whose worst-case energy no lease could cover.
    rejected: int
    #: Requests lost from a crashed replica's in-memory queue.
    shed_crash: int
    #: Requests arriving while no replica was accepting.
    shed_no_replica: int
    #: Dispatcher stalls because every live replica's queue was full.
    backpressure_waits: int
    measured_joules: float
    predicted_joules: float
    #: Sum over tenants of ``capacity + refill * horizon`` — the global
    #: envelope the invariant is checked against.
    allowance_joules: float
    p50_latency_s: float | None
    p99_latency_s: float | None
    #: Per-tenant overdraw beyond the allowance (Joules); empty when the
    #: fleet-wide budget invariant held.
    violations: dict[str, float] = field(default_factory=dict)
    #: First-choice dispatches per replica index (balancer decisions).
    dispatch_counts: tuple[int, ...] = ()
    replica_crashes: int = 0
    lease_renewal_faults: int = 0
    #: Requests decided while a replica's calibration guard was stale
    #: (served with widened bounds or shed — accounted, never silent).
    calibration_stale: int = 0
    #: The subset of stale-calibration requests that were shed.
    calibration_rejected: int = 0
    #: Coordinator gossip statistics (grants, denials, returned joules).
    lease_stats: dict[str, float] = field(default_factory=dict)
    replica_reports: tuple[ServingReport, ...] = ()

    @property
    def goodput(self) -> float:
        """Fraction of offered requests actually served."""
        if self.offered == 0:
            return 1.0
        return self.admitted / self.offered

    @property
    def goodput_per_j(self) -> float:
        """Served requests per measured Joule — the fleet's efficiency."""
        if self.measured_joules <= 0:
            return 0.0
        return self.admitted / self.measured_joules

    @property
    def within_budget(self) -> bool:
        """Did every tenant stay inside its fleet-wide allowance?"""
        return not self.violations

    # -- canonical form -------------------------------------------------------
    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def digest(self) -> str:
        """sha256 over the canonical JSON: the bitwise-replay fingerprint."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def _fmt_opt(value: float | None, suffix: str = "",
             scale: float = 1.0) -> str:
    if value is None:
        return "n/a"
    return f"{value * scale:.4g}{suffix}"


def format_fleet_report(report: FleetReport,
                        title: str = "fleet report") -> str:
    """Render a fleet report as the repository's plain-text table."""
    rows = [
        ["replicas", str(report.n_replicas)],
        ["balancer", report.balancer],
        ["horizon", f"{report.horizon_s:.4g} s"],
        ["offered requests", str(report.offered)],
        ["admitted", str(report.admitted)],
        ["rejected (budget)", str(report.rejected)],
        ["shed (crash)", str(report.shed_crash)],
        ["shed (no replica)", str(report.shed_no_replica)],
        ["backpressure waits", str(report.backpressure_waits)],
        ["goodput", f"{report.goodput:.1%}"],
        ["measured energy", f"{report.measured_joules:.4g} J"],
        ["fleet allowance", f"{report.allowance_joules:.4g} J"],
        ["goodput / J", f"{report.goodput_per_j:.4g} req/J"],
        ["p50 latency", _fmt_opt(report.p50_latency_s, " ms", 1e3)],
        ["p99 latency", _fmt_opt(report.p99_latency_s, " ms", 1e3)],
        ["budget violations", str(len(report.violations))],
        ["replica crashes", str(report.replica_crashes)],
        ["lease renewal faults", str(report.lease_renewal_faults)],
    ]
    if report.calibration_stale:
        rows.append(["stale-calibration requests",
                     str(report.calibration_stale)])
        rows.append(["  of which shed", str(report.calibration_rejected)])
    if report.lease_stats:
        rows.append(["lease grants",
                     str(int(report.lease_stats.get("grants", 0)))])
        rows.append(["lease denials",
                     str(int(report.lease_stats.get("denials", 0)))])
    if report.dispatch_counts:
        spread = ", ".join(str(c) for c in report.dispatch_counts)
        rows.append(["dispatches/replica", spread])
    return format_table(["metric", "value"], rows, title=title)
