"""Interface compilation: partial evaluation to analytic/kernel forms.

The ROADMAP's "compile energy interfaces" item (§5): a partial evaluator
over the symbolic-expression toolchain that turns an interface method
plus bound ECV distributions into a
:class:`~repro.compile.compiler.CompiledInterface` — an exact analytic
output distribution where the body is affine, a straight-line numpy
kernel (bitwise equal to the vector Monte Carlo engine) where it is
branch-free, and an honest fallback to sampling where it is genuinely
branchy.  See :mod:`repro.compile.tracer` (partial evaluation),
:mod:`repro.compile.analytic` (closed forms),
:mod:`repro.compile.compiler` (tier classification, codegen, caching)
and :mod:`repro.compile.backend` (the ``"compiled"``
:class:`~repro.core.predict.PredictionBackend`).

Importing this package registers the ``"compiled"`` backend (sessions
resolve it lazily by name) and teaches
:class:`~repro.core.units.Energy` to carry symbolic expressions, which
is what lets unit-constructor scalings (``Energy.nanojoules(x)``) record
exactly during tracing.
"""

from repro.analysis.expr import Expr
from repro.compile.analytic import (
    AnalyticDistribution,
    leaf_distribution,
    leaf_interval,
)
from repro.compile.backend import CompiledBackend
from repro.compile.compiler import (
    CompileCache,
    CompiledCall,
    CompiledInterface,
    compile_call,
)
from repro.compile.tracer import (
    TracedPath,
    TracedProgram,
    UntraceableBody,
    trace_call,
)
from repro.core.predict import register_backend
from repro.core.units import register_symbolic_carrier

__all__ = [
    "AnalyticDistribution",
    "CompileCache",
    "CompiledBackend",
    "CompiledCall",
    "CompiledInterface",
    "TracedPath",
    "TracedProgram",
    "UntraceableBody",
    "compile_call",
    "leaf_distribution",
    "leaf_interval",
    "trace_call",
]

register_symbolic_carrier(Expr)

#: The shared default backend instance behind ``backend="compiled"`` —
#: one process-wide compile cache, like the shared engine singletons.
DEFAULT_BACKEND = register_backend(CompiledBackend())
