"""The compiled prediction backend.

Plugs :mod:`repro.compile` into the
:class:`~repro.core.predict.PredictionBackend` seam: when a session's
evaluation reaches the Monte Carlo stage (exact enumeration blocked by a
continuous ECV), the compiled backend looks the query up in its
:class:`~repro.compile.compiler.CompileCache` and answers

* from the exact analytic distribution (``analytic`` tier),
* from the straight-line numpy kernel's cached draws (``kernel`` tier —
  bitwise identical to a :class:`~repro.core.mcengine.VectorEngine` run
  at the same entropy), or
* by falling back to the plain :class:`~repro.core.predict.SampledBackend`
  (``sampled`` tier, anonymous callables, unsupported modes).

Hook fidelity: a compiled answer surfaces to the session's hook chain as
one batched trace — ``_on_trace_begin`` followed by ``_on_batch(n, ...)``
— exactly the event shape the vector engine emits, so span recorders and
accounting hooks keep seeing the work.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.compile.compiler import CompileCache
from repro.core.ecv import ECVEnvironment
from repro.core.interface import EnergyCall
from repro.core.predict import PredictionBackend, SampledBackend

__all__ = ["CompiledBackend"]


class CompiledBackend(PredictionBackend):
    """Answer Monte Carlo stages from compiled forms where possible."""

    name = "compiled"

    def __init__(self, cache: CompileCache | None = None,
                 fallback: PredictionBackend | None = None) -> None:
        self.cache = cache if cache is not None else CompileCache()
        self.fallback = fallback if fallback is not None else SampledBackend()
        self.stats = {"analytic": 0, "kernel": 0, "sampled": 0}

    def monte_carlo(self, session: Any, *,
                    fn: Callable[[], Any],
                    env: ECVEnvironment,
                    mode: str,
                    rng: np.random.Generator | None,
                    n_samples: int,
                    engine: Any = None,
                    call: Callable[[], Any] | None = None) -> Any:
        if not isinstance(call, EnergyCall) or mode not in (
                "expected", "distribution"):
            # Anonymous callables have no compile key; other modes never
            # reach the Monte Carlo stage in the first place.
            self.stats["sampled"] += 1
            return self.fallback.monte_carlo(
                session, fn=fn, env=env, mode=mode, rng=rng,
                n_samples=n_samples, engine=engine, call=call)
        entry = self.cache.get(call, env, max_traces=session.max_traces)
        if entry.tier == "sampled":
            self.stats["sampled"] += 1
            session._annotate(f"compile fallback: {entry.reason}")
            return self.fallback.monte_carlo(
                session, fn=fn, env=env, mode=mode, rng=rng,
                n_samples=n_samples, engine=engine, call=call)
        self.stats[entry.tier] += 1
        entropy = session._mc_entropy(rng)
        value = entry.predict(mode, entropy, int(n_samples))
        # Mirror the vector engine's hook shape: one batched trace whose
        # recorded value is the full output distribution.
        batch_value = (entry.dist if entry.tier == "analytic"
                       else entry.predict("distribution", entropy,
                                          int(n_samples)))
        session._on_trace_begin()
        session._on_batch(int(n_samples), batch_value)
        return value

    def __repr__(self) -> str:
        return (f"CompiledBackend(cache={len(self.cache)} entries, "
                f"stats={self.stats})")
