"""Compile traced energy programs to analytic distributions or kernels.

The back end of :mod:`repro.compile`: take a
:class:`~repro.compile.tracer.TracedProgram` and classify it into one of
the three prediction tiers —

``analytic``
    Every path is a constant or an affine form over leaves with
    closed-form marginals.  The output law is exact:
    :class:`~repro.compile.analytic.AnalyticDistribution` per path,
    combined across paths exactly as the interpreter's
    ``_combine_distribution`` does (``Discrete`` when all paths are
    constant, law-of-total-variance ``Mixture`` otherwise).

``kernel``
    A single branch-free path whose expression is not affine (products
    of ECVs, powers, floor division).  The expression is emitted back to
    Python source as a straight-line numpy kernel over the Monte Carlo
    engine's deterministic sample columns — *the same columns, the same
    operation sequence* the batched :class:`~repro.core.mcengine.VectorEngine`
    pass applies, so kernel draws are bitwise identical to engine draws
    at equal entropy.

``sampled``
    Genuinely branchy (branches on a continuous ECV, coerces symbolic
    values, returns per-sample outcome distributions).  The compiled
    entry records *why* and the prediction backend falls back to the
    Monte Carlo engines unchanged.

:class:`CompileCache` memoizes compiled entries with a MemoHook-shaped
key — interface identity, method, arguments and the environment
fingerprint (quantised like every other memo key in this repository, so
parameter drift below the quantum keeps a hit, exactly as
:class:`~repro.core.session.MemoHook` behaves) — and revalidates every
hit against the *current* ECV resolution, so rebinding an ECV in the
environment or mutating a declared ECV recompiles instead of serving a
stale form.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.analysis.expr import (
    BinOp,
    Compare,
    Const,
    ECVLeaf,
    Expr,
    FreshSymbol,
    UnaryOp,
    Var,
)
from repro.analysis.intervals import Interval, bound_expr, linearize
from repro.compile.analytic import (
    AnalyticDistribution,
    leaf_distribution,
    leaf_interval,
)
from repro.compile.tracer import (
    TracedProgram,
    UntraceableBody,
    trace_call,
)
from repro.core.distributions import (
    Discrete,
    Empirical,
    EnergyDistribution,
    Mixture,
    PointMass,
)
from repro.core.ecv import ContinuousECV, ECVEnvironment
from repro.core.interface import EnergyCall
from repro.core.mcengine import ColumnStore
from repro.core.session import (
    DEFAULT_P_QUANTUM,
    ecv_fingerprint,
    env_fingerprint,
)
from repro.core.units import Energy

__all__ = [
    "CompiledCall",
    "CompiledInterface",
    "CompileCache",
    "compile_call",
]

#: Result-cache bound per compiled call (distinct ``(mode, entropy, n)``
#: combinations; sessions reuse one entropy, so this is generous).
_MAX_RESULTS = 128
#: Draw-column cache bound per compiled call (arrays are n floats each).
_MAX_DRAWS = 8


class _KernelUnsupported(Exception):
    """Internal: the expression uses a node codegen cannot emit."""


def _emit(expr: Expr, names: Mapping[str, str]) -> str:
    """Render an expression to Python source over kernel arguments.

    Constants are emitted with ``repr`` (exact float round-trip); leaves
    become the sanitised argument names.  The emitted source performs the
    recorded operations in recorded order, which is what makes the kernel
    replay the batched engine pass bitwise.
    """
    if isinstance(expr, Const):
        value = expr.value
        if isinstance(value, (bool, int, float, str)) or value is None:
            return repr(value)
        raise _KernelUnsupported(
            f"constant of type {type(value).__name__} has no exact "
            f"source form")
    if isinstance(expr, (Var, FreshSymbol)):
        name = names.get(expr.render())
        if name is None:
            raise _KernelUnsupported(
                f"free symbol {expr.render()!r} is not a traced ECV leaf")
        return name
    if isinstance(expr, (BinOp, Compare)):
        return (f"({_emit(expr.left, names)} {expr.op} "
                f"{_emit(expr.right, names)})")
    if isinstance(expr, UnaryOp) and expr.op == "-":
        return f"(-{_emit(expr.operand, names)})"
    raise _KernelUnsupported(
        f"no kernel form for expression node {type(expr).__name__}")


def _has_custom_sampler(ecv: Any) -> bool:
    """Whether an ECV draws through an opaque custom sampler.

    :func:`~repro.core.session.ecv_fingerprint` summarises a continuous
    ECV by its bounds only; two ECVs equal under the fingerprint can
    still draw differently when one carries a custom sampler, so cache
    revalidation tracks this bit separately.
    """
    return (isinstance(ecv, ContinuousECV)
            and getattr(ecv, "_sampler", None) is not None)


def _leaf_print(ecv: Any, p_quantum: float) -> tuple:
    return (ecv_fingerprint(ecv, p_quantum), _has_custom_sampler(ecv))


def _declaration_print(interface: Any, p_quantum: float) -> tuple:
    """Fingerprint of an interface's declared ECVs (mutation detection)."""
    declarations = getattr(interface, "ecv_declarations", None) or {}
    return tuple(sorted(
        (name, _leaf_print(ecv, p_quantum))
        for name, ecv in declarations.items()))


def _bare_name(leaf: ECVLeaf) -> str:
    """The unqualified ECV name of a leaf (strip the owner prefix)."""
    owner_name = getattr(leaf.owner, "name", None)
    if owner_name and leaf.qualified.startswith(owner_name + "."):
        return leaf.qualified[len(owner_name) + 1:]
    return leaf.qualified.rsplit(".", 1)[-1]


@dataclass
class CompiledCall:
    """One compiled energy query: its tier plus the compiled artefacts.

    ``analytic`` entries carry the exact output ``dist``; ``kernel``
    entries carry the generated source, the evaluable kernel and the
    ordered column leaves it consumes; ``sampled`` entries carry only
    the fallback ``reason``.  Per-``(mode, entropy, n)`` prediction
    results (and the kernel's raw draw columns) are cached on the entry,
    which is what turns repeated seeded predictions into dictionary
    hits — the compiled replacement for re-running symbolic evaluation
    on every hot-path query.
    """

    call: EnergyCall
    tier: str
    dist: EnergyDistribution | None = None
    kernel_source: str | None = None
    kernel: Any = None
    leaves: list[ECVLeaf] = field(default_factory=list)
    leaf_prints: dict[str, tuple] = field(default_factory=dict)
    declared_print: tuple = ()
    reason: str | None = None
    program: TracedProgram | None = None
    _draws: "OrderedDict[tuple, np.ndarray]" = field(
        default_factory=OrderedDict, repr=False)
    _results: "OrderedDict[tuple, Any]" = field(
        default_factory=OrderedDict, repr=False)

    # -- cache hygiene -----------------------------------------------------
    def revalidate(self, env: ECVEnvironment,
                   p_quantum: float = DEFAULT_P_QUANTUM) -> bool:
        """Is this entry still valid under the current ECV resolution?

        Re-resolves every traced leaf exactly as evaluation would
        (environment first, declaration second) and compares distribution
        fingerprints plus the custom-sampler bit; also re-fingerprints
        the interface's declarations so mutating a declared ECV in place
        invalidates entries whose memo key never sees it.
        """
        if (_declaration_print(self.call.interface, p_quantum)
                != self.declared_print):
            return False
        for leaf in self.leaves:
            bare = _bare_name(leaf)
            current = env.lookup(leaf.qualified, bare)
            if current is None and leaf.owner is not None:
                current = leaf.owner.declared_ecv(bare)
            if current is None:
                return False
            if self.leaf_prints.get(leaf.name) != _leaf_print(
                    current, p_quantum):
                return False
        return True

    # -- execution ---------------------------------------------------------
    def draws(self, entropy: int, n: int) -> np.ndarray:
        """The kernel's ``n`` Monte Carlo draws at ``entropy``.

        Reads the same deterministic :class:`~repro.core.mcengine.ColumnStore`
        columns the engines read and applies the recorded operations, so
        the result is bitwise identical to a :class:`VectorEngine` run of
        the original method at equal ``(entropy, n)``.
        """
        if self.tier != "kernel":
            raise UntraceableBody(
                f"tier {self.tier!r} entry has no kernel draws")
        key = (int(entropy), int(n))
        cached = self._draws.get(key)
        if cached is not None:
            self._draws.move_to_end(key)
            return cached
        store = ColumnStore(entropy, n)
        columns = [store.column(leaf.qualified, leaf.occurrence, leaf.ecv)
                   for leaf in self.leaves]
        value = self.kernel(*columns)
        array = np.asarray(value, dtype=float)
        if array.ndim == 0:
            array = np.full(int(n), float(array))
        self._draws[key] = array
        if len(self._draws) > _MAX_DRAWS:
            self._draws.popitem(last=False)
        return array

    def predict(self, mode: str, entropy: int, n: int) -> Any:
        """Answer an ``expected``/``distribution`` query from this entry.

        Analytic entries answer exactly (``Energy(mean)`` / the analytic
        distribution); kernel entries answer from their bitwise draws
        (``Energy(mean of draws)`` / ``Empirical(draws)``, exactly the
        shapes :meth:`EvalSession._monte_carlo` produces).  Results are
        cached per ``(mode, entropy, n)``.
        """
        if self.tier == "analytic":
            key = (mode,)
        elif self.tier == "kernel":
            key = (mode, int(entropy), int(n))
        else:
            raise UntraceableBody(
                f"tier {self.tier!r} entry cannot answer predictions "
                f"({self.reason})")
        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
            return cached
        if self.tier == "analytic":
            value = (Energy(self.dist.mean()) if mode == "expected"
                     else self.dist)
        else:
            draws = self.draws(entropy, n)
            value = (Energy(float(np.mean(draws))) if mode == "expected"
                     else Empirical(draws))
        self._results[key] = value
        if len(self._results) > _MAX_RESULTS:
            self._results.popitem(last=False)
        return value

    # -- introspection -----------------------------------------------------
    def proven_interval(self) -> Interval | None:
        """Sound bounds on the output from the lint layer's domains.

        Each traced path's expression is bounded by
        :func:`~repro.analysis.intervals.bound_expr` (affine-exact where
        possible) over the leaves' proven value boxes; the result is the
        hull across paths.  Analytic means and quantiles must land in
        this interval — the containment the S5 checks assert.
        """
        if self.program is None:
            return None
        lows: list[float] = []
        highs: list[float] = []
        for path in self.program.paths:
            if path.expr is None:
                lows.append(path.value)
                highs.append(path.value)
                continue
            box = {}
            for name, leaf in path.leaves.items():
                interval = leaf_interval(leaf.ecv)
                if interval is not None:
                    box[name] = interval
            bounds = bound_expr(path.expr, box)
            lows.append(bounds.lo)
            highs.append(bounds.hi)
        if not lows:
            return None
        return Interval(min(lows), max(highs))


def _path_analytic(path: Any) -> EnergyDistribution | None:
    """The exact output law of one traced path, or ``None``."""
    if path.expr is None:
        return PointMass(path.value)
    form = linearize(path.expr)
    if form is None:
        return None
    terms: list[tuple[float, ECVLeaf, EnergyDistribution]] = []
    for name, coef in form.coeffs.items():
        leaf = path.leaves.get(name)
        if leaf is None:
            return None
        marginal = leaf_distribution(leaf.ecv)
        if marginal is None:
            return None
        terms.append((coef, leaf, marginal))
    if not terms:
        return PointMass(form.const)
    return AnalyticDistribution(form.const, terms)


def _combine_analytic(components: list[EnergyDistribution],
                      weights: list[float]) -> EnergyDistribution:
    """Combine per-path laws exactly as the interpreter combines traces."""
    if all(isinstance(c, PointMass) for c in components):
        return Discrete([c.mean() for c in components], weights)
    return Mixture.collapse(components, weights)


def _sampled(call: EnergyCall, reason: str,
             declared_print: tuple = ()) -> CompiledCall:
    return CompiledCall(call=call, tier="sampled", reason=reason,
                        declared_print=declared_print)


def compile_call(call: EnergyCall, env: ECVEnvironment, *,
                 p_quantum: float = DEFAULT_P_QUANTUM,
                 max_traces: int | None = None) -> CompiledCall:
    """Partially evaluate and classify one energy query.

    Never raises on compilation failure: untraceable or unsupported
    bodies come back as a ``sampled``-tier entry whose ``reason`` says
    why, so callers can report and fall back uniformly.  Genuine
    evaluation errors (unknown ECVs, abstract energies) do propagate —
    they would equally fail at prediction time.
    """
    declared = _declaration_print(call.interface, p_quantum)
    try:
        program = trace_call(call, env, max_traces)
    except UntraceableBody as exc:
        return _sampled(call, str(exc), declared)
    leaves = list(program.leaves.values())
    leaf_prints = {leaf.name: _leaf_print(leaf.ecv, p_quantum)
                   for leaf in leaves}
    # Tier 1: exact analytic law over all paths.
    components: list[EnergyDistribution] = []
    weights: list[float] = []
    analytic = True
    for path in program.paths:
        component = _path_analytic(path)
        if component is None:
            analytic = False
            break
        components.append(component)
        weights.append(path.probability)
    if analytic and math.isclose(sum(weights), 1.0, rel_tol=1e-6):
        dist = _combine_analytic(components, weights)
        return CompiledCall(call=call, tier="analytic", dist=dist,
                            leaves=leaves, leaf_prints=leaf_prints,
                            declared_print=declared, program=program)
    # Tier 2: straight-line numpy kernel, bitwise equal to VectorEngine.
    if program.straight_line and program.paths[0].expr is not None:
        path = program.paths[0]
        names = {leaf.name: f"c{index}"
                 for index, leaf in enumerate(leaves)}
        try:
            body = _emit(path.expr, names)
        except _KernelUnsupported as exc:
            return _sampled(call, str(exc), declared)
        source = f"lambda {', '.join(names[l.name] for l in leaves)}: {body}"
        kernel = eval(source, {"__builtins__": {}})  # noqa: S307 - source
        # is generated exclusively from the traced expression tree above.
        return CompiledCall(call=call, tier="kernel", kernel=kernel,
                            kernel_source=source, leaves=leaves,
                            leaf_prints=leaf_prints,
                            declared_print=declared, program=program)
    if not program.straight_line:
        return _sampled(
            call, "enumerated paths are not all affine-analytic; "
            "per-path kernels would not be branch-free", declared)
    return _sampled(call, "straight-line path has no symbolic expression "
                    "and no analytic form", declared)


class CompileCache:
    """Memoized compiled entries with MemoHook-shaped keys.

    The key is ``(interface name, method, args, kwargs, environment
    fingerprint)`` — the same identity :class:`~repro.core.session.MemoHook`
    keys evaluations by, minus the mode (one compiled entry serves every
    mode; per-mode results are cached on the entry itself).  Entries are
    revalidated on every hit (see :meth:`CompiledCall.revalidate`), so an
    environment rebinding or declared-ECV mutation triggers recompilation
    rather than a stale answer.  Unhashable queries compile nothing and
    fall back to sampling.
    """

    def __init__(self, maxsize: int = 256,
                 p_quantum: float = DEFAULT_P_QUANTUM) -> None:
        self.maxsize = int(maxsize)
        self.p_quantum = float(p_quantum)
        self._entries: "OrderedDict[tuple, CompiledCall]" = OrderedDict()
        self._epochs: dict[str, tuple] = {}
        self.stats = {"hits": 0, "misses": 0, "invalidations": 0,
                      "uncacheable": 0}

    def _key(self, call: EnergyCall, env: ECVEnvironment) -> tuple | None:
        interface_name = getattr(call.interface, "name",
                                 type(call.interface).__name__)
        try:
            key = (interface_name, call.method_name, call.args, call.kwargs,
                   env_fingerprint(env, self.p_quantum))
            hash(key)
        except TypeError:
            return None
        return key

    def get(self, call: EnergyCall, env: ECVEnvironment,
            max_traces: int | None = None) -> CompiledCall:
        """The compiled entry for a query, compiling on miss."""
        key = self._key(call, env)
        if key is None:
            self.stats["uncacheable"] += 1
            return _sampled(call, "query key is not hashable; compiled "
                            "entries cannot be cached")
        entry = self._entries.get(key)
        if entry is not None:
            if entry.revalidate(env, self.p_quantum):
                self._entries.move_to_end(key)
                self.stats["hits"] += 1
                return entry
            del self._entries[key]
            self.stats["invalidations"] += 1
        self.stats["misses"] += 1
        entry = compile_call(call, env, p_quantum=self.p_quantum,
                             max_traces=max_traces)
        self._entries[key] = entry
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def bind_epoch(self, interface_name: str, fingerprint: tuple) -> int:
        """Pin an interface's entries to a calibration fingerprint.

        The calibration seam: compiled kernels bake unit energies into
        their constants, so when the bound
        :class:`~repro.calibration.CalibrationEpoch`'s quantised
        fingerprint changes, every entry for that interface is dropped
        eagerly (a sub-quantum recalibration binds the same fingerprint
        and is a no-op).  Returns the number of entries invalidated.
        """
        previous = self._epochs.get(interface_name)
        self._epochs[interface_name] = fingerprint
        if previous is None or previous == fingerprint:
            return 0
        stale = [key for key in self._entries if key[0] == interface_name]
        for key in stale:
            del self._entries[key]
        self.stats["invalidations"] += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class CompiledInterface:
    """All compiled queries of one interface under one environment.

    The user-facing artefact of :mod:`repro.compile`: wraps an interface
    plus bound ECV distributions and compiles each queried method on
    first use (through a shared :class:`CompileCache`).  ``report()``
    summarises which queries landed in which tier — the payload of the
    ``repro-energy compile`` subcommand.
    """

    def __init__(self, interface: Any,
                 env: ECVEnvironment | Mapping[str, Any] | None = None,
                 cache: CompileCache | None = None,
                 p_quantum: float = DEFAULT_P_QUANTUM) -> None:
        from repro.core.interface import _coerce_env
        self.interface = interface
        self.env = _coerce_env(env)
        self.cache = cache if cache is not None else CompileCache(
            p_quantum=p_quantum)
        self._queried: "OrderedDict[tuple, CompiledCall]" = OrderedDict()

    @property
    def name(self) -> str:
        return getattr(self.interface, "name",
                       type(self.interface).__name__)

    def compiled(self, method: str, *args: Any, **kwargs: Any) -> CompiledCall:
        """Compile (or fetch) the entry for ``method(*args, **kwargs)``."""
        call = self.interface(method, *args, **kwargs)
        entry = self.cache.get(call, self.env)
        try:
            key = (call.method_name, call.args, call.kwargs)
            hash(key)
        except TypeError:
            key = (call.method_name, repr(call.args), repr(call.kwargs))
        self._queried[key] = entry
        return entry

    def predict(self, method: str, *args: Any, mode: str = "distribution",
                entropy: int = 0xEC5, n_samples: int = 4000,
                **kwargs: Any) -> Any:
        """Convenience: compile and predict in one step (no fallback)."""
        return self.compiled(method, *args, **kwargs).predict(
            mode, entropy, n_samples)

    def report(self) -> list[dict]:
        """Per-query tier summary for everything compiled so far."""
        rows = []
        for (method, args, _kwargs), entry in self._queried.items():
            row = {
                "interface": self.name,
                "method": method,
                "args": list(args) if isinstance(args, tuple) else args,
                "tier": entry.tier,
            }
            if entry.tier == "sampled":
                row["reason"] = entry.reason
            else:
                interval = entry.proven_interval()
                if interval is not None and interval.bounded:
                    row["proven_lo_j"] = interval.lo
                    row["proven_hi_j"] = interval.hi
                if entry.tier == "analytic":
                    row["mean_j"] = float(entry.dist.mean())
                if entry.kernel_source is not None:
                    row["kernel"] = entry.kernel_source
            rows.append(row)
        return rows
