"""Partial evaluation of energy methods over symbolic ECV reads.

The compiler's front end: run an ``E_*`` body once (or once per
enumerated discrete trace) with :class:`~repro.analysis.expr.ECVLeaf`
expressions substituted for ``self.ecv(name)`` reads, and record the
closed-form expression the method computes.  Two passes:

1. **Straight-line pass** — *every* ECV read returns a symbolic leaf
   keyed ``(qualified name, occurrence)``, exactly the column keying of
   the batched Monte Carlo engine
   (:class:`~repro.core.mcengine._BatchContext`).  A body that completes
   is branch-free over its ECVs: one expression covers all sample paths,
   and evaluating it over the engine's deterministic columns reproduces
   the vectorized draws bitwise.
2. **Enumerated pass** — bodies that branch on an ECV raise on the
   symbolic value (``Expr.__bool__``); the fallback enumerates the
   *discrete* ECVs by forced-choice replay — the same worklist
   discipline as :func:`repro.core.interface.enumerate_traces`, so path
   order and probability products match the exact evaluator bitwise —
   while continuous ECVs stay symbolic.  A path that then branches on a
   continuous read is genuinely branchy: the whole program is marked
   untraceable and the backend falls back to sampling.

Both passes bypass session hooks entirely: tracing is compilation, not
evaluation — no spans, no accounting, no memo writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.expr import ECVLeaf, Expr
from repro.core.ecv import ECVEnvironment
from repro.core.errors import EvaluationError, ReproError
from repro.core.interface import (
    EnergyCall,
    _BaseContext,
    _run_in_context,
)
from repro.core.units import AbstractEnergy, Energy

__all__ = ["TracedPath", "TracedProgram", "UntraceableBody", "trace_call"]

#: Cap on enumerated compile-time traces; mirrors the evaluator's
#: default budget (the compiled form must not enumerate more than the
#: interpreter would).
MAX_COMPILE_TRACES = 4096


class UntraceableBody(ReproError):
    """The method body cannot be partially evaluated (branches on a
    continuous ECV, coerces symbolic values, returns an unsupported
    type, ...).  Carries the reason for the compile report."""

    code = "E_COMPILE_TRACE"


@dataclass
class TracedPath:
    """One traced control-flow path through an energy method.

    ``expr`` is the symbolic Joules expression when the path read any
    symbolic (continuous or straight-line) ECVs; ``value`` is the
    concrete Joules figure when it did not.  ``probability`` multiplies
    the discrete forced choices in read order, exactly as the exact
    enumerator does.
    """

    probability: float
    expr: Expr | None
    value: float | None
    leaves: dict[str, ECVLeaf] = field(default_factory=dict)
    choices: tuple = ()


@dataclass
class TracedProgram:
    """All traced paths of one energy call plus their symbolic leaves."""

    call: EnergyCall
    paths: list[TracedPath]
    #: Union of every path's leaves, in first-read order.
    leaves: dict[str, ECVLeaf]
    #: True when the straight-line pass succeeded (single branch-free
    #: path — the precondition for the bitwise kernel tier).
    straight_line: bool

    @property
    def total_probability(self) -> float:
        return sum(path.probability for path in self.paths)


class _CompileContext(_BaseContext):
    """Evaluation context used during partial evaluation.

    ``symbolic_discrete=True`` is the straight-line pass: all reads
    yield leaves.  Otherwise discrete reads are enumerated by forced
    choice (``forced`` replays a prefix; alternatives are queued on
    ``unexplored`` in the exact evaluator's order) and only continuous
    reads stay symbolic.
    """

    def __init__(self, env: ECVEnvironment, forced: list[tuple[str, int]],
                 symbolic_discrete: bool) -> None:
        super().__init__(env, session=None)
        self._forced = forced
        self._symbolic_discrete = symbolic_discrete
        self._choices: list[tuple[str, int]] = []
        self._occurrence: dict[str, int] = {}
        self.probability = 1.0
        self.unexplored: list[list[tuple[str, int]]] = []
        self.leaves: dict[str, ECVLeaf] = {}

    def _leaf(self, owner: Any, qualified: str, ecv: Any) -> ECVLeaf:
        occurrence = self._occurrence.get(qualified, 0)
        self._occurrence[qualified] = occurrence + 1
        leaf = ECVLeaf(qualified, occurrence, ecv, owner)
        self.leaves[leaf.name] = leaf
        return leaf

    def read(self, owner: Any, name: str) -> Any:
        ecv = self._resolve(owner, name)
        qualified = f"{owner.name}.{name}"
        if self._symbolic_discrete:
            return self._leaf(owner, qualified, ecv)
        support = ecv.support()
        if support is None:
            # Continuous: stays symbolic in the enumerated pass too.
            return self._leaf(owner, qualified, ecv)
        position = len(self._choices)
        if position < len(self._forced):
            _, index = self._forced[position]
            if index >= len(support):
                raise EvaluationError(
                    f"non-deterministic interface: ECV {name!r} support "
                    f"changed between compile-trace replays")
        else:
            index = 0
            prefix = list(self._choices)
            for alternative in range(1, len(support)):
                self.unexplored.append(
                    prefix + [(qualified, alternative)])
        value, probability = support[index]
        self._choices.append((qualified, index))
        self.probability *= probability
        self._record(qualified, value)
        return value


def _as_path(context: _CompileContext, value: Any) -> TracedPath:
    """Normalise one pass's return value to Joules (symbolic or float)."""
    if isinstance(value, AbstractEnergy):
        raise UntraceableBody(
            "method returned abstract energy units; ground them before "
            "compiling")
    if isinstance(value, Energy):
        value = value.as_joules
    if isinstance(value, Expr):
        return TracedPath(probability=context.probability, expr=value,
                          value=None, leaves=dict(context.leaves),
                          choices=tuple(context._choices))
    if isinstance(value, (bool, int, float)):
        if context.leaves:
            # Symbolic reads happened but the result is concrete — the
            # body discarded them (e.g. min() over a leaf picked the
            # constant arm concretely is impossible; realistically a
            # read whose value never reaches the return).  The constant
            # is exact for every draw, so compile it as such.
            pass
        return TracedPath(probability=context.probability, expr=None,
                          value=float(value), leaves=dict(context.leaves),
                          choices=tuple(context._choices))
    from repro.core.distributions import EnergyDistribution, PointMass
    if isinstance(value, PointMass):
        return TracedPath(probability=context.probability, expr=None,
                          value=float(value.mean()),
                          leaves=dict(context.leaves),
                          choices=tuple(context._choices))
    if isinstance(value, EnergyDistribution):
        raise UntraceableBody(
            "method returned a non-degenerate outcome distribution; "
            "per-sample outcome draws are not compilable")
    raise UntraceableBody(
        f"method returned uncompilable type {type(value).__name__}")


def trace_call(call: EnergyCall, env: ECVEnvironment,
               max_traces: int | None = None) -> TracedProgram:
    """Partially evaluate ``call`` under ``env``.

    Returns the traced program; raises :class:`UntraceableBody` when the
    body defeats both passes (the caller then classifies the whole call
    as the sampled tier).
    """
    cap = MAX_COMPILE_TRACES if max_traces is None else int(max_traces)
    fn: Callable[[], Any] = call
    # Pass 1: fully symbolic, straight-line.
    context = _CompileContext(env, forced=[], symbolic_discrete=True)
    try:
        value = _run_in_context(fn, context)
        path = _as_path(context, value)
        return TracedProgram(call=call, paths=[path],
                             leaves=dict(context.leaves), straight_line=True)
    except UntraceableBody:
        raise
    except EvaluationError:
        # Semantic errors (unknown ECV, abstract energies) must surface
        # to the caller exactly as evaluation would raise them.
        raise
    except Exception:
        pass  # the body needed concrete values; enumerate below
    # Pass 2: enumerate discrete ECVs, keep continuous ones symbolic.
    pending: list[list[tuple[str, int]]] = [[]]
    paths: list[TracedPath] = []
    leaves: dict[str, ECVLeaf] = {}
    while pending:
        forced = pending.pop()
        context = _CompileContext(env, forced=forced,
                                  symbolic_discrete=False)
        try:
            value = _run_in_context(fn, context)
        except UntraceableBody:
            raise
        except EvaluationError:
            raise
        except Exception as exc:
            raise UntraceableBody(
                f"body is genuinely branchy (branches on a continuous or "
                f"symbolic value): {type(exc).__name__}: {exc}") from exc
        paths.append(_as_path(context, value))
        leaves.update(context.leaves)
        pending.extend(context.unexplored)
        if len(paths) + len(pending) > cap:
            raise UntraceableBody(
                f"compile-time trace enumeration exceeded {cap} traces")
    return TracedProgram(call=call, paths=paths, leaves=leaves,
                         straight_line=False)
