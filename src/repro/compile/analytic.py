"""Analytic output distributions for affine compiled paths.

An affine path — ``const + Σ coef·leaf`` over independent ECV draws — has
closed-form moments and bounds: means and variances propagate exactly
under independence (each ``(qualified, occurrence)`` leaf is one
independent column draw, and :func:`~repro.analysis.intervals.linearize`
has already merged repeated reads of the same leaf into one coefficient).
:class:`AnalyticDistribution` is the distribution-algebra citizen for
such a form.

The existing algebra cannot express it: :class:`~repro.core.distributions.Scaled`
rejects negative factors (physical energies are non-negative), but an
affine *term* legitimately carries a negative coefficient
(``(1 - hit) * miss_cost`` linearizes to ``miss_cost - miss_cost·hit``)
as long as the whole form stays non-negative.

:func:`leaf_distribution` maps an ECV's marginal law onto the exact
distribution types; :func:`leaf_interval` gives the proven value box the
lint layer's interval domain would use — analytic results are checked
against the :func:`~repro.analysis.intervals.bound_expr` bounds computed
over exactly these boxes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.expr import ECVLeaf
from repro.analysis.intervals import Interval, _mul
from repro.core.distributions import (
    Discrete,
    EnergyDistribution,
    PointMass,
    Uniform,
)
from repro.core.ecv import (
    ECV,
    BernoulliECV,
    CategoricalECV,
    ContinuousECV,
    FixedECV,
    UniformIntECV,
)

__all__ = ["AnalyticDistribution", "leaf_distribution", "leaf_interval"]


def _is_number(value: object) -> bool:
    return isinstance(value, (bool, int, float, np.number))


def leaf_distribution(ecv: ECV) -> EnergyDistribution | None:
    """The exact marginal distribution of one ECV draw, if expressible.

    Booleans coerce to 0/1 exactly as numpy arithmetic coerces the
    engine's boolean sample columns.  ``None`` means the marginal has no
    closed form here (a custom-sampler continuous ECV, non-numeric
    categories): the caller must drop to the kernel tier.
    """
    if isinstance(ecv, FixedECV):
        return PointMass(float(ecv.value)) if _is_number(ecv.value) else None
    if isinstance(ecv, BernoulliECV):
        support = ecv.support()
        if len(support) == 1:
            return PointMass(float(support[0][0]))
        return Discrete([float(v) for v, _ in support],
                        [p for _, p in support])
    if isinstance(ecv, (CategoricalECV, UniformIntECV)):
        support = ecv.support()
        if not all(_is_number(value) for value, _ in support):
            return None
        if len(support) == 1:
            return PointMass(float(support[0][0]))
        return Discrete([float(v) for v, _ in support],
                        [p for _, p in support])
    if isinstance(ecv, ContinuousECV):
        if ecv._sampler is not None:
            # Custom samplers promise only a scalar draw protocol; their
            # law is opaque, so no analytic marginal.
            return None
        if ecv.low == ecv.high:
            return PointMass(ecv.low)
        return Uniform(ecv.low, ecv.high)
    return None


def leaf_interval(ecv: ECV) -> Interval | None:
    """The proven value box of one ECV draw (the lint layer's domain)."""
    if isinstance(ecv, ContinuousECV):
        return Interval(ecv.low, ecv.high)
    support = ecv.support()
    if support is None:
        return None
    values = [value for value, _ in support]
    if not all(_is_number(value) for value in values):
        return None
    values = [float(value) for value in values]
    return Interval(min(values), max(values))


class AnalyticDistribution(EnergyDistribution):
    """``const + Σ coef·leaf`` over independent ECV leaf draws.

    Moments are closed-form (independence across distinct
    ``(qualified, occurrence)`` leaves); bounds are the affine form's
    exact extrema over the leaf boxes, with the interval domain's
    ``0·inf = 0`` convention.  Sampling draws each leaf's marginal
    independently — used only by the inherited Monte-Carlo
    :meth:`~repro.core.distributions.EnergyDistribution.quantile`
    approximation and by consumers that explicitly ask for samples.
    """

    def __init__(self, const: float,
                 terms: list[tuple[float, ECVLeaf, EnergyDistribution]]
                 ) -> None:
        self._const = float(const)
        self._terms = [(float(coef), leaf, dist)
                       for coef, leaf, dist in terms if coef != 0.0]

    @property
    def terms(self) -> list[tuple[float, ECVLeaf, EnergyDistribution]]:
        """``(coefficient, leaf, marginal)`` triples (zero terms pruned)."""
        return list(self._terms)

    @property
    def const(self) -> float:
        return self._const

    def mean(self) -> float:
        return self._const + sum(coef * dist.mean()
                                 for coef, _, dist in self._terms)

    def variance(self) -> float:
        return sum(coef ** 2 * dist.variance()
                   for coef, _, dist in self._terms)

    def lower_bound(self) -> float:
        lo = self._const
        for coef, _, dist in self._terms:
            lo += min(_mul(coef, dist.lower_bound()),
                      _mul(coef, dist.upper_bound()))
        return lo

    def upper_bound(self) -> float:
        hi = self._const
        for coef, _, dist in self._terms:
            hi += max(_mul(coef, dist.lower_bound()),
                      _mul(coef, dist.upper_bound()))
        return hi

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        total = np.full(n, self._const)
        for coef, _, dist in self._terms:
            total += coef * dist.sample(rng, n)
        return total

    def __repr__(self) -> str:
        return (f"AnalyticDistribution(mean={self.mean():.6g} J, "
                f"std={self.std():.6g} J, terms={len(self._terms)})")
