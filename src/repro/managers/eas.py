"""A Linux-EAS-like scheduler: utilisation EWMA as the energy proxy.

§1 of the paper: the kernel's Energy-Aware Scheduler "cannot accurately
estimate a task's future energy consumption, because it does not take
into account task specifics ... for any given task, it looks at its past
core utilization, and uses the average to predict how much energy it will
consume in the next scheduling quantum."

:class:`EASScheduler` reproduces that structure: a PELT-style
exponentially-decaying average of each task's observed utilisation is the
prediction fed into the shared energy-delta placement of
:class:`~repro.managers.base.Scheduler`.  For steady tasks the EWMA is
exact; for bimodal ones (real-time transcoding) it predicts the *mean* of
the modes — too high in troughs, too low in bursts — and placement pays
for it on both sides.  Benchmark M1 measures the cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.errors import SchedulerError
from repro.managers.base import Scheduler, Task

if TYPE_CHECKING:
    from repro.core.session import EvalSession

__all__ = ["EASScheduler"]

#: PELT's half-life is 32 ms against a 1 ms tick; per 50 ms quantum the
#: equivalent decay is ~0.66.  Kept as a parameter for the ablation.
DEFAULT_DECAY = 0.66


class EASScheduler(Scheduler):
    """Utilisation-EWMA prediction + energy-delta placement."""

    name = "eas"

    def __init__(self, decay: float = DEFAULT_DECAY,
                 initial_utilization: float = 100.0,
                 session: "EvalSession | None" = None) -> None:
        if not 0.0 < decay <= 1.0:
            raise SchedulerError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        self.initial_utilization = initial_utilization
        self.session = session
        self._ewma: dict[str, float] = {}

    def predict(self, task: Task, quantum_index: int) -> float:
        """The PELT-style average — task specifics are invisible to it."""
        return self._ewma.get(task.name, self.initial_utilization)

    def observe(self, task: Task, actual_utilization: float) -> None:
        previous = self._ewma.get(task.name, actual_utilization)
        self._ewma[task.name] = (self.decay * actual_utilization
                                 + (1.0 - self.decay) * previous)

    def __repr__(self) -> str:
        return f"EASScheduler(decay={self.decay})"


class PeakEASScheduler(EASScheduler):
    """EAS overprovisioned to protect QoS (uclamp-style boosting).

    Operators who cannot tolerate the plain EWMA's deadline misses on
    bursty tasks clamp the utilisation estimate to the observed *peak*
    (decayed slowly).  That recovers QoS — bursts always fit — at the cost
    of placing trough-phase work as if it were a burst.  This is the
    equal-QoS baseline benchmark M1 compares the interface scheduler
    against: misses comparable, energy higher.
    """

    name = "eas-peak"

    def __init__(self, decay: float = DEFAULT_DECAY,
                 peak_decay: float = 0.02,
                 initial_utilization: float = 100.0,
                 session: "EvalSession | None" = None) -> None:
        super().__init__(decay, initial_utilization, session)
        if not 0.0 <= peak_decay < 1.0:
            raise SchedulerError(f"peak_decay must be in [0, 1), got "
                                 f"{peak_decay}")
        self.peak_decay = peak_decay
        self._peak: dict[str, float] = {}

    def predict(self, task: Task, quantum_index: int) -> float:
        return max(self._peak.get(task.name, self.initial_utilization),
                   super().predict(task, quantum_index))

    def observe(self, task: Task, actual_utilization: float) -> None:
        super().observe(task, actual_utilization)
        decayed = (self._peak.get(task.name, actual_utilization)
                   * (1.0 - self.peak_decay))
        self._peak[task.name] = max(decayed, actual_utilization)
