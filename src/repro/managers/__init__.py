"""Resource managers: CPU schedulers, cluster scheduler, cache manager.

The energy-budget manager (a resource manager whose "resource" is
Joule headroom along the Fig. 2 stack) lives in
:mod:`repro.serving.budget` and is re-exported here alongside its peers.
"""

from repro.managers.autoscaler import (
    AutoscaleSim,
    Autoscaler,
    InterfaceAutoscaler,
    ReactiveAutoscaler,
    ReplicaSpec,
    ScalingResult,
    diurnal_profile,
)
from repro.managers.base import (
    ComponentHealth,
    Placement,
    Scheduler,
    SchedulerResult,
    SchedulerSim,
    Task,
)
from repro.managers.cachemgr import LRUCacheManager
from repro.managers.cluster import (
    ClusterOutcome,
    ClusterScheduler,
    InterfacePackingScheduler,
    Node,
    NodeType,
    PodEnergyInterface,
    PodSpec,
    RequestScheduler,
    run_cluster,
)
from repro.managers.eas import EASScheduler, PeakEASScheduler
from repro.managers.interface_scheduler import (
    InterfaceScheduler,
    OracleScheduler,
    UtilizationInterface,
)
from repro.serving.budget import BudgetManager

__all__ = [
    "Task", "Placement", "ComponentHealth", "Scheduler", "SchedulerResult",
    "SchedulerSim",
    "EASScheduler", "PeakEASScheduler", "InterfaceScheduler", "OracleScheduler",
    "UtilizationInterface", "LRUCacheManager",
    "NodeType", "Node", "PodSpec", "PodEnergyInterface", "ClusterScheduler",
    "RequestScheduler", "InterfacePackingScheduler", "ClusterOutcome",
    "run_cluster",
    "ReplicaSpec", "ScalingResult", "Autoscaler", "ReactiveAutoscaler",
    "InterfaceAutoscaler", "AutoscaleSim", "diurnal_profile",
    "BudgetManager",
]
